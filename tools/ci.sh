#!/usr/bin/env bash
# CI gate: build the ThreadSanitizer preset and run the parallel-miner
# determinism tests under it. The parallel MineTopkRGS promises bit-for-bit
# identical results for any thread count; this script is the race detector
# backing that promise — run it before merging anything that touches
# src/mine/ or src/util/arena.h.
#
# Usage: tools/ci.sh [extra ctest -R patterns...]

set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=tsan
PATTERN="${1:-TopkParallel}"

echo "== configure (${PRESET}) =="
cmake --preset "${PRESET}"

echo "== build (${PRESET}) =="
cmake --build --preset "${PRESET}" -j

echo "== determinism tests under ThreadSanitizer (-R ${PATTERN}) =="
ctest --test-dir "build-${PRESET}" -R "${PATTERN}" --output-on-failure

echo "CI gate passed: no data races, results thread-count invariant."
