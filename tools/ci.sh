#!/usr/bin/env bash
# CI gate with two stages:
#
#   tsan  — build the ThreadSanitizer preset and run the parallel-miner
#           determinism tests plus the classifier/serving thread-safety
#           tests under it. The parallel MineTopkRGS promises bit-for-bit
#           identical results for any thread count, and the serving stack
#           promises lock-free shared-classifier Predict; this stage is
#           the race detector backing both — run it before merging
#           anything touching src/mine/, src/serve/ or src/util/arena.h.
#
#   fuzz  — build the fuzz preset (ASan+UBSan, plus libFuzzer when the
#           compiler is clang) and replay the committed seed + regression
#           corpus through every ingestion fuzz target. Every malformed
#           corpus file must come back as a non-OK Status with no abort and
#           no sanitizer report. When clang is available the stage also
#           runs each libFuzzer target for a short time-boxed exploration.
#
#   lint  — static-analysis gate (DESIGN.md §11–12, §16). Runs every
#           dependency-free Python check through the
#           tools/lint/run_all.py orchestrator (per-check wall-time,
#           one compile_commands.json export, failures collected rather
#           than masking each other): include discipline
#           (check_includes.py), the determinism linter self-test + gate
#           (determinism_lint.py — unordered iteration, pointer
#           keys, ambient entropy and unordered FP reductions in the
#           deterministic zones, with a shrink-only baseline), the cast
#           linter self-test + gate (cast_lint.py — unchecked
#           integer narrowing, C-casts and signed/size comparisons across
#           src/, shrink-only baseline, src/serve and src/synth pinned at
#           zero), the bench-gate self-tests (gate_selftest.py — the
#           redundancy/RSS/coverage gates against pass/fail/vacuous
#           fixtures, so a broken gate can never silently pass), the
#           redundant-work-ratio gate (redundancy_gate.py —
#           8-thread nodes_visited over serial, ceiling 1.15, from the
#           committed bench/BENCH_topk.json), the out-of-core RSS gate
#           (rss_gate.py — mine peak RSS within its
#           --memory-budget and shard-count-invariant digests, from the
#           committed bench/BENCH_scale.json), and the hot-path purity
#           lint self-test + gate (astlint.py, see the astlint stage).
#           Then a
#           warnings-as-errors build of the lint preset, which also
#           enforces -Werror=unused-result on the [[nodiscard]] Status
#           surface. When a clang toolchain is on PATH it additionally
#           compiles src/ with -Wthread-safety -Werror (the
#           thread-safety-annotation gate) and runs clang-tidy against the
#           exported compile_commands.json, and requires the
#           deliberately-dangling lifetime fixture
#           (tools/lint/testdata/lifetime_fixture.cc) to FAIL compiling —
#           proof the TKRGS_LIFETIME_BOUND/GSL annotations still bite;
#           without clang those sub-checks print a skip notice instead of
#           failing.
#
#   astlint — hot-path purity gate (DESIGN.md §16) on its own:
#           tools/lint/astlint.py --self-test (the hazard/clean fixture
#           pair must still trip every check), then the call-graph lint
#           over src/ — no allocation, high-rank locks, blocking I/O,
#           expensive implicit copies, or formatted Status construction
#           reachable from any TKRGS_HOT root without a justified
#           NOLINT(hotpath: ...). Uses libclang over the lint preset's
#           compile_commands.json when the clang Python bindings are
#           importable; otherwise falls back to the internal tokenizer
#           frontend with an explicit notice (the checks still run, the
#           call graph is textual rather than AST-exact).
#
#   analyze — clang static analyzer (--analyze, the scan-build engine)
#           over every src/ TU in the lint preset's compile_commands.json,
#           gated by the triaged suppression baseline in
#           tools/lint/analyze_baseline.txt. Skips with a notice when no
#           clang is on PATH.
#
#   coverage — build the coverage preset (gcc --coverage), run the full
#           suite, and enforce the per-directory line-coverage floors in
#           tools/lint/coverage_floors.json via
#           tools/lint/coverage_gate.py (src/mine/ and src/serve/ must
#           stay covered).
#
#   ubsan — build with -fsanitize=undefined -fno-sanitize-recover=all
#           (every UB report is fatal, not a log line) and run the full
#           test suite under it.
#
#   intsan — build with clang -fsanitize=integer (implicit truncations,
#           sign changes and unsigned wraps that UBSan's core does not
#           flag), -fno-sanitize-recover=all, gated by the triaged
#           modular-arithmetic ignorelist in
#           tools/lint/intsan_ignorelist.txt; runs the full suite plus a
#           convert/shard-mine round trip. Skips with a notice when no
#           clang is on PATH (gcc has no -fsanitize=integer).
#
#   simd  — build the release preset and run the full tier-1 suite twice:
#           once with the runtime-dispatched best SIMD tier and once with
#           TOPKRGS_SIMD=scalar forcing the portable reference kernels
#           (the only code path on non-x86). The miner promises bit-identical
#           output across kernel tiers and row-set representations; this
#           stage is the gate backing that promise — run it before merging
#           anything touching src/util/bitkernels.* or src/util/rowset.*.
#
#   scale — out-of-core engine gate. Build the release preset, run the
#           reduced scale profile through bench_scale (streamed ingest,
#           tkds convert, shard-count sweep) into a fresh record and hold
#           it to tools/lint/rss_gate.py, run the sharded-vs-single-shot
#           oracle tests with TOPKRGS_SLOW_TESTS=1 (the reduced-profile
#           sweep that tier-1 skips), and round-trip a toy dataset through
#           topkrgs-convert + topkrgs-shard-mine checking that the text
#           and tkds paths report the same digest. Time-boxed via
#           SCALE_SECONDS (default 120, the bench point budget).
#
#   serve — build the asan preset, run the serving-layer tests under it,
#           then smoke-test the real topkrgs-serve binary end to end:
#           train a TINY model, start the server on an ephemeral port,
#           hit /healthz, /v1/predict and /metrics over real sockets, and
#           shut it down cleanly (SIGTERM). Also builds the release preset
#           load-generator bench and refreshes bench/BENCH_serve.json.
#
# Usage: tools/ci.sh [lint|astlint|analyze|coverage|ubsan|intsan|tsan|fuzz|simd|scale|serve|all]
#        [extra ctest -R pattern]

set -euo pipefail
cd "$(dirname "$0")/.."

STAGE="${1:-all}"
FUZZ_SECONDS="${FUZZ_SECONDS:-60}"

run_lint() {
  echo "== configure (lint preset: warnings-as-errors, compile_commands) =="
  cmake --preset lint >/dev/null

  # Every Python lint and gate — include discipline, determinism, cast,
  # the bench-record gates plus their self-tests, and the hot-path
  # purity lint — runs through the orchestrator, which times each check
  # and prints a summary instead of stopping at the first failure. It
  # reuses the compile_commands.json the configure above just exported.
  python3 tools/lint/run_all.py

  echo "== warnings-as-errors build (-Werror, -Werror=unused-result) =="
  cmake --build --preset lint -j

  # The thread-safety-annotation and clang-tidy gates need a clang
  # toolchain; degrade with an explicit notice rather than a silent pass
  # so CI logs show exactly which checks ran.
  if command -v clang++ >/dev/null 2>&1; then
    echo "== clang -Wthread-safety -Werror over src/ =="
    local tsa_dir
    tsa_dir="$(mktemp -d)"
    # shellcheck disable=SC2064
    trap "rm -rf '${tsa_dir}'" RETURN
    cmake -S . -B "${tsa_dir}" -G Ninja \
      -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTOPKRGS_WERROR=ON >/dev/null
    cmake --build "${tsa_dir}" -j --target topkrgs
  else
    echo "(clang++ not on PATH — -Wthread-safety gate skipped; annotations"
    echo " compile to nothing under this toolchain and were not analyzed)"
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (.clang-tidy check set, warnings-as-errors) =="
    git ls-files 'src/*.cc' | xargs clang-tidy -p build-lint --quiet
  else
    echo "(clang-tidy not on PATH — tidy gate skipped)"
  fi

  # Lifetime negative-compile gate: the deliberately-dangling fixture MUST
  # fail to compile once TKRGS_LIFETIME_BOUND / TKRGS_GSL_* expand to real
  # clang attributes. gcc expands them to nothing, so only clang can
  # observe the annotations.
  if command -v clang++ >/dev/null 2>&1; then
    echo "== lifetime annotations (dangling fixture must NOT compile) =="
    local lifetime_log
    lifetime_log="$(mktemp)"
    if clang++ -std=c++20 -fsyntax-only -Isrc \
         -Werror=dangling -Werror=dangling-gsl \
         tools/lint/testdata/lifetime_fixture.cc 2> "${lifetime_log}"; then
      echo "lifetime gate FAILED: the deliberately-dangling fixture compiled"
      echo "cleanly — the lifetimebound/gsl annotations are not being applied."
      rm -f "${lifetime_log}"
      exit 1
    fi
    if ! grep -qi "dangling\|destroyed at the end" "${lifetime_log}"; then
      echo "lifetime gate FAILED: fixture failed to compile for the wrong"
      echo "reason (expected a -Wdangling diagnostic):"
      cat "${lifetime_log}"
      rm -f "${lifetime_log}"
      exit 1
    fi
    echo "lifetime gate OK: every dangling use in the fixture was rejected."
    rm -f "${lifetime_log}"
  else
    echo "(clang++ not on PATH — lifetime negative-compile gate skipped; the"
    echo " lifetimebound annotations expand to nothing under this toolchain)"
  fi
  echo "lint gate passed: include discipline clean, determinism lint clean," \
       "warnings-as-errors build green."
}

run_astlint() {
  # Hot-path purity gate on its own (the lint stage also runs it via
  # run_all.py): self-test first, then the call-graph lint over src/.
  # With libclang the call graph is AST-exact; without it astlint's
  # internal frontend still enforces every check and prints an explicit
  # notice that the analysis is textual on this machine.
  if [ ! -f build-lint/compile_commands.json ]; then
    echo "== configure (lint preset, for compile_commands.json) =="
    cmake --preset lint >/dev/null
  fi
  echo "== astlint self-test (hot-path fixture pair must still trip every check) =="
  python3 tools/lint/astlint.py --self-test
  echo "== hot-path purity gate (tools/lint/astlint.py) =="
  python3 tools/lint/astlint.py --compile-commands build-lint/compile_commands.json
  echo "astlint gate done."
}

run_analyze() {
  # The gate needs compile_commands.json from the lint preset; configure
  # it if a previous lint run hasn't already.
  if [ ! -f build-lint/compile_commands.json ]; then
    echo "== configure (lint preset, for compile_commands.json) =="
    cmake --preset lint >/dev/null
  fi
  echo "== clang static analyzer over src/ (tools/lint/analyze_gate.py) =="
  python3 tools/lint/analyze_gate.py
  echo "analyze gate done."
}

run_coverage() {
  echo "== configure (coverage) =="
  cmake --preset coverage
  echo "== build (coverage) =="
  cmake --build --preset coverage -j
  echo "== full suite under --coverage instrumentation =="
  ctest --test-dir build-coverage --output-on-failure -j "$(nproc)"
  echo "== per-directory line-coverage floors (tools/lint/coverage_gate.py) =="
  python3 tools/lint/coverage_gate.py
  echo "coverage gate passed: directory floors met."
}

run_ubsan() {
  echo "== configure (ubsan) =="
  cmake --preset ubsan
  echo "== build (ubsan: -fsanitize=undefined -fno-sanitize-recover=all) =="
  cmake --build --preset ubsan -j
  echo "== full suite with fatal-on-report UBSan =="
  ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)"
  echo "ubsan gate passed: no undefined behavior reported."
}

run_intsan() {
  # -fsanitize=integer (implicit conversions + unsigned wraps, beyond
  # UBSan's signed-overflow core) is clang-only; gcc has no equivalent.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "(clang++ not on PATH — intsan stage skipped; -fsanitize=integer"
    echo " has no gcc equivalent. The cast lint and the ubsan stage still"
    echo " cover signed overflow and the checked-math call sites.)"
    return 0
  fi
  echo "== configure (intsan) =="
  cmake --preset intsan
  echo "== build (intsan: clang -fsanitize=integer -fno-sanitize-recover) =="
  cmake --build --preset intsan -j
  echo "== full suite with fatal-on-report IntegerSanitizer =="
  ctest --test-dir build-intsan --output-on-failure -j "$(nproc)"
  echo "== reduced scale profile under IntegerSanitizer =="
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${tmp}'" RETURN
  printf '1\t0 1 2\n1\t0 1 2\n1\t0 1\n1\t0 2\n1\t1 2\n0\t3 4\n0\t3\n0\t4\n' \
    > "${tmp}/toy.items"
  build-intsan/tools/topkrgs-convert --input "${tmp}/toy.items" \
    --output "${tmp}/toy.tkds" >/dev/null
  build-intsan/tools/topkrgs-shard-mine --data "${tmp}/toy.tkds" \
    --minsup 2 --k 3 --shards 2 >/dev/null
  echo "intsan gate passed: no implicit-conversion or overflow reports" \
       "outside the triaged ignorelist."
}

run_tsan() {
  local pattern="${1:-TopkParallel}"
  echo "== configure (tsan) =="
  cmake --preset tsan
  echo "== build (tsan) =="
  cmake --build --preset tsan -j
  echo "== determinism tests under ThreadSanitizer (-R ${pattern}) =="
  ctest --test-dir build-tsan -R "${pattern}" --output-on-failure
  echo "tsan gate passed: no data races, results thread-count invariant."
}

run_fuzz() {
  echo "== configure (fuzz) =="
  cmake --preset fuzz
  echo "== build (fuzz) =="
  cmake --build --preset fuzz -j
  echo "== corpus replay under ASan/UBSan =="
  ctest --test-dir build-fuzz -R "FuzzReplay|CorpusReplay" --output-on-failure

  # Coverage-guided exploration needs the libFuzzer runtime (clang only);
  # with gcc the replay above is the whole stage.
  if grep -q "TOPKRGS_HAS_LIBFUZZER:INTERNAL=1" build-fuzz/CMakeCache.txt 2>/dev/null; then
    echo "== time-boxed libFuzzer runs (${FUZZ_SECONDS}s per target) =="
    for target in discretization cba_model rcbt_model tsv_dataset item_dataset predict_request; do
      echo "-- fuzz_${target}"
      "build-fuzz/tests/fuzz/fuzz_${target}" \
        -max_total_time="${FUZZ_SECONDS}" -rss_limit_mb=2048 \
        "tests/fuzz/seeds/${target}" "tests/fuzz/regressions/${target}"
    done
  else
    echo "(libFuzzer runtime unavailable — corpus replay only)"
  fi
  echo "fuzz gate passed: corpus parses to Status, no crashes, no sanitizer reports."
}

run_simd() {
  echo "== configure (release) =="
  cmake --preset release >/dev/null
  echo "== build (release) =="
  cmake --build --preset release -j
  echo "== full suite, runtime-dispatched SIMD tier =="
  ctest --test-dir build-release --output-on-failure -j "$(nproc)"
  echo "== full suite, TOPKRGS_SIMD=scalar (portable reference kernels) =="
  TOPKRGS_SIMD=scalar ctest --test-dir build-release --output-on-failure \
    -j "$(nproc)"
  echo "simd gate passed: suite green on both the dispatched tier and the" \
       "forced scalar fallback."
}

run_scale() {
  echo "== configure (release) =="
  cmake --preset release >/dev/null
  echo "== build (release: bench_scale, scale tools, oracle tests) =="
  cmake --build --preset release -j --target bench_scale \
    topkrgs_convert_tool topkrgs_shard_mine_tool shard_merge_test

  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${tmp}'" RETURN

  echo "== reduced-profile bench (streamed ingest + shard sweep) =="
  TOPKRGS_BENCH_BUDGET_S="${SCALE_SECONDS:-120}" \
    build-release/bench/bench_scale --out "${tmp}/BENCH_scale.json"
  echo "== RSS + determinism gate over the fresh record =="
  python3 tools/lint/rss_gate.py "${tmp}/BENCH_scale.json"

  echo "== sharded-vs-single-shot oracle (incl. reduced-profile sweep) =="
  TOPKRGS_SLOW_TESTS=1 ctest --test-dir build-release \
    -R "ShardMerge" --output-on-failure

  echo "== convert / shard-mine round trip (text vs tkds digest) =="
  printf '1\t0 1 2\n1\t0 1 2\n1\t0 1\n1\t0 2\n1\t1 2\n0\t3 4\n0\t3\n0\t4\n' \
    > "${tmp}/toy.items"
  build-release/tools/topkrgs-convert --input "${tmp}/toy.items" \
    --output "${tmp}/toy.tkds" >/dev/null
  local text_digest tkds_digest
  text_digest="$(build-release/tools/topkrgs-shard-mine \
    --data "${tmp}/toy.items" --minsup 2 --k 3 --shards 3 \
    | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')"
  tkds_digest="$(build-release/tools/topkrgs-shard-mine \
    --data "${tmp}/toy.tkds" --minsup 2 --k 3 --shards 2 \
    | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')"
  [ -n "${text_digest}" ] || { echo "shard-mine printed no digest"; exit 1; }
  [ "${text_digest}" = "${tkds_digest}" ] || {
    echo "digest mismatch: text=${text_digest} tkds=${tkds_digest}"; exit 1; }
  echo "scale gate passed: bench within budget, oracle green, CLI round" \
       "trip digest ${text_digest} invariant across formats and shard counts."
}

run_serve() {
  echo "== configure (asan) =="
  cmake --preset asan
  echo "== build (asan) =="
  cmake --build --preset asan -j
  echo "== serving-layer tests under ASan/UBSan =="
  ctest --test-dir build-asan --output-on-failure \
    -R "Serve|Http|Json|ParsePredictRequest|ServableModel|ModelRegistry|Executor|PredictionService|ThreadSafety|UniverseMismatch"

  echo "== HTTP smoke test against the real binary =="
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${tmp}'" RETURN
  build-asan/tools/topkrgs-generate --profile TINY --seed 9 \
    --train "${tmp}/train.tsv" --test "${tmp}/test.tsv" >/dev/null
  build-asan/tools/topkrgs-classify --train "${tmp}/train.tsv" \
    --test "${tmp}/test.tsv" --model rcbt --k 2 --nl 3 \
    --save-model "${tmp}/model.txt" \
    --save-discretization "${tmp}/disc.txt" >/dev/null
  build-asan/tools/topkrgs-serve --model "${tmp}/model.txt" \
    --discretization "${tmp}/disc.txt" --port 0 --workers 2 \
    --max-seconds 120 > "${tmp}/serve.log" &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 50); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${tmp}/serve.log")"
    [ -n "${port}" ] && break
    sleep 0.2
  done
  [ -n "${port}" ] || { echo "server never came up"; cat "${tmp}/serve.log"; exit 1; }
  python3 - "${port}" <<'PY'
import http.client, json, sys
port = int(sys.argv[1])

def req(method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    conn.request(method, path, body=body)
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, data

status, data = req("GET", "/healthz")
assert status == 200 and data == b"ok\n", (status, data)
row = [0.0] * 512  # >= min_genes for the TINY model, all finite
status, data = req("POST", "/v1/predict", json.dumps({"rows": [row]}))
assert status == 200, (status, data)
predictions = json.loads(data)["predictions"]
assert len(predictions) == 1 and "label" in predictions[0], data
status, data = req("GET", "/metrics")
assert status == 200 and b"topkrgs_requests_total 1" in data, data
status, data = req("POST", "/v1/predict", "{not json")
assert status == 400, (status, data)
print("smoke test OK: healthz, predict, metrics, malformed-request 400")
PY
  kill -TERM "${serve_pid}"
  wait "${serve_pid}"
  grep -q "shut down cleanly" "${tmp}/serve.log" \
    || { echo "server did not shut down cleanly"; cat "${tmp}/serve.log"; exit 1; }

  echo "== load-generator bench (release preset) =="
  cmake --preset release >/dev/null
  cmake --build --preset release -j --target bench_serve_qps
  (cd bench && ../build-release/bench/bench_serve_qps BENCH_serve.json)
  echo "serve gate passed: tests green under ASan, HTTP smoke OK, bench refreshed."
}

case "${STAGE}" in
  lint) run_lint ;;
  astlint) run_astlint ;;
  analyze) run_analyze ;;
  coverage) run_coverage ;;
  ubsan) run_ubsan ;;
  intsan) run_intsan ;;
  tsan) run_tsan "${2:-TopkParallel|ThreadSafety|WorkStealDeque}" ;;
  fuzz) run_fuzz ;;
  simd) run_simd ;;
  scale) run_scale ;;
  serve) run_serve ;;
  all)
    run_lint
    run_astlint
    run_analyze
    run_tsan "${2:-TopkParallel|ThreadSafety|WorkStealDeque}"
    run_ubsan
    run_intsan
    run_fuzz
    run_simd
    run_scale
    run_serve
    run_coverage
    ;;
  *)
    # Back-compat: a bare ctest pattern as $1 runs the tsan stage with it.
    run_tsan "${STAGE}"
    ;;
esac

echo "CI gate passed."
