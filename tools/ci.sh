#!/usr/bin/env bash
# CI gate with two stages:
#
#   tsan  — build the ThreadSanitizer preset and run the parallel-miner
#           determinism tests under it. The parallel MineTopkRGS promises
#           bit-for-bit identical results for any thread count; this stage
#           is the race detector backing that promise — run it before
#           merging anything that touches src/mine/ or src/util/arena.h.
#
#   fuzz  — build the fuzz preset (ASan+UBSan, plus libFuzzer when the
#           compiler is clang) and replay the committed seed + regression
#           corpus through every ingestion fuzz target. Every malformed
#           corpus file must come back as a non-OK Status with no abort and
#           no sanitizer report. When clang is available the stage also
#           runs each libFuzzer target for a short time-boxed exploration.
#
# Usage: tools/ci.sh [tsan|fuzz|all] [extra ctest -R pattern]

set -euo pipefail
cd "$(dirname "$0")/.."

STAGE="${1:-all}"
FUZZ_SECONDS="${FUZZ_SECONDS:-60}"

run_tsan() {
  local pattern="${1:-TopkParallel}"
  echo "== configure (tsan) =="
  cmake --preset tsan
  echo "== build (tsan) =="
  cmake --build --preset tsan -j
  echo "== determinism tests under ThreadSanitizer (-R ${pattern}) =="
  ctest --test-dir build-tsan -R "${pattern}" --output-on-failure
  echo "tsan gate passed: no data races, results thread-count invariant."
}

run_fuzz() {
  echo "== configure (fuzz) =="
  cmake --preset fuzz
  echo "== build (fuzz) =="
  cmake --build --preset fuzz -j
  echo "== corpus replay under ASan/UBSan =="
  ctest --test-dir build-fuzz -R "FuzzReplay|CorpusReplay" --output-on-failure

  # Coverage-guided exploration needs the libFuzzer runtime (clang only);
  # with gcc the replay above is the whole stage.
  if grep -q "TOPKRGS_HAS_LIBFUZZER:INTERNAL=1" build-fuzz/CMakeCache.txt 2>/dev/null; then
    echo "== time-boxed libFuzzer runs (${FUZZ_SECONDS}s per target) =="
    for target in discretization cba_model rcbt_model tsv_dataset item_dataset; do
      echo "-- fuzz_${target}"
      "build-fuzz/tests/fuzz/fuzz_${target}" \
        -max_total_time="${FUZZ_SECONDS}" -rss_limit_mb=2048 \
        "tests/fuzz/seeds/${target}" "tests/fuzz/regressions/${target}"
    done
  else
    echo "(libFuzzer runtime unavailable — corpus replay only)"
  fi
  echo "fuzz gate passed: corpus parses to Status, no crashes, no sanitizer reports."
}

case "${STAGE}" in
  tsan) run_tsan "${2:-TopkParallel}" ;;
  fuzz) run_fuzz ;;
  all)
    run_tsan "${2:-TopkParallel}"
    run_fuzz
    ;;
  *)
    # Back-compat: a bare ctest pattern as $1 runs the tsan stage with it.
    run_tsan "${STAGE}"
    ;;
esac

echo "CI gate passed."
