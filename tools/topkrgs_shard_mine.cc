// Thin main() for the topkrgs-shard-mine tool; the logic lives in
// cli/commands.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const topkrgs::Status status = topkrgs::RunShardMineCommand(args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return topkrgs::ExitCodeForStatus(status);
}
