#!/usr/bin/env python3
"""Self-tests for the bench-record gates (redundancy, RSS, coverage).

The gates guard CI on committed bench artifacts, so a silent bug in a
gate (a rule that stopped firing, a vacuous pass) fails open — exactly
the failure mode a gate exists to prevent. This driver exercises each
gate's pure core against the fixture records in testdata/gates/
(pass / fail / vacuous for the two bench gates; synthetic stats for the
coverage floor check) and, for the two file-driven gates, the CLI
end to end via subprocess so the exit-code contract stays honest.

stdlib unittest only — the container has no pytest, and the gate
runner (tools/ci.sh lint, tools/lint/run_all.py) must work everywhere
the repo builds.

Usage: tools/lint/gate_selftest.py [-v]
"""

import json
import os
import subprocess
import sys
import unittest

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
GATES_DIR = os.path.join(LINT_DIR, "testdata", "gates")
sys.path.insert(0, LINT_DIR)

import coverage_gate  # noqa: E402
import redundancy_gate  # noqa: E402
import rss_gate  # noqa: E402


def load(name):
    with open(os.path.join(GATES_DIR, name), encoding="utf-8") as f:
        return json.load(f)


def run_cli(script, fixture):
    return subprocess.run(
        [sys.executable, os.path.join(LINT_DIR, script),
         os.path.join(GATES_DIR, fixture)],
        capture_output=True, text=True, check=False)


class RedundancyGateTest(unittest.TestCase):
    def test_pass_fixture_is_clean(self):
        failures, skipped, ok_lines, gated = redundancy_gate.evaluate(
            load("redundancy_pass.json"), "redundancy_pass.json")
        self.assertEqual(failures, [])
        self.assertEqual(skipped, [])
        self.assertEqual(gated, 2)  # the two 8-thread records
        self.assertEqual(len(ok_lines), 2)
        self.assertIn("ratio 1.040", ok_lines[0])

    def test_fail_fixture_trips_every_rule(self):
        failures, _, ok_lines, gated = redundancy_gate.evaluate(
            load("redundancy_fail.json"), "redundancy_fail.json")
        self.assertEqual(gated, 2)
        # Over-ceiling ratio, missing schema fields on the 4-thread
        # record, and deterministic=false must each produce a failure.
        self.assertTrue(any("1.310 > ceiling" in f for f in failures))
        self.assertTrue(any("missing field 'redundant_work_ratio'" in f
                            for f in failures))
        self.assertTrue(any("deterministic=false" in f for f in failures))
        self.assertEqual(len(failures), 3)
        # The compliant record still reports ok even in a failing run.
        self.assertEqual(len(ok_lines), 1)

    def test_timed_out_records_make_the_gate_vacuous(self):
        failures, skipped, _, gated = redundancy_gate.evaluate(
            load("redundancy_vacuous.json"), "redundancy_vacuous.json")
        self.assertEqual(gated, 0)
        self.assertEqual(len(skipped), 1)
        self.assertTrue(any("vacuous" in f for f in failures))

    def test_cli_exit_codes(self):
        self.assertEqual(
            run_cli("redundancy_gate.py", "redundancy_pass.json").returncode,
            0)
        proc = run_cli("redundancy_gate.py", "redundancy_fail.json")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("redundancy gate FAILED", proc.stdout)


class RssGateTest(unittest.TestCase):
    def test_pass_fixture_is_clean(self):
        failures, skipped, ok_lines, gated = rss_gate.evaluate(
            load("rss_pass.json"), "rss_pass.json")
        self.assertEqual(failures, [])
        self.assertEqual(skipped, [])
        self.assertEqual(gated, 1)  # non-mine records are ignored
        self.assertEqual(len(ok_lines), 1)
        self.assertIn("within budget", ok_lines[0])

    def test_fail_fixture_trips_every_rule(self):
        failures, _, _, gated = rss_gate.evaluate(
            load("rss_fail.json"), "rss_fail.json")
        self.assertEqual(gated, 3)  # the schema-less record never gates
        self.assertTrue(any("peak RSS" in f and "> memory budget" in f
                            for f in failures))
        self.assertTrue(any("out-of-core claim is vacuous" in f
                            for f in failures))
        self.assertTrue(any("deterministic=false" in f for f in failures))
        self.assertTrue(any("missing field(s)" in f for f in failures))
        self.assertEqual(len(failures), 4)

    def test_timed_out_records_make_the_gate_vacuous(self):
        failures, skipped, _, gated = rss_gate.evaluate(
            load("rss_vacuous.json"), "rss_vacuous.json")
        self.assertEqual(gated, 0)
        self.assertEqual(len(skipped), 1)
        self.assertTrue(any("vacuous" in f for f in failures))

    def test_cli_exit_codes(self):
        self.assertEqual(
            run_cli("rss_gate.py", "rss_pass.json").returncode, 0)
        proc = run_cli("rss_gate.py", "rss_fail.json")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("rss gate FAILED", proc.stdout)


class CoverageGateTest(unittest.TestCase):
    def test_per_directory_unions_and_rolls_up(self):
        stats = coverage_gate.per_directory({
            "src/mine/topk_miner.cc": {10: True, 11: True, 12: False},
            "src/mine/projection.h": {5: True},
            "src/util/bitset.cc": {1: False, 2: False},
        })
        self.assertEqual(stats["src/mine"][:2], (3, 4))
        self.assertAlmostEqual(stats["src/mine"][2], 75.0)
        self.assertEqual(stats["src/util"], (0, 2, 0.0))

    def test_floors_met(self):
        failed, report, notes = coverage_gate.check_floors(
            {"src/mine": (90, 100, 90.0), "src/extra": (1, 2, 50.0)},
            {"src/mine": 85.0})
        self.assertEqual(failed, [])
        self.assertEqual(len(report), 1)
        self.assertTrue(report[0].startswith("ok "))
        # Unfloored directories are noted, never gated.
        self.assertEqual(len(notes), 1)
        self.assertIn("src/extra", notes[0])

    def test_floor_violation_and_missing_stats(self):
        failed, report, _ = coverage_gate.check_floors(
            {"src/mine": (10, 100, 10.0)},
            {"src/mine": 85.0, "src/serve": 50.0})
        # Below floor AND a floored directory with no coverage data at
        # all both fail — a deleted directory must not pass its floor.
        self.assertEqual(failed, ["src/mine", "src/serve"])
        self.assertTrue(all(line.startswith("LOW") for line in report))


if __name__ == "__main__":
    unittest.main()
