"""Shared plumbing for the tools/lint analyzers.

Every in-house lint (cast_lint.py, determinism_lint.py, astlint.py) and
the include checker grew the same four mechanisms independently; this
module is the single home for them:

  * Finding / fingerprinting — a finding is keyed by
    `path:check:sha1(path|check|normalized-code-line)[:12]`, so it
    survives unrelated line-number churn but goes stale when the flagged
    code itself changes.
  * code/comment splitting — a line scanner that separates code from //
    and /* */ comments and skips string literals, so a hazard spelled
    inside a message string never matches and a NOLINT inside code never
    suppresses.
  * NOLINT-with-justification parsing — `// NOLINT(<tag>: <why>)` on the
    flagged line or in the contiguous comment block directly above it.
    The justification is mandatory; tools turn a bare NOLINT(<tag>) into
    a nolint-needs-justification finding via the shared emitter.
  * shrink-only baselines — baselined findings park PRE-EXISTING debt;
    new findings always fail, fixed findings make their entry stale
    (also a failure) until removed, and zero-baseline directories refuse
    entries outright.
  * EXPECT-FINDING self-tests — fixtures annotate the exact (line,
    check) pairs the analyzer must produce; the harness fails on both
    missing and unexpected findings.

Behavioral contract: the fingerprint format and the NOLINT block-walk
are shared verbatim from the original implementations — existing
baselines must keep verifying unchanged.
"""

import hashlib
import os
import re

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

EXPECT_RE = re.compile(r"EXPECT-FINDING:\s*([\w,-]+)")


class Finding:
    def __init__(self, path, line_number, check, message, code_line):
        self.path = path  # repo-relative
        self.line_number = line_number
        self.check = check
        self.message = message
        self.code_line = code_line

    def fingerprint(self):
        normalized = re.sub(r"\s+", " ", self.code_line.strip())
        digest = hashlib.sha1(
            f"{self.path}|{self.check}|{normalized}".encode()).hexdigest()
        return f"{self.path}:{self.check}:{digest[:12]}"

    def render(self):
        return (f"{self.path}:{self.line_number}: [{self.check}] "
                f"{self.message}\n    {self.code_line.strip()}")


def split_code_comment(line, in_block_comment):
    """Returns (code, comment, in_block_comment_after).

    Good enough for lint purposes: handles // and /* */ and skips string
    literals so e.g. a "rand(" inside a message never matches.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    in_string = None  # quote char when inside a literal
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if c == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            comment.append(c)
            i += 1
            continue
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in ("\"", "'"):
            in_string = c
            code.append(c)
            i += 1
            continue
        if c == "/" and nxt == "/":
            comment.append(line[i + 2:])
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        code.append(c)
        i += 1
    return "".join(code), "".join(comment), in_block_comment


def strip_comments_and_strings(text):
    """Whole-text variant used where per-line indices are not needed
    (check_includes.py symbol scans)."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    text = re.sub(r'"(\\.|[^"\\])*"', '""', text)
    return text


class FileAnalysis:
    """Per-file pass: code/comment split plus the NOLINT map for one
    suppression tag ("cast", "determinism", "hotpath", ...)."""

    def __init__(self, path, text, nolint_tag):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = []
        self.comment_lines = []
        in_block = False
        for raw in self.raw_lines:
            code, comment, in_block = split_code_comment(raw, in_block)
            self.code_lines.append(code)
            self.comment_lines.append(comment)
        self.nolint_re = re.compile(
            r"NOLINT\(" + re.escape(nolint_tag) + r"(?::\s*(.*?))?\)",
            re.DOTALL)

    def nolint_for(self, line_index):
        """NOLINT(<tag>...) match covering raw_lines[line_index]: same
        line, or anywhere in the contiguous comment block above. The
        block is joined before matching so a justification may wrap over
        several comment lines."""
        block = [self.comment_lines[line_index]]
        i = line_index - 1
        while i >= 0 and self.code_lines[i].strip() == "" and (
                self.comment_lines[i] != "" or self.raw_lines[i].strip() == ""):
            block.append(self.comment_lines[i])
            i -= 1
        return self.nolint_re.search("\n".join(reversed(block)))


def make_emitter(fa, findings, tag, justification_hint):
    """Standard emit(idx, check, message): respects the NOLINT escape
    hatch but converts a bare (justification-free) NOLINT into its own
    nolint-needs-justification finding."""
    def emit(idx, check, message):
        nolint = fa.nolint_for(idx)
        if nolint is not None:
            if nolint.group(1) is None or not nolint.group(1).strip():
                findings.append(Finding(
                    fa.path, idx + 1, "nolint-needs-justification",
                    f"NOLINT({tag}) requires a justification: "
                    f"NOLINT({tag}: {justification_hint})",
                    fa.raw_lines[idx]))
            return
        findings.append(Finding(fa.path, idx + 1, check, message,
                                fa.raw_lines[idx]))
    return emit


def zone_files(root, zones, exts=(".cc", ".h", ".cpp", ".hpp")):
    out = []
    for zone in zones:
        zone_dir = os.path.join(root, zone)
        for dirpath, _, filenames in os.walk(zone_dir):
            for name in sorted(filenames):
                if name.endswith(exts):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_baseline(path, findings, header_lines, zero_baseline_dirs=()):
    """Rewrites a baseline file. Findings inside zero_baseline_dirs are
    refused (those zones must stay clean, not parked)."""
    kept = findings
    if zero_baseline_dirs:
        kept = [f2 for f2 in findings
                if not f2.path.startswith(tuple(zero_baseline_dirs))]
        dropped = len(findings) - len(kept)
        if dropped:
            print(f"refusing to baseline {dropped} finding(s) in "
                  f"zero-baseline dirs ({', '.join(zero_baseline_dirs)}) — "
                  "fix or NOLINT them")
    with open(path, "w", encoding="utf-8") as f:
        for line in header_lines:
            f.write("# " + line + "\n")
        for finding in sorted(f2.fingerprint() for f2 in kept):
            f.write(finding + "\n")


def diff_against_baseline(findings, baseline):
    """Returns (new_findings, stale_entries, suppressed_count)."""
    current = {f2.fingerprint(): f2 for f2 in findings}
    new = [f2 for fp, f2 in sorted(current.items()) if fp not in baseline]
    stale = sorted(baseline - set(current))
    return new, stale, len(current) - len(new)


def expected_findings(text):
    """(line, check) pairs from the fixture's EXPECT-FINDING markers."""
    expected = set()
    for idx, line in enumerate(text.splitlines()):
        m = EXPECT_RE.search(line)
        if m:
            for check in m.group(1).split(","):
                expected.add((idx + 1, check.strip()))
    return expected


def run_expect_self_test(fixture_path, analyze_fn, label):
    """Runs analyze_fn(repo_rel_path, text, findings) over the fixture
    and diffs the produced (line, check) pairs against its EXPECT-FINDING
    annotations. Returns a process exit code."""
    if not os.path.exists(fixture_path):
        print(f"self-test fixture missing: {fixture_path}")
        return 1
    with open(fixture_path, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(fixture_path, REPO_ROOT)
    findings = []
    analyze_fn(rel, text, findings)
    found = {(f2.line_number, f2.check) for f2 in findings}
    expected = expected_findings(text)
    ok = True
    for missing in sorted(expected - found):
        print(f"self-test FAIL: expected finding not produced: "
              f"{rel}:{missing[0]} [{missing[1]}]")
        ok = False
    for extra in sorted(found - expected):
        print(f"self-test FAIL: unexpected finding: "
              f"{rel}:{extra[0]} [{extra[1]}]")
        ok = False
    if ok:
        print(f"{label} self-test OK: {len(expected)} expected "
              f"findings produced, no extras, NOLINT escape respected")
        return 0
    return 1
