#!/usr/bin/env python3
"""Per-directory line-coverage floor gate (tools/ci.sh `coverage` stage).

Reads the .gcda/.gcno data a `coverage` preset build + ctest run leaves
behind, aggregates executed-line counts per source file with
`gcov --json-format --stdout` (no gcovr dependency), unions the results
across translation units, and enforces the per-directory floors in
tools/lint/coverage_floors.json.

Coverage of a directory is the union over every TU that instrumented a
file in it: a line counts as covered if ANY test executed it. Floors are
seeded from a real measurement (--seed writes measured-minus-slack
values) so the gate starts honest and only ratchets up by hand.
src/mine/, src/serve/ and src/util/ must always carry a floor — the
miner is the paper's core claim, the serving layer is the embeddable
surface, and src/util/ holds the set-algebra kernels and row-set
containers every miner result depends on.

When gcov is not on PATH the gate prints an explicit skip notice and
exits 0 (same degradation convention as the other gates). A missing or
gcda-less build directory is an ERROR, not a skip: it means the stage
forgot to build/run the coverage preset first.

Exit code 0 = floors met or skipped, 1 = floor violated, 2 = usage.
"""

import argparse
import glob
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FLOORS_PATH = os.path.join(REPO_ROOT, "tools/lint/coverage_floors.json")
REQUIRED_DIRS = ("src/mine", "src/scale", "src/serve", "src/util")
SEED_SLACK_POINTS = 2.0  # seeded floor = measured - slack, so the gate
                         # tolerates minor drift without hand-editing


def gcov_json(gcda, build_dir):
    """One gcov JSON document per .gcda, run from the build dir so the
    relative source paths in the output resolve against it."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", "--branch-probabilities", gcda],
        cwd=build_dir, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        print(f"coverage gate: gcov failed on {gcda}:\n{proc.stderr}",
              file=sys.stderr)
        sys.exit(2)
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            docs.append(json.loads(line))
    return docs


def collect(build_dir):
    """{repo-relative source path: {line_number: executed_bool}} unioned
    over every TU that instrumented the file."""
    gcdas = glob.glob(os.path.join(build_dir, "**", "*.gcda"), recursive=True)
    if not gcdas:
        print(f"coverage gate: no .gcda files under {build_dir} — build the "
              "coverage preset and run ctest there first", file=sys.stderr)
        sys.exit(2)
    lines_by_file = {}
    for gcda in gcdas:
        for doc in gcov_json(gcda, build_dir):
            for f in doc.get("files", []):
                src = f["file"]
                if not os.path.isabs(src):
                    src = os.path.normpath(os.path.join(build_dir, src))
                rel = os.path.relpath(src, REPO_ROOT)
                if not rel.startswith("src" + os.sep):
                    continue
                per_line = lines_by_file.setdefault(rel, {})
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    per_line[n] = per_line.get(n, False) or ln["count"] > 0
    return lines_by_file


def per_directory(lines_by_file):
    """{directory: (covered, total, percent)} for every src/ subdir that
    holds instrumented files; files directly in src/ roll into 'src'."""
    stats = {}
    for rel, per_line in lines_by_file.items():
        d = os.path.dirname(rel).replace(os.sep, "/")
        covered, total = stats.get(d, (0, 0))
        covered += sum(1 for hit in per_line.values() if hit)
        total += len(per_line)
        stats[d] = (covered, total)
    return {d: (c, t, 100.0 * c / t if t else 0.0)
            for d, (c, t) in stats.items()}


def check_floors(stats, floors):
    """Pure floor check: stats from per_directory, floors from the JSON.

    Returns (failed, report_lines, note_lines) — the directories below
    floor, the per-floor "ok/LOW" report in sorted order, and the
    unfloored-directory notes. tools/lint/gate_selftest.py drives this
    directly with synthetic inputs.
    """
    failed = []
    report_lines = []
    for d, floor in sorted(floors.items()):
        covered, total, pct = stats.get(d, (0, 0, 0.0))
        ok = pct >= floor
        mark = "ok " if ok else "LOW"
        report_lines.append(
            f"{mark} {d}: {pct:5.1f}% ({covered}/{total} lines), "
            f"floor {floor}")
        if not ok:
            failed.append(d)
    note_lines = []
    for d in sorted(set(stats) - set(floors)):
        _, _, pct = stats[d]
        note_lines.append(
            f"note: {d} at {pct:.1f}% has no floor yet (add one to ratchet)")
    return failed, report_lines, note_lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(
        REPO_ROOT, "build-coverage"),
        help="coverage-preset build tree (default: build-coverage/)")
    parser.add_argument("--seed", action="store_true",
                        help="write coverage_floors.json from this "
                             "measurement (measured minus slack)")
    args = parser.parse_args()

    if not shutil.which("gcov"):
        print("(gcov not on PATH — coverage gate skipped; line-coverage "
              "floors were NOT checked on this machine)")
        return 0

    stats = per_directory(collect(args.build_dir))

    if args.seed:
        floors = {d: max(0.0, round(pct - SEED_SLACK_POINTS, 1))
                  for d, (_, _, pct) in sorted(stats.items())}
        for d in REQUIRED_DIRS:
            if d not in floors:
                print(f"coverage gate: required directory {d} produced no "
                      "coverage data; refusing to seed", file=sys.stderr)
                return 2
        with open(FLOORS_PATH, "w", encoding="utf-8") as f:
            json.dump(floors, f, indent=2, sort_keys=True)
            f.write("\n")
        for d, (c, t, pct) in sorted(stats.items()):
            print(f"{d}: {pct:5.1f}% ({c}/{t} lines) -> floor {floors[d]}")
        print(f"coverage floors seeded to {os.path.relpath(FLOORS_PATH, REPO_ROOT)}")
        return 0

    if not os.path.exists(FLOORS_PATH):
        print(f"coverage gate: {FLOORS_PATH} missing — run with --seed after "
              "a coverage build", file=sys.stderr)
        return 2
    with open(FLOORS_PATH, encoding="utf-8") as f:
        floors = json.load(f)
    for d in REQUIRED_DIRS:
        if d not in floors:
            print(f"coverage gate: {d} has no floor in coverage_floors.json; "
                  "it must stay covered", file=sys.stderr)
            return 1

    failed, report_lines, note_lines = check_floors(stats, floors)
    for line in report_lines:
        print(line)
    for line in note_lines:
        print(line)
    if failed:
        print(f"coverage gate: {len(failed)} director"
              f"{'y' if len(failed) == 1 else 'ies'} below floor: "
              + ", ".join(failed))
        return 1
    print(f"coverage gate passed: {len(floors)} directory floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
