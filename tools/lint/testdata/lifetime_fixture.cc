// Deliberately-dangling fixture for the clang lifetime gate in
// tools/ci.sh (run_lint).
//
// This file is NEVER compiled into any target and MUST NOT compile
// cleanly: every statement below binds a view, reference, or pointer to
// an owner that dies at the end of the full-expression. The gate
// compiles it with
//
//   clang++ -std=c++20 -fsyntax-only -Isrc \
//       -Werror=dangling -Werror=dangling-gsl \
//       tools/lint/testdata/lifetime_fixture.cc
//
// and REQUIRES failure — if this file ever compiles, the
// TKRGS_LIFETIME_BOUND / TKRGS_GSL_OWNER / TKRGS_GSL_POINTER
// annotations in util/safe_math.h (and their placement on the APIs
// below) have stopped doing their job. Under gcc the annotations expand
// to nothing, so the gate is clang-gated with a skip notice.
#include <string>
#include <vector>

#include "scale/stream_reader.h"
#include "serve/http.h"
#include "serve/json.h"

namespace topkrgs {

// Declarations only — -fsyntax-only never links, so no definitions are
// needed to make the dangling initializations below analyzable.
StreamedTable MakeTable();
JsonValue MakeJson();
HttpRequest MakeRequest();

inline void DanglingTransposedView() {
  // StreamedTable is TKRGS_GSL_OWNER and TransposedView is
  // TKRGS_GSL_POINTER; View() is TKRGS_LIFETIME_BOUND. The temporary
  // table — and the CSR arrays the view aliases — is gone before the
  // first use of `view`.
  TransposedView view = MakeTable().View();  // expected: -Wdangling-gsl
  (void)view.num_rows;
}

inline void DanglingLabels() {
  // labels() is TKRGS_LIFETIME_BOUND: the reference aliases storage of a
  // temporary owner that dies at the end of the full-expression.
  const std::vector<ClassLabel>& labels = MakeTable().labels();  // expected: -Wdangling
  (void)labels;
}

inline void DanglingJsonString() {
  // str() is TKRGS_LIFETIME_BOUND: the reference outlives the temporary
  // JsonValue whose storage it aliases.
  const std::string& s = MakeJson().str();  // expected: -Wdangling
  (void)s;
}

inline void DanglingHeaderPointer() {
  // FindHeader() is TKRGS_LIFETIME_BOUND: the pointer aliases the
  // temporary request's header vector.
  const std::string* ct = MakeRequest().FindHeader("content-type");  // expected: -Wdangling
  (void)ct;
}

}  // namespace topkrgs
