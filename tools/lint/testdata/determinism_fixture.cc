// Intentional-hazard fixture for `determinism_lint.py --self-test`.
//
// This file is NEVER compiled into any target: it exists so the CI lint
// stage can prove the determinism gate still catches every hazard class
// it promises to — an intentionally introduced unordered_map→output
// iteration (and friends) must fail the gate. Each hazard line carries an
// `EXPECT-FINDING:` annotation naming every check that must fire on it;
// the self-test fails on any missing OR any extra finding, so the fixture
// also pins that clean code (the control section at the bottom) stays
// clean and that a justified NOLINT actually suppresses.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unistd.h>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Group {
  int id;
};

// --- unordered containers leaking bucket order into ordered output ------

inline std::vector<int> CollapseCounts() {
  std::unordered_map<int, int> counts;  // EXPECT-FINDING: unordered-container
  counts[1] = 2;
  std::vector<int> ordered;
  for (const auto& [key, value] : counts) {  // EXPECT-FINDING: unordered-iteration
    ordered.push_back(value);
  }
  auto it = counts.begin();  // EXPECT-FINDING: unordered-iteration
  (void)it;
  return ordered;
}

// --- pointer-valued keys ------------------------------------------------

inline void PointerKeys(const std::vector<Group>& groups) {
  std::unordered_set<const Group*> seen;  // EXPECT-FINDING: unordered-container,pointer-key
  std::map<Group*, int> rank_by_ptr;  // EXPECT-FINDING: pointer-key
  (void)groups;
  (void)seen;
  (void)rank_by_ptr;
}

// --- ambient entropy sources --------------------------------------------

inline unsigned EntropySources() {
  std::random_device rd;  // EXPECT-FINDING: entropy-source
  unsigned mix = rd();
  mix ^= static_cast<unsigned>(rand());  // EXPECT-FINDING: entropy-source
  mix ^= static_cast<unsigned>(std::time(nullptr));  // EXPECT-FINDING: entropy-source
  auto wall = std::chrono::system_clock::now();  // EXPECT-FINDING: entropy-source
  (void)wall;
  mix ^= static_cast<unsigned>(getpid());  // EXPECT-FINDING: entropy-source
  return mix;
}

// --- unordered floating-point reductions --------------------------------

inline double FpReduction(const std::vector<double>& values) {
  std::atomic<double> total{0.0};  // EXPECT-FINDING: fp-reduction
  for (double v : values) total.store(total.load() + v);
  return total.load();
}

// --- the NOLINT escape hatch --------------------------------------------

struct JustifiedIndex {
  // A justification suppresses the finding (this line must NOT appear in
  // the self-test expectations):
  // NOLINT(determinism: lookup-only membership index, probed via find()
  // and never iterated; cannot order anything)
  std::unordered_map<int, int> lookup_only_;

  std::unordered_map<int, int> unjustified_;  // NOLINT(determinism) EXPECT-FINDING: nolint-needs-justification
};

// --- control section: deterministic equivalents stay clean --------------

inline std::vector<int> CleanCollapse() {
  std::map<int, int> keyed_counts;  // ordered: iteration order is key order
  keyed_counts[1] = 2;
  std::vector<int> ordered;
  for (const auto& [key, value] : keyed_counts) {
    ordered.push_back(value);
  }
  return ordered;
}

}  // namespace fixture
