// Hot-path purity CLEAN fixture for tools/lint/astlint.py --self-test.
// NEVER COMPILED: the mirror image of hotpath_fixture.cc — annotated hot
// roots whose entire reachable region is pure, plus the shapes the
// analyzer must NOT flag: word-level set algebra, a lock at a sanctioned
// rank, a cold allocator that no hot root reaches, elision-friendly
// prvalue initialization, and a justified NOLINT block. The self-test
// requires exactly zero findings here.

#include "util/hot_path.h"

namespace lint_fixture_clean {

class Bitset {
 public:
  unsigned long long word(int i) const { return words_[i]; }

 private:
  unsigned long long words_[4];
};

struct Mutex {
  Mutex(int rank, const char* label) {}
};
struct MutexLock {
  explicit MutexLock(Mutex& mu) {}
};

class Counter {
 public:
  TKRGS_HOT unsigned long long HotCount(const Bitset& a,
                                        const Bitset& b) const {
    unsigned long long total = 0;
    for (int w = 0; w < 4; ++w) {
      total += Popcount(a.word(w) & b.word(w));
    }
    return total;
  }

  TKRGS_HOT void HotStripe(unsigned long long v) {
    MutexLock lock(stripe_mu_);
    last_ = v;
  }

  TKRGS_HOT void HotEmit(unsigned long long v) {
    // Emission is bounded by k results per run and sits outside the
    // per-node inner loop, so the amortized growth is sanctioned.
    // NOLINT(hotpath: O(k) emissions per run, outside the per-node loop)
    out_.push_back(v);
  }

  // Cold: allocates freely, but no TKRGS_HOT root reaches it.
  void ColdReserve() { out_.reserve(1024); }

 private:
  static unsigned long long Popcount(unsigned long long w) {
    unsigned long long n = 0;
    while (w != 0) {
      w &= w - 1;
      ++n;
    }
    return n;
  }

  Mutex stripe_mu_{lock_rank::kMinerTopkStripe, "Counter::stripe_mu_"};
  std::vector<unsigned long long> out_;
  unsigned long long last_ = 0;
};

}  // namespace lint_fixture_clean
