// Intentional-hazard fixture for `cast_lint.py --self-test`.
//
// This file is NEVER compiled into any target: it exists so the CI lint
// stage can prove the cast gate still catches every hazard class it
// promises to — an intentionally introduced unchecked narrowing must
// fail the gate. Each hazard line carries an `EXPECT-FINDING:`
// annotation naming every check that must fire on it; the self-test
// fails on any missing OR any extra finding, so the fixture also pins
// that clean code (the control section at the bottom) stays clean and
// that a justified NOLINT actually suppresses.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

using ItemId = uint32_t;
using ClassLabel = uint8_t;

// --- unchecked static_cast narrowing ------------------------------------

inline uint32_t NarrowingCasts(const std::vector<uint64_t>& values) {
  uint32_t total = static_cast<uint32_t>(values.size());  // EXPECT-FINDING: narrowing-cast
  ItemId first = static_cast<ItemId>(values[0]);  // EXPECT-FINDING: narrowing-cast
  ClassLabel label = static_cast<ClassLabel>(values[1]);  // EXPECT-FINDING: narrowing-cast
  int delta = static_cast<int>(values[2] - values[3]);  // EXPECT-FINDING: narrowing-cast
  unsigned bits = static_cast<unsigned>(values[4]);  // EXPECT-FINDING: narrowing-cast
  return total + first + label + static_cast<uint32_t>(delta) + bits;  // EXPECT-FINDING: narrowing-cast
}

// --- C-style integer casts ----------------------------------------------

inline int CStyleCasts(uint64_t wide, size_t count) {
  int a = (int)wide;  // EXPECT-FINDING: c-cast
  uint32_t b = (uint32_t)count;  // EXPECT-FINDING: c-cast
  return a + static_cast<int>(b);  // EXPECT-FINDING: narrowing-cast
}

// --- signed loop variable vs .size() ------------------------------------

inline int SignedSizeCompare(const std::vector<int>& values) {
  int total = 0;
  for (int i = 0; i < values.size(); ++i) {  // EXPECT-FINDING: signed-size-compare
    total += values[i];
  }
  return total;
}

// --- the NOLINT escape hatch --------------------------------------------

inline uint32_t JustifiedCasts(const std::vector<uint64_t>& values,
                               uint32_t num_items) {
  // A justification naming the bound suppresses the finding (this line
  // must NOT appear in the self-test expectations):
  // NOLINT(cast: values.size() <= num_items, a uint32 by construction)
  const uint32_t bounded = static_cast<uint32_t>(values.size());
  (void)num_items;
  uint32_t bare = static_cast<uint32_t>(values[0]);  // NOLINT(cast) EXPECT-FINDING: nolint-needs-justification
  return bounded + bare;
}

// --- control section: checked/widening equivalents stay clean -----------

inline uint64_t CleanConversions(uint32_t narrow, ClassLabel label,
                                 const std::vector<int>& values) {
  uint64_t widened = uint64_t{narrow};    // brace-init cannot narrow
  uint32_t promoted = uint32_t{label} + 1;  // uint8 -> uint32 is widening
  uint64_t wide_cast = static_cast<uint64_t>(narrow);  // 64-bit target
  double ratio = static_cast<double>(narrow) / 2.0;    // float target
  uint64_t total = 0;
  for (size_t i = 0; i < values.size(); ++i) {  // unsigned index
    total += static_cast<uint64_t>(values[i]);
  }
  // "(int)inside a string literal" and sizeof(uint32_t) are not casts.
  const char* msg = "(int)inside a string literal";
  (void)msg;
  return widened + promoted + wide_cast + static_cast<uint64_t>(ratio) +
         sizeof(uint32_t) + total;
}

}  // namespace fixture
