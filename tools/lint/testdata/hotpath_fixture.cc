// Hot-path purity hazard fixture for tools/lint/astlint.py --self-test.
// NEVER COMPILED: this file exists so the gate can demonstrate, on every
// run, that it still catches each hazard class transitively through the
// call graph, honors the justified-NOLINT escape, and ignores identical
// hazards in cold code. Every hazard line carries an inline
// EXPECT-FINDING marker naming the check(s) the analyzer must produce
// for that exact line; the self-test fails on both missing and
// unexpected findings.

#include "util/hot_path.h"

namespace lint_fixture {

// Stub expensive types — astlint matches them by name.
class Bitset {
 public:
  Bitset() {}
  void Set(unsigned i) { words_[i >> 6] |= 1ull << (i & 63u); }

 private:
  unsigned long long words_[4];
};

class RowSet {
 public:
  unsigned Count() const { return count_; }

 private:
  unsigned count_;
};

// Stub ranked-mutex surface; rank values come from the real
// src/util/lock_ranks.h table.
struct Mutex {
  Mutex(int rank, const char* label) {}
};
struct MutexLock {
  explicit MutexLock(Mutex& mu) {}
};

struct Status {
  static Status Invalid(const char* m) { return Status(); }
};

class Sink {
 public:
  // Cold twin: the same hazards as HotLoop, reachable from no TKRGS_HOT
  // root, must produce nothing.
  void ColdPrepare() {
    scratch_ = new unsigned[64];
    ids_.push_back(7);
    MutexLock lock(reg_mu_);
  }

  TKRGS_HOT void HotLoop(const RowSet& rows, Bitset items) {  // EXPECT-FINDING: hot-copy
    unsigned* p = new unsigned[8];  // EXPECT-FINDING: hot-alloc
    ids_.push_back(3);              // EXPECT-FINDING: hot-alloc
    MutexLock bad(reg_mu_);         // EXPECT-FINDING: hot-lock
    MutexLock good(deque_mu_);
    std::this_thread::yield();      // EXPECT-FINDING: hot-blocking
    RowSet copy = cached_;          // EXPECT-FINDING: hot-alloc,hot-copy
    Helper();
    Justified();  // NOLINT(hotpath: warm-up outside the timed region)
    Unjustified();  // NOLINT(hotpath)  EXPECT-FINDING: nolint-needs-justification
    (void)p;
    (void)rows;
    (void)items;
  }

  TKRGS_HOT Status HotValidate(unsigned n) {
    if (n > 7u) {
      return Status::Invalid("bad " + std::to_string(n));  // EXPECT-FINDING: hot-status-format
    }
    throw 42;  // EXPECT-FINDING: hot-status-format
  }

  TKRGS_HOT RowSet HotBuild() {
    RowSet local;
    return std::move(local);  // EXPECT-FINDING: hot-copy
  }

  // Reached only through HotLoop: the finding lands here, in the callee,
  // proving the walk is transitive rather than per-function.
  void Helper() {
    buffer_.reserve(128);  // EXPECT-FINDING: hot-alloc
  }

  // The justified call-site NOLINT in HotLoop prunes this whole chain.
  void Justified() { tmp_.push_back(0); }

  // The bare call-site NOLINT also prunes (the bare marker itself is the
  // failure, reported where it appears).
  void Unjustified() { tmp_.push_back(1); }

 private:
  Mutex reg_mu_{lock_rank::kModelRegistry, "Sink::reg_mu_"};
  Mutex deque_mu_{lock_rank::kMinerWorkDeque, "Sink::deque_mu_"};
  std::vector<unsigned> ids_;
  std::vector<unsigned> buffer_;
  std::vector<unsigned> tmp_;
  RowSet cached_;
  unsigned* scratch_ = nullptr;
};

// Hot DECLARATION in the class, definition out of line: the annotation
// must carry from the prototype to the definition's body.
class Forward {
 public:
  TKRGS_HOT void Run();

 private:
  std::vector<int> q_;
};

void Forward::Run() {
  q_.push_back(9);  // EXPECT-FINDING: hot-alloc
}

}  // namespace lint_fixture
