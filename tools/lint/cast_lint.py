#!/usr/bin/env python3
"""Cast lint: unchecked integer narrowing in the integer-safety zones.

Sizes, offsets and counts flow from untrusted inputs (dataset files, CLI
flags, network payloads) into uint32 id spaces and CSR offset arithmetic.
DESIGN.md §15 requires that every narrowing conversion either go through
util/safe_math.h (CheckedCast/CheckedAdd/CheckedMul, which surface
overflow as a Status) or carry an explicit justification naming the bound
that makes the raw cast safe. Inside the zone (all of src/) this lint
flags:

  narrowing-cast        static_cast to a <=32-bit integer type (ItemId,
                        RowId, GeneId, ClassLabel, u/int8/16/32, int,
                        unsigned, short) — the compiler is silent when the
                        value does not fit, so a 2^32-row dataset wraps
                        into colliding ids instead of an error. Use
                        CheckedCast<T>, a non-narrowing brace-init
                        (uint32_t{x}), or justify the bound (see below).
  c-cast                C-style cast to an integer type: it narrows like
                        static_cast but can also silently strip cv/
                        reinterpret — there is no reason to write one in
                        this codebase.
  signed-size-compare   a signed loop variable compared against .size():
                        the usual arithmetic conversions turn -1 into
                        SIZE_MAX, flipping the comparison. (The -Werror
                        build catches most of these; the lint keeps them
                        out of non-default build configs too.)

Escape hatch: a `// NOLINT(cast: <bound justification>)` on the flagged
line or in the contiguous comment block directly above it suppresses the
finding. The justification is mandatory — a bare NOLINT(cast) is itself
a finding (nolint-needs-justification) — and should name the invariant
that bounds the value (e.g. "ForEach yields bit positions < num_items,
a uint32").

Baseline: findings may be parked in tools/lint/cast_baseline.txt, which
MUST ONLY SHRINK — a baselined finding that disappears makes the stale
entry an error until it is removed, and new findings are never
auto-baselined. Run with --update-baseline after fixing to shrink it.
src/serve and src/synth carry NO baseline entries (burned to zero); new
findings there fail outright.

Self-test: --self-test runs the analyzer over
tools/lint/testdata/cast_fixture.cc and checks the findings against the
fixture's inline `EXPECT-FINDING:` annotations, so the gate demonstrably
still catches an intentionally introduced narrowing hazard.

Exit code 0 = clean (or skip), 1 = findings/stale baseline, 2 = usage.
"""

import argparse
import hashlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/cast_baseline.txt")
FIXTURE_PATH = os.path.join(REPO_ROOT, "tools/lint/testdata/cast_fixture.cc")

CAST_ZONES = ("src/",)

# The sanctioned wrapper itself: CheckedCast's single range-checked
# static_cast lives here, and the whole point is that it is the one place
# allowed to narrow.
CAST_ALLOWLIST = ("src/util/safe_math.h",)

# Directories whose baseline was burned to zero: a finding here is always
# new (never auto-parked), so the clean state cannot silently regress.
ZERO_BASELINE_DIRS = ("src/serve/", "src/synth/")

# <=32-bit integer destinations. Wider targets (int64/uint64/size_t/
# double) are widening on every supported platform and are not flagged.
NARROW_TYPES = (
    r"(?:ItemId|RowId|GeneId|ClassLabel"
    r"|u?int(?:8|16|32)_t"
    r"|unsigned(?:\s+(?:int|short|char))?"
    r"|(?:signed\s+|unsigned\s+)?short(?:\s+int)?"
    r"|signed\s+char|unsigned\s+char"
    r"|int)"
)
NARROWING_CAST_RE = re.compile(
    r"\bstatic_cast\s*<\s*(?:const\s+)?" + NARROW_TYPES + r"\s*>")
# A C-style integer cast: `(uint32_t)x`. The lookbehind rejects
# `foo(int x)` parameter lists (preceded by an identifier) and
# `sizeof(uint32_t)`; the trailing class requires an operand.
C_CAST_RE = re.compile(
    r"(?<![\w)])\(\s*(?:const\s+)?" + NARROW_TYPES + r"\s*\)\s*[\w(~!&*+-]")
SIGNED_SIZE_RE = re.compile(
    r"for\s*\(\s*(?:int|int32_t|int64_t|long|ssize_t|ptrdiff_t)\s+\w+\s*=[^;]*;"
    r"[^;]*[<>]=?\s*[\w.>-]*\bsize\s*\(\s*\)")
NOLINT_RE = re.compile(r"NOLINT\(cast(?::\s*(.*?))?\)", re.DOTALL)
EXPECT_RE = re.compile(r"EXPECT-FINDING:\s*([\w,-]+)")


class Finding:
    def __init__(self, path, line_number, check, message, code_line):
        self.path = path  # repo-relative
        self.line_number = line_number
        self.check = check
        self.message = message
        self.code_line = code_line

    def fingerprint(self):
        normalized = re.sub(r"\s+", " ", self.code_line.strip())
        digest = hashlib.sha1(
            f"{self.path}|{self.check}|{normalized}".encode()).hexdigest()
        return f"{self.path}:{self.check}:{digest[:12]}"

    def render(self):
        return (f"{self.path}:{self.line_number}: [{self.check}] "
                f"{self.message}\n    {self.code_line.strip()}")


def split_code_comment(line, in_block_comment):
    """Returns (code, comment, in_block_comment_after).

    Good enough for lint purposes: handles // and /* */ and skips string
    literals so e.g. a "(int)" inside a message never matches.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    in_string = None  # quote char when inside a literal
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if c == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            comment.append(c)
            i += 1
            continue
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in ("\"", "'"):
            in_string = c
            code.append(c)
            i += 1
            continue
        if c == "/" and nxt == "/":
            comment.append(line[i + 2:])
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        code.append(c)
        i += 1
    return "".join(code), "".join(comment), in_block_comment


class FileAnalysis:
    """Per-file pass: code/comment split plus the NOLINT map."""

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = []
        self.comment_lines = []
        in_block = False
        for raw in self.raw_lines:
            code, comment, in_block = split_code_comment(raw, in_block)
            self.code_lines.append(code)
            self.comment_lines.append(comment)

    def nolint_for(self, line_index):
        """NOLINT(cast...) match covering raw_lines[line_index]: same
        line, or anywhere in the contiguous comment block above. The
        block is joined before matching so a justification may wrap over
        several comment lines."""
        block = [self.comment_lines[line_index]]
        i = line_index - 1
        while i >= 0 and self.code_lines[i].strip() == "" and (
                self.comment_lines[i] != "" or self.raw_lines[i].strip() == ""):
            block.append(self.comment_lines[i])
            i -= 1
        return NOLINT_RE.search("\n".join(reversed(block)))


def analyze_file(repo_path, text, findings):
    if repo_path in CAST_ALLOWLIST:
        return
    fa = FileAnalysis(repo_path, text)

    def emit(idx, check, message):
        nolint = fa.nolint_for(idx)
        if nolint is not None:
            if nolint.group(1) is None or not nolint.group(1).strip():
                findings.append(Finding(
                    repo_path, idx + 1, "nolint-needs-justification",
                    "NOLINT(cast) requires a justification: "
                    "NOLINT(cast: <the bound that makes this safe>)",
                    fa.raw_lines[idx]))
            return
        findings.append(Finding(repo_path, idx + 1, check, message,
                                fa.raw_lines[idx]))

    for idx, code in enumerate(fa.code_lines):
        stripped = code.strip()
        if stripped.startswith("#"):
            continue  # includes/macros are not conversions themselves
        if NARROWING_CAST_RE.search(code):
            emit(idx, "narrowing-cast",
                 "unchecked narrowing to a <=32-bit integer type: use "
                 "CheckedCast<T>(value, what) from util/safe_math.h (cold "
                 "path), a non-narrowing brace-init like uint32_t{x} "
                 "(widening), or justify the bound with "
                 "// NOLINT(cast: ...) (hot path)")
        if C_CAST_RE.search(code):
            emit(idx, "c-cast",
                 "C-style integer cast: narrows silently and can strip "
                 "cv/reinterpret in one token; use CheckedCast<T> or an "
                 "explicit static_cast under a NOLINT(cast: ...) bound")
        if SIGNED_SIZE_RE.search(code):
            emit(idx, "signed-size-compare",
                 "signed loop variable compared against .size(): the "
                 "usual arithmetic conversions make -1 compare as "
                 "SIZE_MAX; loop over an unsigned index or compare "
                 "against a checked-signed bound")


def zone_files(root):
    out = []
    for zone in CAST_ZONES:
        zone_dir = os.path.join(root, zone)
        for dirpath, _, filenames in os.walk(zone_dir):
            for name in sorted(filenames):
                if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_baseline(path, findings):
    kept = [f2 for f2 in findings
            if not f2.path.startswith(ZERO_BASELINE_DIRS)]
    dropped = len(findings) - len(kept)
    if dropped:
        print(f"refusing to baseline {dropped} finding(s) in zero-baseline "
              f"dirs ({', '.join(ZERO_BASELINE_DIRS)}) — fix or NOLINT them")
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Cast-lint baseline (tools/lint/cast_lint.py).\n")
        f.write("# This file must only shrink: entries park PRE-EXISTING\n")
        f.write("# findings; new hazards fail the gate outright, and fixed\n")
        f.write("# ones make their entry stale (also an error) until removed.\n")
        f.write("# src/serve and src/synth are zero-baseline zones: no entry\n")
        f.write("# may name them.\n")
        for finding in sorted(f2.fingerprint() for f2 in kept):
            f.write(finding + "\n")


def run_self_test():
    if not os.path.exists(FIXTURE_PATH):
        print(f"self-test fixture missing: {FIXTURE_PATH}")
        return 1
    with open(FIXTURE_PATH, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(FIXTURE_PATH, REPO_ROOT)
    findings = []
    analyze_file(rel, text, findings)
    found = {(f2.line_number, f2.check) for f2 in findings}
    expected = set()
    for idx, line in enumerate(text.splitlines()):
        m = EXPECT_RE.search(line)
        if m:
            for check in m.group(1).split(","):
                expected.add((idx + 1, check.strip()))
    ok = True
    for missing in sorted(expected - found):
        print(f"self-test FAIL: expected finding not produced: "
              f"{rel}:{missing[0]} [{missing[1]}]")
        ok = False
    for extra in sorted(found - expected):
        print(f"self-test FAIL: unexpected finding: "
              f"{rel}:{extra[0]} [{extra[1]}]")
        ok = False
    if ok:
        print(f"cast-lint self-test OK: {len(expected)} expected "
              f"findings produced, no extras, NOLINT escape respected")
        return 0
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer against the checked-in "
                             "hazard fixture")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "(review the diff: it must only shrink)")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: all zones)")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    files = args.files or zone_files(REPO_ROOT)
    findings = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(full):
            print(f"warning: no such file {rel}")
            continue
        with open(full, encoding="utf-8") as f:
            analyze_file(rel, f.read(), findings)

    if args.update_baseline:
        write_baseline(BASELINE_PATH, findings)
        print(f"baseline rewritten")
        return 0

    baseline = load_baseline(BASELINE_PATH)
    for entry in sorted(baseline):
        if entry.startswith(ZERO_BASELINE_DIRS):
            print(f"cast lint: baseline entry in a zero-baseline dir "
                  f"(src/serve, src/synth must stay clean): {entry}")
            return 1
    current = {f2.fingerprint(): f2 for f2 in findings}
    new = [f2 for fp, f2 in sorted(current.items()) if fp not in baseline]
    stale = sorted(baseline - set(current))

    failed = False
    if new:
        failed = True
        print(f"cast lint: {len(new)} new finding(s) in the integer-safety "
              "zone (src/):")
        for f2 in new:
            print(f2.render())
        print("\nRoute the conversion through util/safe_math.h, or justify "
              "it in place with // NOLINT(cast: <the bound that makes this "
              "safe>).")
    if stale:
        failed = True
        print(f"cast lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (the baseline must only "
              "shrink — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if not failed:
        suppressed = len(current) - len(new)
        print(f"cast lint clean: {len(files)} zone files, "
              f"{suppressed} baselined finding(s), 0 new, 0 stale")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
