#!/usr/bin/env python3
"""Cast lint: unchecked integer narrowing in the integer-safety zones.

Sizes, offsets and counts flow from untrusted inputs (dataset files, CLI
flags, network payloads) into uint32 id spaces and CSR offset arithmetic.
DESIGN.md §15 requires that every narrowing conversion either go through
util/safe_math.h (CheckedCast/CheckedAdd/CheckedMul, which surface
overflow as a Status) or carry an explicit justification naming the bound
that makes the raw cast safe. Inside the zone (all of src/) this lint
flags:

  narrowing-cast        static_cast to a <=32-bit integer type (ItemId,
                        RowId, GeneId, ClassLabel, u/int8/16/32, int,
                        unsigned, short) — the compiler is silent when the
                        value does not fit, so a 2^32-row dataset wraps
                        into colliding ids instead of an error. Use
                        CheckedCast<T>, a non-narrowing brace-init
                        (uint32_t{x}), or justify the bound (see below).
  c-cast                C-style cast to an integer type: it narrows like
                        static_cast but can also silently strip cv/
                        reinterpret — there is no reason to write one in
                        this codebase.
  signed-size-compare   a signed loop variable compared against .size():
                        the usual arithmetic conversions turn -1 into
                        SIZE_MAX, flipping the comparison. (The -Werror
                        build catches most of these; the lint keeps them
                        out of non-default build configs too.)

Escape hatch: a `// NOLINT(cast: <bound justification>)` on the flagged
line or in the contiguous comment block directly above it suppresses the
finding. The justification is mandatory — a bare NOLINT(cast) is itself
a finding (nolint-needs-justification) — and should name the invariant
that bounds the value (e.g. "ForEach yields bit positions < num_items,
a uint32").

Baseline: findings may be parked in tools/lint/cast_baseline.txt, which
MUST ONLY SHRINK — a baselined finding that disappears makes the stale
entry an error until it is removed, and new findings are never
auto-baselined. Run with --update-baseline after fixing to shrink it.
src/serve and src/synth carry NO baseline entries (burned to zero); new
findings there fail outright.

Self-test: --self-test runs the analyzer over
tools/lint/testdata/cast_fixture.cc and checks the findings against the
fixture's inline `EXPECT-FINDING:` annotations, so the gate demonstrably
still catches an intentionally introduced narrowing hazard.

Shared plumbing (fingerprints, NOLINT parsing, baseline policy,
self-test harness) lives in tools/lint/lintlib.py.

Exit code 0 = clean (or skip), 1 = findings/stale baseline, 2 = usage.
"""

import argparse
import os
import re
import sys

import lintlib
from lintlib import REPO_ROOT

BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/cast_baseline.txt")
FIXTURE_PATH = os.path.join(REPO_ROOT, "tools/lint/testdata/cast_fixture.cc")

CAST_ZONES = ("src/",)

# The sanctioned wrapper itself: CheckedCast's single range-checked
# static_cast lives here, and the whole point is that it is the one place
# allowed to narrow.
CAST_ALLOWLIST = ("src/util/safe_math.h",)

# Directories whose baseline was burned to zero: a finding here is always
# new (never auto-parked), so the clean state cannot silently regress.
ZERO_BASELINE_DIRS = ("src/serve/", "src/synth/")

# <=32-bit integer destinations. Wider targets (int64/uint64/size_t/
# double) are widening on every supported platform and are not flagged.
NARROW_TYPES = (
    r"(?:ItemId|RowId|GeneId|ClassLabel"
    r"|u?int(?:8|16|32)_t"
    r"|unsigned(?:\s+(?:int|short|char))?"
    r"|(?:signed\s+|unsigned\s+)?short(?:\s+int)?"
    r"|signed\s+char|unsigned\s+char"
    r"|int)"
)
NARROWING_CAST_RE = re.compile(
    r"\bstatic_cast\s*<\s*(?:const\s+)?" + NARROW_TYPES + r"\s*>")
# A C-style integer cast: `(uint32_t)x`. The lookbehind rejects
# `foo(int x)` parameter lists (preceded by an identifier) and
# `sizeof(uint32_t)`; the trailing class requires an operand.
C_CAST_RE = re.compile(
    r"(?<![\w)])\(\s*(?:const\s+)?" + NARROW_TYPES + r"\s*\)\s*[\w(~!&*+-]")
SIGNED_SIZE_RE = re.compile(
    r"for\s*\(\s*(?:int|int32_t|int64_t|long|ssize_t|ptrdiff_t)\s+\w+\s*=[^;]*;"
    r"[^;]*[<>]=?\s*[\w.>-]*\bsize\s*\(\s*\)")

BASELINE_HEADER = (
    "Cast-lint baseline (tools/lint/cast_lint.py).",
    "This file must only shrink: entries park PRE-EXISTING",
    "findings; new hazards fail the gate outright, and fixed",
    "ones make their entry stale (also an error) until removed.",
    "src/serve and src/synth are zero-baseline zones: no entry",
    "may name them.",
)


def analyze_file(repo_path, text, findings):
    if repo_path in CAST_ALLOWLIST:
        return
    fa = lintlib.FileAnalysis(repo_path, text, nolint_tag="cast")
    emit = lintlib.make_emitter(fa, findings, "cast",
                                "<the bound that makes this safe>")

    for idx, code in enumerate(fa.code_lines):
        stripped = code.strip()
        if stripped.startswith("#"):
            continue  # includes/macros are not conversions themselves
        if NARROWING_CAST_RE.search(code):
            emit(idx, "narrowing-cast",
                 "unchecked narrowing to a <=32-bit integer type: use "
                 "CheckedCast<T>(value, what) from util/safe_math.h (cold "
                 "path), a non-narrowing brace-init like uint32_t{x} "
                 "(widening), or justify the bound with "
                 "// NOLINT(cast: ...) (hot path)")
        if C_CAST_RE.search(code):
            emit(idx, "c-cast",
                 "C-style integer cast: narrows silently and can strip "
                 "cv/reinterpret in one token; use CheckedCast<T> or an "
                 "explicit static_cast under a NOLINT(cast: ...) bound")
        if SIGNED_SIZE_RE.search(code):
            emit(idx, "signed-size-compare",
                 "signed loop variable compared against .size(): the "
                 "usual arithmetic conversions make -1 compare as "
                 "SIZE_MAX; loop over an unsigned index or compare "
                 "against a checked-signed bound")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer against the checked-in "
                             "hazard fixture")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "(review the diff: it must only shrink)")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: all zones)")
    args = parser.parse_args()

    if args.self_test:
        return lintlib.run_expect_self_test(FIXTURE_PATH, analyze_file,
                                            "cast-lint")

    files = args.files or lintlib.zone_files(REPO_ROOT, CAST_ZONES)
    findings = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(full):
            print(f"warning: no such file {rel}")
            continue
        with open(full, encoding="utf-8") as f:
            analyze_file(rel, f.read(), findings)

    if args.update_baseline:
        lintlib.write_baseline(BASELINE_PATH, findings, BASELINE_HEADER,
                               ZERO_BASELINE_DIRS)
        print(f"baseline rewritten")
        return 0

    baseline = lintlib.load_baseline(BASELINE_PATH)
    for entry in sorted(baseline):
        if entry.startswith(ZERO_BASELINE_DIRS):
            print(f"cast lint: baseline entry in a zero-baseline dir "
                  f"(src/serve, src/synth must stay clean): {entry}")
            return 1
    new, stale, suppressed = lintlib.diff_against_baseline(findings, baseline)

    failed = False
    if new:
        failed = True
        print(f"cast lint: {len(new)} new finding(s) in the integer-safety "
              "zone (src/):")
        for f2 in new:
            print(f2.render())
        print("\nRoute the conversion through util/safe_math.h, or justify "
              "it in place with // NOLINT(cast: <the bound that makes this "
              "safe>).")
    if stale:
        failed = True
        print(f"cast lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (the baseline must only "
              "shrink — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if not failed:
        print(f"cast lint clean: {len(files)} zone files, "
              f"{suppressed} baselined finding(s), 0 new, 0 stale")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
