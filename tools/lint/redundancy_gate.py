#!/usr/bin/env python3
"""Redundant-work-ratio gate over the committed bench/BENCH_topk.json.

The parallel MineTopkRGS promises near-zero speculation overhead: the
total enumeration nodes an 8-thread run visits may exceed the serial
run's count by at most the ceiling below (work-stealing claim order and
epoch-refreshed thresholds keep speculative subtrees short-lived). This
gate regresses on that promise using the committed bench record, so a
scheduler change that silently reintroduces redundant search fails CI
even on a single-core runner where wall-clock speedup is unmeasurable.

Rules:
  * every record with threads > 1 must carry the redundant_work_ratio
    and oversubscribed fields (schema check);
  * every completed (timed_out == false) record with threads == 8 must
    have redundant_work_ratio <= CEILING;
  * timed-out records are skipped with a notice — they stop wherever the
    deadline lands, so their node count is not comparable;
  * completed records must have deterministic == true (the digest in the
    bench run matched the serial reference).

Usage: tools/lint/redundancy_gate.py [path/to/BENCH_topk.json]
"""

import json
import sys

CEILING = 1.15
GATED_THREADS = 8


def evaluate(records, path):
    """Applies the gate rules to already-parsed bench records.

    Pure: no I/O, no printing — tools/lint/gate_selftest.py drives this
    directly against fixture records. Returns (failures, skipped,
    ok_lines, gated): the failure messages, the timed-out record labels,
    the per-record "ok" report lines in record order, and the count of
    records the ceiling actually gated.
    """
    failures = []
    skipped = []
    ok_lines = []
    gated = 0
    for rec in records:
        where = "{}/{} k={} threads={}".format(
            rec.get("profile", "?"), rec.get("toggle", "?"),
            rec.get("k", "?"), rec.get("threads", "?"))
        threads = rec.get("threads", 0)
        if threads > 1:
            for field in ("redundant_work_ratio", "oversubscribed"):
                if field not in rec:
                    failures.append("{}: missing field {!r}".format(
                        where, field))
        if rec.get("timed_out", False):
            skipped.append(where)
            continue
        if not rec.get("deterministic", True):
            failures.append(
                "{}: deterministic=false on a completed run".format(where))
        if threads == GATED_THREADS:
            ratio = rec.get("redundant_work_ratio")
            if ratio is None:
                continue  # already reported as a missing field above
            gated += 1
            if ratio > CEILING:
                failures.append(
                    "{}: redundant_work_ratio {:.3f} > ceiling {:.2f}".format(
                        where, ratio, CEILING))
            else:
                ok_lines.append("  ok {}: ratio {:.3f}".format(where, ratio))

    if gated == 0:
        failures.append(
            "no completed {}-thread records found in {} — the gate is "
            "vacuous".format(GATED_THREADS, path))
    return failures, skipped, ok_lines, gated


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench/BENCH_topk.json"
    with open(path) as f:
        records = json.load(f)

    failures, skipped, ok_lines, gated = evaluate(records, path)
    for line in ok_lines:
        print(line)
    for where in skipped:
        print("  skipped (timed out): {}".format(where))
    if failures:
        print("redundancy gate FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("redundancy gate passed: {} eight-thread records within the "
          "{:.2f}x node-ratio ceiling.".format(gated, CEILING))
    return 0


if __name__ == "__main__":
    sys.exit(main())
