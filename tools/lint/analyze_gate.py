#!/usr/bin/env python3
"""Clang static-analyzer gate over src/ (tools/ci.sh `analyze` stage).

Runs `clang++ --analyze` (the same engine scan-build drives) on every
src/ translation unit listed in a compile_commands.json, and fails on
any analyzer warning that is not parked in the triaged suppression
baseline, tools/lint/analyze_baseline.txt.

Baseline entries are fingerprints of triaged findings — path, checker
and normalized message — NOT line numbers, so unrelated edits don't
churn them. New findings fail the gate; a stale entry (triaged finding
that no longer fires) is reported so the baseline can be shrunk, but is
not an error because analyzer versions legitimately differ between
machines. Refresh with --update-baseline after triage.

When no clang toolchain is on PATH the gate prints an explicit skip
notice and exits 0, matching the degradation convention of the other
lint sub-gates (DESIGN.md §11): CI logs must show which checks ran.

Exit code 0 = clean or skipped, 1 = unbaselined findings, 2 = usage.
"""

import argparse
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/analyze_baseline.txt")

# clang --analyze diagnostic lines:  path:line:col: warning: msg [checker]
DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+): warning: "
    r"(?P<msg>.*?)(?: \[(?P<checker>[\w.,-]+)\])?$")

# Flags that conflict with --analyze or name outputs; stripped from the
# recorded compile command (the next entry consumes the flag's argument).
STRIP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ"}
STRIP = {"-c", "-MD", "-MMD"}


def normalize_msg(msg):
    """Collapse quoted identifiers and numbers so renames inside a message
    (e.g. 'Value stored to <name>') don't invalidate a triaged entry."""
    msg = re.sub(r"'[^']*'", "'_'", msg)
    return re.sub(r"\b\d+\b", "N", msg)


def fingerprint(path, checker, msg):
    digest = hashlib.sha1(
        f"{path}|{checker}|{normalize_msg(msg)}".encode()).hexdigest()[:12]
    return f"{path}:{checker}:{digest}"


def load_compile_commands(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def analyze_args(entry):
    """Rewrite one compile_commands entry into a clang++ --analyze command."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = ["clang++", "--analyze", "--analyzer-output", "text"]
    skip_next = False
    for arg in argv[1:]:  # drop the recorded compiler
        if skip_next:
            skip_next = False
            continue
        if arg in STRIP_WITH_ARG:
            skip_next = True
            continue
        if arg in STRIP or arg.startswith("-W"):
            continue
        out.append(arg)
    return out


def source_rel(entry):
    src = entry["file"]
    if not os.path.isabs(src):
        src = os.path.normpath(os.path.join(entry["directory"], src))
    return os.path.relpath(src, REPO_ROOT)


def run_analyzer(compdb_path):
    """Returns {fingerprint: display_line} over all src/ TUs."""
    findings = {}
    entries = [e for e in load_compile_commands(compdb_path)
               if source_rel(e).startswith("src" + os.sep)]
    if not entries:
        print(f"analyze gate: no src/ entries in {compdb_path}", file=sys.stderr)
        sys.exit(2)
    for entry in entries:
        proc = subprocess.run(
            analyze_args(entry), cwd=entry["directory"],
            capture_output=True, text=True, check=False)
        for line in (proc.stdout + proc.stderr).splitlines():
            m = DIAG_RE.match(line.strip())
            if not m:
                continue
            rel = os.path.relpath(
                os.path.normpath(os.path.join(entry["directory"], m["path"])),
                REPO_ROOT)
            if not rel.startswith("src" + os.sep):
                continue  # headers outside the gated tree (gtest, system)
            checker = m["checker"] or "core"
            fp = fingerprint(rel, checker, m["msg"])
            findings.setdefault(
                fp, f"{rel}:{m['line']}: [{checker}] {m['msg']}")
    return findings, len(entries)


def load_baseline(path):
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as f:
        return {line.strip() for line in f
                if line.strip() and not line.startswith("#")}


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Clang static-analyzer suppression baseline\n")
        f.write("# (tools/lint/analyze_gate.py). Every entry is a TRIAGED\n")
        f.write("# finding judged not worth fixing; new findings fail the\n")
        f.write("# gate. Refresh with --update-baseline after triage.\n")
        for fp in sorted(findings):
            f.write(fp + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compdb", default=os.path.join(
        REPO_ROOT, "build-lint/compile_commands.json"),
        help="compile_commands.json to analyze (default: build-lint/)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current findings")
    args = parser.parse_args()

    if not shutil.which("clang++"):
        print("(clang++ not on PATH — static-analyzer gate skipped; src/ was"
              " NOT analyzed on this machine)")
        return 0
    if not os.path.exists(args.compdb):
        print(f"analyze gate: {args.compdb} not found — configure the lint "
              "preset first (cmake --preset lint)", file=sys.stderr)
        return 2

    findings, tu_count = run_analyzer(args.compdb)
    if args.update_baseline:
        write_baseline(BASELINE_PATH, findings)
        print(f"analyze baseline rewritten with {len(findings)} entries")
        return 0

    baseline = load_baseline(BASELINE_PATH)
    new = [line for fp, line in sorted(findings.items()) if fp not in baseline]
    stale = sorted(baseline - set(findings))
    for line in new:
        print(f"{line}  [NEW — triage, fix, or --update-baseline]")
    for fp in stale:
        print(f"note: stale baseline entry (no longer fires here): {fp}")
    if new:
        print(f"analyze gate: {len(new)} unbaselined finding(s) over "
              f"{tu_count} TUs")
        return 1
    print(f"analyze gate clean: {tu_count} TUs, "
          f"{len(findings)} baselined finding(s), 0 new")
    return 0


if __name__ == "__main__":
    sys.exit(main())
