#!/usr/bin/env python3
"""Determinism lint: nondeterminism hazards in deterministic zones.

The mining/classification result paths promise bit-for-bit reproducible
output for any thread count and any standard library (DESIGN.md §8/§12).
Example-based tests can only sample that promise; this lint statically
rejects the code shapes that break it. Inside the deterministic zones
(src/mine/, src/core/, src/classify/) it flags:

  unordered-container   declaring std::unordered_{map,set,multimap,multiset}
                        — hash-bucket order is free to differ between
                        libstdc++/libc++ and between hash seeds, so any
                        container whose iteration could reach an ordered
                        output or accumulation is a hazard. Lookup-only
                        indexes are fine: justify them (see below).
  unordered-iteration   iterating such a container (range-for / .begin());
                        the concrete leak the declaration check guards.
  pointer-key           associative containers keyed on (or sets of)
                        pointers, and pointer-comparing priority queues:
                        allocation addresses vary run to run, so pointer
                        order must never order results.
  entropy-source        std::random_device, rand()/srand(), wall-clock
                        reads (std::chrono clocks, time(), gettimeofday,
                        clock()) and getpid() — ambient entropy in a
                        result path. Clocks live behind util/timer.h
                        (Stopwatch/Deadline); randomness behind util/
                        random.h (Rng, explicit seed required).
  fp-reduction          unordered floating-point reductions:
                        std::atomic<float/double> accumulators and
                        parallel std::reduce/transform_reduce — FP
                        addition does not commute, so reduction order
                        must be fixed.

Escape hatch: a `// NOLINT(determinism: <justification>)` on the flagged
line or in the contiguous comment block directly above it suppresses the
finding. The justification is mandatory — a bare NOLINT(determinism) is
itself a finding (nolint-needs-justification).

Baseline: findings may be parked in tools/lint/determinism_baseline.txt,
which MUST ONLY SHRINK — a baselined finding that disappears makes the
stale entry an error until it is removed, and new findings are never
auto-baselined. Run with --update-baseline after fixing to shrink it.

compile_commands awareness: when a compile_commands.json is found (or
passed via --compile-commands), zone sources missing from it are
reported — un-built code in a deterministic zone is unverified code.

Self-test: --self-test runs the analyzer over
tools/lint/testdata/determinism_fixture.cc and checks the findings
against the fixture's inline `EXPECT-FINDING:` annotations, so the gate
demonstrably still catches an intentionally introduced hazard.

Exit code 0 = clean (or skip), 1 = findings/stale baseline, 2 = usage.
"""

import argparse
import hashlib
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/determinism_baseline.txt")
FIXTURE_PATH = os.path.join(REPO_ROOT, "tools/lint/testdata/determinism_fixture.cc")

DETERMINISTIC_ZONES = ("src/mine/", "src/core/", "src/classify/",
                       "src/scale/")

# Files allowed to touch clocks: the sanctioned wrappers themselves.
CLOCK_ALLOWLIST = ("src/util/timer.h",)

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_NAME_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+\s*\*")
POINTER_PQ_RE = re.compile(r"\bstd::priority_queue\s*<\s*(?:const\s+)?[\w:]+\s*\*")
ENTROPY_RES = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"(?<![\w:])s?rand\s*\("),
    re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
    re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"\bgetpid\s*\("),
]
FP_REDUCTION_RES = [
    re.compile(r"\bstd::atomic\s*<\s*(?:float|double|long\s+double)\s*>"),
    re.compile(r"\bstd::execution::par\w*\b"),
    re.compile(r"\bstd::(?:transform_)?reduce\s*\("),
]
NOLINT_RE = re.compile(r"NOLINT\(determinism(?::\s*(.*?))?\)", re.DOTALL)
EXPECT_RE = re.compile(r"EXPECT-FINDING:\s*([\w,-]+)")


class Finding:
    def __init__(self, path, line_number, check, message, code_line):
        self.path = path  # repo-relative
        self.line_number = line_number
        self.check = check
        self.message = message
        self.code_line = code_line

    def fingerprint(self):
        normalized = re.sub(r"\s+", " ", self.code_line.strip())
        digest = hashlib.sha1(
            f"{self.path}|{self.check}|{normalized}".encode()).hexdigest()
        return f"{self.path}:{self.check}:{digest[:12]}"

    def render(self):
        return (f"{self.path}:{self.line_number}: [{self.check}] "
                f"{self.message}\n    {self.code_line.strip()}")


def split_code_comment(line, in_block_comment):
    """Returns (code, comment, in_block_comment_after).

    Good enough for lint purposes: handles // and /* */ and skips string
    literals so e.g. a "rand(" inside a message never matches.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    in_string = None  # quote char when inside a literal
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if c == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            comment.append(c)
            i += 1
            continue
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in ("\"", "'"):
            in_string = c
            code.append(c)
            i += 1
            continue
        if c == "/" and nxt == "/":
            comment.append(line[i + 2:])
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        code.append(c)
        i += 1
    return "".join(code), "".join(comment), in_block_comment


class FileAnalysis:
    """Per-file pass: code/comment split, NOLINT map, unordered names."""

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = []
        self.comment_lines = []
        in_block = False
        for raw in self.raw_lines:
            code, comment, in_block = split_code_comment(raw, in_block)
            self.code_lines.append(code)
            self.comment_lines.append(comment)
        self.unordered_names = set()
        for code in self.code_lines:
            m = UNORDERED_NAME_RE.search(code)
            if m:
                self.unordered_names.add(m.group(1))

    def nolint_for(self, line_index):
        """NOLINT(determinism...) match covering raw_lines[line_index]:
        same line, or anywhere in the contiguous comment block above. The
        block is joined before matching so a justification may wrap over
        several comment lines."""
        block = [self.comment_lines[line_index]]
        i = line_index - 1
        while i >= 0 and self.code_lines[i].strip() == "" and (
                self.comment_lines[i] != "" or self.raw_lines[i].strip() == ""):
            block.append(self.comment_lines[i])
            i -= 1
        return NOLINT_RE.search("\n".join(reversed(block)))


def analyze_file(repo_path, text, findings):
    fa = FileAnalysis(repo_path, text)
    iteration_res = [
        re.compile(r"for\s*\(.*:\s*(?:\w+(?:\.|->))*" + re.escape(name) + r"\s*\)")
        for name in fa.unordered_names
    ] + [
        re.compile(r"\b" + re.escape(name) + r"\.(?:c|cr|r)?begin\s*\(")
        for name in fa.unordered_names
    ]

    def emit(idx, check, message):
        nolint = fa.nolint_for(idx)
        if nolint is not None:
            if nolint.group(1) is None or not nolint.group(1).strip():
                findings.append(Finding(
                    repo_path, idx + 1, "nolint-needs-justification",
                    "NOLINT(determinism) requires a justification: "
                    "NOLINT(determinism: <why this cannot leak order>)",
                    fa.raw_lines[idx]))
            return
        findings.append(Finding(repo_path, idx + 1, check, message,
                                fa.raw_lines[idx]))

    for idx, code in enumerate(fa.code_lines):
        stripped = code.strip()
        if stripped.startswith("#"):
            continue  # includes/macros are not hazards themselves
        if UNORDERED_DECL_RE.search(code):
            emit(idx, "unordered-container",
                 "unordered container in a deterministic zone: bucket order "
                 "is implementation- and seed-dependent; use an ordered "
                 "container, sort before emitting, or justify a lookup-only "
                 "index with NOLINT(determinism: ...)")
        for rx in iteration_res:
            if rx.search(code):
                emit(idx, "unordered-iteration",
                     "iterating an unordered container: bucket order must "
                     "never reach an ordered output or accumulation")
                break
        if POINTER_KEY_RE.search(code) or POINTER_PQ_RE.search(code):
            emit(idx, "pointer-key",
                 "pointer-keyed/ordered-by-pointer container: allocation "
                 "addresses differ run to run; key on a stable identity "
                 "instead")
        for rx in ENTROPY_RES:
            if rx.search(code):
                if repo_path in CLOCK_ALLOWLIST:
                    break
                emit(idx, "entropy-source",
                     "ambient entropy (random_device / wall clock / pid) in "
                     "a deterministic zone; use util/random.h Rng with an "
                     "explicit seed, or util/timer.h for the sanctioned "
                     "clock wrappers")
                break
        for rx in FP_REDUCTION_RES:
            if rx.search(code):
                emit(idx, "fp-reduction",
                     "unordered floating-point reduction: FP addition does "
                     "not commute, so the reduction order must be fixed "
                     "(sequential loop over a deterministically ordered "
                     "range)")
                break


def zone_files(root):
    out = []
    for zone in DETERMINISTIC_ZONES:
        zone_dir = os.path.join(root, zone)
        for dirpath, _, filenames in os.walk(zone_dir):
            for name in sorted(filenames):
                if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Determinism-lint baseline (tools/lint/determinism_lint.py).\n")
        f.write("# This file must only shrink: entries park PRE-EXISTING\n")
        f.write("# findings; new hazards fail the gate outright, and fixed\n")
        f.write("# ones make their entry stale (also an error) until removed.\n")
        for finding in sorted(f2.fingerprint() for f2 in findings):
            f.write(finding + "\n")


def check_compile_commands(args, files):
    path = args.compile_commands
    if path is None:
        for candidate in ("build-lint/compile_commands.json",
                          "build/compile_commands.json"):
            full = os.path.join(REPO_ROOT, candidate)
            if os.path.exists(full):
                path = full
                break
    if path is None or not os.path.exists(path):
        print("(no compile_commands.json found — zone coverage of the build "
              "graph not verified; configure the lint preset to enable)")
        return []
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    compiled = set()
    for entry in db:
        full = os.path.normpath(os.path.join(entry.get("directory", ""),
                                             entry["file"]))
        compiled.add(os.path.relpath(full, REPO_ROOT))
    missing = [f2 for f2 in files if f2.endswith((".cc", ".cpp"))
               and f2 not in compiled]
    for m in missing:
        print(f"warning: {m} is in a deterministic zone but absent from "
              f"{os.path.relpath(path, REPO_ROOT)} — un-built code is "
              "unverified code")
    return missing


def run_self_test():
    if not os.path.exists(FIXTURE_PATH):
        print(f"self-test fixture missing: {FIXTURE_PATH}")
        return 1
    with open(FIXTURE_PATH, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(FIXTURE_PATH, REPO_ROOT)
    findings = []
    analyze_file(rel, text, findings)
    found = {(f2.line_number, f2.check) for f2 in findings}
    expected = set()
    for idx, line in enumerate(text.splitlines()):
        m = EXPECT_RE.search(line)
        if m:
            for check in m.group(1).split(","):
                expected.add((idx + 1, check.strip()))
    ok = True
    for missing in sorted(expected - found):
        print(f"self-test FAIL: expected finding not produced: "
              f"{rel}:{missing[0]} [{missing[1]}]")
        ok = False
    for extra in sorted(found - expected):
        print(f"self-test FAIL: unexpected finding: "
              f"{rel}:{extra[0]} [{extra[1]}]")
        ok = False
    if ok:
        print(f"determinism-lint self-test OK: {len(expected)} expected "
              f"findings produced, no extras, NOLINT escape respected")
        return 0
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer against the checked-in "
                             "hazard fixture")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "(review the diff: it must only shrink)")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit compile_commands.json path")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: all zones)")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    files = args.files or zone_files(REPO_ROOT)
    findings = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(full):
            print(f"warning: no such file {rel}")
            continue
        with open(full, encoding="utf-8") as f:
            analyze_file(rel, f.read(), findings)

    check_compile_commands(args, files)

    if args.update_baseline:
        write_baseline(BASELINE_PATH, findings)
        print(f"baseline rewritten with {len(findings)} entries")
        return 0

    baseline = load_baseline(BASELINE_PATH)
    current = {f2.fingerprint(): f2 for f2 in findings}
    new = [f2 for fp, f2 in sorted(current.items()) if fp not in baseline]
    stale = sorted(baseline - set(current))

    failed = False
    if new:
        failed = True
        print(f"determinism lint: {len(new)} new finding(s) in deterministic "
              "zones (src/mine, src/core, src/classify, src/scale):")
        for f2 in new:
            print(f2.render())
        print("\nFix the hazard, or justify it in place with "
              "// NOLINT(determinism: <why this cannot leak order>).")
    if stale:
        failed = True
        print(f"determinism lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (the baseline must only "
              "shrink — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if not failed:
        suppressed = len(current) - len(new)
        print(f"determinism lint clean: {len(files)} zone files, "
              f"{suppressed} baselined finding(s), 0 new, 0 stale")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
