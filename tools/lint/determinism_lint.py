#!/usr/bin/env python3
"""Determinism lint: nondeterminism hazards in deterministic zones.

The mining/classification result paths promise bit-for-bit reproducible
output for any thread count and any standard library (DESIGN.md §8/§12).
Example-based tests can only sample that promise; this lint statically
rejects the code shapes that break it. Inside the deterministic zones
(src/mine/, src/core/, src/classify/) it flags:

  unordered-container   declaring std::unordered_{map,set,multimap,multiset}
                        — hash-bucket order is free to differ between
                        libstdc++/libc++ and between hash seeds, so any
                        container whose iteration could reach an ordered
                        output or accumulation is a hazard. Lookup-only
                        indexes are fine: justify them (see below).
  unordered-iteration   iterating such a container (range-for / .begin());
                        the concrete leak the declaration check guards.
  pointer-key           associative containers keyed on (or sets of)
                        pointers, and pointer-comparing priority queues:
                        allocation addresses vary run to run, so pointer
                        order must never order results.
  entropy-source        std::random_device, rand()/srand(), wall-clock
                        reads (std::chrono clocks, time(), gettimeofday,
                        clock()) and getpid() — ambient entropy in a
                        result path. Clocks live behind util/timer.h
                        (Stopwatch/Deadline); randomness behind util/
                        random.h (Rng, explicit seed required).
  fp-reduction          unordered floating-point reductions:
                        std::atomic<float/double> accumulators and
                        parallel std::reduce/transform_reduce — FP
                        addition does not commute, so reduction order
                        must be fixed.

Escape hatch: a `// NOLINT(determinism: <justification>)` on the flagged
line or in the contiguous comment block directly above it suppresses the
finding. The justification is mandatory — a bare NOLINT(determinism) is
itself a finding (nolint-needs-justification).

Baseline: findings may be parked in tools/lint/determinism_baseline.txt,
which MUST ONLY SHRINK — a baselined finding that disappears makes the
stale entry an error until it is removed, and new findings are never
auto-baselined. Run with --update-baseline after fixing to shrink it.

compile_commands awareness: when a compile_commands.json is found (or
passed via --compile-commands), zone sources missing from it are
reported — un-built code in a deterministic zone is unverified code.

Self-test: --self-test runs the analyzer over
tools/lint/testdata/determinism_fixture.cc and checks the findings
against the fixture's inline `EXPECT-FINDING:` annotations, so the gate
demonstrably still catches an intentionally introduced hazard.

Shared plumbing (fingerprints, NOLINT parsing, baseline policy,
self-test harness) lives in tools/lint/lintlib.py.

Exit code 0 = clean (or skip), 1 = findings/stale baseline, 2 = usage.
"""

import argparse
import json
import os
import re
import sys

import lintlib
from lintlib import REPO_ROOT

BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/determinism_baseline.txt")
FIXTURE_PATH = os.path.join(REPO_ROOT,
                            "tools/lint/testdata/determinism_fixture.cc")

DETERMINISTIC_ZONES = ("src/mine/", "src/core/", "src/classify/",
                       "src/scale/")

# Files allowed to touch clocks: the sanctioned wrappers themselves.
CLOCK_ALLOWLIST = ("src/util/timer.h",)

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_NAME_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+\s*\*")
POINTER_PQ_RE = re.compile(r"\bstd::priority_queue\s*<\s*(?:const\s+)?[\w:]+\s*\*")
ENTROPY_RES = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"(?<![\w:])s?rand\s*\("),
    re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
    re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"\bgetpid\s*\("),
]
FP_REDUCTION_RES = [
    re.compile(r"\bstd::atomic\s*<\s*(?:float|double|long\s+double)\s*>"),
    re.compile(r"\bstd::execution::par\w*\b"),
    re.compile(r"\bstd::(?:transform_)?reduce\s*\("),
]

BASELINE_HEADER = (
    "Determinism-lint baseline (tools/lint/determinism_lint.py).",
    "This file must only shrink: entries park PRE-EXISTING",
    "findings; new hazards fail the gate outright, and fixed",
    "ones make their entry stale (also an error) until removed.",
)


def analyze_file(repo_path, text, findings):
    fa = lintlib.FileAnalysis(repo_path, text, nolint_tag="determinism")
    unordered_names = set()
    for code in fa.code_lines:
        m = UNORDERED_NAME_RE.search(code)
        if m:
            unordered_names.add(m.group(1))
    iteration_res = [
        re.compile(r"for\s*\(.*:\s*(?:\w+(?:\.|->))*" + re.escape(name) + r"\s*\)")
        for name in unordered_names
    ] + [
        re.compile(r"\b" + re.escape(name) + r"\.(?:c|cr|r)?begin\s*\(")
        for name in unordered_names
    ]
    emit = lintlib.make_emitter(fa, findings, "determinism",
                                "<why this cannot leak order>")

    for idx, code in enumerate(fa.code_lines):
        stripped = code.strip()
        if stripped.startswith("#"):
            continue  # includes/macros are not hazards themselves
        if UNORDERED_DECL_RE.search(code):
            emit(idx, "unordered-container",
                 "unordered container in a deterministic zone: bucket order "
                 "is implementation- and seed-dependent; use an ordered "
                 "container, sort before emitting, or justify a lookup-only "
                 "index with NOLINT(determinism: ...)")
        for rx in iteration_res:
            if rx.search(code):
                emit(idx, "unordered-iteration",
                     "iterating an unordered container: bucket order must "
                     "never reach an ordered output or accumulation")
                break
        if POINTER_KEY_RE.search(code) or POINTER_PQ_RE.search(code):
            emit(idx, "pointer-key",
                 "pointer-keyed/ordered-by-pointer container: allocation "
                 "addresses differ run to run; key on a stable identity "
                 "instead")
        for rx in ENTROPY_RES:
            if rx.search(code):
                if repo_path in CLOCK_ALLOWLIST:
                    break
                emit(idx, "entropy-source",
                     "ambient entropy (random_device / wall clock / pid) in "
                     "a deterministic zone; use util/random.h Rng with an "
                     "explicit seed, or util/timer.h for the sanctioned "
                     "clock wrappers")
                break
        for rx in FP_REDUCTION_RES:
            if rx.search(code):
                emit(idx, "fp-reduction",
                     "unordered floating-point reduction: FP addition does "
                     "not commute, so the reduction order must be fixed "
                     "(sequential loop over a deterministically ordered "
                     "range)")
                break


def check_compile_commands(args, files):
    path = args.compile_commands
    if path is None:
        for candidate in ("build-lint/compile_commands.json",
                          "build/compile_commands.json"):
            full = os.path.join(REPO_ROOT, candidate)
            if os.path.exists(full):
                path = full
                break
    if path is None or not os.path.exists(path):
        print("(no compile_commands.json found — zone coverage of the build "
              "graph not verified; configure the lint preset to enable)")
        return []
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    compiled = set()
    for entry in db:
        full = os.path.normpath(os.path.join(entry.get("directory", ""),
                                             entry["file"]))
        compiled.add(os.path.relpath(full, REPO_ROOT))
    missing = [f2 for f2 in files if f2.endswith((".cc", ".cpp"))
               and f2 not in compiled]
    for m in missing:
        print(f"warning: {m} is in a deterministic zone but absent from "
              f"{os.path.relpath(path, REPO_ROOT)} — un-built code is "
              "unverified code")
    return missing


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer against the checked-in "
                             "hazard fixture")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "(review the diff: it must only shrink)")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit compile_commands.json path")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: all zones)")
    args = parser.parse_args()

    if args.self_test:
        return lintlib.run_expect_self_test(FIXTURE_PATH, analyze_file,
                                            "determinism-lint")

    files = args.files or lintlib.zone_files(REPO_ROOT, DETERMINISTIC_ZONES)
    findings = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(full):
            print(f"warning: no such file {rel}")
            continue
        with open(full, encoding="utf-8") as f:
            analyze_file(rel, f.read(), findings)

    check_compile_commands(args, files)

    if args.update_baseline:
        lintlib.write_baseline(BASELINE_PATH, findings, BASELINE_HEADER)
        print(f"baseline rewritten with {len(findings)} entries")
        return 0

    baseline = lintlib.load_baseline(BASELINE_PATH)
    new, stale, suppressed = lintlib.diff_against_baseline(findings, baseline)

    failed = False
    if new:
        failed = True
        print(f"determinism lint: {len(new)} new finding(s) in deterministic "
              "zones (src/mine, src/core, src/classify, src/scale):")
        for f2 in new:
            print(f2.render())
        print("\nFix the hazard, or justify it in place with "
              "// NOLINT(determinism: <why this cannot leak order>).")
    if stale:
        failed = True
        print(f"determinism lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (the baseline must only "
              "shrink — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if not failed:
        print(f"determinism lint clean: {len(files)} zone files, "
              f"{suppressed} baselined finding(s), 0 new, 0 stale")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
