#!/usr/bin/env python3
"""IWYU-lite include checker for src/ (tools/ci.sh lint stage).

Full include-what-you-use needs a clang toolchain; this pass enforces the
subset of the contract that bites in practice, with zero dependencies:

  1. direct-include: a file using a std symbol must include that symbol's
     header itself, not inherit it transitively (the breakage mode: an
     unrelated refactor drops the transitive edge and an innocent file
     stops compiling).
  2. unused-include: a std header from the known map whose symbols never
     appear in the file is dead weight and hides real dependencies.
  3. include-guard convention: headers guard with TOPKRGS_<PATH>_H_.
  4. include style: project headers are quoted "dir/file.h" relative to
     src/ and must exist; std headers use <...>.

The symbol map is deliberately curated: every entry must be distinctive
enough to grep for (std::string but not std::string_view). Extending the
map is encouraged; weakening a finding belongs in the per-file allowlist
below with a justification, mirroring the NOLINT policy of DESIGN.md §11.

The comment/string stripper is shared with the other lints via
tools/lint/lintlib.py.
"""

import re
import sys
from pathlib import Path

from lintlib import strip_comments_and_strings

SRC = Path(__file__).resolve().parent.parent.parent / "src"

# header -> regexes proving the header is used. A file "uses" the header
# iff any regex matches outside comments/strings.
STD_HEADERS = {
    "algorithm": [r"std::(sort|stable_sort|max|min|max_element|min_element|"
                  r"find(_if)?|count(_if)?|transform|reverse|lower_bound|"
                  r"upper_bound|all_of|any_of|none_of|copy|fill|remove_if|"
                  r"unique|shuffle|nth_element|is_sorted|clamp|swap_ranges|"
                  r"partial_sort)\b"],
    "array": [r"std::array\b"],
    "atomic": [r"std::(atomic\b|memory_order_\w+|atomic_)"],
    "chrono": [r"std::chrono\b"],
    "condition_variable": [r"std::condition_variable\b"],
    "deque": [r"std::deque\b"],
    "functional": [r"std::(function\b|greater\b|less\b|hash\b|reference_wrapper)"],
    "future": [r"std::(future|promise|async|shared_future)\b"],
    "map": [r"std::(multi)?map\b"],
    "memory": [r"std::(unique_ptr|shared_ptr|weak_ptr|make_unique|"
               r"make_shared|enable_shared_from_this|addressof)\b"],
    "mutex": [r"std::(mutex|lock_guard|unique_lock|scoped_lock|call_once|"
              r"once_flag)\b"],
    "optional": [r"std::(optional|nullopt|make_optional)\b"],
    "queue": [r"std::(priority_queue|queue)\b"],
    "random": [r"std::(mt19937|uniform_int_distribution|"
               r"uniform_real_distribution|normal_distribution|"
               r"random_device)\b"],
    "set": [r"std::(multi)?set\b"],
    "shared_mutex": [r"std::(shared_mutex|shared_lock)\b"],
    "sstream": [r"std::[io]?stringstream\b"],
    "string": [r"std::(string\b(?!_view)|to_string\b|stoi\b|stod\b|getline\b)"],
    "string_view": [r"std::string_view\b"],
    "thread": [r"std::(thread\b|this_thread\b)"],
    "unordered_map": [r"std::unordered_(multi)?map\b"],
    "unordered_set": [r"std::unordered_(multi)?set\b"],
    "variant": [r"std::(variant|get_if|holds_alternative|visit)\b"],
    "vector": [r"std::vector\b"],
}

# Headers we verify in the "missing direct include" direction only:
# their symbols are unambiguous, but absence of a match is NOT evidence
# the include is unused (macros, integer literals suffixes, etc.).
MISSING_ONLY = {
    "cstdint": [r"\b(u?int(8|16|32|64)_t|uintptr_t|intptr_t)\b"],
    "cstddef": [r"\bstd::(size_t|ptrdiff_t|byte)\b"],
    "cmath": [r"std::(sqrt|log2?|exp|pow|fabs|floor|ceil|isnan|isinf|"
              r"isfinite|lround|round|abs)\b"],
    "cstring": [r"std::(memcpy|memset|memcmp|strlen|strcmp)\b"],
    "limits": [r"std::numeric_limits\b"],
    "utility": [r"std::(pair|make_pair|exchange|in_place)\b"],
    "tuple": [r"std::(tuple\b|make_tuple|tie\b)"],
    "bit": [r"std::(countr_zero|countl_zero|popcount|bit_cast|rotl|rotr)\b"],
    "iterator": [r"std::(back_inserter|distance|next|prev|advance)\b"],
    "numeric": [r"std::(accumulate|iota|reduce|inner_product)\b"],
    "fstream": [r"std::[io]?fstream\b"],
    "iostream": [r"std::(cout|cerr|cin|endl)\b"],
    "cstdio": [r"std::(printf|fprintf|snprintf|sscanf|fopen|fclose|"
               r"fgets|fputs|fwrite|fread|remove|rename|perror)\b"],
    "cstdlib": [r"std::(abort|exit|getenv|atoi|strtol|malloc|free|"
                r"system|rand)\b"],
}

# file (relative to src/) -> {header: reason}. The include stays even
# though no mapped symbol appears — same spirit as an inline NOLINT.
ALLOW_UNUSED = {
    # The umbrella header exists to re-export every public header.
    "topkrgs/topkrgs.h": {"*": "umbrella header re-exports by design"},
    # The TSA macro shim wraps these primitives; the wrapper types appear
    # as member declarations the symbol regexes do see, but keep the
    # intent explicit should the members ever become opaque.
    "util/thread_annotations.h": {},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<([^>]+)>|"([^"]+)")')


def guard_name(rel: Path) -> str:
    rel_str = str(rel)
    # The umbrella header topkrgs/topkrgs.h guards as TOPKRGS_TOPKRGS_H_,
    # not TOPKRGS_TOPKRGS_TOPKRGS_H_.
    if rel_str.startswith("topkrgs/"):
        rel_str = rel_str[len("topkrgs/"):]
    return "TOPKRGS_" + re.sub(r"[^A-Za-z0-9]", "_", rel_str).upper() + "_"


def check_file(path: Path):
    rel = path.relative_to(SRC)
    raw = path.read_text()
    body = strip_comments_and_strings(raw)
    problems = []
    allow = ALLOW_UNUSED.get(str(rel), {})

    std_includes, project_includes = set(), set()
    for line in raw.splitlines():
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if m.group(2):
            std_includes.add(m.group(2))
        else:
            project_includes.add(m.group(3))

    # 4. project includes resolve against src/ (gtest/bench externals are
    # angle-bracket includes, so everything quoted must be ours).
    for inc in sorted(project_includes):
        if not (SRC / inc).is_file() and inc != "test_util.h":
            problems.append(f'quoted include "{inc}" not found under src/')

    # 1. + 2. std symbol discipline.
    own_header = path.with_suffix(".h")
    header_includes = set()
    if path.suffix == ".cc" and own_header.is_file():
        # A .cc may rely on its own header's direct includes: the pair is
        # one unit of the IWYU contract here (keeps signatures and bodies
        # from double-listing every container of the interface).
        for line in own_header.read_text().splitlines():
            m = INCLUDE_RE.match(line)
            if m and m.group(2):
                header_includes.add(m.group(2))

    for header, patterns in {**STD_HEADERS, **MISSING_ONLY}.items():
        used = any(re.search(p, body) for p in patterns)
        direct = header in std_includes or header in header_includes
        if used and not direct:
            problems.append(f"uses symbols from <{header}> without including it")
        if (header in STD_HEADERS and header in std_includes and not used
                and "*" not in allow and header not in allow):
            problems.append(f"includes <{header}> but uses none of its symbols")

    # 3. include guard for headers.
    if path.suffix == ".h":
        expected = guard_name(rel)
        if f"#ifndef {expected}" not in raw or f"#define {expected}" not in raw:
            problems.append(f"include guard must be {expected}")

    return [(rel, p) for p in problems]


def main() -> int:
    failures = []
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc")):
        failures.extend(check_file(path))
    for rel, problem in failures:
        print(f"src/{rel}: {problem}")
    if failures:
        print(f"\ncheck_includes: {len(failures)} problem(s) in src/")
        return 1
    print("check_includes: src/ include discipline clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
