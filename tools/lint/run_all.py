#!/usr/bin/env python3
"""Orchestrator for every Python lint and gate (DESIGN.md §11–12, §16).

tools/ci.sh lint used to invoke each checker in an ad-hoc bash sequence;
this runner owns that list instead, so the stage stays one line of shell,
every check is wall-clock timed, and a failing check no longer hides the
ones after it: all checks run, the summary names each failure, and the
exit code is nonzero if any failed.

compile_commands.json discipline: the lint preset's export (build-lint/)
is configured at most once here and shared by every consumer — astlint
reads it directly, and the clang-tidy / analyze stages in tools/ci.sh
reuse the same build-lint/ tree rather than re-configuring.

Usage: tools/lint/run_all.py [--skip NAME ...] [--list]
"""

import argparse
import os
import subprocess
import sys
import time

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(LINT_DIR))
COMPILE_COMMANDS = os.path.join(REPO_ROOT, "build-lint",
                                "compile_commands.json")

def lint(script, *argv):
    return [sys.executable, os.path.join(LINT_DIR, script), *argv]


# (name, title, argv-builder). Self-tests run immediately before the
# gate they validate: a checker whose fixture no longer trips every
# check must not be trusted on the real tree.
CHECKS = (
    ("includes", "include discipline (check_includes.py)",
     lambda: lint("check_includes.py")),
    ("determinism-selftest", "determinism linter self-test",
     lambda: lint("determinism_lint.py", "--self-test")),
    ("determinism", "determinism lint over the deterministic zones",
     lambda: lint("determinism_lint.py")),
    ("cast-selftest", "cast linter self-test",
     lambda: lint("cast_lint.py", "--self-test")),
    ("cast", "cast lint over src/ (narrowing, C-casts, signed/size)",
     lambda: lint("cast_lint.py")),
    ("gate-selftest", "bench-gate self-tests (gate_selftest.py)",
     lambda: lint("gate_selftest.py")),
    ("redundancy", "redundant-work-ratio gate (redundancy_gate.py)",
     lambda: lint("redundancy_gate.py")),
    ("rss", "out-of-core RSS gate (rss_gate.py)",
     lambda: lint("rss_gate.py")),
    ("astlint-selftest", "astlint self-test (hot-path fixture pair)",
     lambda: lint("astlint.py", "--self-test")),
    ("astlint", "hot-path purity gate (astlint.py)",
     lambda: lint("astlint.py", "--compile-commands", COMPILE_COMMANDS)),
)


def ensure_compile_commands():
    """One lint-preset configure shared by astlint/clang-tidy/analyze."""
    if os.path.exists(COMPILE_COMMANDS):
        return
    print("== configure (lint preset, for compile_commands.json) ==")
    proc = subprocess.run(["cmake", "--preset", "lint"], cwd=REPO_ROOT,
                          capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        # astlint falls back to its internal frontend without the export,
        # so a configure failure degrades the analysis, not the run.
        print("(cmake --preset lint failed — compile_commands.json not "
              "exported; astlint will use its internal frontend)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip", action="append", default=[],
                        metavar="NAME", choices=[c[0] for c in CHECKS],
                        help="skip a named check (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list check names and exit")
    args = parser.parse_args()

    if args.list:
        for name, title, _ in CHECKS:
            print(f"{name}: {title}")
        return 0

    ensure_compile_commands()

    timings = []
    failed = []
    for name, title, build_argv in CHECKS:
        if name in args.skip:
            print(f"== {title} == (skipped by --skip)")
            continue
        print(f"== {title} ==")
        start = time.monotonic()
        proc = subprocess.run(build_argv(), cwd=REPO_ROOT, check=False)
        elapsed = time.monotonic() - start
        timings.append((name, elapsed, proc.returncode == 0))
        if proc.returncode != 0:
            failed.append(name)
            print(f"-- {name} FAILED (exit {proc.returncode}) --")

    print("\n== lint timing summary ==")
    for name, elapsed, ok in timings:
        print(f"  {'ok  ' if ok else 'FAIL'} {name:<22} {elapsed:7.2f}s")
    total = sum(t for _, t, _ in timings)
    print(f"       {'total':<22} {total:7.2f}s")
    if failed:
        print("lint suite FAILED: " + ", ".join(failed))
        return 1
    print(f"lint suite passed: {len(timings)} checks green.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
