#!/usr/bin/env python3
"""Out-of-core memory gate over the committed bench/BENCH_scale.json.

The sharded mining engine promises two things the bench record makes
checkable offline: a mine run's peak RSS stays inside the --memory-budget
the shard planner was given (the planner sized the shards to make that
true), and the sharded result is bit-identical to the single-shot miner
(the per-record digest matched the shard_count=1 baseline). This gate
regresses on both from the committed record, so a planner or merge change
that silently breaks the budget or the determinism contract fails CI even
on a runner too small to rerun the full 100k-row profile.

Rules:
  * every mine record must carry peak_rss_kb, memory_budget_bytes,
    materialized_bytes and deterministic (schema check);
  * timed-out records are skipped with a notice — RSS at the point the
    deadline landed is not comparable;
  * every completed mine record must have deterministic == true (its
    digest matched the shard_count=1 baseline in the same bench run);
  * every completed mine record must have peak_rss_kb * 1024 <=
    memory_budget_bytes, and the budget itself must be smaller than
    materialized_bytes (otherwise "out of core" proved nothing).

Usage: tools/lint/rss_gate.py [path/to/BENCH_scale.json]
"""

import json
import sys


def evaluate(records, path):
    """Applies the gate rules to already-parsed bench records.

    Pure: no I/O, no printing — tools/lint/gate_selftest.py drives this
    directly against fixture records. Returns (failures, skipped,
    ok_lines, gated): the failure messages, the timed-out record labels,
    the per-record "ok" report lines in record order, and the count of
    completed mine records the budget actually gated.
    """
    failures = []
    skipped = []
    ok_lines = []
    gated = 0
    for rec in records:
        if rec.get("kind") != "mine":
            continue
        where = "{} shards={} threads={}".format(
            rec.get("profile", "?"), rec.get("shard_count", "?"),
            rec.get("threads", "?"))
        missing = [field for field in
                   ("peak_rss_kb", "memory_budget_bytes",
                    "materialized_bytes", "deterministic")
                   if field not in rec]
        if missing:
            failures.append("{}: missing field(s) {}".format(
                where, ", ".join(repr(f) for f in missing)))
            continue
        if rec.get("timed_out", False):
            skipped.append(where)
            continue
        gated += 1
        if not rec["deterministic"]:
            failures.append(
                "{}: deterministic=false — sharded digest diverged from "
                "the shard_count=1 baseline".format(where))
        rss_bytes = rec["peak_rss_kb"] * 1024
        budget = rec["memory_budget_bytes"]
        materialized = rec["materialized_bytes"]
        if budget >= materialized:
            failures.append(
                "{}: memory budget {} >= materialized matrix {} — the "
                "out-of-core claim is vacuous".format(
                    where, budget, materialized))
        if rss_bytes > budget:
            failures.append(
                "{}: peak RSS {} bytes > memory budget {} bytes".format(
                    where, rss_bytes, budget))
        else:
            ok_lines.append(
                "  ok {}: peak RSS {:.1f} MiB within budget {:.1f} MiB "
                "(matrix {:.1f} MiB)".format(
                    where, rss_bytes / 2**20, budget / 2**20,
                    materialized / 2**20))

    if gated == 0:
        failures.append(
            "no completed mine records found in {} — the gate is "
            "vacuous".format(path))
    return failures, skipped, ok_lines, gated


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench/BENCH_scale.json"
    with open(path) as f:
        records = json.load(f)

    failures, skipped, ok_lines, gated = evaluate(records, path)
    for line in ok_lines:
        print(line)
    for where in skipped:
        print("  skipped (timed out): {}".format(where))
    if failures:
        print("rss gate FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("rss gate passed: {} mine records within their memory budget, "
          "all digests shard-count invariant.".format(gated))
    return 0


if __name__ == "__main__":
    sys.exit(main())
