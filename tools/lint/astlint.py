#!/usr/bin/env python3
"""AST-grounded hot-path purity lint (ci.sh astlint, DESIGN.md §16).

The paper's performance argument rests on the mining inner loops
(Visit / Freq / FindLB containment) and the serving request path staying
tight. TKRGS_HOT (util/hot_path.h) marks those functions as hot-path
roots; this lint builds a call graph over src/ and enforces, for every
function TRANSITIVELY REACHABLE from a root:

  hot-alloc          no heap allocation: operator new, make_unique /
                     make_shared, allocating container/string growth
                     (push_back, emplace, resize, reserve, append,
                     insert, assign), std::to_string.
  hot-lock           no lock acquisition below rank
                     lock_rank::kMinerWorkDeque (the miner's own deque
                     and top-k stripe locks are the only sanctioned hot
                     locks) and no raw std:: lock guards (unranked).
  hot-blocking       no blocking syscalls or I/O: sleeps, yields,
                     condition-variable waits, streams, stdio, sockets.
  hot-copy           no implicit copy of the expensive set types
                     (Bitset, RowSet, PrefixTree, RuleGroup):
                     pass-by-value parameters, copy-init from an lvalue,
                     and NRVO-defeating `return std::move(...)`.
  hot-status-format  no throw, and no Status/StatusOr construction with
                     formatted strings (std::to_string / concatenation)
                     inside hot regions — error formatting belongs on
                     cold paths.

Why reachability, not per-function: the hazards hide in callees — the
per-node allocation the miner must not do lives in a RowSet helper, not
in Visit itself. A per-function check would pass Visit and miss the
chain; the call-graph walk follows it.

Escape hatch: `// NOLINT(hotpath: <why>)` on the offending line (or the
contiguous comment block above) suppresses the finding; placed on a
call-site line it justifies the whole chain behind that call. The
justification is mandatory — a bare NOLINT(hotpath) anywhere in the
analyzed tree is itself a finding (nolint-needs-justification).

Engines: with libclang importable (clang.cindex) and a
compile_commands.json, function extents, annotations and call edges come
from the real AST. Without it — gcc-only hosts — a built-in tokenizer
frontend reconstructs the same program model textually; downstream
analysis (reachability, events, NOLINT, baseline, fingerprints) is
shared, so findings and fingerprints agree across engines. `--engine`
forces one; auto prefers libclang and prints a notice when falling back.

Baseline: tools/lint/hotpath_baseline.txt, shrink-only (house policy).
src/mine/ and src/util/ are zero-baseline dirs: the miner core and the
set-algebra kernels ship clean, never parked.

Self-test: --self-test runs the never-compiled fixture pair —
testdata/hotpath_fixture.cc must reproduce its EXPECT-FINDING
annotations exactly, and testdata/hotpath_clean_fixture.cc must produce
zero findings.

Exit code 0 = clean (or skip), 1 = findings/stale baseline, 2 = usage.
"""

import argparse
import json
import os
import re
import sys

import lintlib
from lintlib import REPO_ROOT, Finding

BASELINE_PATH = os.path.join(REPO_ROOT, "tools/lint/hotpath_baseline.txt")
FIXTURE_PATH = os.path.join(REPO_ROOT,
                            "tools/lint/testdata/hotpath_fixture.cc")
CLEAN_FIXTURE_PATH = os.path.join(
    REPO_ROOT, "tools/lint/testdata/hotpath_clean_fixture.cc")
LOCK_RANKS_PATH = os.path.join(REPO_ROOT, "src/util/lock_ranks.h")

ANALYSIS_ZONES = ("src/",)
ZERO_BASELINE_DIRS = ("src/mine/", "src/util/")
EXPENSIVE_TYPES = ("Bitset", "RowSet", "PrefixTree", "RuleGroup")
JUSTIFY = "<why this is bounded/amortized/unreachable here>"

# Locks at or above this rank are leaf-adjacent by the central table and
# sanctioned in hot regions; everything below blocks behind slower work.
MIN_HOT_LOCK_RANK_NAME = "kMinerWorkDeque"

BASELINE_HEADER = (
    "Hot-path purity baseline (tools/lint/astlint.py).",
    "This file must only shrink: entries park PRE-EXISTING findings;",
    "new hazards fail the gate outright, and fixed ones make their",
    "entry stale (also an error) until removed. src/mine and src/util",
    "are zero-baseline zones: no entry may name them.",
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "new", "delete", "throw",
    "static_assert", "defined", "assert", "case", "goto", "co_return",
    "co_await", "co_yield", "requires", "noexcept", "alignas",
}

# --- shared line-level event detection -----------------------------------
# Both engines detect events with these patterns over comment-stripped
# code lines, so fingerprints agree regardless of which frontend built
# the call graph.

ALLOC_RES = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"), "make_unique/make_shared"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|append|"
                r"insert|assign|resize|reserve)\s*\("),
     "allocating container/string growth"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string allocates"),
]
# Constructing one of the expensive set types allocates its backing
# buffers; checked separately so return types in signatures don't match.
EXPENSIVE_CTOR_RE = re.compile(
    r"\b(?:" + "|".join(EXPENSIVE_TYPES) + r")\s+\w+\s*[({=]")
BLOCKING_RES = [
    (re.compile(r"\bstd::this_thread::(?:sleep_for|sleep_until|yield)\b"),
     "sleep/yield"),
    (re.compile(r"(?<![\w:])(?:sleep|usleep|nanosleep)\s*\("), "sleep"),
    (re.compile(r"\bstd::[io]?fstream\b"), "file stream"),
    (re.compile(r"(?<![\w:])f(?:open|close|read|write|gets|puts|printf|"
                r"scanf|flush|sync)\s*\("), "stdio"),
    (re.compile(r"\bstd::c(?:out|err|log|in)\b"), "console stream"),
    (re.compile(r"(?<![\w:])printf\s*\("), "stdio"),
    (re.compile(r"(?:\.|->)\s*wait(?:_for|_until)?\s*\("),
     "condition-variable wait"),
    (re.compile(r"(?<![\w:])(?:recv|send|accept|connect|poll|select|"
                r"epoll_wait)\s*\("), "socket/blocking syscall"),
]
EXPENSIVE_ALT = "|".join(EXPENSIVE_TYPES)
COPY_INIT_RE = re.compile(
    r"\b(" + EXPENSIVE_ALT + r")\s+(\w+)\s*=\s*([^;=][^;]*);")
LVALUE_RHS_RE = re.compile(r"^\*?[A-Za-z_]\w*(?:(?:\.|->)\w+|\[[^\]]*\])*$")
RETURN_MOVE_RE = re.compile(r"\breturn\s+std::move\s*\(")
PARAM_BYVAL_RE = re.compile(
    r"^(?:const\s+)?(" + EXPENSIVE_ALT + r")\s+(\w+)$")
STATUS_CTOR_RE = re.compile(r"\b(?:Status|StatusOr<[^;>]*>)\s*(?:::\s*\w+\s*)?\(")
STATUS_FORMAT_RE = re.compile(r"std::to_string\s*\(|\"\s*\+|\+\s*\"")
THROW_RE = re.compile(r"\bthrow\b")
LOCK_ACQ_RE = re.compile(
    r"\b(?:MutexLock|ReaderMutexLock|WriterMutexLock)\s+\w+\s*[({](.*)")
STD_LOCK_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")

RANK_VALUE_RE = re.compile(r"inline constexpr int (k\w+) = (\d+);")
MUTEX_LABEL_RE = re.compile(r'lock_rank::(k\w+)\s*,\s*"(?:[\w:]+::)*(\w+)"')
MUTEX_DECL_RE = re.compile(r"\b(\w+)\s*[({]\s*lock_rank::(k\w+)")

QUAL_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*::\s*(~?[A-Za-z_]\w*)\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\b(\w+))?\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
# Local declarations and parameters whose class type is knowable from the
# text alone; the member-call resolver prefers that class's method over
# the name-match fallback (e.g. `out.Set(...)` on a local `Bitset out`
# binds to Bitset::Set, never to some other class's Set).
LOCAL_DECL_RE = re.compile(
    r"^(?:const\s+)?([A-Z]\w*)(?:<[^<>;]*>)?(?:\s+|\s*[&*]\s*)"
    r"(\w+)\s*(?:[;=({]|$)")
PARAM_TYPE_RE = re.compile(
    r"^(?:const\s+)?([A-Z]\w*)(?:<[^<>]*>)?\s*[&*]?\s*(\w+)$")
FREE_CALL_RE = re.compile(r"(?<![\w.:>~])([A-Za-z_]\w*)\s*\(")
DECL_CTOR_RE = re.compile(r"\b([A-Z]\w*)\s+\w+\s*[({]")

NAME_BEFORE_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*"
    r"|operator\s*(?:\(\s*\)|\[\s*\]|[^\s(]+))\s*$")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{]*)?$")
NAMESPACE_RE = re.compile(r"\bnamespace\b(?:\s+[A-Za-z_]\w*)?\s*$")


class Func:
    """One function definition: identity, extent, hotness, and the body
    lines the event/call scans run over."""

    def __init__(self, path, fa, cls, name, sig_text, sig_lines):
        self.path = path
        self.fa = fa
        self.cls = cls          # innermost enclosing class, or None
        self.name = name        # unqualified
        self.qual = f"{cls}::{name}" if cls else name
        self.sig_text = sig_text
        self.sig_lines = sig_lines  # 0-based line indices of the signature
        self.body = []          # 0-based line indices inside the braces
        self.hot = "TKRGS_HOT" in sig_text
        self.events = []        # (line_idx, check, message)
        self.calls = []         # (line_idx, kind, qualifier, name)

    def start_line(self):
        return (self.sig_lines[0] if self.sig_lines else 0) + 1


def _find_matching(s, i):
    depth = 0
    for j in range(i, len(s)):
        if s[j] == "(":
            depth += 1
        elif s[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def extract_signature(stmt):
    """(name, params, trailing) for a statement that looks like a
    function signature, else None. Scans top-level '(' candidates and
    takes the first preceded by a plausible (possibly qualified) name."""
    depth = 0
    for i, c in enumerate(stmt):
        if c == "(":
            if depth == 0:
                m = NAME_BEFORE_RE.search(stmt[:i])
                if m:
                    name = re.sub(r"\s+", "", m.group(1))
                    if name.split("::")[-1] not in CONTROL_KEYWORDS:
                        close = _find_matching(stmt, i)
                        if close != -1:
                            return name, stmt[i + 1:close], stmt[close + 1:]
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
    return None


def split_params(params):
    parts, depth, cur = [], 0, []
    for c in params:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if "".join(cur).strip():
        parts.append("".join(cur))
    return [p.strip() for p in parts]


class _Scope:
    def __init__(self, kind, name=None, func=None):
        self.kind = kind  # "namespace" | "class" | "function" | "block"
        self.name = name
        self.func = func


class Program:
    """The whole-program model both engines populate: functions, hot
    declarations, and the mutex-member → rank map."""

    def __init__(self):
        self.funcs = []
        self.by_qual = {}
        self.by_name = {}
        self.classes = set()
        self.hot_decls = set()
        self.mutex_ranks = {}       # (path, member) -> rank name
        self.mutex_ranks_global = {}  # member -> set of rank names
        self.analyses = {}          # path -> FileAnalysis

    def add_func(self, fn):
        self.funcs.append(fn)
        self.by_qual.setdefault(fn.qual, []).append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)
        if fn.cls:
            self.classes.add(fn.cls)

    def finalize(self):
        for fn in self.funcs:
            if fn.qual in self.hot_decls:
                fn.hot = True


def parse_file_internal(path, text, program):
    """Tokenizer frontend: reconstructs function extents, class context
    and TKRGS_HOT markers by tracking braces/parens over comment-stripped
    code. Statement boundaries are ';' '{' '}' at paren depth 0, so
    brace-initializers and lambda bodies inside argument lists never open
    scopes of their own."""
    fa = lintlib.FileAnalysis(path, text, nolint_tag="hotpath")
    program.analyses[path] = fa
    scopes = []
    stmt_parts = []  # (line_idx, text) segments of the current statement
    paren_depth = 0

    def innermost_function():
        for scope in reversed(scopes):
            if scope.kind == "function":
                return scope.func
        return None

    def enclosing_class():
        for scope in reversed(scopes):
            if scope.kind == "class":
                return scope.name
        return None

    def stmt_text():
        return " ".join(t for _, t in stmt_parts).strip()

    def handle_open(idx):
        sig = stmt_text()
        fn = innermost_function()
        if fn is not None:
            scopes.append(_Scope("block"))
            return
        if NAMESPACE_RE.search(sig):
            scopes.append(_Scope("namespace"))
            return
        if re.search(r"\benum\b", sig):
            scopes.append(_Scope("block"))
            return
        m = CLASS_RE.search(sig)
        if m:
            scopes.append(_Scope("class", name=m.group(1)))
            return
        ext = extract_signature(sig)
        if ext is not None:
            name, params, trailing = ext
            cls = enclosing_class()
            if "::" in name:
                segs = name.split("::")
                cls, name = segs[-2], segs[-1]
            new_fn = Func(path, fa, cls, name, sig,
                          sorted({i for i, _ in stmt_parts} | {idx}))
            new_fn.params = params
            program.add_func(new_fn)
            scopes.append(_Scope("function", func=new_fn))
            return
        scopes.append(_Scope("block"))

    def handle_semi(idx):
        if innermost_function() is not None:
            return
        sig = stmt_text()
        if "TKRGS_HOT" not in sig:
            return
        ext = extract_signature(sig)
        if ext is None:
            return
        name = ext[0]
        cls = enclosing_class()
        if "::" in name:
            segs = name.split("::")
            cls, name = segs[-2], segs[-1]
        program.hot_decls.add(f"{cls}::{name}" if cls else name)

    in_directive = False
    for idx, code in enumerate(fa.code_lines):
        if in_directive or code.lstrip().startswith("#"):
            in_directive = fa.raw_lines[idx].rstrip().endswith("\\")
            continue
        # A line belongs to every function that was innermost at any
        # statement boundary on it (or at end of line) — this keeps
        # single-line definitions like `void F() { v_.push_back(x); }`
        # attributed, which the header-heavy util code is full of.
        touched = []

        def mark():
            fn = innermost_function()
            if fn is not None and (not touched or touched[-1] is not fn):
                touched.append(fn)

        seg_start = 0
        for i, c in enumerate(code):
            if c in "([":
                paren_depth += 1
            elif c in ")]":
                paren_depth = max(0, paren_depth - 1)
            elif c == "{" and paren_depth == 0:
                mark()
                stmt_parts.append((idx, code[seg_start:i]))
                handle_open(idx)
                mark()
                stmt_parts = []
                seg_start = i + 1
            elif c == "}" and paren_depth == 0:
                mark()
                stmt_parts = []
                seg_start = i + 1
                if scopes:
                    scopes.pop()
            elif c == ";" and paren_depth == 0:
                mark()
                stmt_parts.append((idx, code[seg_start:i]))
                handle_semi(idx)
                stmt_parts = []
                seg_start = i + 1
        rest = code[seg_start:]
        if rest.strip():
            stmt_parts.append((idx, rest))
        mark()
        for fn in touched:
            if not fn.body or fn.body[-1] != idx:
                fn.body.append(idx)

    # Mutex rank map: the debug label names the member
    # ("SharedTopk::stripes_"), and brace/paren member inits name it
    # directly (mu_{lock_rank::kX, ...} / mu_(lock_rank::kX, ...)).
    # Debug labels live inside string literals, which the code/comment
    # splitter blanks — scan the raw text for them (joined: labels wrap).
    for m in MUTEX_LABEL_RE.finditer(" ".join(fa.raw_lines)):
        rank, member = m.group(1), m.group(2)
        program.mutex_ranks[(path, member)] = rank
        program.mutex_ranks_global.setdefault(member, set()).add(rank)
    for m in MUTEX_DECL_RE.finditer(" ".join(fa.code_lines)):
        member, rank = m.group(1), m.group(2)
        if member in ("Mutex", "SharedMutex"):
            continue
        program.mutex_ranks[(path, member)] = rank
        program.mutex_ranks_global.setdefault(member, set()).add(rank)


def load_lock_ranks():
    ranks = {}
    if os.path.exists(LOCK_RANKS_PATH):
        with open(LOCK_RANKS_PATH, encoding="utf-8") as f:
            for m in RANK_VALUE_RE.finditer(f.read()):
                ranks[m.group(1)] = int(m.group(2))
    return ranks


def paired_path(path):
    if path.endswith(".cc"):
        return path[:-3] + ".h"
    if path.endswith(".h"):
        return path[:-2] + ".cc"
    return path


def resolve_mutex_rank(program, path, expr):
    """Rank name for a lock-acquisition argument expression, or None.
    House style suffixes members with '_', so prefer the first such
    identifier (skips receiver objects in `other.mu_`)."""
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    member = next((t for t in ids if t.endswith("_")), ids[0] if ids else None)
    if member is None:
        return None, None
    for candidate_path in (path, paired_path(path)):
        rank = program.mutex_ranks.get((candidate_path, member))
        if rank is not None:
            return member, rank
    global_ranks = program.mutex_ranks_global.get(member, set())
    if len(global_ranks) == 1:
        return member, next(iter(global_ranks))
    return member, None


def detect_events(program, rank_values):
    """Populates fn.events and fn.calls for every parsed function."""
    min_rank = rank_values.get(MIN_HOT_LOCK_RANK_NAME, 350)
    for fn in program.funcs:
        fa = fn.fa
        # Receiver-type map: parameter and local declarations whose class
        # is visible in the text, so member calls on them resolve exactly.
        local_types = {}
        for param in split_params(getattr(fn, "params", "")):
            m = PARAM_TYPE_RE.match(param.split("=")[0].strip())
            if m:
                local_types[m.group(2)] = m.group(1)
        for idx in fn.body:
            m = LOCAL_DECL_RE.match(fa.code_lines[idx].lstrip())
            if m:
                local_types[m.group(2)] = m.group(1)
        # Signature events: pass-by-value expensive parameters.
        for param in split_params(getattr(fn, "params", "")):
            param = param.split("=")[0].strip()
            m = PARAM_BYVAL_RE.match(param)
            if not m:
                continue
            anchor = fn.sig_lines[-1] if fn.sig_lines else 0
            token = m.group(1) + " " + m.group(2)
            for idx in fn.sig_lines:
                if token in re.sub(r"\s+", " ", fa.code_lines[idx]):
                    anchor = idx
                    break
            fn.events.append((anchor, "hot-copy",
                              f"parameter '{m.group(2)}' takes {m.group(1)} "
                              "by value: every call copies the full "
                              "payload; pass by const reference (or move "
                              "explicitly at the one sink that owns it)"))

        # Status-construction statements claim their lines first so the
        # to_string inside is reported once, as hot-status-format.
        status_lines = set()
        body = fn.body
        for pos, idx in enumerate(body):
            code = fa.code_lines[idx]
            if not STATUS_CTOR_RE.search(code):
                continue
            stmt_idx = [idx]
            probe = pos
            while ";" not in fa.code_lines[stmt_idx[-1]] and \
                    probe + 1 < len(body) and len(stmt_idx) < 8:
                probe += 1
                stmt_idx.append(body[probe])
            stmt = " ".join(fa.code_lines[i] for i in stmt_idx)
            if STATUS_FORMAT_RE.search(stmt):
                status_lines.update(stmt_idx)
                fn.events.append((idx, "hot-status-format",
                                  "Status/StatusOr built with a formatted "
                                  "string on a hot path: formatting "
                                  "allocates; return a static message or "
                                  "move the formatting to a cold helper"))

        for idx in body:
            code = fa.code_lines[idx]
            if code.lstrip().startswith("#"):
                continue
            if THROW_RE.search(code):
                fn.events.append((idx, "hot-status-format",
                                  "throw in a hot region: exceptions "
                                  "allocate and unwind; return Status from "
                                  "cold validation instead"))
            if idx not in status_lines:
                for rx, what in ALLOC_RES:
                    if rx.search(code):
                        fn.events.append((idx, "hot-alloc",
                                          f"heap allocation ({what}) on a "
                                          "hot path"))
                        break
                else:
                    if idx not in fn.sig_lines and \
                            EXPENSIVE_CTOR_RE.search(code):
                        fn.events.append((idx, "hot-alloc",
                                          "heap allocation (expensive-type "
                                          "construction: the backing buffers "
                                          "allocate) on a hot path"))
            for rx, what in BLOCKING_RES:
                if rx.search(code):
                    fn.events.append((idx, "hot-blocking",
                                      f"blocking operation ({what}) on a "
                                      "hot path"))
                    break
            if STD_LOCK_RE.search(code):
                fn.events.append((idx, "hot-lock",
                                  "raw std:: lock guard on a hot path: "
                                  "unranked locks bypass the deadlock "
                                  "discipline; use the ranked "
                                  "Mutex/MutexLock wrappers"))
            m = LOCK_ACQ_RE.search(code)
            if m:
                member, rank = resolve_mutex_rank(program, fn.path,
                                                  m.group(1))
                value = rank_values.get(rank) if rank else None
                if value is None:
                    fn.events.append((idx, "hot-lock",
                                      f"lock acquisition on '{member}' whose "
                                      "rank could not be resolved; hot "
                                      "regions may only take ranked locks "
                                      f">= lock_rank::"
                                      f"{MIN_HOT_LOCK_RANK_NAME}"))
                elif value < min_rank:
                    fn.events.append((idx, "hot-lock",
                                      f"lock '{member}' has rank "
                                      f"lock_rank::{rank} ({value}) < "
                                      f"{MIN_HOT_LOCK_RANK_NAME} "
                                      f"({min_rank}): locks this far out "
                                      "serialize the fast path"))
            m = COPY_INIT_RE.search(code)
            if m and LVALUE_RHS_RE.match(m.group(3).strip()):
                fn.events.append((idx, "hot-copy",
                                  f"copy-initialization of {m.group(1)} "
                                  f"'{m.group(2)}' from an lvalue: deep "
                                  "copy of the full payload; bind a const "
                                  "reference or reuse a scratch instance"))
            if RETURN_MOVE_RE.search(code) and any(
                    t in fn.sig_text for t in EXPENSIVE_TYPES):
                fn.events.append((idx, "hot-copy",
                                  "return std::move(...) defeats NRVO for "
                                  "an expensive type; return the local "
                                  "directly"))

            # Call edges.
            claimed = set()
            for cm in QUAL_CALL_RE.finditer(code):
                claimed.add(cm.start(2))
                fn.calls.append((idx, "qual", cm.group(1), cm.group(2)))
            for cm in MEMBER_CALL_RE.finditer(code):
                claimed.add(cm.start(2))
                receiver = cm.group(1)
                rtype = local_types.get(receiver) if receiver else None
                fn.calls.append((idx, "member", rtype, cm.group(2)))
            for cm in FREE_CALL_RE.finditer(code):
                if cm.start(1) in claimed:
                    continue
                name = cm.group(1)
                if name in CONTROL_KEYWORDS or name == "TKRGS_HOT":
                    continue
                fn.calls.append((idx, "free", None, name))
            for cm in DECL_CTOR_RE.finditer(code):
                fn.calls.append((idx, "ctor", None, cm.group(1)))


def resolve_calls(program, caller, kind, qualifier, name):
    by_qual, by_name = program.by_qual, program.by_name
    near = (caller.path, paired_path(caller.path))
    if kind == "qual":
        if qualifier == "std":
            return []
        cands = by_qual.get(f"{qualifier}::{name}")
        if cands:
            return cands
        return [f for f in by_name.get(name, []) if f.cls is None]
    if kind == "member":
        cands = [f for f in by_name.get(name, []) if f.cls is not None]
        if qualifier:  # receiver's declared class is known from the text
            typed = [f for f in cands if f.cls == qualifier]
            if typed:
                return typed
        if caller.cls:
            own = [f for f in cands if f.cls == caller.cls]
            if own:
                return own
        same = [f for f in cands if f.path in near]
        return same or cands
    if kind == "free":
        if caller.cls:
            own = by_qual.get(f"{caller.cls}::{name}")
            if own:
                return own
        cands = [f for f in by_name.get(name, []) if f.cls is None]
        if cands:
            same = [f for f in cands if f.path in near]
            return same or cands
        if name in program.classes:
            return by_qual.get(f"{name}::{name}", [])
        return []
    if kind == "ctor":
        return by_qual.get(f"{name}::{name}", [])
    return []


def analyze_program(program):
    """Reachability walk from every TKRGS_HOT root; returns findings."""
    program.finalize()
    findings = []
    emitted = set()   # (path, line, check) dedupe across roots/chains

    def emit(fa, idx, check, message):
        key = (fa.path, idx, check)
        if key in emitted:
            return
        nolint = fa.nolint_for(idx)
        if nolint is not None:
            return  # justified or bare; bare handled by the global sweep
        emitted.add(key)
        findings.append(Finding(fa.path, idx + 1, check, message,
                                fa.raw_lines[idx]))

    reach = {}  # id(fn) -> chain (list of qual names from the root)
    roots = sorted((fn for fn in program.funcs if fn.hot),
                   key=lambda f: (f.path, f.start_line()))

    def walk(fn, chain):
        if id(fn) in reach:
            return
        reach[id(fn)] = (fn, chain)
        for idx, kind, qualifier, name in fn.calls:
            if fn.fa.nolint_for(idx) is not None:
                continue  # the whole chain behind this call is justified
            for callee in resolve_calls(program, fn, kind, qualifier, name):
                if callee is fn:
                    continue
                walk(callee, chain + [callee.qual])

    for root in roots:
        walk(root, [root.qual])

    for fn, chain in sorted(reach.values(),
                            key=lambda fc: (fc[0].path, fc[0].start_line())):
        via = (f" [hot root: {chain[0]}"
               + (f", via {' -> '.join(chain[1:])}" if len(chain) > 1 else "")
               + "]")
        for idx, check, message in fn.events:
            emit(fn.fa, idx, check, message + via)

    # Every NOLINT(hotpath) in the analyzed tree needs a justification,
    # reachable or not — a bare one is dead weight that would silently
    # suppress a future finding.
    for path in sorted(program.analyses):
        fa = program.analyses[path]
        for idx, raw in enumerate(fa.raw_lines):
            m = fa.nolint_re.search(fa.comment_lines[idx])
            if m and (m.group(1) is None or not m.group(1).strip()):
                findings.append(Finding(
                    path, idx + 1, "nolint-needs-justification",
                    "NOLINT(hotpath) requires a justification: "
                    f"NOLINT(hotpath: {JUSTIFY})", raw))

    return findings, roots, reach


# --- libclang frontend ---------------------------------------------------

def libclang_index():
    """A clang.cindex Index, or None with a reason string."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return None, "python clang bindings not importable"
    from clang import cindex
    try:
        return cindex.Index.create(), None
    except Exception as exc:  # library missing / version mismatch
        return None, f"libclang unusable: {exc}"


def parse_file_libclang(index, path, text, program, compile_args):
    """AST frontend: the same Program model, but function extents,
    annotations and call edges come from clang cursors. Events stay with
    the shared line-level detectors, so fingerprints match the internal
    engine."""
    from clang import cindex
    fa = lintlib.FileAnalysis(path, text, nolint_tag="hotpath")
    program.analyses[path] = fa
    full = os.path.join(REPO_ROOT, path)
    tu = index.parse(full, args=compile_args)
    func_kinds = {
        cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }
    by_usr = {}

    def in_this_file(cursor):
        return (cursor.location.file is not None
                and os.path.samefile(cursor.location.file.name, full))

    def visit(cursor, cls):
        for child in cursor.get_children():
            kind = child.kind
            if kind in (cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL,
                        cindex.CursorKind.CLASS_TEMPLATE):
                visit(child, child.spelling or cls)
                continue
            if kind in func_kinds and child.is_definition() \
                    and in_this_file(child):
                name = child.spelling
                sem = child.semantic_parent
                fn_cls = cls
                if sem is not None and sem.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL,
                        cindex.CursorKind.CLASS_TEMPLATE):
                    fn_cls = sem.spelling
                start = child.extent.start.line - 1
                body_first = start
                hot = False
                for sub in child.get_children():
                    if sub.kind == cindex.CursorKind.ANNOTATE_ATTR \
                            and sub.spelling == "tkrgs_hot":
                        hot = True
                    if sub.kind == cindex.CursorKind.COMPOUND_STMT:
                        body_first = sub.extent.start.line - 1
                sig = " ".join(
                    fa.code_lines[start:body_first + 1]).strip()
                fn = Func(path, fa, fn_cls, name, sig,
                          list(range(start, body_first + 1)))
                fn.params = ", ".join(
                    f"{a.type.spelling} {a.spelling}"
                    for a in child.get_arguments())
                fn.hot = hot or "TKRGS_HOT" in sig
                fn.body = list(range(body_first + 1,
                                     child.extent.end.line))
                fn.clang_cursor = child
                program.add_func(fn)
                by_usr[child.get_usr()] = fn
            visit(child, cls)

    visit(tu.cursor, None)

    # AST-resolved call edges replace the textual resolution: record them
    # as pre-resolved pairs the analyzer consumes directly.
    for fn in program.funcs:
        cursor = getattr(fn, "clang_cursor", None)
        if cursor is None:
            continue
        def collect(c):
            for child in c.get_children():
                if child.kind == cindex.CursorKind.CALL_EXPR \
                        and child.referenced is not None:
                    usr = child.referenced.get_usr()
                    target = by_usr.get(usr)
                    if target is not None:
                        fn.calls.append((child.location.line - 1, "resolved",
                                         None, target))
                collect(child)
        collect(cursor)
    return tu


def default_compile_args(compile_commands):
    args = ["-std=c++20", "-I" + os.path.join(REPO_ROOT, "src")]
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands, encoding="utf-8") as f:
                db = json.load(f)
            for entry in db:
                cmd = entry.get("command", "")
                extra = [a for a in cmd.split() if a.startswith(("-I", "-D",
                                                                 "-std="))]
                if extra:
                    return extra
        except (OSError, ValueError):
            pass
    return args


def find_compile_commands(explicit):
    if explicit:
        return explicit if os.path.exists(explicit) else None
    for candidate in ("build-lint/compile_commands.json",
                      "build/compile_commands.json"):
        full = os.path.join(REPO_ROOT, candidate)
        if os.path.exists(full):
            return full
    return None


# --- analysis drivers ----------------------------------------------------

def build_program_internal(file_texts):
    program = Program()
    for path, text in file_texts:
        parse_file_internal(path, text, program)
    detect_events(program, load_lock_ranks())
    return program


def build_program_libclang(file_texts, compile_commands):
    index, reason = libclang_index()
    if index is None:
        return None, reason
    program = Program()
    args = default_compile_args(compile_commands)
    for path, text in file_texts:
        parse_file_libclang(index, path, text, program, args)
    # Mutex rank map and line-level events are shared with the internal
    # engine (fingerprint parity).
    for path, text in file_texts:
        fa = program.analyses[path]
        for idx, code in enumerate(fa.code_lines):
            for m in MUTEX_LABEL_RE.finditer(code):
                program.mutex_ranks[(path, m.group(2))] = m.group(1)
            for m in MUTEX_DECL_RE.finditer(code):
                if m.group(1) not in ("Mutex", "SharedMutex"):
                    program.mutex_ranks[(path, m.group(1))] = m.group(2)
    detect_events(program, load_lock_ranks())
    return program, None


def run_analysis(file_texts, engine, compile_commands):
    """Returns (findings, roots, reach, engine_used)."""
    if engine in ("libclang", "auto"):
        result = build_program_libclang(file_texts, compile_commands)
        program, reason = result
        if program is not None:
            findings, roots, reach = analyze_program(program)
            return findings, roots, reach, "libclang"
        if engine == "libclang":
            print(f"astlint: libclang engine requested but unavailable "
                  f"({reason})", file=sys.stderr)
            sys.exit(2)
        print(f"(libclang unavailable — {reason}; internal tokenizer "
              "frontend used. Call graph and extents are textual, not "
              "AST-exact, on this machine.)")
    program = build_program_internal(file_texts)
    findings, roots, reach = analyze_program(program)
    return findings, roots, reach, "internal"


def read_zone_files(files):
    out = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(full):
            print(f"warning: no such file {rel}")
            continue
        with open(full, encoding="utf-8") as f:
            out.append((rel, f.read()))
    return out


def run_self_test():
    """The fixture pair is the analyzer's own regression test: the hazard
    fixture must reproduce its EXPECT-FINDING annotations exactly, and
    the clean fixture must stay at zero."""
    ok = True
    for fixture in (FIXTURE_PATH, CLEAN_FIXTURE_PATH):
        if not os.path.exists(fixture):
            print(f"self-test fixture missing: {fixture}")
            return 1
    rel = os.path.relpath(FIXTURE_PATH, REPO_ROOT)
    with open(FIXTURE_PATH, encoding="utf-8") as f:
        text = f.read()
    findings, _, _, _ = run_analysis([(rel, text)], "internal", None)
    found = {(f2.line_number, f2.check) for f2 in findings}
    expected = lintlib.expected_findings(text)
    for missing in sorted(expected - found):
        print(f"self-test FAIL: expected finding not produced: "
              f"{rel}:{missing[0]} [{missing[1]}]")
        ok = False
    for extra in sorted(found - expected):
        print(f"self-test FAIL: unexpected finding: "
              f"{rel}:{extra[0]} [{extra[1]}]")
        ok = False

    rel_clean = os.path.relpath(CLEAN_FIXTURE_PATH, REPO_ROOT)
    with open(CLEAN_FIXTURE_PATH, encoding="utf-8") as f:
        clean_text = f.read()
    clean_findings, roots, _, _ = run_analysis([(rel_clean, clean_text)],
                                               "internal", None)
    if not roots:
        print("self-test FAIL: clean fixture declared no TKRGS_HOT roots")
        ok = False
    for f2 in clean_findings:
        print(f"self-test FAIL: finding in the clean fixture: {f2.render()}")
        ok = False

    if ok:
        print(f"astlint self-test OK: {len(expected)} expected findings "
              f"produced over the hazard fixture, clean fixture at zero, "
              "NOLINT escape respected")
        return 0
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer against the checked-in "
                             "fixture pair")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "(review the diff: it must only shrink)")
    parser.add_argument("--engine", choices=("auto", "internal", "libclang"),
                        default="auto",
                        help="frontend selection (default: libclang when "
                             "importable, else internal)")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit compile_commands.json path (libclang "
                             "engine)")
    parser.add_argument("--list-roots", action="store_true",
                        help="print the hot roots and reachable functions, "
                             "then exit")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: all of src/)")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    files = args.files or lintlib.zone_files(REPO_ROOT, ANALYSIS_ZONES)
    file_texts = read_zone_files(files)
    compile_commands = find_compile_commands(args.compile_commands)
    findings, roots, reach, engine = run_analysis(
        file_texts, args.engine, compile_commands)

    if args.list_roots:
        print(f"{len(roots)} hot roots ({engine} engine):")
        for fn in roots:
            print(f"  {fn.path}:{fn.start_line()}: {fn.qual}")
        print(f"{len(reach)} reachable functions:")
        for fn, chain in sorted(reach.values(),
                                key=lambda fc: (fc[0].path,
                                                fc[0].start_line())):
            print(f"  {fn.path}:{fn.start_line()}: {fn.qual}  "
                  f"(root {chain[0]})")
        return 0

    if args.update_baseline:
        lintlib.write_baseline(BASELINE_PATH, findings, BASELINE_HEADER,
                               ZERO_BASELINE_DIRS)
        print("baseline rewritten")
        return 0

    baseline = lintlib.load_baseline(BASELINE_PATH)
    for entry in sorted(baseline):
        if entry.startswith(ZERO_BASELINE_DIRS):
            print(f"astlint: baseline entry in a zero-baseline dir "
                  f"(src/mine, src/util must stay clean): {entry}")
            return 1
    new, stale, suppressed = lintlib.diff_against_baseline(findings, baseline)

    failed = False
    if new:
        failed = True
        print(f"astlint: {len(new)} new finding(s) on TKRGS_HOT paths:")
        for f2 in new:
            print(f2.render())
        print("\nFix the hazard, or justify it in place with "
              f"// NOLINT(hotpath: {JUSTIFY}).")
    if stale:
        failed = True
        print(f"astlint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (the baseline must only "
              "shrink — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if not failed:
        print(f"astlint clean ({engine} engine): {len(file_texts)} files, "
              f"{len(roots)} hot roots, {len(reach)} reachable functions, "
              f"{suppressed} baselined finding(s), 0 new, 0 stale")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
