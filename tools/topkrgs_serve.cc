// topkrgs-serve: the standalone prediction server. Loads one initial model
// into the registry (more can be hot-swapped in over HTTP), then serves
// the endpoint set documented in serve/service.h until SIGINT/SIGTERM.
//
//   topkrgs-serve --model rcbt.model --discretization disc.model
//       [--kind rcbt|cba] [--name default] [--version v1]
//       [--port 8080] [--workers 4] [--queue 256] [--deadline-ms 0]
//       [--max-seconds 0]
//
// --port 0 binds an ephemeral port (printed on stdout) — that is how the
// smoke test and local experiments run without port collisions.
// --max-seconds N exits cleanly after N seconds (scripted smoke runs).
#include <semaphore.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <ctime>

#include <string>
#include <vector>

#include "cli/commands.h"
#include "cli/flags.h"
#include "serve/service.h"

namespace {

sem_t g_stop_sem;

void HandleStopSignal(int) { sem_post(&g_stop_sem); }

}  // namespace

namespace topkrgs {

Status RunServe(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(flags.CheckKnown(
      {"model", "discretization", "kind", "name", "version", "port",
       "workers", "queue", "deadline-ms", "max-seconds"}));

  auto model_path = flags.GetRequired("model");
  if (!model_path.ok()) return model_path.status();
  auto disc_path = flags.GetRequired("discretization");
  if (!disc_path.ok()) return disc_path.status();
  const std::string kind = flags.GetString("kind", "rcbt");
  if (kind != "rcbt" && kind != "cba") {
    return Status::InvalidArgument("--kind must be rcbt or cba");
  }
  auto port = flags.GetInt("port", 8080);
  if (!port.ok()) return port.status();
  if (port.value() < 0 || port.value() > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  auto workers = flags.GetInt("workers", 4);
  if (!workers.ok()) return workers.status();
  if (workers.value() < 1 || workers.value() > 1024) {
    return Status::InvalidArgument("--workers must be in [1, 1024]");
  }
  auto queue = flags.GetInt("queue", 256);
  if (!queue.ok()) return queue.status();
  if (queue.value() < 1) {
    return Status::InvalidArgument("--queue must be >= 1");
  }
  auto deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (!deadline_ms.ok()) return deadline_ms.status();
  auto max_seconds = flags.GetInt("max-seconds", 0);
  if (!max_seconds.ok()) return max_seconds.status();

  PredictionService::Options options;
  options.workers = static_cast<uint32_t>(workers.value());
  options.queue_capacity = static_cast<size_t>(queue.value());
  options.default_deadline_ms = deadline_ms.value();
  PredictionService service(options);

  TOPKRGS_RETURN_NOT_OK(service.registry().Load(
      flags.GetString("name", "default"), flags.GetString("version", "v1"),
      kind == "rcbt" ? ServableModel::Kind::kRcbt : ServableModel::Kind::kCba,
      model_path.value(), disc_path.value()));
  TOPKRGS_RETURN_NOT_OK(
      service.Start(static_cast<uint16_t>(port.value())));
  std::printf("topkrgs-serve listening on 127.0.0.1:%u (%s model '%s', "
              "%lld workers, queue %lld)\n",
              service.port(), kind.c_str(),
              flags.GetString("name", "default").c_str(),
              static_cast<long long>(workers.value()),
              static_cast<long long>(queue.value()));
  std::fflush(stdout);

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (max_seconds.value() > 0) {
    timespec until{};
    clock_gettime(CLOCK_REALTIME, &until);
    until.tv_sec += max_seconds.value();
    while (sem_timedwait(&g_stop_sem, &until) == -1 && errno == EINTR) {
    }
  } else {
    while (sem_wait(&g_stop_sem) == -1 && errno == EINTR) {
    }
  }
  service.Stop();
  std::printf("topkrgs-serve: shut down cleanly\n");
  return Status::OK();
}

}  // namespace topkrgs

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const topkrgs::Status status = topkrgs::RunServe(args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return topkrgs::ExitCodeForStatus(status);
}
