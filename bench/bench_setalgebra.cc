// Set-algebra kernel microbenchmarks (the acceptance gate for the SIMD
// rewrite, DESIGN.md §13): dense AND+popcount, subset test, dense
// intersection and sparse sorted-id intersection, each measured against
// a verbatim copy of the pre-rewrite single-accumulator scalar loop.
// Emits BENCH_setalgebra.json (argv[1] to override). The committed file
// is the reference record; the dense intersect-popcount kernel must hold
// >= 2x over the pre-PR loop at universes of 4096 bits and up.
//
// Every (baseline, kernel) pair also cross-checks its results — a tier
// that got faster by being wrong fails the run instead of recording it.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/bitkernels.h"
#include "util/rowset.h"

namespace topkrgs {
namespace bench {
namespace {

namespace bk = bitkernels;

// --- Pre-PR reference loops (verbatim from the old util/bitset.cc) ------

size_t PrePrAndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

bool PrePrIsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void PrePrAndInplace(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] &= b[i];
}

size_t PrePrSortedIntersectCount(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  // What charm/transposed_table effectively did: std::set_intersection
  // into a buffer, then take the size.
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

std::vector<uint64_t> RandomWords(Rng& rng, size_t n, double density) {
  std::vector<uint64_t> w(n, 0);
  for (auto& x : w) {
    for (int bit = 0; bit < 64; ++bit) {
      if (rng.NextDouble() < density) x |= uint64_t{1} << bit;
    }
  }
  return w;
}

/// Median-of-runs ns/op for `fn` (called `iters` times per run); the
/// checksum sink keeps the calls from being optimized away.
template <typename Fn>
double MeasureNs(size_t iters, uint64_t* sink, Fn&& fn) {
  double best = 0.0;
  std::vector<double> runs;
  for (int run = 0; run < 5; ++run) {
    Stopwatch timer;
    uint64_t acc = 0;
    for (size_t i = 0; i < iters; ++i) acc += fn(i);
    *sink ^= acc;
    runs.push_back(timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters));
  }
  std::sort(runs.begin(), runs.end());
  best = runs[runs.size() / 2];
  return best;
}

struct DensePair {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
};

void BenchDenseKernels(JsonWriter& out, size_t bits, double density) {
  Rng rng(0x5e7a15ebull + bits);
  const size_t words = (bits + 63) / 64;
  // Enough distinct operand pairs to defeat L1-resident branch memory,
  // cycled round-robin.
  std::vector<DensePair> pairs;
  for (int i = 0; i < 8; ++i) {
    pairs.push_back({RandomWords(rng, words, density),
                     RandomWords(rng, words, density)});
  }
  const size_t iters = std::max<size_t>(2000, 4'000'000 / (words + 1));
  uint64_t sink = 0;

  const bk::Kernels& scalar = bk::ScalarKernels();
  const bk::Kernels& active = bk::ActiveKernels();

  // Cross-check every tier against the pre-PR loop before timing.
  for (const auto& p : pairs) {
    const size_t expect = PrePrAndPopcount(p.a.data(), p.b.data(), words);
    TOPKRGS_CHECK(scalar.and_popcount(p.a.data(), p.b.data(), words) == expect,
                  "scalar and_popcount mismatch");
    TOPKRGS_CHECK(active.and_popcount(p.a.data(), p.b.data(), words) == expect,
                  "active and_popcount mismatch");
    TOPKRGS_CHECK(active.is_subset(p.a.data(), p.b.data(), words) ==
                      PrePrIsSubset(p.a.data(), p.b.data(), words),
                  "active is_subset mismatch");
  }

  struct Variant {
    const char* name;
    double ns;
  };

  // Dense AND + popcount (the Freq/IntersectCount hot op).
  const double base_ns = MeasureNs(iters, &sink, [&](size_t i) {
    const DensePair& p = pairs[i & 7];
    return static_cast<uint64_t>(
        PrePrAndPopcount(p.a.data(), p.b.data(), words));
  });
  const Variant and_popcount_variants[] = {
      {"blocked_scalar", MeasureNs(iters, &sink, [&](size_t i) {
         const DensePair& p = pairs[i & 7];
         return static_cast<uint64_t>(
             scalar.and_popcount(p.a.data(), p.b.data(), words));
       })},
      {active.name, MeasureNs(iters, &sink, [&](size_t i) {
         const DensePair& p = pairs[i & 7];
         return static_cast<uint64_t>(
             active.and_popcount(p.a.data(), p.b.data(), words));
       })},
  };
  for (const Variant& v : and_popcount_variants) {
    JsonRecord rec;
    rec.Str("kind", "dense_and_popcount")
        .Int("bits", static_cast<long long>(bits))
        .Num("density", density)
        .Str("tier", v.name)
        .Num("ns_per_op", v.ns)
        .Num("baseline_ns_per_op", base_ns)
        .Num("speedup_vs_pre_pr", v.ns > 0 ? base_ns / v.ns : 0.0);
    out.Add(rec);
    std::printf("  %-22s %6zu bits  %-14s %9.1f ns  %5.2fx\n",
                "dense_and_popcount", bits, v.name, v.ns,
                v.ns > 0 ? base_ns / v.ns : 0.0);
  }

  // Subset test (backward-pruning hot op). Random pairs nearly always
  // fail in the first block, so also measure the adversarial true-subset
  // case that scans to the end.
  {
    std::vector<uint64_t> sub = pairs[0].a;
    for (size_t i = 0; i < words; ++i) sub[i] &= pairs[0].b[i];
    const double sub_base_ns = MeasureNs(iters, &sink, [&](size_t) {
      return static_cast<uint64_t>(
          PrePrIsSubset(sub.data(), pairs[0].b.data(), words));
    });
    const double sub_active_ns = MeasureNs(iters, &sink, [&](size_t) {
      return static_cast<uint64_t>(
          active.is_subset(sub.data(), pairs[0].b.data(), words));
    });
    JsonRecord rec;
    rec.Str("kind", "dense_is_subset_true")
        .Int("bits", static_cast<long long>(bits))
        .Num("density", density)
        .Str("tier", active.name)
        .Num("ns_per_op", sub_active_ns)
        .Num("baseline_ns_per_op", sub_base_ns)
        .Num("speedup_vs_pre_pr",
             sub_active_ns > 0 ? sub_base_ns / sub_active_ns : 0.0);
    out.Add(rec);
    std::printf("  %-22s %6zu bits  %-14s %9.1f ns  %5.2fx\n",
                "dense_is_subset_true", bits, active.name, sub_active_ns,
                sub_active_ns > 0 ? sub_base_ns / sub_active_ns : 0.0);
  }

  // In-place AND (closure computation).
  {
    std::vector<uint64_t> scratch(words);
    const double and_base_ns = MeasureNs(iters, &sink, [&](size_t i) {
      const DensePair& p = pairs[i & 7];
      scratch = p.a;
      PrePrAndInplace(scratch.data(), p.b.data(), words);
      return scratch[0];
    });
    const double and_active_ns = MeasureNs(iters, &sink, [&](size_t i) {
      const DensePair& p = pairs[i & 7];
      scratch = p.a;
      active.and_inplace(scratch.data(), p.b.data(), words);
      return scratch[0];
    });
    JsonRecord rec;
    rec.Str("kind", "dense_and_inplace")
        .Int("bits", static_cast<long long>(bits))
        .Num("density", density)
        .Str("tier", active.name)
        .Num("ns_per_op", and_active_ns)
        .Num("baseline_ns_per_op", and_base_ns)
        .Num("speedup_vs_pre_pr",
             and_active_ns > 0 ? and_base_ns / and_active_ns : 0.0);
    out.Add(rec);
    std::printf("  %-22s %6zu bits  %-14s %9.1f ns  %5.2fx\n",
                "dense_and_inplace", bits, active.name, and_active_ns,
                and_active_ns > 0 ? and_base_ns / and_active_ns : 0.0);
  }

  if (sink == 0xdeadbeef) std::printf("(sink)\n");  // keep sink observable
}

void BenchSparseIntersect(JsonWriter& out, size_t universe, size_t count_a,
                          size_t count_b) {
  Rng rng(0xab5e7ull + universe + count_a * 31 + count_b);
  auto make_ids = [&](size_t target) {
    std::vector<uint32_t> ids;
    for (uint32_t v = 0; v < universe && ids.size() < target; ++v) {
      if (rng.NextBounded(universe) < target) ids.push_back(v);
    }
    return ids;
  };
  const auto a = make_ids(count_a);
  const auto b = make_ids(count_b);
  TOPKRGS_CHECK(
      sorted::IntersectCount(a.data(), a.size(), b.data(), b.size()) ==
          PrePrSortedIntersectCount(a, b),
      "sorted intersect mismatch");

  const size_t iters = 20000;
  uint64_t sink = 0;
  const double base_ns = MeasureNs(iters, &sink, [&](size_t) {
    return static_cast<uint64_t>(PrePrSortedIntersectCount(a, b));
  });
  const double new_ns = MeasureNs(iters, &sink, [&](size_t) {
    return static_cast<uint64_t>(
        sorted::IntersectCount(a.data(), a.size(), b.data(), b.size()));
  });
  JsonRecord rec;
  rec.Str("kind", "sparse_intersect_count")
      .Int("universe", static_cast<long long>(universe))
      .Int("count_a", static_cast<long long>(a.size()))
      .Int("count_b", static_cast<long long>(b.size()))
      .Str("tier", "sorted_gallop")
      .Num("ns_per_op", new_ns)
      .Num("baseline_ns_per_op", base_ns)
      .Num("speedup_vs_pre_pr", new_ns > 0 ? base_ns / new_ns : 0.0);
  out.Add(rec);
  std::printf("  %-22s |a|=%-5zu |b|=%-6zu %-14s %9.1f ns  %5.2fx\n",
              "sparse_intersect_count", a.size(), b.size(), "sorted_gallop",
              new_ns, new_ns > 0 ? base_ns / new_ns : 0.0);
  if (sink == 0xdeadbeef) std::printf("(sink)\n");
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main(int argc, char** argv) {
  using namespace topkrgs;
  using namespace topkrgs::bench;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_setalgebra.json";
  JsonWriter out;

  std::printf("active SIMD tier: %s\n", bitkernels::ActiveKernelName());
  {
    JsonRecord rec;
    rec.Str("kind", "environment")
        .Str("active_tier", bitkernels::ActiveKernelName())
        .Bool("avx2_available", bitkernels::Avx2Kernels() != nullptr)
        .Bool("avx512_available", bitkernels::Avx512Kernels() != nullptr);
    out.Add(rec);
  }

  // Dense universes: the paper's item universes sit near 1k; 4096+ is
  // where the acceptance gate applies; 65536 shows the streaming regime.
  for (size_t bits : {1024u, 4096u, 16384u, 65536u}) {
    std::printf("== dense universe: %zu bits ==\n", static_cast<size_t>(bits));
    BenchDenseKernels(out, bits, 0.25);
  }

  // Sparse sorted-id intersections: balanced and skewed (galloping) shapes.
  std::printf("== sparse sorted-id intersections ==\n");
  BenchSparseIntersect(out, 65536, 512, 512);
  BenchSparseIntersect(out, 65536, 64, 8192);
  BenchSparseIntersect(out, 65536, 4096, 4096);

  if (!out.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", out.size(), out_path.c_str());

  // The acceptance gate: >= 2x on dense AND+popcount at >= 4096 bits is
  // asserted by inspection of the JSON (CI diffs the committed file).
  return 0;
}
