// Load-generator bench of the prediction-serving subsystem: closed-loop
// client threads drive the in-process service path (registry resolve +
// executor submit + wait — everything but the socket) and we record QPS,
// latency percentiles from the serving histogram, and shed counts per
// worker/client configuration. Emits BENCH_serve.json (argv[1] overrides
// the path); the committed bench/BENCH_serve.json is the reference record.
//
// Scaling caveat recorded in the JSON: per-row classify cost on the Tiny
// model is a few microseconds, so worker-count scaling is only visible
// when hardware parallelism exists. The `hw_threads` field captures what
// the reference machine had; on a single-core host the 8-worker
// configuration measures batching overhead-amortization, not CPU scaling.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

struct LoadResult {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double seconds = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  double mean_us = 0;

  double qps() const { return seconds > 0 ? ok / seconds : 0; }
};

struct Config {
  std::string name;
  uint32_t workers = 1;
  size_t queue = 256;
  int clients = 1;
  size_t rows_per_request = 1;
};

/// Closed loop: each client thread fires one request, waits, repeats until
/// the clock runs out. Offered load adapts to service rate, so the queue
/// stays near `clients` deep and shedding only appears when the queue is
/// deliberately undersized.
LoadResult RunLoad(const Config& config,
                   const std::shared_ptr<const ServableModel>& model,
                   const std::vector<std::vector<double>>& rows,
                   double duration_s) {
  PredictionService::Options options;
  options.workers = config.workers;
  options.queue_capacity = config.queue;
  PredictionService service(options);
  TOPKRGS_CHECK(service.registry().Insert(model).ok(), "insert failed");

  std::atomic<uint64_t> ok{0}, shed{0}, errors{0};
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  std::vector<std::thread> clients;
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      ParsedPredictRequest request;
      // Spread clients over the test rows so requests are not identical.
      for (size_t i = 0; i < config.rows_per_request; ++i) {
        request.rows.push_back(rows[(c + i) % rows.size()]);
      }
      while (std::chrono::steady_clock::now() < stop_at) {
        auto response_or = service.Predict(request);
        if (response_or.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (response_or.status().code() ==
                   StatusCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LoadResult result;
  result.ok = ok.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.seconds = elapsed;
  const auto snap = service.metrics().request_latency.Snap();
  result.p50_us = snap.PercentileMicros(50);
  result.p99_us = snap.PercentileMicros(99);
  result.mean_us = snap.MeanMicros();
  return result;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const double duration_s = PointBudgetSeconds(1.5);

  BenchDataset d = Load(DatasetProfile::Tiny(5));
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  opt.item_scores = d.pipeline.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(d.pipeline.train, opt);
  auto model_or =
      ServableModel::Create("default", "v1", d.pipeline.discretization,
                            std::move(clf), std::nullopt,
                            d.pipeline.discretization.num_items());
  if (!model_or.ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  auto model = model_or.value();

  std::vector<std::vector<double>> rows;
  for (RowId r = 0; r < d.data.test.num_rows(); ++r) {
    std::vector<double> row(d.data.test.num_genes());
    for (GeneId g = 0; g < d.data.test.num_genes(); ++g) {
      row[g] = d.data.test.value(r, g);
    }
    rows.push_back(std::move(row));
  }

  const std::vector<Config> configs = {
      {"1w_1c", 1, 256, 1, 1},
      {"2w_2c", 2, 256, 2, 1},
      {"4w_4c", 4, 256, 4, 1},
      {"8w_8c", 8, 256, 8, 1},
      {"8w_8c_batch16", 8, 256, 8, 16},
      // Deliberately undersized queue with more clients than slots: the
      // shedding path. A closed loop cannot overrun a large queue, so
      // shed_total stays 0 everywhere else.
      {"1w_16c_queue2", 1, 2, 16, 1},
  };

  JsonWriter writer;
  PrintTableHeader("config", {"qps", "p50_us", "p99_us", "shed"});
  double single_thread_qps = 0;
  for (const Config& config : configs) {
    const LoadResult result = RunLoad(config, model, rows, duration_s);
    if (config.name == "1w_1c") single_thread_qps = result.qps();
    char qps_buf[32], p50_buf[32], p99_buf[32], shed_buf[32];
    std::snprintf(qps_buf, sizeof(qps_buf), "%.0f", result.qps());
    std::snprintf(p50_buf, sizeof(p50_buf), "%llu",
                  static_cast<unsigned long long>(result.p50_us));
    std::snprintf(p99_buf, sizeof(p99_buf), "%llu",
                  static_cast<unsigned long long>(result.p99_us));
    std::snprintf(shed_buf, sizeof(shed_buf), "%llu",
                  static_cast<unsigned long long>(result.shed));
    PrintTableRow(config.name, {qps_buf, p50_buf, p99_buf, shed_buf});

    JsonRecord record;
    record.Str("bench", "serve_qps")
        .Str("config", config.name)
        .Int("workers", config.workers)
        .Int("clients", config.clients)
        .Int("queue_capacity", static_cast<long long>(config.queue))
        .Int("rows_per_request",
             static_cast<long long>(config.rows_per_request))
        .Num("duration_s", result.seconds)
        .Int("requests_ok", static_cast<long long>(result.ok))
        .Int("requests_shed", static_cast<long long>(result.shed))
        .Int("requests_error", static_cast<long long>(result.errors))
        .Num("qps", result.qps())
        .Num("rows_per_s",
             result.qps() * static_cast<double>(config.rows_per_request))
        .Num("speedup_vs_1w_1c",
             single_thread_qps > 0 ? result.qps() / single_thread_qps : 0)
        .Int("p50_us", static_cast<long long>(result.p50_us))
        .Int("p99_us", static_cast<long long>(result.p99_us))
        .Num("mean_us", result.mean_us)
        .Int("hw_threads",
             static_cast<long long>(std::thread::hardware_concurrency()))
        .Int("peak_rss_kb", PeakRssKb());
    writer.Add(record);
  }

  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", writer.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main(int argc, char** argv) { return topkrgs::bench::Main(argc, argv); }
