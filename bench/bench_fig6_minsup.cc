// Reproduces Figure 6 (a)-(d): runtime vs absolute minimum support on the
// four datasets, for MineTopkRGS (k = 1 and k = 100), FARMER (fixed minconf,
// original projected-table implementation), FARMER+prefix, FARMER with
// minconf = 0, CHARM (diffsets) and CLOSET+. Runtimes over the per-point
// budget print as DNF; lower-minsup points of an algorithm that already
// DNFed are skipped (">budget") because its runtime grows as minsup drops.

#include <functional>

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

struct Algo {
  std::string name;
  std::function<Cell(const DiscreteDataset&, uint32_t, Deadline)> run;
};

Cell RunTopk(const DiscreteDataset& data, uint32_t minsup, uint32_t k,
             Deadline deadline) {
  TopkMinerOptions opt;
  opt.k = k;
  opt.min_support = minsup;
  opt.deadline = deadline;
  const TopkResult result = MineTopkRGS(data, 1, opt);
  Cell cell;
  cell.seconds = result.stats.seconds;
  cell.dnf = result.stats.timed_out;
  cell.groups = result.DistinctGroups().size();
  return cell;
}

Cell RunFarmer(const DiscreteDataset& data, uint32_t minsup, double minconf,
               FarmerOptions::Backend backend, Deadline deadline) {
  FarmerOptions opt;
  opt.min_support = minsup;
  opt.min_confidence = minconf;
  opt.backend = backend;
  opt.deadline = deadline;
  const MiningResult result = MineFarmer(data, 1, opt);
  Cell cell;
  cell.seconds = result.stats.seconds;
  cell.dnf = result.stats.timed_out;
  cell.groups = result.stats.groups_emitted;
  return cell;
}

int Run() {
  const double budget = PointBudgetSeconds();
  std::printf("=== Figure 6 (a-d): runtime (s) vs minsup ===\n");
  std::printf("(per-point budget %.0fs; consequent = class 1)\n\n", budget);

  for (const DatasetProfile& profile : PaperProfiles()) {
    BenchDataset d = Load(profile);
    const DiscreteDataset& train = d.pipeline.train;
    const uint32_t class_rows = train.ClassCounts()[1];
    // The paper uses minconf 0.9 on ALL/LC and 0.9/0.95 on PC/OC because
    // FARMER is otherwise hopeless there.
    const double farmer_conf =
        (profile.name == "OC" || profile.name == "PC") ? 0.95 : 0.9;

    std::vector<Algo> algos;
    algos.push_back({"TopkRGS k=1",
                     [](const DiscreteDataset& data, uint32_t minsup,
                        Deadline dl) { return RunTopk(data, minsup, 1, dl); }});
    algos.push_back(
        {"TopkRGS k=100", [](const DiscreteDataset& data, uint32_t minsup,
                             Deadline dl) { return RunTopk(data, minsup, 100, dl); }});
    algos.push_back({"FARMER+prefix", [farmer_conf](const DiscreteDataset& data,
                                                    uint32_t minsup, Deadline dl) {
                       return RunFarmer(data, minsup, farmer_conf,
                                        FarmerOptions::Backend::kPrefixTree, dl);
                     }});
    char farmer_name[32];
    std::snprintf(farmer_name, sizeof(farmer_name), "FARMER c=%.2f",
                  farmer_conf);
    algos.push_back({farmer_name, [farmer_conf](const DiscreteDataset& data,
                                                uint32_t minsup, Deadline dl) {
                       return RunFarmer(data, minsup, farmer_conf,
                                        FarmerOptions::Backend::kVector, dl);
                     }});
    algos.push_back({"FARMER c=0", [](const DiscreteDataset& data,
                                      uint32_t minsup, Deadline dl) {
                       return RunFarmer(data, minsup, 0.0,
                                        FarmerOptions::Backend::kVector, dl);
                     }});
    algos.push_back({"CHARM", [](const DiscreteDataset& data, uint32_t minsup,
                                 Deadline dl) {
                       CharmOptions opt;
                       opt.min_support = minsup;
                       opt.materialize_rowsets = false;
                       opt.deadline = dl;
                       const MiningResult r = MineCharm(data, 1, opt);
                       return Cell{r.stats.seconds, r.stats.timed_out, false,
                                   r.stats.groups_emitted};
                     }});
    algos.push_back({"CLOSET+", [](const DiscreteDataset& data, uint32_t minsup,
                                   Deadline dl) {
                       ClosetOptions opt;
                       opt.min_support = minsup;
                       opt.materialize_rowsets = false;
                       opt.deadline = dl;
                       const MiningResult r = MineCloset(data, 1, opt);
                       return Cell{r.stats.seconds, r.stats.timed_out, false,
                                   r.stats.groups_emitted};
                     }});

    std::printf("--- Dataset %s (class-1 rows: %u, items: %u) ---\n",
                profile.name.c_str(), class_rows, train.num_items());
    std::vector<std::string> header;
    for (const Algo& algo : algos) header.push_back(algo.name);
    PrintTableHeader("minsup", header);

    std::vector<bool> dead(algos.size(), false);
    for (uint32_t minsup : MinsupSweep(class_rows)) {
      std::vector<std::string> cells;
      for (size_t a = 0; a < algos.size(); ++a) {
        Cell cell;
        if (dead[a]) {
          cell.skipped = true;
        } else {
          cell = algos[a].run(train, minsup, Deadline(budget));
          if (cell.dnf) dead[a] = true;
        }
        cells.push_back(cell.ToString());
      }
      PrintTableRow(std::to_string(minsup), cells);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: MineTopkRGS is insensitive to minsup and 2-3 orders of\n"
      "magnitude faster than FARMER; FARMER+prefix sits between them; CHARM\n"
      "and CLOSET+ cannot complete on these dimensionalities.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
