// Reproduces Figure 7: RCBT test accuracy as nl (the number of shortest
// lower bound rules used per rule group) varies, on ALL and LC. The paper
// observes flat curves once nl exceeds ~15.

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

int Run() {
  std::printf("=== Figure 7: RCBT accuracy vs nl (k = 10) ===\n\n");
  const std::vector<uint32_t> nls = {1, 5, 10, 15, 20, 25, 30};

  for (const DatasetProfile& profile :
       {DatasetProfile::ALL(), DatasetProfile::LC()}) {
    BenchDataset d = Load(profile);
    const Pipeline& p = d.pipeline;
    std::printf("--- Dataset %s ---\n", profile.name.c_str());
    PrintTableHeader("nl", {"accuracy", "default used"});
    for (uint32_t nl : nls) {
      RcbtOptions opt;
      opt.k = 10;
      opt.nl = nl;
      opt.min_support_frac = 0.7;
      opt.item_scores = p.item_scores;
      RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
      const EvalOutcome eval =
          EvaluateDiscrete(p.test, [&](const Bitset& items, bool* dflt) {
            const auto pred = clf.Predict(items);
            *dflt = pred.used_default;
            return pred.label;
          });
      char acc[32], dflt[32];
      std::snprintf(acc, sizeof(acc), "%.2f%%", 100.0 * eval.accuracy());
      std::snprintf(dflt, sizeof(dflt), "%u", eval.default_used);
      PrintTableRow(std::to_string(nl), {acc, dflt});
    }
    std::printf("\n");
  }
  std::printf("Paper shape: curves are flat for nl > 15.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
