// Reproduces Table 1: characteristics of the four gene expression datasets
// after entropy discretization (synthetic profiles of the same shape; see
// DESIGN.md §4 for the substitution rationale).

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

int Run() {
  std::printf("=== Table 1: Gene Expression Datasets ===\n");
  std::printf("%-8s %10s %12s %8s %8s %14s %7s %7s\n", "Dataset", "#Genes",
              "#GenesDisc", "#Items", "Class1", "Class0", "#Train", "#Test");
  for (const DatasetProfile& profile : PaperProfiles()) {
    BenchDataset d = Load(profile);
    const auto train_counts = d.pipeline.train.ClassCounts();
    char train_split[32];
    std::snprintf(train_split, sizeof(train_split), "%u (%u:%u)",
                  d.pipeline.train.num_rows(), train_counts[1],
                  train_counts[0]);
    std::printf("%-8s %10u %12u %8u %8u %14u %7s %7u\n", profile.name.c_str(),
                profile.num_genes, d.pipeline.discretization.num_selected_genes(),
                d.pipeline.discretization.num_items(), train_counts[1],
                train_counts[0], train_split, d.pipeline.test.num_rows());
  }
  std::printf(
      "\nPaper (real data): ALL 7129->866 genes, LC 12533->2173, "
      "OC 15154->5769, PC 12600->1554.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
