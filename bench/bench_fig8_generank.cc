// Reproduces Figure 8: the relationship between chi-square based gene ranks
// and how often each gene occurs in the shortest lower bound rules of the
// top-1 covering rule groups on the Prostate Cancer data. The paper finds
// that high-ranked genes dominate the rules but a tail of low-ranked genes
// still appears (their "supplementary information provider" observation).

#include <algorithm>
#include <map>
#include <numeric>

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

int Run() {
  std::printf("=== Figure 8: chi-square gene rank vs rule occurrences (PC) ===\n\n");
  BenchDataset d = Load(DatasetProfile::PC());
  const Pipeline& p = d.pipeline;
  const DiscreteDataset& train = p.train;
  const auto& disc = p.discretization;

  // Chi-square score per selected gene (best binary split), then rank
  // (1 = most discriminative).
  std::vector<uint8_t> labels(d.data.train.num_rows());
  for (RowId r = 0; r < d.data.train.num_rows(); ++r) {
    labels[r] = d.data.train.label(r);
  }
  const uint32_t num_sel = disc.num_selected_genes();
  std::vector<double> chi(num_sel);
  for (uint32_t s = 0; s < num_sel; ++s) {
    chi[s] = BestSplitChiSquare(d.data.train.GeneColumn(disc.selected_genes()[s]),
                                labels, d.data.train.num_classes());
  }
  std::vector<uint32_t> order(num_sel);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return chi[a] > chi[b]; });
  std::vector<uint32_t> rank_of(num_sel);  // selected-gene index -> rank (1-based)
  for (uint32_t r = 0; r < num_sel; ++r) rank_of[order[r]] = r + 1;

  // Selected-gene index per item.
  std::vector<uint32_t> item_selected(disc.num_items());
  {
    std::map<GeneId, uint32_t> sel_index;
    for (uint32_t s = 0; s < num_sel; ++s) sel_index[disc.selected_genes()[s]] = s;
    for (ItemId i = 0; i < disc.num_items(); ++i) {
      item_selected[i] = sel_index[disc.item(i).gene];
    }
  }

  // Top-1 covering rule groups of both classes; nl = 20 lower bounds each.
  std::vector<uint64_t> occurrences(num_sel, 0);
  std::vector<bool> in_top1(num_sel, false);
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    TopkMinerOptions mopt;
    mopt.k = 1;
    mopt.min_support = std::max<uint32_t>(
        1, static_cast<uint32_t>(0.7 * train.ClassCounts()[cls]));
    const TopkResult mined = MineTopkRGS(train, cls, mopt);
    FindLbOptions lopt;
    lopt.num_lower_bounds = 20;
    for (const RuleGroupPtr& group : mined.DistinctGroups()) {
      group->antecedent.ForEach(
          [&](size_t item) { in_top1[item_selected[item]] = true; });
      for (const Rule& lb :
           FindLowerBounds(train, *group, p.item_scores, lopt)) {
        lb.antecedent.ForEach(
            [&](size_t item) { ++occurrences[item_selected[item]]; });
      }
    }
  }

  uint32_t genes_in_top1 = 0;
  for (bool b : in_top1) genes_in_top1 += b;
  std::printf("Genes forming the top-1 covering rule groups: %u (paper: 415)\n\n",
              genes_in_top1);

  // Histogram: occurrences by chi-square rank decile of the selected genes.
  std::printf("Occurrences in shortest lower bound rules, by rank bucket:\n");
  PrintTableHeader("rank bucket", {"genes used", "occurrences"});
  const uint32_t bucket = std::max<uint32_t>(1, num_sel / 10);
  for (uint32_t lo = 0; lo < num_sel; lo += bucket) {
    const uint32_t hi = std::min(num_sel, lo + bucket);
    uint64_t occ = 0;
    uint32_t used = 0;
    for (uint32_t s = 0; s < num_sel; ++s) {
      if (rank_of[s] > lo && rank_of[s] <= hi) {
        occ += occurrences[s];
        used += occurrences[s] > 0;
      }
    }
    char label[32], used_s[32], occ_s[32];
    std::snprintf(label, sizeof(label), "%u-%u", lo + 1, hi);
    std::snprintf(used_s, sizeof(used_s), "%u", used);
    std::snprintf(occ_s, sizeof(occ_s), "%llu",
                  static_cast<unsigned long long>(occ));
    PrintTableRow(label, {used_s, occ_s});
  }

  // The most frequent genes (paper labels genes with > 200 occurrences).
  std::printf("\nMost frequent genes in lower bound rules:\n");
  std::vector<uint32_t> by_occ(num_sel);
  std::iota(by_occ.begin(), by_occ.end(), 0);
  std::sort(by_occ.begin(), by_occ.end(), [&](uint32_t a, uint32_t b) {
    return occurrences[a] > occurrences[b];
  });
  PrintTableHeader("gene", {"occurrences", "chi-sq rank"});
  for (uint32_t i = 0; i < std::min<uint32_t>(8, num_sel); ++i) {
    const uint32_t s = by_occ[i];
    if (occurrences[s] == 0) break;
    char occ_s[32], rank_s[32];
    std::snprintf(occ_s, sizeof(occ_s), "%llu",
                  static_cast<unsigned long long>(occurrences[s]));
    std::snprintf(rank_s, sizeof(rank_s), "%u", rank_of[s]);
    PrintTableRow(d.data.train.gene_name(disc.selected_genes()[s]),
                  {occ_s, rank_s});
  }
  std::printf(
      "\nPaper shape: most frequently used genes rank high by chi-square,\n"
      "with a visible tail of low-ranked genes acting as supplements.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
