// Micro benchmarks (google-benchmark) for the substrates the miners run on:
// bitset set algebra, prefix tree construction and projection, transposed
// table projection, entropy discretization and single-item closure.

#include <benchmark/benchmark.h>

#include "topkrgs/topkrgs.h"
#include "mine/projection.h"
#include "util/bitkernels.h"
#include "util/rowset.h"

namespace topkrgs {
namespace {

Bitset RandomBits(Rng& rng, size_t size, size_t bits) {
  Bitset b(size);
  for (size_t i = 0; i < bits; ++i) b.Set(rng.NextBounded(size));
  return b;
}

void BM_BitsetIntersectCount(benchmark::State& state) {
  Rng rng(1);
  const size_t size = static_cast<size_t>(state.range(0));
  Bitset a = RandomBits(rng, size, size / 4);
  Bitset b = RandomBits(rng, size, size / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(1024)->Arg(8192)->Arg(16384);

void BM_BitsetIsSubsetOf(benchmark::State& state) {
  Rng rng(2);
  const size_t size = static_cast<size_t>(state.range(0));
  Bitset big = RandomBits(rng, size, size / 2);
  Bitset small = big;
  // Remove half the elements so the subset test succeeds (worst case: a
  // full scan without early exit).
  size_t removed = 0;
  small.ForEach([&](size_t i) {
    if (++removed % 2 == 0) small.Reset(i);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
}
BENCHMARK(BM_BitsetIsSubsetOf)->Arg(1024)->Arg(8192)->Arg(16384);

// Same op as BM_BitsetIntersectCount but pinned to one kernel tier, so a
// benchmark diff shows what the dispatch actually buys on this machine.
// The "/0" variant is the blocked scalar reference; higher indices are the
// SIMD tiers when the CPU has them (skipped otherwise).
void BM_KernelAndPopcount(benchmark::State& state) {
  const bitkernels::Kernels* tiers[] = {
      &bitkernels::ScalarKernels(), bitkernels::Avx2Kernels(),
      bitkernels::Avx512Kernels()};
  const auto* k = tiers[state.range(1)];
  if (k == nullptr) {
    state.SkipWithError("SIMD tier unavailable on this CPU");
    return;
  }
  Rng rng(3);
  const size_t bits = static_cast<size_t>(state.range(0));
  Bitset a = RandomBits(rng, bits, bits / 4);
  Bitset b = RandomBits(rng, bits, bits / 4);
  const size_t words = (bits + 63) / 64;
  std::vector<uint64_t> wa(words), wb(words);
  for (size_t i = 0; i < bits; ++i) {
    if (a.Test(i)) wa[i / 64] |= uint64_t{1} << (i % 64);
    if (b.Test(i)) wb[i / 64] |= uint64_t{1} << (i % 64);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->and_popcount(wa.data(), wb.data(), words));
  }
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelAndPopcount)
    ->ArgsProduct({{4096, 16384}, {0, 1, 2}});

// Sorted-id intersection at the skew where RowSet keeps projections sparse:
// a small antecedent row list probed against a long item row list.
void BM_SortedIntersectCount(benchmark::State& state) {
  Rng rng(4);
  const size_t universe = 65536;
  const size_t small_n = static_cast<size_t>(state.range(0));
  Bitset small_bits = RandomBits(rng, universe, small_n);
  Bitset big_bits = RandomBits(rng, universe, universe / 8);
  const std::vector<uint32_t> a = small_bits.ToVector();
  const std::vector<uint32_t> b = big_bits.ToVector();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sorted::IntersectCount(a.data(), a.size(), b.data(), b.size()));
  }
}
BENCHMARK(BM_SortedIntersectCount)->Arg(64)->Arg(512)->Arg(4096);

// The adaptive projection step the miner runs per tree edge: intersect the
// current row set with an item's row bitset, re-choosing representation.
void BM_RowSetIntersectAdaptive(benchmark::State& state) {
  Rng rng(5);
  const size_t universe = 8192;
  const size_t count = static_cast<size_t>(state.range(0));
  RowSet rows = RowSet::FromBitset(RandomBits(rng, universe, count));
  Bitset item_rows = RandomBits(rng, universe, universe / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rows.IntersectAdaptive(item_rows));
  }
  state.SetLabel(rows.is_sparse() ? "sparse" : "dense");
}
BENCHMARK(BM_RowSetIntersectAdaptive)->Arg(16)->Arg(4096);

DiscreteDataset MakeMiningData(uint32_t rows, uint32_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ItemId>> r(rows);
  std::vector<ClassLabel> labels(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    for (ItemId item = 0; item < items; ++item) {
      if (rng.NextBool(0.4)) r[i].push_back(item);
    }
    labels[i] = rng.NextBool(0.5) ? 1 : 0;
  }
  return DiscreteDataset(items, std::move(r), std::move(labels));
}

void BM_PrefixTreeBuild(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  DiscreteDataset data = MakeMiningData(rows, 512, 3);
  const Bitset all = Bitset::AllSet(data.num_items());
  std::vector<RowId> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrefixTree::BuildRoot(data, order, all));
  }
}
BENCHMARK(BM_PrefixTreeBuild)->Arg(32)->Arg(128)->Arg(210);

void BM_PrefixTreeConditional(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  DiscreteDataset data = MakeMiningData(rows, 512, 4);
  const Bitset all = Bitset::AllSet(data.num_items());
  std::vector<RowId> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  PrefixTree tree = PrefixTree::BuildRoot(data, order, all);
  uint32_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Conditional(pos));
    pos = (pos + 1) % (rows / 2);
  }
}
BENCHMARK(BM_PrefixTreeConditional)->Arg(32)->Arg(128)->Arg(210);

// Arena-backed variants of the two prefix-tree benchmarks above. The
// "allocs_per_tree" counter is the allocation-count delta the arena buys:
// trees whose buffers missed the recycler, per tree built. Heap-backed
// construction pays 1.0 by definition; arena-backed construction should
// converge to ~0 once the pool is warm.
void BM_PrefixTreeBuildArena(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  DiscreteDataset data = MakeMiningData(rows, 512, 3);
  const Bitset all = Bitset::AllSet(data.num_items());
  std::vector<RowId> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  PrefixTree::Arena arena;
  size_t trees = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrefixTree::BuildRoot(data, order, all, &arena));
    ++trees;
  }
  state.counters["allocs_per_tree"] =
      trees > 0 ? static_cast<double>(arena.heap_allocations()) / trees : 0.0;
}
BENCHMARK(BM_PrefixTreeBuildArena)->Arg(32)->Arg(128)->Arg(210);

void BM_PrefixTreeConditionalArena(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  DiscreteDataset data = MakeMiningData(rows, 512, 4);
  const Bitset all = Bitset::AllSet(data.num_items());
  std::vector<RowId> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  PrefixTree tree = PrefixTree::BuildRoot(data, order, all);
  PrefixTree::Arena arena;
  uint32_t pos = 0;
  size_t trees = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Conditional(pos, &arena));
    pos = (pos + 1) % (rows / 2);
    ++trees;
  }
  state.counters["allocs_per_tree"] =
      trees > 0 ? static_cast<double>(arena.heap_allocations()) / trees : 0.0;
}
BENCHMARK(BM_PrefixTreeConditionalArena)->Arg(32)->Arg(128)->Arg(210);

void BM_VectorProjectionChild(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  DiscreteDataset data = MakeMiningData(rows, 512, 5);
  const Bitset all = Bitset::AllSet(data.num_items());
  std::vector<RowId> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  VectorProjection proj(&data, &order, all);
  uint32_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proj.Child(pos, {}));
    pos = (pos + 1) % (rows / 2);
  }
}
BENCHMARK(BM_VectorProjectionChild)->Arg(32)->Arg(128)->Arg(210);

void BM_EntropyDiscretizerFit(benchmark::State& state) {
  DatasetProfile profile = DatasetProfile::Tiny(6);
  profile.num_genes = static_cast<uint32_t>(state.range(0));
  profile.strong_genes = profile.num_genes / 16;
  profile.weak_genes = profile.num_genes / 4;
  GeneratedData data = GenerateMicroarray(profile);
  EntropyDiscretizer disc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disc.Fit(data.train));
  }
}
BENCHMARK(BM_EntropyDiscretizerFit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CloseItemset(benchmark::State& state) {
  DiscreteDataset data = MakeMiningData(128, 1024, 7);
  Bitset seed(data.num_items());
  seed.Set(3);
  seed.Set(700);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CloseItemset(data, seed, 1));
  }
}
BENCHMARK(BM_CloseItemset);

void BM_MineTopkRgsTiny(benchmark::State& state) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(8));
  Pipeline p = PreparePipeline(data.train, data.test);
  TopkMinerOptions opt;
  opt.k = static_cast<uint32_t>(state.range(0));
  opt.min_support =
      std::max<uint32_t>(1, 7 * p.train.ClassCounts()[1] / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineTopkRGS(p.train, 1, opt));
  }
}
BENCHMARK(BM_MineTopkRgsTiny)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace topkrgs

BENCHMARK_MAIN();
