// Reproduces Table 2: test-set classification accuracy of RCBT, CBA, the
// IRG classifier, the C4.5 family (single tree / bagging / boosting) and
// SVM (best of linear and polynomial kernels) on the four datasets, plus
// the average row and the default-class usage counts discussed in §6.2.

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double rcbt, cba, irg, c45, bagging, boosting, svm;
  EvalOutcome rcbt_eval, cba_eval;
};

double Pct(double v) { return 100.0 * v; }

int Run() {
  std::printf("=== Table 2: Classification accuracy (%%) ===\n");
  std::printf("(RCBT: k=10, nl=20; minsup = 0.7 x class size; IRG minconf 0.8; \n"
              " SVM reports the better of linear/polynomial kernels)\n\n");

  std::vector<Row> rows;
  for (const DatasetProfile& profile : PaperProfiles()) {
    BenchDataset d = Load(profile);
    const Pipeline& p = d.pipeline;
    Row row;
    row.dataset = profile.name;

    {
      RcbtOptions opt;
      opt.k = 10;
      opt.nl = 20;
      opt.min_support_frac = 0.7;
      opt.item_scores = p.item_scores;
      RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
      row.rcbt_eval =
          EvaluateDiscrete(p.test, [&](const Bitset& items, bool* dflt) {
            const auto pred = clf.Predict(items);
            *dflt = pred.used_default;
            return pred.label;
          });
      row.rcbt = row.rcbt_eval.accuracy();
    }
    {
      CbaOptions opt;
      opt.min_support_frac = 0.7;
      opt.item_scores = p.item_scores;
      CbaClassifier clf = TrainCba(p.train, opt);
      row.cba_eval =
          EvaluateDiscrete(p.test, [&](const Bitset& items, bool* dflt) {
            return clf.Predict(items, dflt);
          });
      row.cba = row.cba_eval.accuracy();
    }
    {
      IrgOptions opt;
      opt.min_support_frac = 0.7;
      opt.min_confidence = 0.8;
      CbaClassifier clf = TrainIrg(p.train, opt);
      row.irg = EvaluateDiscrete(p.test, [&](const Bitset& items, bool* dflt) {
                  return clf.Predict(items, dflt);
                }).accuracy();
    }
    {
      DecisionTree tree = DecisionTree::Train(p.train_selected, {}, {});
      row.c45 = EvaluateContinuous(p.test_selected, [&](const auto& x) {
                  return tree.Predict(x);
                }).accuracy();
    }
    {
      BaggingClassifier::Options opt;
      opt.num_trees = 10;
      BaggingClassifier clf = BaggingClassifier::Train(p.train_selected, opt);
      row.bagging = EvaluateContinuous(p.test_selected, [&](const auto& x) {
                      return clf.Predict(x);
                    }).accuracy();
    }
    {
      AdaBoostClassifier::Options opt;
      opt.num_rounds = 10;
      AdaBoostClassifier clf = AdaBoostClassifier::Train(p.train_selected, opt);
      row.boosting = EvaluateContinuous(p.test_selected, [&](const auto& x) {
                       return clf.Predict(x);
                     }).accuracy();
    }
    {
      SvmClassifier::Options lin;
      SvmClassifier::Options poly;
      poly.kernel = SvmClassifier::Kernel::kPolynomial;
      poly.poly_degree = 3;
      const SvmClassifier clf_lin = SvmClassifier::Train(p.train_selected, lin);
      const SvmClassifier clf_poly =
          SvmClassifier::Train(p.train_selected, poly);
      const double acc_lin =
          EvaluateContinuous(p.test_selected, [&](const auto& x) {
            return clf_lin.Predict(x);
          }).accuracy();
      const double acc_poly =
          EvaluateContinuous(p.test_selected, [&](const auto& x) {
            return clf_poly.Predict(x);
          }).accuracy();
      row.svm = std::max(acc_lin, acc_poly);
    }
    rows.push_back(row);
  }

  PrintTableHeader("Dataset", {"RCBT", "CBA", "IRG", "C4.5", "Bagging",
                               "Boosting", "SVM"});
  double sums[7] = {0};
  for (const Row& r : rows) {
    char cells[7][32];
    const double vals[7] = {r.rcbt, r.cba,      r.irg, r.c45,
                            r.bagging, r.boosting, r.svm};
    std::vector<std::string> strs;
    for (int i = 0; i < 7; ++i) {
      std::snprintf(cells[i], sizeof(cells[i]), "%.2f%%", Pct(vals[i]));
      sums[i] += vals[i];
      strs.push_back(cells[i]);
    }
    PrintTableRow(r.dataset, strs);
  }
  {
    std::vector<std::string> avg;
    for (double s : sums) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f%%", Pct(s / rows.size()));
      avg.push_back(buf);
    }
    PrintTableRow("Average", avg);
  }

  std::printf("\nDefault-class usage (test rows classified by default class):\n");
  std::printf("%-8s %22s %22s\n", "Dataset", "RCBT used (errors)",
              "CBA used (errors)");
  for (const Row& r : rows) {
    std::printf("%-8s %14u (%u)%5s %14u (%u)\n", r.dataset.c_str(),
                r.rcbt_eval.default_used, r.rcbt_eval.default_errors, "",
                r.cba_eval.default_used, r.cba_eval.default_errors);
  }
  std::printf(
      "\nPaper shape: RCBT has the highest average accuracy; C4.5 family\n"
      "collapses on PC; RCBT resolves most rows without the default class.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
