// Ablation A2 (DESIGN.md): the effect of the row enumeration order on
// MineTopkRGS. The paper sorts rows in class dominant order with ascending
// frequent-item counts within each class (§4.1.2) and calls class dominance
// essential for the confidence-based pruning.

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

int Run() {
  const double budget = PointBudgetSeconds(20.0);
  std::printf("=== Ablation A2: row enumeration order ===\n");
  std::printf("(k = 10, minsup = 0.8 x class size, budget %.0fs/point)\n\n",
              budget);

  const std::vector<std::pair<std::string, TopkMinerOptions::RowOrder>> orders =
      {{"class-dom + weight", TopkMinerOptions::RowOrder::kClassDominantWeighted},
       {"class-dominant", TopkMinerOptions::RowOrder::kClassDominant},
       {"natural order", TopkMinerOptions::RowOrder::kNatural}};

  for (const DatasetProfile& profile :
       {DatasetProfile::ALL(), DatasetProfile::PC()}) {
    BenchDataset d = Load(profile);
    const DiscreteDataset& train = d.pipeline.train;
    const uint32_t minsup = std::max<uint32_t>(
        1, static_cast<uint32_t>(0.8 * train.ClassCounts()[1]));

    std::printf("--- Dataset %s (minsup = %u) ---\n", profile.name.c_str(),
                minsup);
    PrintTableHeader("row order", {"seconds", "nodes"});
    for (const auto& [name, order] : orders) {
      TopkMinerOptions opt;
      opt.k = 10;
      opt.min_support = minsup;
      opt.row_order = order;
      opt.deadline = Deadline(budget);  // fresh budget per variant
      const TopkResult r = MineTopkRGS(train, 1, opt);
      char secs[32], nodes[32];
      std::snprintf(secs, sizeof(secs), "%s%.3f",
                    r.stats.timed_out ? ">" : "", r.stats.seconds);
      std::snprintf(nodes, sizeof(nodes), "%llu",
                    static_cast<unsigned long long>(r.stats.nodes_visited));
      PrintTableRow(name, {secs, nodes});
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
