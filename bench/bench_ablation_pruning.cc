// Ablation A1 (DESIGN.md): contribution of MineTopkRGS's individual design
// choices — top-k pruning, the prefix tree backend, backward pruning, the
// bound pruning, single-item seeding and the dynamic minsup raise — on the
// ALL and PC datasets. Every variant returns identical top-k lists (the
// test suite proves it); only the work differs.

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

struct Variant {
  std::string name;
  TopkMinerOptions opt;
};

int Run() {
  const double budget = PointBudgetSeconds(20.0);
  std::printf("=== Ablation A1: MineTopkRGS pruning strategies ===\n");
  std::printf("(k = 10, minsup = 0.8 x class size, budget %.0fs/point)\n\n",
              budget);

  for (const DatasetProfile& profile :
       {DatasetProfile::ALL(), DatasetProfile::PC()}) {
    BenchDataset d = Load(profile);
    const DiscreteDataset& train = d.pipeline.train;
    TopkMinerOptions base;
    base.k = 10;
    base.min_support = std::max<uint32_t>(
        1, static_cast<uint32_t>(0.8 * train.ClassCounts()[1]));

    std::vector<Variant> variants;
    variants.push_back({"full (paper)", base});
    {
      TopkMinerOptions o = base;
      o.backend = TopkMinerOptions::Backend::kVector;
      variants.push_back({"no prefix tree", o});
    }
    {
      TopkMinerOptions o = base;
      o.backend = TopkMinerOptions::Backend::kBitset;
      variants.push_back({"bitset backend", o});
    }
    {
      TopkMinerOptions o = base;
      o.use_topk_pruning = false;
      variants.push_back({"no top-k pruning", o});
    }
    {
      TopkMinerOptions o = base;
      o.use_backward_pruning = false;
      variants.push_back({"no backward prune", o});
    }
    {
      TopkMinerOptions o = base;
      o.use_bound_pruning = false;
      variants.push_back({"no bound pruning", o});
    }
    {
      TopkMinerOptions o = base;
      o.seed_single_items = false;
      variants.push_back({"no item seeding", o});
    }
    {
      TopkMinerOptions o = base;
      o.dynamic_min_support = false;
      variants.push_back({"no dynamic minsup", o});
    }

    std::printf("--- Dataset %s (minsup = %u) ---\n", profile.name.c_str(),
                base.min_support);
    PrintTableHeader("variant", {"seconds", "nodes", "bound prunes",
                                 "backward prunes"});
    for (const Variant& v : variants) {
      TopkMinerOptions opt = v.opt;
      opt.deadline = Deadline(budget);  // fresh budget per variant
      const TopkResult r = MineTopkRGS(train, 1, opt);
      char secs[32], nodes[32], bounds[32], back[32];
      std::snprintf(secs, sizeof(secs), "%s%.3f",
                    r.stats.timed_out ? ">" : "", r.stats.seconds);
      std::snprintf(nodes, sizeof(nodes), "%llu",
                    static_cast<unsigned long long>(r.stats.nodes_visited));
      std::snprintf(bounds, sizeof(bounds), "%llu",
                    static_cast<unsigned long long>(r.stats.pruned_bounds));
      std::snprintf(back, sizeof(back), "%llu",
                    static_cast<unsigned long long>(r.stats.pruned_backward));
      PrintTableRow(v.name, {secs, nodes, bounds, back});
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
