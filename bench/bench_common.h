#ifndef TOPKRGS_BENCH_BENCH_COMMON_H_
#define TOPKRGS_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "topkrgs/topkrgs.h"

namespace topkrgs {
namespace bench {

/// One fully prepared dataset: generated, discretized, all views derived.
struct BenchDataset {
  DatasetProfile profile;
  GeneratedData data;
  Pipeline pipeline;
};

inline BenchDataset Load(const DatasetProfile& profile) {
  BenchDataset d;
  d.profile = profile;
  d.data = GenerateMicroarray(profile);
  d.pipeline = PreparePipeline(d.data.train, d.data.test);
  return d;
}

/// Per-measurement wall-clock budget in seconds; override with the
/// TOPKRGS_BENCH_BUDGET_S environment variable. Algorithms exceeding it are
/// reported as DNF, mirroring the paper's treatment of FARMER / CHARM /
/// CLOSET+ runs that "cannot finish in several hours".
inline double PointBudgetSeconds(double fallback = 10.0) {
  const char* env = std::getenv("TOPKRGS_BENCH_BUDGET_S");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Absolute minsup values derived from the class-1 training count for the
/// paper's relative range (95% down to 70%).
inline std::vector<uint32_t> MinsupSweep(uint32_t class_rows) {
  std::vector<uint32_t> out;
  for (double frac : {0.95, 0.90, 0.85, 0.80, 0.75, 0.70}) {
    const uint32_t v =
        std::max<uint32_t>(1, static_cast<uint32_t>(frac * class_rows));
    if (out.empty() || out.back() != v) out.push_back(v);
  }
  return out;
}

/// One measured point: seconds, or DNF (exceeded budget), or skipped
/// (a higher-minsup point already DNFed; runtime grows as minsup drops).
struct Cell {
  double seconds = 0.0;
  bool dnf = false;
  bool skipped = false;
  uint64_t groups = 0;

  std::string ToString() const {
    char buf[48];
    if (skipped) {
      std::snprintf(buf, sizeof(buf), ">budget");
    } else if (dnf) {
      std::snprintf(buf, sizeof(buf), "DNF");
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f", seconds);
    }
    return buf;
  }
};

inline void PrintTableHeader(const std::string& first_col,
                             const std::vector<std::string>& columns) {
  std::printf("%-12s", first_col.c_str());
  for (const auto& col : columns) std::printf(" %14s", col.c_str());
  std::printf("\n");
  std::printf("%-12s", "------------");
  for (size_t i = 0; i < columns.size(); ++i) std::printf(" %14s", "--------------");
  std::printf("\n");
}

inline void PrintTableRow(const std::string& label,
                          const std::vector<std::string>& cells) {
  std::printf("%-12s", label.c_str());
  for (const auto& cell : cells) std::printf(" %14s", cell.c_str());
  std::printf("\n");
}

/// Peak resident set size of this process in KiB. Reads VmHWM from
/// /proc/self/status so that ResetPeakRss() below actually moves it;
/// falls back to process-lifetime getrusage ru_maxrss (same units) when
/// /proc is unavailable.
inline long PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return usage.ru_maxrss;
}

/// Returns freed heap pages to the kernel (so a later peak reflects live
/// allocations, not allocator caching) and resets the kernel's peak-RSS
/// high-water mark ("5" into /proc/self/clear_refs). Call between sweep
/// cases to isolate their peak_rss_kb; without this every record reports
/// the accumulated lifetime maximum of all cases before it. Returns
/// false when the platform offers no reset (the getrusage fallback);
/// callers should then treat peaks as monotone lifetime values again.
inline bool ResetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
}

/// Machine-readable perf-regression records: one flat JSON object per
/// measurement, emitted as a JSON array. Kept to scalar fields on purpose —
/// diffing two BENCH_*.json files in CI needs no schema knowledge.
class JsonRecord {
 public:
  JsonRecord& Str(const std::string& key, const std::string& value) {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return Raw(key, "\"" + escaped + "\"");
  }
  JsonRecord& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonRecord& Int(const std::string& key, long long value) {
    return Raw(key, std::to_string(value));
  }
  JsonRecord& Bool(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  /// Every MinerStats field the harness regresses on, under one prefix.
  JsonRecord& Stats(const MinerStats& stats) {
    Int("nodes_visited", static_cast<long long>(stats.nodes_visited));
    Int("groups_emitted", static_cast<long long>(stats.groups_emitted));
    Int("pruned_bounds", static_cast<long long>(stats.pruned_bounds));
    Int("pruned_backward", static_cast<long long>(stats.pruned_backward));
    Int("tasks_executed", static_cast<long long>(stats.tasks_executed));
    Int("tasks_spawned", static_cast<long long>(stats.tasks_spawned));
    Int("tasks_stolen", static_cast<long long>(stats.tasks_stolen));
    Bool("timed_out", stats.timed_out);
    return *this;
  }

  std::string ToString() const { return "{" + body_ + "}"; }

 private:
  JsonRecord& Raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + key + "\": " + value;
    return *this;
  }
  std::string body_;
};

/// Accumulates records and writes them as a pretty-enough JSON array.
class JsonWriter {
 public:
  void Add(const JsonRecord& record) { records_.push_back(record.ToString()); }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("[\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

  size_t size() const { return records_.size(); }

 private:
  std::vector<std::string> records_;
};

}  // namespace bench
}  // namespace topkrgs

#endif  // TOPKRGS_BENCH_BENCH_COMMON_H_
