#ifndef TOPKRGS_BENCH_BENCH_COMMON_H_
#define TOPKRGS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "topkrgs/topkrgs.h"

namespace topkrgs {
namespace bench {

/// One fully prepared dataset: generated, discretized, all views derived.
struct BenchDataset {
  DatasetProfile profile;
  GeneratedData data;
  Pipeline pipeline;
};

inline BenchDataset Load(const DatasetProfile& profile) {
  BenchDataset d;
  d.profile = profile;
  d.data = GenerateMicroarray(profile);
  d.pipeline = PreparePipeline(d.data.train, d.data.test);
  return d;
}

/// Per-measurement wall-clock budget in seconds; override with the
/// TOPKRGS_BENCH_BUDGET_S environment variable. Algorithms exceeding it are
/// reported as DNF, mirroring the paper's treatment of FARMER / CHARM /
/// CLOSET+ runs that "cannot finish in several hours".
inline double PointBudgetSeconds(double fallback = 10.0) {
  const char* env = std::getenv("TOPKRGS_BENCH_BUDGET_S");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Absolute minsup values derived from the class-1 training count for the
/// paper's relative range (95% down to 70%).
inline std::vector<uint32_t> MinsupSweep(uint32_t class_rows) {
  std::vector<uint32_t> out;
  for (double frac : {0.95, 0.90, 0.85, 0.80, 0.75, 0.70}) {
    const uint32_t v =
        std::max<uint32_t>(1, static_cast<uint32_t>(frac * class_rows));
    if (out.empty() || out.back() != v) out.push_back(v);
  }
  return out;
}

/// One measured point: seconds, or DNF (exceeded budget), or skipped
/// (a higher-minsup point already DNFed; runtime grows as minsup drops).
struct Cell {
  double seconds = 0.0;
  bool dnf = false;
  bool skipped = false;
  uint64_t groups = 0;

  std::string ToString() const {
    char buf[48];
    if (skipped) {
      std::snprintf(buf, sizeof(buf), ">budget");
    } else if (dnf) {
      std::snprintf(buf, sizeof(buf), "DNF");
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f", seconds);
    }
    return buf;
  }
};

inline void PrintTableHeader(const std::string& first_col,
                             const std::vector<std::string>& columns) {
  std::printf("%-12s", first_col.c_str());
  for (const auto& col : columns) std::printf(" %14s", col.c_str());
  std::printf("\n");
  std::printf("%-12s", "------------");
  for (size_t i = 0; i < columns.size(); ++i) std::printf(" %14s", "--------------");
  std::printf("\n");
}

inline void PrintTableRow(const std::string& label,
                          const std::vector<std::string>& cells) {
  std::printf("%-12s", label.c_str());
  for (const auto& cell : cells) std::printf(" %14s", cell.c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace topkrgs

#endif  // TOPKRGS_BENCH_BENCH_COMMON_H_
