// Out-of-core scale benchmark (DESIGN.md §14): streaming ingest rate,
// tkds conversion, and the sharded mining engine under a memory budget.
//
// Emits bench/BENCH_scale.json records of three kinds:
//   kind=ingest   — streamed item-data parse: rows/s and peak RSS
//   kind=convert  — tkds serialization + mmap open round trip
//   kind=mine     — sharded mining at a given shard count; every record
//                   carries the output digest and a `deterministic` flag
//                   (digest equals the shard_count=1 baseline), which
//                   tools/lint/rss_gate.py gates on, together with
//                   peak_rss_kb <= memory_budget_bytes.
//
// The reduced profile runs by default (CI's scale stage); set
// TOPKRGS_BENCH_SCALE_FULL=1 to add the 100k x 10k headline profile.
// Rows that exceed the point budget are marked timed_out and skipped by
// the gate with a notice, never silently dropped.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/topkrgs_bench_" + name;
}

struct ScaleCase {
  ScaleProfile profile;
  std::vector<uint32_t> shard_counts;
};

void RunCase(const ScaleCase& c, JsonWriter* out) {
  const ScaleProfile& p = c.profile;
  const uint32_t minsup = p.SuggestedMinSupport();
  const uint32_t threads = std::max(1u, std::thread::hardware_concurrency());
  const std::string items_path = TempPath(p.name + ".items");

  std::printf("=== %s: %" PRIu64 " rows x %u items (minsup %u)\n",
              p.name.c_str(), p.rows, p.num_items, minsup);

  // --- streaming generation + ingest ---------------------------------
  {
    Stopwatch timer;
    const Status written = WriteScaleItemData(p, items_path);
    TOPKRGS_CHECK(written.ok(), written.message().c_str());
    const double write_s = timer.ElapsedSeconds();
    std::printf("  generate: %.2fs (%.0f rows/s)\n", write_s,
                static_cast<double>(p.rows) / write_s);
  }

  ResetPeakRss();
  StreamedTable table;
  {
    Stopwatch timer;
    auto table_or = StreamReader::ReadItemData(items_path);
    TOPKRGS_CHECK(table_or.ok(), table_or.status().ToString().c_str());
    table = std::move(table_or).value();
    const double ingest_s = timer.ElapsedSeconds();
    const long peak_kb = PeakRssKb();
    std::printf("  ingest:   %.2fs (%.0f rows/s), nnz %" PRIu64
                ", peak RSS %ld KiB\n",
                ingest_s, static_cast<double>(p.rows) / ingest_s, table.nnz(),
                peak_kb);
    JsonRecord rec;
    rec.Str("kind", "ingest")
        .Str("profile", p.name)
        .Int("rows", static_cast<long long>(p.rows))
        .Int("items", p.num_items)
        .Int("nnz", static_cast<long long>(table.nnz()))
        .Num("seconds", ingest_s)
        .Num("rows_per_s", static_cast<double>(p.rows) / ingest_s)
        .Int("peak_rss_kb", peak_kb);
    out->Add(rec);
  }

  // --- tkds conversion round trip ------------------------------------
  const std::string tkds_path = TempPath(p.name + ".tkds");
  {
    Stopwatch timer;
    const Status written = WriteTkds(table, tkds_path);
    TOPKRGS_CHECK(written.ok(), written.message().c_str());
    auto mapped_or = MmapDataset::Open(tkds_path);
    TOPKRGS_CHECK(mapped_or.ok(), mapped_or.status().ToString().c_str());
    const double convert_s = timer.ElapsedSeconds();
    std::printf("  convert:  %.2fs, %zu mapped bytes\n", convert_s,
                mapped_or.value().mapped_bytes());
    JsonRecord rec;
    rec.Str("kind", "convert")
        .Str("profile", p.name)
        .Int("rows", static_cast<long long>(p.rows))
        .Int("items", p.num_items)
        .Num("seconds", convert_s)
        .Int("mapped_bytes",
             static_cast<long long>(mapped_or.value().mapped_bytes()));
    out->Add(rec);
  }

  // --- sharded mining sweep ------------------------------------------
  // Budget: twice the planner's working-set floor — far below the
  // row-major double matrix the streaming path never materializes.
  const TransposedView view = table.View();
  uint64_t budget = 0;
  {
    ShardPlanOptions probe;
    probe.k = 3;
    probe.min_support = minsup;
    auto plan_or = PlanShards(view, 1, probe);
    TOPKRGS_CHECK(plan_or.ok(), plan_or.status().ToString().c_str());
    budget = 2 * plan_or.value().estimated_peak_bytes;
  }
  const uint64_t materialized_bytes = p.rows * p.num_items * sizeof(double);
  const double point_budget = PointBudgetSeconds(120.0);

  uint64_t baseline_digest = 0;
  bool have_baseline = false;
  for (const uint32_t shards : c.shard_counts) {
    ShardPlanOptions plan_opt;
    plan_opt.k = 3;
    plan_opt.min_support = minsup;
    plan_opt.shard_count = shards;
    plan_opt.memory_budget_bytes = budget;
    ShardMineOptions mine_opt;
    mine_opt.threads = threads;
    mine_opt.deadline = Deadline(point_budget);

    ResetPeakRss();
    ShardPlan plan;
    Stopwatch timer;
    auto merged_or = MineShardedTopkRGS(view, 1, plan_opt, mine_opt, &plan);
    TOPKRGS_CHECK(merged_or.ok(), merged_or.status().ToString().c_str());
    const MergedTopk& merged = merged_or.value();
    const double mine_s = timer.ElapsedSeconds();
    const long peak_kb = PeakRssKb();
    const uint64_t digest =
        TopkDigest(merged.per_row, merged.effective_min_support);
    if (!have_baseline && !merged.stats.timed_out) {
      baseline_digest = digest;
      have_baseline = true;
    }
    const bool deterministic =
        have_baseline && !merged.stats.timed_out && digest == baseline_digest;
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64, digest);
    std::printf("  mine x%-3u: %.2fs, %zu shard(s), eff minsup %u, peak RSS "
                "%ld KiB / budget %" PRIu64 " KiB, digest %s%s\n",
                shards, mine_s, plan.shards.size(),
                merged.effective_min_support, peak_kb, budget / 1024,
                digest_hex, merged.stats.timed_out ? " (TIMED OUT)" : "");

    JsonRecord rec;
    rec.Str("kind", "mine")
        .Str("profile", p.name)
        .Int("rows", static_cast<long long>(p.rows))
        .Int("items", p.num_items)
        .Int("shard_count", shards)
        .Int("shards_planned", static_cast<long long>(plan.shards.size()))
        .Int("threads", threads)
        .Int("k", 3)
        .Int("min_support", minsup)
        .Int("effective_min_support", merged.effective_min_support)
        .Num("seconds", mine_s)
        .Int("peak_rss_kb", peak_kb)
        .Int("memory_budget_bytes", static_cast<long long>(budget))
        .Int("materialized_bytes", static_cast<long long>(materialized_bytes))
        .Str("digest", digest_hex)
        .Bool("deterministic", deterministic)
        .Stats(merged.stats);
    out->Add(rec);
  }

  std::remove(items_path.c_str());
  std::remove(tkds_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main(int argc, char** argv) {
  using namespace topkrgs;
  using namespace topkrgs::bench;

  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  std::vector<ScaleCase> cases;
  cases.push_back({ScaleProfile::Reduced(), {1, 2, 4, 8}});
  if (std::getenv("TOPKRGS_BENCH_SCALE_FULL") != nullptr) {
    cases.push_back({ScaleProfile::Full(), {1, 2, 4, 8}});
  } else {
    std::printf("(set TOPKRGS_BENCH_SCALE_FULL=1 to add the 100k x 10k "
                "profile)\n");
  }

  JsonWriter writer;
  for (const ScaleCase& c : cases) RunCase(c, &writer);

  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", writer.size(), out_path.c_str());
  return 0;
}
