// Ablation A3 (DESIGN.md): the contribution of entropy-MDL discretization.
// The paper's pipeline uses Fayyad-Irani cuts (which are class-aware and
// double as feature selection); this compares downstream RCBT accuracy and
// the mining surface (items, selected genes) against unsupervised
// equal-width and equal-frequency binning on the same data.

#include "bench_common.h"
#include "discretize/binning.h"

namespace topkrgs {
namespace bench {
namespace {

struct DiscretizerRow {
  std::string name;
  ContinuousDataset train;
  ContinuousDataset test;
  Discretization disc;
};

/// Top `count` genes by training variance — the filter a typical
/// unsupervised pipeline applies before binning (binning all 7-15k genes
/// would flood the miner with tens of thousands of noise items).
std::vector<GeneId> TopVarianceGenes(const ContinuousDataset& train,
                                     uint32_t count) {
  std::vector<std::pair<double, GeneId>> scored;
  for (GeneId g = 0; g < train.num_genes(); ++g) {
    double mean = 0.0;
    for (RowId r = 0; r < train.num_rows(); ++r) mean += train.value(r, g);
    mean /= train.num_rows();
    double var = 0.0;
    for (RowId r = 0; r < train.num_rows(); ++r) {
      const double d = train.value(r, g) - mean;
      var += d * d;
    }
    scored.push_back({var, g});
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<GeneId> genes;
  for (uint32_t i = 0; i < count && i < scored.size(); ++i) {
    genes.push_back(scored[i].second);
  }
  std::sort(genes.begin(), genes.end());
  return genes;
}

int Run() {
  std::printf("=== Ablation A3: discretization strategy ===\n");
  std::printf("(RCBT k=10, nl=20, minsup 0.7 x class; unsupervised binning\n"
              " runs on the top-500 genes by variance, the usual filter)\n\n");

  for (const DatasetProfile& profile :
       {DatasetProfile::ALL(), DatasetProfile::PC()}) {
    GeneratedData data = GenerateMicroarray(profile);
    const std::vector<GeneId> top_var = TopVarianceGenes(data.train, 500);
    const ContinuousDataset train_var = SelectGenes(data.train, top_var);
    const ContinuousDataset test_var = SelectGenes(data.test, top_var);

    std::vector<DiscretizerRow> rows;
    rows.push_back({"entropy-MDL", data.train, data.test,
                    EntropyDiscretizer().Fit(data.train)});
    rows.push_back({"equal-width x2", train_var, test_var,
                    FitEqualWidth(train_var, 2)});
    rows.push_back({"equal-freq x2", train_var, test_var,
                    FitEqualFrequency(train_var, 2)});
    rows.push_back({"ChiMerge", train_var, test_var,
                    FitChiMerge(train_var)});

    std::printf("--- Dataset %s ---\n", profile.name.c_str());
    PrintTableHeader("discretizer",
                     {"genes", "items", "accuracy", "default used"});
    for (const DiscretizerRow& row : rows) {
      const DiscreteDataset train = row.disc.Apply(row.train);
      const DiscreteDataset test = row.disc.Apply(row.test);
      RcbtOptions opt;
      opt.k = 10;
      opt.nl = 20;
      opt.min_support_frac = 0.7;
      RcbtClassifier clf = RcbtClassifier::Train(train, opt);
      const EvalOutcome eval =
          EvaluateDiscrete(test, [&](const Bitset& items, bool* dflt) {
            const auto pred = clf.Predict(items);
            *dflt = pred.used_default;
            return pred.label;
          });
      char genes[32], items[32], acc[32], dflt[32];
      std::snprintf(genes, sizeof(genes), "%u", row.disc.num_selected_genes());
      std::snprintf(items, sizeof(items), "%u", row.disc.num_items());
      std::snprintf(acc, sizeof(acc), "%.2f%%", 100.0 * eval.accuracy());
      std::snprintf(dflt, sizeof(dflt), "%u", eval.default_used);
      PrintTableRow(row.name, {genes, items, acc, dflt});
    }
    std::printf("\n");
  }
  std::printf(
      "The supervised discretizers (entropy-MDL, ChiMerge) place class-aware\n"
      "cuts and survive the batch-shifted PC data; the variance-filtered\n"
      "unsupervised bins collapse. What matters is class-aware cut placement,\n"
      "not the particular statistic.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
