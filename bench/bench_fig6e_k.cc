// Reproduces Figure 6 (e): MineTopkRGS runtime as the number of covering
// rule groups per row (k) grows, on the ALL and PC datasets.

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

int Run() {
  const double budget = PointBudgetSeconds(60.0);
  std::printf("=== Figure 6 (e): MineTopkRGS runtime (s) vs k ===\n\n");
  const std::vector<uint32_t> ks = {1, 20, 40, 60, 80, 100};

  for (const DatasetProfile& profile :
       {DatasetProfile::ALL(), DatasetProfile::PC()}) {
    BenchDataset d = Load(profile);
    const DiscreteDataset& train = d.pipeline.train;
    const uint32_t minsup = std::max<uint32_t>(
        1, static_cast<uint32_t>(0.8 * train.ClassCounts()[1]));

    std::printf("--- Dataset %s (minsup = %u) ---\n", profile.name.c_str(),
                minsup);
    PrintTableHeader("k", {"seconds", "nodes", "distinct groups"});
    for (uint32_t k : ks) {
      TopkMinerOptions opt;
      opt.k = k;
      opt.min_support = minsup;
      opt.deadline = Deadline(budget);
      const TopkResult result = MineTopkRGS(train, 1, opt);
      char secs[32], nodes[32], groups[32];
      std::snprintf(secs, sizeof(secs), "%s%.3f",
                    result.stats.timed_out ? ">" : "", result.stats.seconds);
      std::snprintf(nodes, sizeof(nodes), "%llu",
                    static_cast<unsigned long long>(result.stats.nodes_visited));
      std::snprintf(groups, sizeof(groups), "%zu",
                    result.DistinctGroups().size());
      PrintTableRow(std::to_string(k), {secs, nodes, groups});
    }
    std::printf("\n");
  }
  std::printf("Paper shape: runtime grows monotonically with k.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main() { return topkrgs::bench::Run(); }
