// Perf-regression harness of the parallel MineTopkRGS: wall time, peak RSS
// and pruning counters over the paper's dataset profiles, thread counts
// {1, 2, 4, 8} and k in {10, 100}, plus a pruning-toggle ablation. Emits a
// machine-readable JSON array (BENCH_topk.json by default, argv[1] to
// override); the committed bench/BENCH_topk.json is the reference record a
// regression run diffs against.
//
// peak_rss_kb is isolated per case: the harness trims the allocator and
// resets the kernel's RSS high-water mark before every run (see
// ResetPeakRss in bench_common.h), so each record reports that case's own
// footprint rather than the sweep's accumulated maximum. rss_isolated
// records whether the reset worked on this platform.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace topkrgs {
namespace bench {
namespace {

/// Order-sensitive digest of a mining result: any change to any per-row
/// list, group content or the derived threshold changes the digest. Runs at
/// different thread counts must agree — the digest makes the determinism
/// contract auditable from the JSON alone.
uint64_t ResultDigest(const TopkResult& result) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(result.effective_min_support);
  for (const auto& list : result.per_row) {
    mix(list.size());
    for (const auto& g : list) {
      mix(g->antecedent.Hash());
      mix(g->support);
      mix(g->antecedent_support);
      mix(g->row_support.Hash());
    }
  }
  return h;
}

/// Whether ResetPeakRss() succeeded before the most recent run; false
/// means peak_rss_kb degraded to the old monotone lifetime semantics.
bool rss_isolated = false;

struct RunConfig {
  std::string toggle = "baseline";
  uint32_t k = 10;
  uint32_t threads = 1;
  bool use_topk_pruning = true;
  bool use_bound_pruning = true;
  bool use_backward_pruning = true;
};

/// The paper's Table 2 operating point: 70% of the consequent class.
uint32_t Minsup(const BenchDataset& d) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(0.7 * d.pipeline.train.ClassCounts()[1]));
}

TopkResult RunOnce(const BenchDataset& d, const RunConfig& cfg,
                   double budget_s) {
  TopkMinerOptions opt;
  opt.k = cfg.k;
  opt.min_support = Minsup(d);
  opt.threads = cfg.threads;
  opt.use_topk_pruning = cfg.use_topk_pruning;
  opt.use_bound_pruning = cfg.use_bound_pruning;
  opt.use_backward_pruning = cfg.use_backward_pruning;
  opt.deadline = Deadline(budget_s);
  // Isolate this case's footprint: return allocator caches to the kernel
  // and reset the peak-RSS high-water mark, so the recorded peak_rss_kb
  // covers this run only (plus the shared dataset, which is live state)
  // instead of the accumulated maximum of every case before it.
  rss_isolated = ResetPeakRss();
  return MineTopkRGS(d.pipeline.train, 1, opt);
}

void Record(JsonWriter& out, const BenchDataset& d, const RunConfig& cfg,
            const TopkResult& result, double serial_seconds,
            uint64_t serial_digest, uint64_t serial_nodes) {
  const unsigned cores = std::thread::hardware_concurrency();
  // More workers than cores measures scheduler overhead, not scaling —
  // such rows must be excluded from any wall-clock comparison (the CI
  // speedup checks key off this flag). The redundant-work ratio below is
  // still meaningful there: nodes visited don't depend on preemption.
  const bool oversubscribed = cfg.threads > (cores >= 1 ? cores : 1);
  JsonRecord rec;
  rec.Str("profile", d.profile.name)
      .Int("rows", d.pipeline.train.num_rows())
      .Int("items", d.pipeline.train.num_items())
      .Str("toggle", cfg.toggle)
      .Int("k", cfg.k)
      .Int("minsup", Minsup(d))
      .Int("threads", cfg.threads)
      .Int("hardware_concurrency", cores)
      .Bool("oversubscribed", oversubscribed)
      .Num("seconds", result.stats.seconds)
      .Num("speedup_vs_1t",
           result.stats.seconds > 0 ? serial_seconds / result.stats.seconds
                                    : 0.0)
      // Speculation overhead of the parallel search: total enumeration
      // nodes this run visited over the serial run's count. 1.0 = no
      // redundant work; the CI gate caps it at 1.15 for 8-thread rows.
      // Only comparable between completed runs — a timed-out run stops
      // wherever the deadline lands.
      .Num("redundant_work_ratio",
           serial_nodes > 0 ? static_cast<double>(result.stats.nodes_visited) /
                                  static_cast<double>(serial_nodes)
                            : 0.0)
      .Int("peak_rss_kb", PeakRssKb())
      .Bool("rss_isolated", rss_isolated)
      .Int("distinct_groups",
           static_cast<long long>(result.DistinctGroups().size()))
      .Int("effective_min_support", result.effective_min_support)
      // The determinism contract covers completed searches only: runs with
      // timed_out=true stop wherever the deadline lands, so their digest may
      // legitimately differ from the serial reference.
      .Bool("deterministic", ResultDigest(result) == serial_digest)
      .Stats(result.stats);
  out.Add(rec);
}

}  // namespace
}  // namespace bench
}  // namespace topkrgs

int main(int argc, char** argv) {
  using namespace topkrgs;
  using namespace topkrgs::bench;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_topk.json";
  const double budget_s = PointBudgetSeconds(60.0);
  JsonWriter out;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);
  if (cores < 2) {
    std::printf(
        "NOTE: single-core machine — threads>1 rows measure overhead, not "
        "scaling; speedup_vs_1t <= 1 is expected here.\n");
  }

  for (const DatasetProfile& profile : PaperProfiles()) {
    const BenchDataset d = Load(profile);
    std::printf("== %s: %u rows, %u items ==\n", profile.name.c_str(),
                d.pipeline.train.num_rows(), d.pipeline.train.num_items());

    // Thread scaling at the paper's operating points.
    for (uint32_t k : {10u, 100u}) {
      double serial_seconds = 0.0;
      uint64_t serial_digest = 0;
      uint64_t serial_nodes = 0;
      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        RunConfig cfg;
        cfg.k = k;
        cfg.threads = threads;
        const TopkResult result = RunOnce(d, cfg, budget_s);
        if (threads == 1) {
          serial_seconds = result.stats.seconds;
          serial_digest = ResultDigest(result);
          serial_nodes = result.stats.nodes_visited;
        }
        Record(out, d, cfg, result, serial_seconds, serial_digest,
               serial_nodes);
        std::printf(
            "  k=%-3u threads=%u  %7.3fs  speedup %5.2fx  nodes %" PRIu64
            "  ratio %.3f  stolen %" PRIu64 "%s\n",
            k, threads, result.stats.seconds,
            result.stats.seconds > 0 ? serial_seconds / result.stats.seconds
                                     : 0.0,
            result.stats.nodes_visited,
            serial_nodes > 0 ? static_cast<double>(result.stats.nodes_visited) /
                                   static_cast<double>(serial_nodes)
                             : 0.0,
            result.stats.tasks_stolen,
            ResultDigest(result) == serial_digest ? "" : "  DIGEST MISMATCH");
      }
    }

    // Pruning-toggle ablation (k = 10): how many prunes each toggle fires
    // and what turning it off costs, serially and at 4 threads.
    struct Toggle {
      const char* name;
      bool topk, bounds, backward;
    };
    for (const Toggle& t :
         {Toggle{"no_topk_pruning", false, true, true},
          Toggle{"no_bound_pruning", true, false, true},
          Toggle{"no_backward_pruning", true, true, false}}) {
      double serial_seconds = 0.0;
      uint64_t serial_digest = 0;
      uint64_t serial_nodes = 0;
      for (uint32_t threads : {1u, 4u}) {
        RunConfig cfg;
        cfg.toggle = t.name;
        cfg.k = 10;
        cfg.threads = threads;
        cfg.use_topk_pruning = t.topk;
        cfg.use_bound_pruning = t.bounds;
        cfg.use_backward_pruning = t.backward;
        const TopkResult result = RunOnce(d, cfg, budget_s);
        if (threads == 1) {
          serial_seconds = result.stats.seconds;
          serial_digest = ResultDigest(result);
          serial_nodes = result.stats.nodes_visited;
        }
        Record(out, d, cfg, result, serial_seconds, serial_digest,
               serial_nodes);
        std::printf("  %-20s threads=%u  %7.3fs  bounds %" PRIu64
                    "  backward %" PRIu64 "\n",
                    t.name, threads, result.stats.seconds,
                    result.stats.pruned_bounds, result.stats.pruned_backward);
      }
    }
  }

  if (!out.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", out.size(), out_path.c_str());
  return 0;
}
