file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_classify_tool.dir/topkrgs_classify.cc.o"
  "CMakeFiles/topkrgs_classify_tool.dir/topkrgs_classify.cc.o.d"
  "topkrgs-classify"
  "topkrgs-classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_classify_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
