# Empty dependencies file for topkrgs_classify_tool.
# This may be replaced when dependencies are built.
