# Empty compiler generated dependencies file for topkrgs_cv_tool.
# This may be replaced when dependencies are built.
