# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for topkrgs_cv_tool.
