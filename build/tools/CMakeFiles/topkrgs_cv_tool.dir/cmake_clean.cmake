file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_cv_tool.dir/topkrgs_cv.cc.o"
  "CMakeFiles/topkrgs_cv_tool.dir/topkrgs_cv.cc.o.d"
  "topkrgs-cv"
  "topkrgs-cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_cv_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
