# Empty compiler generated dependencies file for topkrgs_mine_tool.
# This may be replaced when dependencies are built.
