file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_mine_tool.dir/topkrgs_mine.cc.o"
  "CMakeFiles/topkrgs_mine_tool.dir/topkrgs_mine.cc.o.d"
  "topkrgs-mine"
  "topkrgs-mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_mine_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
