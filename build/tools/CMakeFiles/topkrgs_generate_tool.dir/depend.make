# Empty dependencies file for topkrgs_generate_tool.
# This may be replaced when dependencies are built.
