file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_generate_tool.dir/topkrgs_generate.cc.o"
  "CMakeFiles/topkrgs_generate_tool.dir/topkrgs_generate.cc.o.d"
  "topkrgs-generate"
  "topkrgs-generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_generate_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
