file(REMOVE_RECURSE
  "CMakeFiles/discretizer_test.dir/discretizer_test.cc.o"
  "CMakeFiles/discretizer_test.dir/discretizer_test.cc.o.d"
  "discretizer_test"
  "discretizer_test.pdb"
  "discretizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discretizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
