# Empty compiler generated dependencies file for discretizer_test.
# This may be replaced when dependencies are built.
