file(REMOVE_RECURSE
  "CMakeFiles/topk_miner_test.dir/topk_miner_test.cc.o"
  "CMakeFiles/topk_miner_test.dir/topk_miner_test.cc.o.d"
  "topk_miner_test"
  "topk_miner_test.pdb"
  "topk_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
