# Empty dependencies file for cba_test.
# This may be replaced when dependencies are built.
