file(REMOVE_RECURSE
  "CMakeFiles/cba_test.dir/cba_test.cc.o"
  "CMakeFiles/cba_test.dir/cba_test.cc.o.d"
  "cba_test"
  "cba_test.pdb"
  "cba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
