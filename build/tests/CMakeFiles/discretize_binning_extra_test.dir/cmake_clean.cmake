file(REMOVE_RECURSE
  "CMakeFiles/discretize_binning_extra_test.dir/discretize_binning_extra_test.cc.o"
  "CMakeFiles/discretize_binning_extra_test.dir/discretize_binning_extra_test.cc.o.d"
  "discretize_binning_extra_test"
  "discretize_binning_extra_test.pdb"
  "discretize_binning_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discretize_binning_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
