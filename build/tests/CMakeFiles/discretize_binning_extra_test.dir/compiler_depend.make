# Empty compiler generated dependencies file for discretize_binning_extra_test.
# This may be replaced when dependencies are built.
