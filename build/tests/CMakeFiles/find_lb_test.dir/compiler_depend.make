# Empty compiler generated dependencies file for find_lb_test.
# This may be replaced when dependencies are built.
