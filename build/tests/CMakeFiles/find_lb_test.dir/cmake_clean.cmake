file(REMOVE_RECURSE
  "CMakeFiles/find_lb_test.dir/find_lb_test.cc.o"
  "CMakeFiles/find_lb_test.dir/find_lb_test.cc.o.d"
  "find_lb_test"
  "find_lb_test.pdb"
  "find_lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
