file(REMOVE_RECURSE
  "CMakeFiles/baseline_miners_test.dir/baseline_miners_test.cc.o"
  "CMakeFiles/baseline_miners_test.dir/baseline_miners_test.cc.o.d"
  "baseline_miners_test"
  "baseline_miners_test.pdb"
  "baseline_miners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_miners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
