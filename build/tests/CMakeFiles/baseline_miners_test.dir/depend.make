# Empty dependencies file for baseline_miners_test.
# This may be replaced when dependencies are built.
