file(REMOVE_RECURSE
  "CMakeFiles/rcbt_test.dir/rcbt_test.cc.o"
  "CMakeFiles/rcbt_test.dir/rcbt_test.cc.o.d"
  "rcbt_test"
  "rcbt_test.pdb"
  "rcbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
