# Empty compiler generated dependencies file for rcbt_test.
# This may be replaced when dependencies are built.
