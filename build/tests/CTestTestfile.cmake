# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analyze_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_miners_test[1]_include.cmake")
include("/root/repo/build/tests/bitset_test[1]_include.cmake")
include("/root/repo/build/tests/cba_test[1]_include.cmake")
include("/root/repo/build/tests/classifiers_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/cross_validation_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/discretize_binning_extra_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/discretizer_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/find_lb_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/prefix_tree_test[1]_include.cmake")
include("/root/repo/build/tests/rcbt_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/topk_miner_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
