file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_discretize.dir/discretize/binning.cc.o"
  "CMakeFiles/topkrgs_discretize.dir/discretize/binning.cc.o.d"
  "CMakeFiles/topkrgs_discretize.dir/discretize/entropy_discretizer.cc.o"
  "CMakeFiles/topkrgs_discretize.dir/discretize/entropy_discretizer.cc.o.d"
  "libtopkrgs_discretize.a"
  "libtopkrgs_discretize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_discretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
