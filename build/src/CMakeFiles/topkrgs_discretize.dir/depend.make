# Empty dependencies file for topkrgs_discretize.
# This may be replaced when dependencies are built.
