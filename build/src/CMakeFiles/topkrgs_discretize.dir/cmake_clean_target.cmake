file(REMOVE_RECURSE
  "libtopkrgs_discretize.a"
)
