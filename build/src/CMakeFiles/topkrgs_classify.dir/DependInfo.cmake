
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/cba.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/cba.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/cba.cc.o.d"
  "/root/repo/src/classify/cross_validation.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/cross_validation.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/cross_validation.cc.o.d"
  "/root/repo/src/classify/decision_tree.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/decision_tree.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/decision_tree.cc.o.d"
  "/root/repo/src/classify/ensemble.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/ensemble.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/ensemble.cc.o.d"
  "/root/repo/src/classify/evaluator.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/evaluator.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/evaluator.cc.o.d"
  "/root/repo/src/classify/find_lb.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/find_lb.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/find_lb.cc.o.d"
  "/root/repo/src/classify/irg.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/irg.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/irg.cc.o.d"
  "/root/repo/src/classify/model_io.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/model_io.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/model_io.cc.o.d"
  "/root/repo/src/classify/rcbt.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/rcbt.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/rcbt.cc.o.d"
  "/root/repo/src/classify/svm.cc" "src/CMakeFiles/topkrgs_classify.dir/classify/svm.cc.o" "gcc" "src/CMakeFiles/topkrgs_classify.dir/classify/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topkrgs_mine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
