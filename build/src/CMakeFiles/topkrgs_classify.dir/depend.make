# Empty dependencies file for topkrgs_classify.
# This may be replaced when dependencies are built.
