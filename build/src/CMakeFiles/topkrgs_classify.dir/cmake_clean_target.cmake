file(REMOVE_RECURSE
  "libtopkrgs_classify.a"
)
