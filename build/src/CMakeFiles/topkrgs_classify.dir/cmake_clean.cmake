file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_classify.dir/classify/cba.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/cba.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/cross_validation.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/cross_validation.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/decision_tree.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/decision_tree.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/ensemble.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/ensemble.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/evaluator.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/evaluator.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/find_lb.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/find_lb.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/irg.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/irg.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/model_io.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/model_io.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/rcbt.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/rcbt.cc.o.d"
  "CMakeFiles/topkrgs_classify.dir/classify/svm.cc.o"
  "CMakeFiles/topkrgs_classify.dir/classify/svm.cc.o.d"
  "libtopkrgs_classify.a"
  "libtopkrgs_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
