file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_analyze.dir/analyze/rule_report.cc.o"
  "CMakeFiles/topkrgs_analyze.dir/analyze/rule_report.cc.o.d"
  "libtopkrgs_analyze.a"
  "libtopkrgs_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
