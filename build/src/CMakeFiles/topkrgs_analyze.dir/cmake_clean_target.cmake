file(REMOVE_RECURSE
  "libtopkrgs_analyze.a"
)
