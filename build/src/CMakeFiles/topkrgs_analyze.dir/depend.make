# Empty dependencies file for topkrgs_analyze.
# This may be replaced when dependencies are built.
