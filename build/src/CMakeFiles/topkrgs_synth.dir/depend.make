# Empty dependencies file for topkrgs_synth.
# This may be replaced when dependencies are built.
