file(REMOVE_RECURSE
  "libtopkrgs_synth.a"
)
