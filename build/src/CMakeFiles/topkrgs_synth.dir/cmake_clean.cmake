file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_synth.dir/synth/generator.cc.o"
  "CMakeFiles/topkrgs_synth.dir/synth/generator.cc.o.d"
  "libtopkrgs_synth.a"
  "libtopkrgs_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
