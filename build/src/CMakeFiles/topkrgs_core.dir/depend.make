# Empty dependencies file for topkrgs_core.
# This may be replaced when dependencies are built.
