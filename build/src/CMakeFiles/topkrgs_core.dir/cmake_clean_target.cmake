file(REMOVE_RECURSE
  "libtopkrgs_core.a"
)
