file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_core.dir/core/dataset.cc.o"
  "CMakeFiles/topkrgs_core.dir/core/dataset.cc.o.d"
  "CMakeFiles/topkrgs_core.dir/core/rule.cc.o"
  "CMakeFiles/topkrgs_core.dir/core/rule.cc.o.d"
  "CMakeFiles/topkrgs_core.dir/core/stats.cc.o"
  "CMakeFiles/topkrgs_core.dir/core/stats.cc.o.d"
  "libtopkrgs_core.a"
  "libtopkrgs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
