
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/topkrgs_core.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/topkrgs_core.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/CMakeFiles/topkrgs_core.dir/core/rule.cc.o" "gcc" "src/CMakeFiles/topkrgs_core.dir/core/rule.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/topkrgs_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/topkrgs_core.dir/core/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topkrgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
