
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mine/carpenter.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/carpenter.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/carpenter.cc.o.d"
  "/root/repo/src/mine/charm.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/charm.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/charm.cc.o.d"
  "/root/repo/src/mine/closet.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/closet.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/closet.cc.o.d"
  "/root/repo/src/mine/farmer.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/farmer.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/farmer.cc.o.d"
  "/root/repo/src/mine/hybrid_miner.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/hybrid_miner.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/hybrid_miner.cc.o.d"
  "/root/repo/src/mine/miner_common.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/miner_common.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/miner_common.cc.o.d"
  "/root/repo/src/mine/naive_miner.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/naive_miner.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/naive_miner.cc.o.d"
  "/root/repo/src/mine/prefix_tree.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/prefix_tree.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/prefix_tree.cc.o.d"
  "/root/repo/src/mine/topk_miner.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/topk_miner.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/topk_miner.cc.o.d"
  "/root/repo/src/mine/transposed_table.cc" "src/CMakeFiles/topkrgs_mine.dir/mine/transposed_table.cc.o" "gcc" "src/CMakeFiles/topkrgs_mine.dir/mine/transposed_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topkrgs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
