file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_mine.dir/mine/carpenter.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/carpenter.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/charm.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/charm.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/closet.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/closet.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/farmer.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/farmer.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/hybrid_miner.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/hybrid_miner.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/miner_common.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/miner_common.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/naive_miner.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/naive_miner.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/prefix_tree.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/prefix_tree.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/topk_miner.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/topk_miner.cc.o.d"
  "CMakeFiles/topkrgs_mine.dir/mine/transposed_table.cc.o"
  "CMakeFiles/topkrgs_mine.dir/mine/transposed_table.cc.o.d"
  "libtopkrgs_mine.a"
  "libtopkrgs_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
