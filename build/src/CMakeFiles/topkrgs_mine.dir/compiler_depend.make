# Empty compiler generated dependencies file for topkrgs_mine.
# This may be replaced when dependencies are built.
