file(REMOVE_RECURSE
  "libtopkrgs_mine.a"
)
