file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_util.dir/util/bitset.cc.o"
  "CMakeFiles/topkrgs_util.dir/util/bitset.cc.o.d"
  "CMakeFiles/topkrgs_util.dir/util/io.cc.o"
  "CMakeFiles/topkrgs_util.dir/util/io.cc.o.d"
  "CMakeFiles/topkrgs_util.dir/util/random.cc.o"
  "CMakeFiles/topkrgs_util.dir/util/random.cc.o.d"
  "CMakeFiles/topkrgs_util.dir/util/status.cc.o"
  "CMakeFiles/topkrgs_util.dir/util/status.cc.o.d"
  "libtopkrgs_util.a"
  "libtopkrgs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
