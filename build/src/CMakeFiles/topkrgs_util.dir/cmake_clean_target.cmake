file(REMOVE_RECURSE
  "libtopkrgs_util.a"
)
