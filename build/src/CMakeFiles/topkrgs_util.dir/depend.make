# Empty dependencies file for topkrgs_util.
# This may be replaced when dependencies are built.
