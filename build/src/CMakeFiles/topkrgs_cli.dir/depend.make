# Empty dependencies file for topkrgs_cli.
# This may be replaced when dependencies are built.
