file(REMOVE_RECURSE
  "CMakeFiles/topkrgs_cli.dir/cli/commands.cc.o"
  "CMakeFiles/topkrgs_cli.dir/cli/commands.cc.o.d"
  "CMakeFiles/topkrgs_cli.dir/cli/flags.cc.o"
  "CMakeFiles/topkrgs_cli.dir/cli/flags.cc.o.d"
  "libtopkrgs_cli.a"
  "libtopkrgs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topkrgs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
