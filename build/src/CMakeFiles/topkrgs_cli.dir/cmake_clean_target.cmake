file(REMOVE_RECURSE
  "libtopkrgs_cli.a"
)
