file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_discretizer.dir/bench_ablation_discretizer.cc.o"
  "CMakeFiles/bench_ablation_discretizer.dir/bench_ablation_discretizer.cc.o.d"
  "bench_ablation_discretizer"
  "bench_ablation_discretizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_discretizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
