# Empty dependencies file for bench_ablation_discretizer.
# This may be replaced when dependencies are built.
