file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_minsup.dir/bench_fig6_minsup.cc.o"
  "CMakeFiles/bench_fig6_minsup.dir/bench_fig6_minsup.cc.o.d"
  "bench_fig6_minsup"
  "bench_fig6_minsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
