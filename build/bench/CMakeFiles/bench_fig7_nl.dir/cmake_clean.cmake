file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nl.dir/bench_fig7_nl.cc.o"
  "CMakeFiles/bench_fig7_nl.dir/bench_fig7_nl.cc.o.d"
  "bench_fig7_nl"
  "bench_fig7_nl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
