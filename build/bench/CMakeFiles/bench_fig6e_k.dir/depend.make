# Empty dependencies file for bench_fig6e_k.
# This may be replaced when dependencies are built.
