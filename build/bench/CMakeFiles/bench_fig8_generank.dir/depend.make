# Empty dependencies file for bench_fig8_generank.
# This may be replaced when dependencies are built.
