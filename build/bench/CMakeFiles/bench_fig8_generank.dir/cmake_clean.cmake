file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_generank.dir/bench_fig8_generank.cc.o"
  "CMakeFiles/bench_fig8_generank.dir/bench_fig8_generank.cc.o.d"
  "bench_fig8_generank"
  "bench_fig8_generank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_generank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
