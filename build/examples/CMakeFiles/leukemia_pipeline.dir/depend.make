# Empty dependencies file for leukemia_pipeline.
# This may be replaced when dependencies are built.
