file(REMOVE_RECURSE
  "CMakeFiles/leukemia_pipeline.dir/leukemia_pipeline.cpp.o"
  "CMakeFiles/leukemia_pipeline.dir/leukemia_pipeline.cpp.o.d"
  "leukemia_pipeline"
  "leukemia_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leukemia_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
