file(REMOVE_RECURSE
  "CMakeFiles/miner_comparison.dir/miner_comparison.cpp.o"
  "CMakeFiles/miner_comparison.dir/miner_comparison.cpp.o.d"
  "miner_comparison"
  "miner_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
