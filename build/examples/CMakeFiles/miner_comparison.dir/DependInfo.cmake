
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/miner_comparison.cpp" "examples/CMakeFiles/miner_comparison.dir/miner_comparison.cpp.o" "gcc" "examples/CMakeFiles/miner_comparison.dir/miner_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topkrgs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_mine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topkrgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
