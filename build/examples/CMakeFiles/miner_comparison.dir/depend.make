# Empty dependencies file for miner_comparison.
# This may be replaced when dependencies are built.
