# Empty compiler generated dependencies file for report_and_cv.
# This may be replaced when dependencies are built.
