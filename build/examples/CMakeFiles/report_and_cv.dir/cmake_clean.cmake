file(REMOVE_RECURSE
  "CMakeFiles/report_and_cv.dir/report_and_cv.cpp.o"
  "CMakeFiles/report_and_cv.dir/report_and_cv.cpp.o.d"
  "report_and_cv"
  "report_and_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_and_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
