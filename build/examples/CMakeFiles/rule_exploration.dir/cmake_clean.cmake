file(REMOVE_RECURSE
  "CMakeFiles/rule_exploration.dir/rule_exploration.cpp.o"
  "CMakeFiles/rule_exploration.dir/rule_exploration.cpp.o.d"
  "rule_exploration"
  "rule_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
