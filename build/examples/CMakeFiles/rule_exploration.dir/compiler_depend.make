# Empty compiler generated dependencies file for rule_exploration.
# This may be replaced when dependencies are built.
