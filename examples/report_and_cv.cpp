// Production-workflow walkthrough: mine with the parallel hybrid engine,
// render a biologist-facing rule report, cross-validate RCBT, and persist
// the model for later use — the pieces a downstream user combines on their
// own data.
//
//   ./build/examples/report_and_cv

#include <cstdio>

#include "topkrgs/topkrgs.h"

using namespace topkrgs;

int main() {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(2025));
  Pipeline pipeline = PreparePipeline(data.train, data.test);

  // 1. Mine with the §8 hybrid engine, one partition per frequent item,
  //    fanned out over all cores. The result is identical to MineTopkRGS.
  TopkMinerOptions mopt;
  mopt.k = 3;
  mopt.min_support = std::max<uint32_t>(
      1, static_cast<uint32_t>(0.7 * pipeline.train.ClassCounts()[1]));
  mopt.hybrid_threads = 0;  // hardware default
  TopkResult mined = MineTopkRGSHybrid(pipeline.train, 1, mopt);

  // 2. Rule report: significance, lift, chi-square and coverage per group.
  std::printf("%s\n", RenderTopkReport(pipeline.train, data.train,
                                       pipeline.discretization, 1, mined, 5)
                          .c_str());

  // 3. Cross-validate RCBT on the training split (stratified 4-fold).
  const CrossValidationResult cv = CrossValidateDiscrete(
      pipeline.train, 4, /*seed=*/17, [&](const DiscreteDataset& train) {
        RcbtOptions opt;
        opt.k = 3;
        opt.nl = 5;
        opt.item_scores = pipeline.item_scores;
        auto clf = std::make_shared<RcbtClassifier>(
            RcbtClassifier::Train(train, opt));
        return [clf](const Bitset& items, bool* dflt) {
          const auto pred = clf->Predict(items);
          *dflt = pred.used_default;
          return pred.label;
        };
      });
  std::printf("RCBT 4-fold CV on the training split: mean %.1f%%, pooled %.1f%%\n",
              100.0 * cv.mean_accuracy(), 100.0 * cv.pooled_accuracy());

  // 4. Train on everything, evaluate with the confusion matrix, persist.
  RcbtOptions opt;
  opt.k = 3;
  opt.nl = 5;
  opt.item_scores = pipeline.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(pipeline.train, opt);
  const ConfusionMatrix matrix =
      ConfusionDiscrete(pipeline.test, [&](const Bitset& items, bool* dflt) {
        const auto pred = clf.Predict(items);
        *dflt = pred.used_default;
        return pred.label;
      });
  std::printf("\nTest confusion matrix (actual x predicted):\n");
  for (size_t a = 0; a < matrix.counts.size(); ++a) {
    std::printf("  class %zu:", a);
    for (uint32_t c : matrix.counts[a]) std::printf(" %4u", c);
    std::printf("\n");
  }
  std::printf("accuracy %.1f%%; class-1 precision %.2f recall %.2f f1 %.2f\n",
              100.0 * matrix.accuracy(), matrix.precision(1), matrix.recall(1),
              matrix.f1(1));

  const std::string model_path = "/tmp/topkrgs_example_model.txt";
  const std::string disc_path = "/tmp/topkrgs_example_disc.txt";
  if (SaveRcbtClassifier(clf, pipeline.train.num_items(), model_path).ok() &&
      SaveDiscretization(pipeline.discretization, disc_path).ok()) {
    auto reloaded = LoadRcbtClassifier(model_path);
    std::printf("\nmodel persisted to %s and reloaded: %s\n",
                model_path.c_str(), reloaded.ok() ? "ok" : "FAILED");
  }
  return 0;
}
