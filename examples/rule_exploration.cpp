// Rule exploration on the prostate-cancer-shaped dataset: mine top-k
// covering rule groups, inspect their lower bound rules gene by gene, and
// rank the genes the rules rely on — the kind of analysis behind the
// paper's "Biological Meaning" discussion (§6.2, Figure 8).
//
//   ./build/examples/rule_exploration

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "topkrgs/topkrgs.h"

using namespace topkrgs;

int main() {
  GeneratedData data = GenerateMicroarray(DatasetProfile::PC());
  Pipeline pipeline = PreparePipeline(data.train, data.test);
  const DiscreteDataset& train = pipeline.train;
  std::printf("PC-shaped dataset: %u train rows, %u items from %u genes\n\n",
              train.num_rows(), train.num_items(),
              pipeline.discretization.num_selected_genes());

  // Mine the top-3 covering rule groups per row for the tumor class.
  TopkMinerOptions options;
  options.k = 3;
  options.min_support = std::max<uint32_t>(
      1, static_cast<uint32_t>(0.7 * train.ClassCounts()[1]));
  TopkResult result = MineTopkRGS(train, 1, options);

  const auto groups = result.DistinctGroups();
  std::printf("Top-%u covering rule groups (minsup %u): %zu distinct groups, "
              "%llu nodes searched\n\n",
              options.k, options.min_support, groups.size(),
              static_cast<unsigned long long>(result.stats.nodes_visited));

  // For each group: the upper bound size and a few lower bound rules.
  FindLbOptions lb_options;
  lb_options.num_lower_bounds = 8;
  std::map<GeneId, uint32_t> gene_usage;
  for (size_t g = 0; g < groups.size(); ++g) {
    const RuleGroup& group = *groups[g];
    const auto lbs =
        FindLowerBounds(train, group, pipeline.item_scores, lb_options);
    if (g < 4) {
      std::printf("Group %zu: upper bound has %zu items, support %u, "
                  "confidence %.1f%%, %zu lower bounds found\n",
                  g, group.antecedent.Count(), group.support,
                  100.0 * group.confidence(), lbs.size());
      for (size_t i = 0; i < lbs.size() && i < 3; ++i) {
        std::string antecedent;
        lbs[i].antecedent.ForEach([&](size_t item) {
          if (!antecedent.empty()) antecedent += " AND ";
          antecedent += pipeline.discretization.ItemName(
              data.train, static_cast<ItemId>(item));
        });
        std::printf("    IF %s THEN tumor\n", antecedent.c_str());
      }
    }
    for (const Rule& lb : lbs) {
      lb.antecedent.ForEach([&](size_t item) {
        ++gene_usage[pipeline.discretization.item(static_cast<ItemId>(item))
                         .gene];
      });
    }
  }

  // Rank genes by how often the rules use them (the Figure 8 analysis).
  std::vector<std::pair<uint32_t, GeneId>> by_usage;
  for (const auto& [gene, count] : gene_usage) by_usage.push_back({count, gene});
  std::sort(by_usage.rbegin(), by_usage.rend());
  std::printf("\nGenes most used across all lower bound rules:\n");
  for (size_t i = 0; i < by_usage.size() && i < 8; ++i) {
    std::printf("  %-8s used %u times\n",
                data.train.gene_name(by_usage[i].second).c_str(),
                by_usage[i].first);
  }
  std::printf("\n%zu distinct genes participate in the mined rules.\n",
              by_usage.size());
  return 0;
}
