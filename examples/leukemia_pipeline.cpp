// End-to-end classification pipeline on the ALL/AML-shaped dataset:
// generate a synthetic microarray with the Table 1 shape, discretize it
// with entropy-MDL, train RCBT (plus CBA for comparison) and classify the
// independent test set — the exact flow behind Table 2.
//
//   ./build/examples/leukemia_pipeline

#include <cstdio>

#include "topkrgs/topkrgs.h"

using namespace topkrgs;

int main() {
  const DatasetProfile profile = DatasetProfile::ALL();
  std::printf("Generating %s: %u genes, %u train / %u test rows...\n",
              profile.name.c_str(), profile.num_genes,
              profile.train_class0 + profile.train_class1,
              profile.test_class0 + profile.test_class1);
  GeneratedData data = GenerateMicroarray(profile);

  Pipeline pipeline = PreparePipeline(data.train, data.test);
  std::printf("Entropy-MDL discretization kept %u of %u genes (%u items)\n\n",
              pipeline.discretization.num_selected_genes(), profile.num_genes,
              pipeline.discretization.num_items());

  // Train RCBT: k = 10 covering rule groups per row, nl = 20 lower bounds
  // per group, minsup = 0.7 x class size (the paper's Table 2 setting).
  RcbtOptions rcbt_options;
  rcbt_options.k = 10;
  rcbt_options.nl = 20;
  rcbt_options.min_support_frac = 0.7;
  rcbt_options.item_scores = pipeline.item_scores;
  RcbtClassifier rcbt = RcbtClassifier::Train(pipeline.train, rcbt_options);
  std::printf("RCBT: %u classifiers (1 main + %u standby)\n",
              rcbt.num_classifiers(),
              rcbt.num_classifiers() > 0 ? rcbt.num_classifiers() - 1 : 0);

  // Show the main classifier's first rules in gene/interval terms.
  const auto& rules = rcbt.classifier_rules(1);
  std::printf("Main classifier: %zu rules; the most significant ones:\n",
              rules.size());
  for (size_t i = 0; i < rules.size() && i < 5; ++i) {
    const Rule& rule = rules[i];
    std::string antecedent;
    rule.antecedent.ForEach([&](size_t item) {
      if (!antecedent.empty()) antecedent += " AND ";
      antecedent += pipeline.discretization.ItemName(
          data.train, static_cast<ItemId>(item));
    });
    std::printf("  IF %s THEN %s  (sup %u, conf %.1f%%)\n", antecedent.c_str(),
                data.train.class_names()[rule.consequent].c_str(),
                rule.support, 100.0 * rule.confidence());
  }

  // Classify the independent test set.
  EvalOutcome rcbt_eval =
      EvaluateDiscrete(pipeline.test, [&](const Bitset& items, bool* dflt) {
        const auto pred = rcbt.Predict(items);
        *dflt = pred.used_default;
        return pred.label;
      });
  std::printf("\nRCBT test accuracy: %.2f%% (%u/%u), default class used %u times\n",
              100.0 * rcbt_eval.accuracy(), rcbt_eval.correct, rcbt_eval.total,
              rcbt_eval.default_used);

  // CBA from the top-1 covering rule groups, for comparison.
  CbaOptions cba_options;
  cba_options.min_support_frac = 0.7;
  cba_options.item_scores = pipeline.item_scores;
  CbaClassifier cba = TrainCba(pipeline.train, cba_options);
  EvalOutcome cba_eval =
      EvaluateDiscrete(pipeline.test, [&](const Bitset& items, bool* dflt) {
        return cba.Predict(items, dflt);
      });
  std::printf("CBA  test accuracy: %.2f%% (%u/%u), default class used %u times\n",
              100.0 * cba_eval.accuracy(), cba_eval.correct, cba_eval.total,
              cba_eval.default_used);
  return 0;
}
