// Quickstart: mine the top-k covering rule groups of the paper's running
// example (Figure 1) and print them, together with the transposed table the
// row enumeration works on.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "topkrgs/topkrgs.h"

namespace {

using namespace topkrgs;

// Items of the running example are named a..h, o, p in the paper.
std::string ItemNames(const Bitset& items) {
  static const char* kNames = "abcdefgh";
  std::string out;
  items.ForEach([&](size_t i) {
    if (i < 8) {
      out += kNames[i];
    } else {
      out += (i == 8 ? 'o' : 'p');
    }
  });
  return out;
}

}  // namespace

int main() {
  // Figure 1(a): five rows; r1..r3 are class C (label 1), r4, r5 are ¬C.
  DiscreteDataset data = MakeRunningExampleDataset();
  std::printf("Running example: %u rows, %u items, %u classes\n\n",
              data.num_rows(), data.num_items(), data.num_classes());

  // The transposed table TT (Figure 1b): one tuple per item.
  std::vector<RowId> order(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) order[r] = r;
  TransposedTable tt =
      TransposedTable::Build(data, order, Bitset::AllSet(data.num_items()));
  std::printf("Transposed table TT (item: row positions):\n%s\n",
              tt.ToString().c_str());

  // Mine the top-2 covering rule groups per row for both consequents.
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    TopkMinerOptions options;
    options.k = 2;
    options.min_support = 2;
    TopkResult result = MineTopkRGS(data, cls, options);

    std::printf("Top-%u covering rule groups, consequent = %s, minsup = %u:\n",
                options.k, cls == 1 ? "C" : "notC", options.min_support);
    for (RowId r = 0; r < data.num_rows(); ++r) {
      if (data.label(r) != cls) continue;
      std::printf("  row r%u:\n", r + 1);
      for (const RuleGroupPtr& group : result.per_row[r]) {
        std::printf("    %s -> %s  (support %u, confidence %.1f%%)\n",
                    ItemNames(group->antecedent).c_str(),
                    cls == 1 ? "C" : "notC", group->support,
                    100.0 * group->confidence());
      }
    }
    std::printf("  search: %llu enumeration nodes\n\n",
                static_cast<unsigned long long>(result.stats.nodes_visited));
  }

  // Lower bounds of the group {abc -> C} (Example 2.2: a and b).
  RuleGroup abc = CloseItemset(data, [&] {
    Bitset b(data.num_items());
    b.Set(RunningExampleItem('a'));
    return b;
  }(), 1);
  FindLbOptions lb_options;
  lb_options.num_lower_bounds = 5;
  std::printf("Lower bounds of %s -> C:\n", ItemNames(abc.antecedent).c_str());
  for (const Rule& lb : FindLowerBounds(data, abc, {}, lb_options)) {
    std::printf("  %s -> C\n", ItemNames(lb.antecedent).c_str());
  }
  return 0;
}
