// Miner comparison on one dataset: MineTopkRGS against FARMER (both
// variants), CHARM and CLOSET+ at a fixed minimum support — a one-row
// slice of Figure 6 you can run in seconds.
//
//   ./build/examples/miner_comparison

#include <cstdio>

#include "topkrgs/topkrgs.h"

using namespace topkrgs;

int main() {
  GeneratedData data = GenerateMicroarray(DatasetProfile::ALL());
  Pipeline pipeline = PreparePipeline(data.train, data.test);
  const DiscreteDataset& train = pipeline.train;
  const uint32_t minsup = std::max<uint32_t>(
      1, static_cast<uint32_t>(0.85 * train.ClassCounts()[1]));
  const double budget = 15.0;

  std::printf("ALL-shaped dataset, consequent = class 1, minsup = %u, "
              "budget %.0fs per miner\n\n", minsup, budget);
  std::printf("%-22s %10s %12s %12s\n", "miner", "seconds", "nodes", "groups");

  auto report = [](const char* name, double seconds, uint64_t nodes,
                   uint64_t groups, bool dnf) {
    std::printf("%-22s %9.3f%s %12llu %12llu\n", name, seconds,
                dnf ? "+" : " ", static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(groups));
  };

  {
    TopkMinerOptions opt;
    opt.k = 1;
    opt.min_support = minsup;
    const TopkResult r = MineTopkRGS(train, 1, opt);
    report("MineTopkRGS k=1", r.stats.seconds, r.stats.nodes_visited,
           r.DistinctGroups().size(), r.stats.timed_out);
  }
  {
    TopkMinerOptions opt;
    opt.k = 100;
    opt.min_support = minsup;
    const TopkResult r = MineTopkRGS(train, 1, opt);
    report("MineTopkRGS k=100", r.stats.seconds, r.stats.nodes_visited,
           r.DistinctGroups().size(), r.stats.timed_out);
  }
  {
    FarmerOptions opt;
    opt.min_support = minsup;
    opt.min_confidence = 0.9;
    opt.backend = FarmerOptions::Backend::kPrefixTree;
    opt.deadline = Deadline(budget);
    const MiningResult r = MineFarmer(train, 1, opt);
    report("FARMER+prefix c=0.9", r.stats.seconds, r.stats.nodes_visited,
           r.stats.groups_emitted, r.stats.timed_out);
  }
  {
    FarmerOptions opt;
    opt.min_support = minsup;
    opt.min_confidence = 0.9;
    opt.deadline = Deadline(budget);
    const MiningResult r = MineFarmer(train, 1, opt);
    report("FARMER c=0.9", r.stats.seconds, r.stats.nodes_visited,
           r.stats.groups_emitted, r.stats.timed_out);
  }
  {
    CharmOptions opt;
    opt.min_support = minsup;
    opt.materialize_rowsets = false;
    opt.deadline = Deadline(budget);
    const MiningResult r = MineCharm(train, 1, opt);
    report("CHARM (diffsets)", r.stats.seconds, r.stats.nodes_visited,
           r.stats.groups_emitted, r.stats.timed_out);
  }
  {
    ClosetOptions opt;
    opt.min_support = minsup;
    opt.materialize_rowsets = false;
    opt.deadline = Deadline(budget);
    const MiningResult r = MineCloset(train, 1, opt);
    report("CLOSET+", r.stats.seconds, r.stats.nodes_visited,
           r.stats.groups_emitted, r.stats.timed_out);
  }
  std::printf("\n('+' marks runs stopped at the budget; group counts are then"
              " partial.)\n");
  return 0;
}
