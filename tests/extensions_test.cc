#include <gtest/gtest.h>

#include "mine/carpenter.h"
#include "mine/hybrid_miner.h"
#include "mine/naive_miner.h"
#include "mine/topk_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;
using testing_util::SignificanceSeq;

std::vector<testing_util::CanonicalGroup> CanonicalPatterns(
    const std::vector<ClosedPattern>& patterns) {
  std::vector<testing_util::CanonicalGroup> out;
  for (const ClosedPattern& p : patterns) {
    out.push_back({p.items.ToVector(), p.support, p.support});
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CarpenterTest, RunningExampleClosedPatterns) {
  DiscreteDataset d = MakeRunningExampleDataset();
  CarpenterOptions opt;
  opt.min_support = 2;
  CarpenterResult result = MineCarpenter(d, opt);
  const auto oracle = NaiveClosedPatterns(d, 2);
  EXPECT_EQ(CanonicalPatterns(result.patterns), CanonicalPatterns(oracle));
  // Pattern supports and rowsets must be consistent.
  for (const ClosedPattern& p : result.patterns) {
    EXPECT_EQ(p.support, p.rows.Count());
    EXPECT_EQ(d.ItemSupportSet(p.items), p.rows);
  }
}

class CarpenterOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(CarpenterOracleTest, MatchesOracle) {
  const auto [seed, minsup] = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.4);
  const auto oracle = NaiveClosedPatterns(d, minsup);
  for (bool prefix : {false, true}) {
    CarpenterOptions opt;
    opt.min_support = minsup;
    opt.use_prefix_tree = prefix;
    CarpenterResult result = MineCarpenter(d, opt);
    ASSERT_EQ(CanonicalPatterns(result.patterns), CanonicalPatterns(oracle))
        << "seed=" << seed << " minsup=" << minsup << " prefix=" << prefix;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CarpenterOracleTest,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(1u, 2u, 3u,
                                                              5u)));

TEST(CarpenterTest, MaxPatternsStopsEarly) {
  DiscreteDataset d = RandomDataset(9, 12, 14, 0.5);
  CarpenterOptions opt;
  opt.min_support = 1;
  opt.max_patterns = 4;
  CarpenterResult result = MineCarpenter(d, opt);
  EXPECT_EQ(result.patterns.size(), 4u);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(CarpenterTest, MinsupAboveRowsYieldsNothing) {
  DiscreteDataset d = MakeRunningExampleDataset();
  CarpenterOptions opt;
  opt.min_support = 6;
  EXPECT_TRUE(MineCarpenter(d, opt).patterns.empty());
}

class HybridOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>> {};

TEST_P(HybridOracleTest, MatchesRowEnumerationMiner) {
  const auto [seed, k, minsup] = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.4);
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    TopkMinerOptions opt;
    opt.k = k;
    opt.min_support = minsup;
    const TopkResult expected = MineTopkRGS(d, cls, opt);
    const TopkResult hybrid = MineTopkRGSHybrid(d, cls, opt);
    for (RowId r = 0; r < d.num_rows(); ++r) {
      ASSERT_EQ(SignificanceSeq(hybrid.per_row[r]),
                SignificanceSeq(expected.per_row[r]))
          << "seed=" << seed << " k=" << k << " minsup=" << minsup
          << " cls=" << int(cls) << " row=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridOracleTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(1u, 3u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(HybridTest, GroupsAreValidGlobally) {
  DiscreteDataset d = RandomDataset(77, 11, 13, 0.45);
  TopkMinerOptions opt;
  opt.k = 3;
  opt.min_support = 2;
  const TopkResult result = MineTopkRGSHybrid(d, 1, opt);
  const Bitset class_rows = d.ClassRowset(1);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    for (const RuleGroupPtr& g : result.per_row[r]) {
      // Supports are global, not per-partition.
      EXPECT_EQ(d.ItemSupportSet(g->antecedent), g->row_support);
      EXPECT_EQ(g->antecedent_support, g->row_support.Count());
      EXPECT_EQ(g->support, g->row_support.IntersectCount(class_rows));
      EXPECT_TRUE(g->row_support.Test(r));
    }
  }
}

TEST(HybridTest, ParallelMatchesSerial) {
  DiscreteDataset d = RandomDataset(91, 12, 14, 0.4);
  TopkMinerOptions serial;
  serial.k = 3;
  serial.min_support = 2;
  TopkMinerOptions parallel = serial;
  parallel.hybrid_threads = 4;
  const TopkResult a = MineTopkRGSHybrid(d, 1, serial);
  const TopkResult b = MineTopkRGSHybrid(d, 1, parallel);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(SignificanceSeq(a.per_row[r]), SignificanceSeq(b.per_row[r]))
        << r;
  }
}

TEST(HybridTest, ZeroThreadsMeansHardwareDefault) {
  DiscreteDataset d = RandomDataset(92, 10, 12, 0.4);
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support = 2;
  opt.hybrid_threads = 0;
  const TopkResult via_hw = MineTopkRGSHybrid(d, 1, opt);
  opt.hybrid_threads = 1;
  const TopkResult via_one = MineTopkRGSHybrid(d, 1, opt);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(SignificanceSeq(via_hw.per_row[r]),
              SignificanceSeq(via_one.per_row[r]));
  }
}

TEST(HybridTest, RunningExample) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  const TopkResult hybrid = MineTopkRGSHybrid(d, 1, opt);
  // r1/r2: abc -> C (conf 1.0, sup 2).
  ASSERT_EQ(hybrid.per_row[0].size(), 1u);
  EXPECT_EQ(hybrid.per_row[0][0]->support, 2u);
  EXPECT_EQ(hybrid.per_row[0][0]->antecedent_support, 2u);
  // r3: c -> C (conf 0.75, sup 3) per Definition 2.2.
  ASSERT_EQ(hybrid.per_row[2].size(), 1u);
  EXPECT_EQ(hybrid.per_row[2][0]->support, 3u);
  EXPECT_EQ(hybrid.per_row[2][0]->antecedent_support, 4u);
}

}  // namespace
}  // namespace topkrgs
