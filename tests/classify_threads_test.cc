// Pins the serving stack's core concurrency assumption: a trained
// classifier is strictly read-only under Predict, so one instance may be
// shared by any number of threads with no locking. Run under TSan by the
// ci.sh tsan stage (pattern "ThreadSafety") — a mutable cache or lazy
// initialization sneaking into a Predict path shows up as a data race
// here, and as divergent predictions even without TSan.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "classify/cba.h"
#include "classify/evaluator.h"
#include "classify/rcbt.h"
#include "serve/model_registry.h"
#include "synth/generator.h"

namespace topkrgs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 50;

struct Fixture {
  GeneratedData data;
  Pipeline pipeline;

  Fixture() {
    data = GenerateMicroarray(DatasetProfile::Tiny(11));
    pipeline = PreparePipeline(data.train, data.test);
  }

  std::vector<double> TestRow(RowId r) const {
    std::vector<double> row(data.test.num_genes());
    for (GeneId g = 0; g < data.test.num_genes(); ++g) {
      row[g] = data.test.value(r, g);
    }
    return row;
  }
};

// Runs `work(row)` for every test row from kThreads threads concurrently,
// kIterations times each, and reports any mismatch against the
// single-threaded reference computed by the same callable.
template <typename Work>
void HammerRows(const DiscreteDataset& test, const Work& work) {
  std::vector<ClassLabel> reference(test.num_rows());
  for (RowId r = 0; r < test.num_rows(); ++r) {
    reference[r] = work(r);
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        for (RowId r = 0; r < test.num_rows(); ++r) {
          if (work(r) != reference[r]) ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(ThreadSafetyTest, RcbtPredictConcurrently) {
  Fixture fx;
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  opt.item_scores = fx.pipeline.item_scores;
  const RcbtClassifier clf = RcbtClassifier::Train(fx.pipeline.train, opt);
  HammerRows(fx.pipeline.test, [&](RowId r) {
    return clf.Predict(fx.pipeline.test.row_bitset(r)).label;
  });
}

TEST(ThreadSafetyTest, CbaPredictConcurrently) {
  Fixture fx;
  CbaOptions opt;
  opt.item_scores = fx.pipeline.item_scores;
  const CbaClassifier clf = TrainCba(fx.pipeline.train, opt);
  HammerRows(fx.pipeline.test, [&](RowId r) {
    return clf.PredictDetailed(fx.pipeline.test.row_bitset(r)).label;
  });
}

// The full serving entry point: discretize + classify one continuous row
// on a shared ServableModel from many threads.
TEST(ThreadSafetyTest, ServableModelPredictConcurrently) {
  Fixture fx;
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  opt.item_scores = fx.pipeline.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(fx.pipeline.train, opt);
  auto model_or = ServableModel::Create(
      "m", "v1", fx.pipeline.discretization, std::move(clf), std::nullopt,
      fx.pipeline.discretization.num_items());
  ASSERT_TRUE(model_or.ok()) << model_or.status().ToString();
  auto model = model_or.value();
  HammerRows(fx.pipeline.test, [&](RowId r) {
    auto result_or = model->Predict(fx.TestRow(r));
    return result_or.ok() ? result_or.value().label
                          : static_cast<ClassLabel>(255);
  });
}

}  // namespace
}  // namespace topkrgs
