#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "scale/mmap_dataset.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "synth/generator.h"
#include "synth/scale_profile.h"
#include "util/io.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& test, const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void ExpectSameView(const TransposedView& a, const TransposedView& b) {
  ASSERT_EQ(a.num_items, b.num_items);
  ASSERT_EQ(a.num_rows, b.num_rows);
  ASSERT_EQ(a.num_classes, b.num_classes);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (uint32_t r = 0; r < a.num_rows; ++r) {
    EXPECT_EQ(a.labels[r], b.labels[r]) << "row " << r;
  }
  for (uint32_t i = 0; i <= a.num_items; ++i) {
    ASSERT_EQ(a.item_offsets[i], b.item_offsets[i]) << "item " << i;
  }
  for (uint64_t n = 0; n < a.nnz(); ++n) {
    ASSERT_EQ(a.item_row_ids[n], b.item_row_ids[n]) << "entry " << n;
  }
}

TEST(CheckedIndexTest, Boundary) {
  auto max_ok =
      CheckedIndexU32(std::numeric_limits<uint32_t>::max(), "row count");
  ASSERT_TRUE(max_ok.ok());
  EXPECT_EQ(max_ok.value(), std::numeric_limits<uint32_t>::max());

  auto overflow = CheckedIndexU32(
      static_cast<uint64_t>(std::numeric_limits<uint32_t>::max()) + 1,
      "row count");
  EXPECT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("row count"), std::string::npos);
  EXPECT_NE(overflow.status().message().find("uint32"), std::string::npos);

  EXPECT_TRUE(CheckedIndexU32(0, "item id").ok());
}

/// The streaming parse and the in-memory ParseItemData must accept exactly
/// the same files and build the same transposed table (modulo layout).
TEST(StreamReaderTest, MatchesDenseParse) {
  const std::string text =
      "1\t0 2 5\n"
      "0\t1 2\n"
      "1\t5 0 5\n"  // duplicate item collapses
      "0\t\n"       // empty row, still a row
      "1\t3\n";
  auto streamed_or = StreamReader::ParseItemData(text);
  ASSERT_TRUE(streamed_or.ok()) << streamed_or.status().ToString();
  const StreamedTable& table = streamed_or.value();

  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  auto dense_or = DiscreteDataset::ParseItemData(lines, 0);
  ASSERT_TRUE(dense_or.ok());
  const DiscreteDataset& dense = dense_or.value();

  ASSERT_EQ(table.num_items(), dense.num_items());
  ASSERT_EQ(table.num_rows(), dense.num_rows());
  const TransposedView view = table.View();
  for (uint32_t r = 0; r < dense.num_rows(); ++r) {
    EXPECT_EQ(view.labels[r], dense.label(r));
  }
  for (uint32_t i = 0; i < dense.num_items(); ++i) {
    const uint32_t* ids = view.rows_of(i);
    const auto rows = dense.item_rows(i).ToVector();
    ASSERT_EQ(view.rows_count(i), rows.size()) << "item " << i;
    for (size_t n = 0; n < rows.size(); ++n) {
      EXPECT_EQ(ids[n], rows[n]) << "item " << i;
    }
  }

  // Round-trip through the dense materializer preserves rows and labels.
  const DiscreteDataset back = MaterializeDataset(view);
  ASSERT_EQ(back.num_rows(), dense.num_rows());
  for (uint32_t r = 0; r < dense.num_rows(); ++r) {
    EXPECT_EQ(back.row_items(r), dense.row_items(r)) << "row " << r;
    EXPECT_EQ(back.label(r), dense.label(r)) << "row " << r;
  }
}

TEST(StreamReaderTest, RejectsWhatDenseParseRejects) {
  EXPECT_FALSE(StreamReader::ParseItemData("").ok());
  EXPECT_FALSE(StreamReader::ParseItemData("no tab here\n").ok());
  EXPECT_FALSE(StreamReader::ParseItemData("9999\t0\n").ok());  // label range
  StreamReader::Options declared;
  declared.num_items = 4;
  EXPECT_FALSE(StreamReader::ParseItemData("1\t4\n", declared).ok());
  EXPECT_TRUE(StreamReader::ParseItemData("1\t3\n", declared).ok());
}

/// File reads must be chunking-independent, including chunks that split
/// lines mid-field and a final line with no trailing newline.
TEST(StreamReaderTest, ChunkSizeIndependent) {
  const ScaleProfile profile = ScaleProfile::Micro();
  std::string text;
  for (uint64_t row = 0; row < 64; ++row) AppendScaleRow(profile, row, &text);
  text.pop_back();  // drop the final newline: last line is unterminated

  const std::string path = TempPath("stream_reader", "chunks.items");
  ASSERT_TRUE(WriteFileBytes(path, text).ok());

  auto reference_or = StreamReader::ParseItemData(text);
  ASSERT_TRUE(reference_or.ok());
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
    StreamReader::Options options;
    options.chunk_bytes = chunk;
    auto got_or = StreamReader::ReadItemData(path, options);
    ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
    ExpectSameView(reference_or.value().View(), got_or.value().View());
  }
  std::remove(path.c_str());
}

TEST(MmapDatasetTest, RoundTripAndValidation) {
  const ScaleProfile profile = ScaleProfile::Micro();
  std::string text;
  for (uint64_t row = 0; row < 100; ++row) AppendScaleRow(profile, row, &text);
  auto table_or = StreamReader::ParseItemData(text);
  ASSERT_TRUE(table_or.ok());

  const std::string path = TempPath("mmap_dataset", "round.tkds");
  ASSERT_TRUE(WriteTkds(table_or.value(), path).ok());
  {
    auto mapped_or = MmapDataset::Open(path);
    ASSERT_TRUE(mapped_or.ok()) << mapped_or.status().ToString();
    ExpectSameView(table_or.value().View(), mapped_or.value().View());
    EXPECT_GT(mapped_or.value().mapped_bytes(), 0u);
  }

  // Corruptions: bad magic, truncation, out-of-range label.
  const std::string good = ReadFileOrDie(path);
  {
    std::string bad = good;
    bad[0] = 'X';
    ASSERT_TRUE(WriteFileBytes(path, bad).ok());
    EXPECT_FALSE(MmapDataset::Open(path).ok());
  }
  {
    std::string bad = good.substr(0, good.size() - 8);
    ASSERT_TRUE(WriteFileBytes(path, bad).ok());
    EXPECT_FALSE(MmapDataset::Open(path).ok());
  }
  {
    std::string bad = good;
    bad[32] = static_cast<char>(0xee);  // first label
    ASSERT_TRUE(WriteFileBytes(path, bad).ok());
    EXPECT_FALSE(MmapDataset::Open(path).ok());
  }
  std::remove(path.c_str());
}

TEST(ShardPlannerTest, BudgetInfeasibleAndAutoCount) {
  const ScaleProfile profile = ScaleProfile::Micro();
  std::string text;
  for (uint64_t row = 0; row < profile.rows; ++row) {
    AppendScaleRow(profile, row, &text);
  }
  auto table_or = StreamReader::ParseItemData(text);
  ASSERT_TRUE(table_or.ok());
  const TransposedView view = table_or.value().View();

  ShardPlanOptions options;
  options.k = 2;
  options.min_support = profile.SuggestedMinSupport();

  options.memory_budget_bytes = 1;  // below any feasible working set
  auto infeasible = PlanShards(view, 1, options);
  EXPECT_FALSE(infeasible.ok());
  EXPECT_NE(infeasible.status().message().find("memory budget"),
            std::string::npos);

  options.memory_budget_bytes = 0;  // unlimited -> one shard
  auto unlimited = PlanShards(view, 1, options);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited.value().shards.size(), 1u);
  EXPECT_GT(unlimited.value().estimated_peak_bytes, 0u);

  // A budget a little above the floor forces a multi-shard plan whose
  // ranges tile [0, positives) in order.
  options.memory_budget_bytes = unlimited.value().estimated_peak_bytes + 4096;
  auto tight = PlanShards(view, 1, options);
  ASSERT_TRUE(tight.ok());
  const ShardPlan& plan = tight.value();
  ASSERT_FALSE(plan.shards.empty());
  uint32_t cursor = 0;
  for (const ShardRange& range : plan.shards) {
    EXPECT_EQ(range.begin_pos, cursor);
    EXPECT_GT(range.end_pos, range.begin_pos);
    cursor = range.end_pos;
  }
  EXPECT_LE(cursor, plan.positives);

  auto bad_class = PlanShards(view, 7, options);
  EXPECT_FALSE(bad_class.ok());
}

/// The streaming TSV path must emit byte-identical files to the
/// in-memory generator followed by WriteTsv, for any chunk size.
TEST(StreamTsvTest, ByteIdenticalToWriteTsv) {
  const DatasetProfile profile = DatasetProfile::Tiny(77);
  const GeneratedData data = GenerateMicroarray(profile);
  const std::string train_ref = TempPath("stream_tsv", "train_ref.tsv");
  const std::string test_ref = TempPath("stream_tsv", "test_ref.tsv");
  ASSERT_TRUE(data.train.WriteTsv(train_ref).ok());
  ASSERT_TRUE(data.test.WriteTsv(test_ref).ok());

  for (const size_t chunk : {size_t{1}, size_t{64}, size_t{1} << 20}) {
    const std::string train = TempPath("stream_tsv", "train.tsv");
    const std::string test = TempPath("stream_tsv", "test.tsv");
    ASSERT_TRUE(StreamMicroarrayTsv(profile, train, test, chunk).ok());
    EXPECT_EQ(ReadFileOrDie(train), ReadFileOrDie(train_ref))
        << "chunk " << chunk;
    EXPECT_EQ(ReadFileOrDie(test), ReadFileOrDie(test_ref))
        << "chunk " << chunk;
    std::remove(train.c_str());
    std::remove(test.c_str());
  }
  std::remove(train_ref.c_str());
  std::remove(test_ref.c_str());
}

/// Scale rows depend on (seed, row) alone: writer chunking cannot change
/// the bytes, and different seeds produce different files.
TEST(ScaleProfileTest, ChunkIndependentAndSeeded) {
  ScaleProfile profile = ScaleProfile::Micro();
  profile.rows = 50;
  const std::string a = TempPath("scale_profile", "a.items");
  const std::string b = TempPath("scale_profile", "b.items");
  ASSERT_TRUE(WriteScaleItemData(profile, a, 1).ok());
  ASSERT_TRUE(WriteScaleItemData(profile, b, 4096).ok());
  EXPECT_EQ(ReadFileOrDie(a), ReadFileOrDie(b));

  ScaleProfile other = profile;
  other.seed = profile.seed + 1;
  ASSERT_TRUE(WriteScaleItemData(other, b, 4096).ok());
  EXPECT_NE(ReadFileOrDie(a), ReadFileOrDie(b));
  std::remove(a.c_str());
  std::remove(b.c_str());

  ScaleProfile invalid = profile;
  invalid.pattern_items = profile.num_items;  // blocks overflow the universe
  EXPECT_FALSE(WriteScaleItemData(invalid, a).ok());
}

/// The named profiles are bench contracts: their shapes (and the derived
/// minsup) feed committed BENCH_scale.json baselines, so a silent edit
/// here would invalidate the recorded digests.
TEST(ScaleProfileTest, NamedProfileShapes) {
  const ScaleProfile full = ScaleProfile::Full();
  EXPECT_EQ(full.name, "scale-full");
  EXPECT_EQ(full.rows, 100000u);
  EXPECT_EQ(full.num_items, 10000u);
  EXPECT_EQ(full.seed, 2005u);

  const ScaleProfile reduced = ScaleProfile::Reduced();
  EXPECT_EQ(reduced.name, "scale-reduced");
  EXPECT_EQ(reduced.rows, 8000u);
  EXPECT_EQ(reduced.num_items, 2000u);

  const ScaleProfile micro = ScaleProfile::Micro();
  EXPECT_EQ(micro.name, "scale-micro");
  EXPECT_LT(micro.rows, reduced.rows);

  // Pattern blocks must fit each profile's universe (the same invariant
  // WriteScaleItemData enforces), and the derived minsup stays sane:
  // at least the floor of 2, at most the positive-row count.
  for (const ScaleProfile& p : {full, reduced, micro}) {
    EXPECT_LE(uint64_t{p.patterns} * p.pattern_items, p.num_items) << p.name;
    const uint32_t minsup = p.SuggestedMinSupport();
    EXPECT_GE(minsup, 2u) << p.name;
    EXPECT_LE(minsup, p.rows) << p.name;
  }
}

TEST(ScaleProfileTest, WriteRejectsDegenerateInputs) {
  const std::string path = TempPath("scale_profile", "reject.items");
  ScaleProfile empty = ScaleProfile::Micro();
  empty.rows = 0;
  EXPECT_FALSE(WriteScaleItemData(empty, path).ok());

  ScaleProfile no_patterns = ScaleProfile::Micro();
  no_patterns.patterns = 0;
  EXPECT_FALSE(WriteScaleItemData(no_patterns, path).ok());

  // Unwritable destination surfaces as IOError, not a partial file.
  ScaleProfile ok = ScaleProfile::Micro();
  ok.rows = 5;
  auto status = WriteScaleItemData(ok, "/nonexistent-dir/x.items");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace topkrgs
