#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "classify/model_io.h"
#include "cli/commands.h"
#include "cli/flags.h"
#include "discretize/entropy_discretizer.h"

namespace topkrgs {
namespace {

// ctest runs each test case as its own process in parallel; qualify temp
// file names with the pid and test name so concurrent cases never collide.
std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

TEST(FlagParserTest, ParsesBothSyntaxes) {
  auto parser_or = FlagParser::Parse({"--alpha", "1", "--beta=two"});
  ASSERT_TRUE(parser_or.ok());
  const FlagParser& flags = parser_or.value();
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_EQ(flags.GetInt("alpha", 0).value(), 1);
  EXPECT_EQ(flags.GetString("beta", ""), "two");
  EXPECT_EQ(flags.GetString("gamma", "dflt"), "dflt");
}

TEST(FlagParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(FlagParser::Parse({"positional"}).ok());
  EXPECT_FALSE(FlagParser::Parse({"--dangling"}).ok());
  EXPECT_FALSE(FlagParser::Parse({"--x", "1", "--x", "2"}).ok());
}

TEST(FlagParserTest, TypedAccessors) {
  auto flags = FlagParser::Parse({"--n", "42", "--f", "0.5", "--s", "abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().GetInt("n", 0).value(), 42);
  EXPECT_DOUBLE_EQ(flags.value().GetDouble("f", 0).value(), 0.5);
  EXPECT_FALSE(flags.value().GetInt("s", 0).ok());
  EXPECT_FALSE(flags.value().GetDouble("s", 0).ok());
  EXPECT_TRUE(flags.value().GetRequired("s").ok());
  EXPECT_FALSE(flags.value().GetRequired("missing").ok());
}

TEST(FlagParserTest, CheckKnownCatchesTypos) {
  auto flags = FlagParser::Parse({"--profle", "ALL"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags.value().CheckKnown({"profile"}).ok());
  EXPECT_TRUE(flags.value().CheckKnown({"profle"}).ok());
}

class CliCommandsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = TempPath("cli_train.tsv");
    test_ = TempPath("cli_test.tsv");
    ASSERT_TRUE(RunGenerateCommand({"--profile", "TINY", "--seed", "9",
                                    "--train", train_, "--test", test_})
                    .ok());
  }
  void TearDown() override {
    std::remove(train_.c_str());
    std::remove(test_.c_str());
  }

  std::string train_;
  std::string test_;
};

TEST_F(CliCommandsTest, GenerateRejectsBadProfile) {
  EXPECT_FALSE(RunGenerateCommand({"--profile", "XX", "--train", train_}).ok());
  EXPECT_FALSE(RunGenerateCommand({}).ok());  // missing --train
}

TEST_F(CliCommandsTest, MineTopk) {
  EXPECT_TRUE(RunMineCommand({"--data", train_, "--algorithm", "topk", "--k",
                              "2", "--max-print", "2"})
                  .ok());
}

TEST_F(CliCommandsTest, MineEveryAlgorithm) {
  for (const char* algo :
       {"topk", "hybrid", "farmer", "charm", "closet", "carpenter"}) {
    EXPECT_TRUE(RunMineCommand({"--data", train_, "--algorithm", algo,
                                "--budget", "10", "--max-print", "1"})
                    .ok())
        << algo;
  }
  EXPECT_FALSE(RunMineCommand({"--data", train_, "--algorithm", "nope"}).ok());
}

TEST_F(CliCommandsTest, MineValidatesArguments) {
  EXPECT_FALSE(RunMineCommand({}).ok());                       // no --data
  EXPECT_FALSE(RunMineCommand({"--data", "/nope.tsv"}).ok());  // missing file
  EXPECT_FALSE(
      RunMineCommand({"--data", train_, "--consequent", "9"}).ok());
  EXPECT_FALSE(
      RunMineCommand({"--data", train_, "--minsup-frac", "1.5"}).ok());
}

TEST_F(CliCommandsTest, ClassifyTrainEvaluateSaveLoad) {
  const std::string model = TempPath("cli_model.txt");
  const std::string disc = TempPath("cli_disc.txt");
  ASSERT_TRUE(RunClassifyCommand({"--train", train_, "--test", test_,
                                  "--model", "rcbt", "--k", "3", "--nl", "4",
                                  "--save-model", model,
                                  "--save-discretization", disc})
                  .ok());
  // Apply the persisted model without retraining.
  EXPECT_TRUE(RunClassifyCommand({"--test", test_, "--model", "rcbt",
                                  "--load-model", model,
                                  "--load-discretization", disc})
                  .ok());
  // Loading requires the discretization too.
  EXPECT_FALSE(
      RunClassifyCommand({"--test", test_, "--load-model", model}).ok());
  std::remove(model.c_str());
  std::remove(disc.c_str());
}

// A model and a discretization that are each valid alone but define
// different item universes must fail as a configuration error (exit 6,
// FailedPrecondition) — not as generic bad input (exit 2). Pins the
// operator-facing distinction: fix your deployment, not your data.
TEST_F(CliCommandsTest, ClassifyUniverseMismatchExitsWithCode6) {
  const std::string model = TempPath("cli_model.txt");
  const std::string disc = TempPath("cli_disc.txt");
  const std::string alien_disc = TempPath("cli_alien_disc.txt");
  ASSERT_TRUE(RunClassifyCommand({"--train", train_, "--test", test_,
                                  "--model", "rcbt", "--k", "2", "--nl", "3",
                                  "--save-model", model,
                                  "--save-discretization", disc})
                  .ok());
  // A structurally valid discretization over a 2-item universe: far
  // smaller than anything the trained model was built against.
  ASSERT_TRUE(
      SaveDiscretization(Discretization::FromCuts({0}, {{0.5}}), alien_disc)
          .ok());
  const Status status =
      RunClassifyCommand({"--test", test_, "--model", "rcbt",
                          "--load-model", model,
                          "--load-discretization", alien_disc});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ExitCodeForStatus(status), 6);
  // The matched pair still works (exit 0 path unchanged).
  EXPECT_EQ(ExitCodeForStatus(RunClassifyCommand(
                {"--test", test_, "--model", "rcbt", "--load-model", model,
                 "--load-discretization", disc})),
            0);
  std::remove(model.c_str());
  std::remove(disc.c_str());
  std::remove(alien_disc.c_str());
}

TEST_F(CliCommandsTest, CrossValidationCommand) {
  EXPECT_TRUE(RunCvCommand({"--data", train_, "--model", "cba", "--folds",
                            "3", "--k", "2", "--nl", "3"})
                  .ok());
  EXPECT_TRUE(RunCvCommand({"--data", train_, "--model", "rcbt", "--folds",
                            "3", "--k", "2", "--nl", "3"})
                  .ok());
  EXPECT_FALSE(RunCvCommand({"--data", train_, "--folds", "1"}).ok());
  EXPECT_FALSE(RunCvCommand({"--model", "cba"}).ok());
  EXPECT_FALSE(RunCvCommand({"--data", train_, "--model", "tree"}).ok());
}

TEST_F(CliCommandsTest, ClassifyCba) {
  EXPECT_TRUE(RunClassifyCommand(
                  {"--train", train_, "--test", test_, "--model", "cba"})
                  .ok());
  EXPECT_FALSE(RunClassifyCommand(
                   {"--train", train_, "--test", test_, "--model", "svm"})
                   .ok());
}

// topkrgs-convert + topkrgs-shard-mine round trip, in-process. The item-data
// format is `label \t item item ...`, one row per line (same fixture shape
// as tests/scale_io_test.cc).
class ScaleCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    items_ = TempPath("scale_cli.items");
    tkds_ = TempPath("scale_cli.tkds");
    std::ofstream out(items_);
    ASSERT_TRUE(out.good());
    out << "1\t0 2 5\n"
           "0\t1 2\n"
           "1\t0 2 5\n"
           "0\t3\n"
           "1\t0 5\n"
           "1\t2 5\n";
  }
  void TearDown() override {
    std::remove(items_.c_str());
    std::remove(tkds_.c_str());
  }

  std::string items_;
  std::string tkds_;
};

TEST_F(ScaleCliTest, ConvertRoundTrip) {
  ASSERT_TRUE(
      RunConvertCommand({"--input", items_, "--output", tkds_}).ok());
  // Mining the text path and the converted tkds path must both succeed;
  // shard_merge_test pins digest equality, here we exercise the command
  // wiring end to end.
  EXPECT_TRUE(RunShardMineCommand({"--data", items_, "--k", "2",
                                   "--max-print", "2"})
                  .ok());
  EXPECT_TRUE(RunShardMineCommand({"--data", tkds_, "--k", "2",
                                   "--shards", "2", "--max-print", "2"})
                  .ok());
}

TEST_F(ScaleCliTest, ConvertValidatesArguments) {
  EXPECT_FALSE(RunConvertCommand({}).ok());  // missing --input/--output
  EXPECT_FALSE(RunConvertCommand({"--input", items_}).ok());
  EXPECT_FALSE(
      RunConvertCommand({"--input", "/nope.items", "--output", tkds_}).ok());
  EXPECT_FALSE(RunConvertCommand({"--input", items_, "--output", tkds_,
                                  "--num-items", "-1"})
                   .ok());
  EXPECT_FALSE(RunConvertCommand({"--input", items_, "--output", tkds_,
                                  "--chunk-bytes", "0"})
                   .ok());
  EXPECT_FALSE(RunConvertCommand({"--input", items_, "--output", tkds_,
                                  "--typo", "1"})
                   .ok());
}

TEST_F(ScaleCliTest, ShardMineValidatesArguments) {
  EXPECT_FALSE(RunShardMineCommand({}).ok());  // missing --data
  EXPECT_FALSE(RunShardMineCommand({"--data", "/nope.items"}).ok());
  EXPECT_FALSE(
      RunShardMineCommand({"--data", items_, "--consequent", "7"}).ok());
  EXPECT_FALSE(
      RunShardMineCommand({"--data", items_, "--shards", "-1"}).ok());
  EXPECT_FALSE(
      RunShardMineCommand({"--data", items_, "--threads", "-1"}).ok());
  EXPECT_FALSE(
      RunShardMineCommand({"--data", items_, "--memory-budget", "-1"}).ok());
  EXPECT_FALSE(
      RunShardMineCommand({"--data", items_, "--minsup-frac", "1.5"}).ok());
}

}  // namespace
}  // namespace topkrgs
