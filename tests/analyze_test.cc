#include "analyze/rule_report.h"

#include <gtest/gtest.h>

#include "classify/evaluator.h"
#include "classify/rcbt.h"
#include "discretize/binning.h"
#include "synth/generator.h"
#include "test_util.h"

namespace topkrgs {
namespace {

TEST(RuleGroupStatsTest, RunningExampleAbc) {
  DiscreteDataset d = MakeRunningExampleDataset();
  Bitset a(d.num_items());
  a.Set(RunningExampleItem('a'));
  RuleGroup g = CloseItemset(d, a, 1);  // abc -> C, sup 2, conf 1.0

  const RuleGroupStats stats = ComputeRuleGroupStats(d, g);
  EXPECT_DOUBLE_EQ(stats.confidence, 1.0);
  EXPECT_EQ(stats.support, 2u);
  EXPECT_EQ(stats.antecedent_items, 3u);
  // Base rate of C is 3/5; lift = 1.0 / 0.6.
  EXPECT_NEAR(stats.lift, 1.0 / 0.6, 1e-12);
  EXPECT_NEAR(stats.class_coverage, 2.0 / 3.0, 1e-12);
  // Contingency {{2,0},{1,2}} over 5 rows: chi2 = 5*(2*2-0*1)^2/(2*3*3*2).
  EXPECT_NEAR(stats.chi_square, 5.0 * 16 / 36.0, 1e-9);
}

TEST(CoverageStatsTest, CountsCoverage) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 1, opt);
  const CoverageStats cov = ComputeCoverage(d, 1, result.DistinctGroups());
  EXPECT_EQ(cov.class_rows, 3u);
  EXPECT_EQ(cov.covered, 3u);  // every class-C row covered
  EXPECT_DOUBLE_EQ(cov.coverage(), 1.0);
  EXPECT_GE(cov.mean_groups_per_row, 1.0);
}

TEST(CoverageStatsTest, EmptyGroupsCoverNothing) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const CoverageStats cov = ComputeCoverage(d, 1, {});
  EXPECT_EQ(cov.covered, 0u);
  EXPECT_DOUBLE_EQ(cov.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(cov.mean_groups_per_row, 0.0);
}

TEST(GeneUsageTest, CountsItemGenes) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(31));
  Pipeline p = PreparePipeline(data.train, data.test);
  // Two rules over the first three items.
  Rule r1, r2;
  r1.antecedent = Bitset(p.train.num_items());
  r1.antecedent.Set(0);
  r1.antecedent.Set(1);
  r2.antecedent = Bitset(p.train.num_items());
  r2.antecedent.Set(0);
  const auto usage = GeneUsage(p.discretization, {r1, r2});
  ASSERT_FALSE(usage.empty());
  // Item 0's gene is used twice (or more if items 0/1 share a gene).
  EXPECT_EQ(usage[0].second + (usage.size() > 1 ? usage[1].second : 0), 3u);
}

TEST(RenderReportTest, ContainsKeySections) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(32));
  Pipeline p = PreparePipeline(data.train, data.test);
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support =
      std::max<uint32_t>(1, 7 * p.train.ClassCounts()[1] / 10);
  TopkResult result = MineTopkRGS(p.train, 1, opt);
  const std::string report =
      RenderTopkReport(p.train, data.train, p.discretization, 1, result);
  EXPECT_NE(report.find("distinct"), std::string::npos);
  EXPECT_NE(report.find("Coverage:"), std::string::npos);
  EXPECT_NE(report.find("group 0:"), std::string::npos);
  EXPECT_NE(report.find("conf"), std::string::npos);
}

TEST(ConfusionMatrixTest, MetricsOnKnownMatrix) {
  ConfusionMatrix m;
  m.counts = {{8, 2}, {1, 9}};  // actual x predicted
  EXPECT_EQ(m.total(), 20u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(m.precision(1), 9.0 / 11.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 9.0 / 10.0);
  const double p = 8.0 / 9.0, r = 0.8;
  EXPECT_NEAR(m.f1(0), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrixTest, DegenerateCases) {
  ConfusionMatrix m;
  m.counts = {{0, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(0), 0.0);
}

TEST(ConfusionMatrixTest, AgreesWithEvaluateDiscrete) {
  DiscreteDataset d = testing_util::RandomDataset(6, 20, 8, 0.5);
  auto predictor = [](const Bitset& items, bool* dflt) {
    *dflt = false;
    return static_cast<ClassLabel>(items.Test(0) ? 1 : 0);
  };
  const EvalOutcome eval = EvaluateDiscrete(d, predictor);
  const ConfusionMatrix matrix = ConfusionDiscrete(d, predictor);
  EXPECT_EQ(matrix.total(), eval.total);
  EXPECT_NEAR(matrix.accuracy(), eval.accuracy(), 1e-12);
}

TEST(BinningTest, EqualWidthProducesUniformCuts) {
  ContinuousDataset d(2);
  for (int i = 0; i <= 10; ++i) {
    d.AddRow({static_cast<double>(i), 5.0}, i % 2);
  }
  Discretization disc = FitEqualWidth(d, 4);
  // Gene 1 is constant and must be dropped.
  ASSERT_EQ(disc.num_selected_genes(), 1u);
  EXPECT_EQ(disc.selected_genes()[0], 0u);
  const auto& cuts = disc.cuts(0);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_DOUBLE_EQ(cuts[0], 2.5);
  EXPECT_DOUBLE_EQ(cuts[1], 5.0);
  EXPECT_DOUBLE_EQ(cuts[2], 7.5);
  EXPECT_EQ(disc.num_items(), 4u);
}

TEST(BinningTest, EqualFrequencyBalancesBins) {
  ContinuousDataset d(1);
  for (int i = 0; i < 12; ++i) d.AddRow({static_cast<double>(i)}, i % 2);
  Discretization disc = FitEqualFrequency(d, 3);
  ASSERT_EQ(disc.num_selected_genes(), 1u);
  DiscreteDataset dd = disc.Apply(d);
  // 3 items, each covering 4 rows.
  ASSERT_EQ(dd.num_items(), 3u);
  for (ItemId item = 0; item < 3; ++item) {
    EXPECT_EQ(dd.ItemSupport(item), 4u) << item;
  }
}

TEST(BinningTest, EqualFrequencyHandlesHeavyTies) {
  ContinuousDataset d(1);
  for (int i = 0; i < 10; ++i) d.AddRow({1.0}, i % 2);
  d.AddRow({2.0}, 0);
  Discretization disc = FitEqualFrequency(d, 4);
  // Only one distinct boundary can exist.
  if (disc.num_selected_genes() > 0) {
    EXPECT_LE(disc.cuts(0).size(), 1u);
  }
}

TEST(BinningTest, EntropyBeatsUnsupervisedBinningOnAverage) {
  // A3 sanity: averaged over several Tiny datasets, RCBT with entropy-MDL
  // discretization is at least as accurate as with unsupervised
  // equal-width binning (per-seed either can win; fixed seeds keep this
  // deterministic).
  auto accuracy = [](const DiscreteDataset& train, const DiscreteDataset& test) {
    RcbtOptions opt;
    opt.k = 3;
    opt.nl = 4;
    RcbtClassifier clf = RcbtClassifier::Train(train, opt);
    return EvaluateDiscrete(test, [&](const Bitset& items, bool* dflt) {
             const auto pred = clf.Predict(items);
             *dflt = pred.used_default;
             return pred.label;
           }).accuracy();
  };
  double entropy_sum = 0.0;
  double width_sum = 0.0;
  const int kSeeds = 6;
  for (int seed = 33; seed < 33 + kSeeds; ++seed) {
    GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(seed));
    Pipeline entropy = PreparePipeline(data.train, data.test);
    entropy_sum += accuracy(entropy.train, entropy.test);
    Discretization width = FitEqualWidth(data.train, 2);
    width_sum += accuracy(width.Apply(data.train), width.Apply(data.test));
  }
  EXPECT_GE(entropy_sum / kSeeds + 1e-9, width_sum / kSeeds);
  EXPECT_GT(entropy_sum / kSeeds, 0.7);
}

}  // namespace
}  // namespace topkrgs
