#include "synth/generator.h"

#include <gtest/gtest.h>

#include "classify/evaluator.h"
#include "core/stats.h"

namespace topkrgs {
namespace {

TEST(GeneratorTest, ShapesMatchProfile) {
  DatasetProfile p = DatasetProfile::Tiny(1);
  GeneratedData data = GenerateMicroarray(p);
  EXPECT_EQ(data.train.num_genes(), p.num_genes);
  EXPECT_EQ(data.train.num_rows(), p.train_class0 + p.train_class1);
  EXPECT_EQ(data.test.num_rows(), p.test_class0 + p.test_class1);
  const auto counts = data.train.ClassCounts();
  EXPECT_EQ(counts[0], p.train_class0);
  EXPECT_EQ(counts[1], p.train_class1);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratedData a = GenerateMicroarray(DatasetProfile::Tiny(9));
  GeneratedData b = GenerateMicroarray(DatasetProfile::Tiny(9));
  ASSERT_EQ(a.train.num_rows(), b.train.num_rows());
  for (RowId r = 0; r < a.train.num_rows(); ++r) {
    for (GeneId g = 0; g < a.train.num_genes(); ++g) {
      ASSERT_DOUBLE_EQ(a.train.value(r, g), b.train.value(r, g));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratedData a = GenerateMicroarray(DatasetProfile::Tiny(1));
  GeneratedData b = GenerateMicroarray(DatasetProfile::Tiny(2));
  bool any_diff = false;
  for (GeneId g = 0; g < a.train.num_genes() && !any_diff; ++g) {
    any_diff = a.train.value(0, g) != b.train.value(0, g);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, PlantedSignalIsDetectable) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(5));
  std::vector<uint8_t> labels(data.train.num_rows());
  for (RowId r = 0; r < data.train.num_rows(); ++r) {
    labels[r] = data.train.label(r);
  }
  // Some gene should have near-perfect split gain (a strong marker).
  double best = 0.0;
  for (GeneId g = 0; g < data.train.num_genes(); ++g) {
    best = std::max(best, BestSplitInfoGain(data.train.GeneColumn(g), labels,
                                            data.train.num_classes()));
  }
  EXPECT_GT(best, 0.7);
}

TEST(GeneratorTest, PaperProfilesHaveTable1Shapes) {
  const auto profiles = PaperProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "ALL");
  EXPECT_EQ(profiles[0].num_genes, 7129u);
  EXPECT_EQ(profiles[0].train_class1 + profiles[0].train_class0, 38u);
  EXPECT_EQ(profiles[1].name, "LC");
  EXPECT_EQ(profiles[1].num_genes, 12533u);
  EXPECT_EQ(profiles[1].train_class1 + profiles[1].train_class0, 32u);
  EXPECT_EQ(profiles[2].name, "OC");
  EXPECT_EQ(profiles[2].num_genes, 15154u);
  EXPECT_EQ(profiles[2].train_class1 + profiles[2].train_class0, 210u);
  EXPECT_EQ(profiles[3].name, "PC");
  EXPECT_EQ(profiles[3].num_genes, 12600u);
  EXPECT_EQ(profiles[3].train_class1 + profiles[3].train_class0, 102u);
}

TEST(GeneratorTest, PipelineProducesItemsOnTinyProfile) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(6));
  Pipeline p = PreparePipeline(data.train, data.test);
  EXPECT_GT(p.discretization.num_selected_genes(), 0u);
  EXPECT_EQ(p.train.num_rows(), data.train.num_rows());
  EXPECT_EQ(p.test.num_rows(), data.test.num_rows());
  EXPECT_EQ(p.train.num_items(), p.discretization.num_items());
  // Every row has one item per selected gene.
  for (RowId r = 0; r < p.train.num_rows(); ++r) {
    EXPECT_EQ(p.train.row_items(r).size(),
              p.discretization.num_selected_genes());
  }
  EXPECT_EQ(p.item_scores.size(), p.discretization.num_items());
}

TEST(GeneratorTest, SelectGenesProjects) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(8));
  ContinuousDataset sub = SelectGenes(data.train, {3, 7});
  EXPECT_EQ(sub.num_genes(), 2u);
  EXPECT_EQ(sub.num_rows(), data.train.num_rows());
  EXPECT_DOUBLE_EQ(sub.value(0, 0), data.train.value(0, 3));
  EXPECT_DOUBLE_EQ(sub.value(0, 1), data.train.value(0, 7));
  EXPECT_EQ(sub.gene_name(1), data.train.gene_name(7));
}

}  // namespace
}  // namespace topkrgs
