#ifndef TOPKRGS_TESTS_FUZZ_FUZZ_UTIL_H_
#define TOPKRGS_TESTS_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.h"

namespace topkrgs {
namespace fuzzing {

/// Inputs larger than this are ignored by the fuzz targets: every parser
/// is line-oriented and O(bytes), so megabyte inputs only slow the fuzzer
/// down without reaching new code.
inline constexpr size_t kMaxFuzzInputBytes = 1 << 20;

/// Turns a fuzzer byte buffer into the line vector the parsers consume,
/// via the same SplitIntoLines the file loaders use — fuzzed parsing and
/// production parsing share one line-splitting code path.
inline std::vector<std::string> LinesFromBytes(const uint8_t* data,
                                               size_t size) {
  return SplitIntoLines(
      std::string_view(reinterpret_cast<const char*>(data), size));
}

}  // namespace fuzzing
}  // namespace topkrgs

#endif  // TOPKRGS_TESTS_FUZZ_FUZZ_UTIL_H_
