// Fuzz target: the continuous expression-matrix TSV parser. Crash-freedom
// contract: any bytes parse to a valid dataset or a non-OK Status.

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace topkrgs;
  if (size > fuzzing::kMaxFuzzInputBytes) return 0;
  auto result = ContinuousDataset::ParseTsv(fuzzing::LinesFromBytes(data, size));
  (void)result;
  return 0;
}
