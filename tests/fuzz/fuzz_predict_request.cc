// Fuzz target: the POST /v1/predict request parser — the serving stack's
// network-facing ingestion boundary (JSON tree + shape validation). The
// contract under test is crash-freedom: any byte sequence must yield
// either a validated ParsedPredictRequest or a non-OK Status, never an
// abort, hang, or sanitizer report.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_util.h"
#include "serve/service.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace topkrgs;
  if (size > fuzzing::kMaxFuzzInputBytes) return 0;
  const std::string_view body(reinterpret_cast<const char*>(data), size);
  auto result = ParsePredictRequest(body);
  (void)result;
  return 0;
}
