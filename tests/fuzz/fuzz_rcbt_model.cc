// Fuzz target: the topkrgs-rcbt v1 model parser — the format whose
// unvalidated consequent used to reach RcbtClassifier::FromParts and write
// out of bounds into score_norm. Crash-freedom contract: any bytes parse
// to a valid classifier or a non-OK Status.

#include <cstddef>
#include <cstdint>

#include "classify/model_io.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace topkrgs;
  if (size > fuzzing::kMaxFuzzInputBytes) return 0;
  uint32_t num_items = 0;
  auto result =
      ParseRcbtModel(fuzzing::LinesFromBytes(data, size), &num_items);
  (void)result;
  return 0;
}
