// Standalone replay driver for the fuzz targets, used when the toolchain
// has no libFuzzer runtime (gcc builds). It gives every fuzz target a
// main() that replays files — or whole corpus directories — through
// LLVMFuzzerTestOneInput, so the committed corpus runs as a plain ctest
// case under any compiler and any sanitizer preset. libFuzzer flags
// (arguments starting with '-') are accepted and ignored, which lets the
// same ctest command line drive either binary flavor.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ran = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // ignore libFuzzer flags
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        ok = RunFile(entry.path()) && ok;
        ++ran;
      }
    } else {
      ok = RunFile(arg) && ok;
      ++ran;
    }
  }
  std::printf("replayed %zu inputs without crashing\n", ran);
  return ok ? 0 : 1;
}
