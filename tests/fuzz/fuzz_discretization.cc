// Fuzz target: the topkrgs-discretization v1 parser. The contract under
// test is crash-freedom — any byte sequence must yield either a valid
// Discretization or a non-OK Status, never an abort or sanitizer report.

#include <cstddef>
#include <cstdint>

#include "classify/model_io.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace topkrgs;
  if (size > fuzzing::kMaxFuzzInputBytes) return 0;
  auto result = ParseDiscretizationModel(fuzzing::LinesFromBytes(data, size));
  (void)result;
  return 0;
}
