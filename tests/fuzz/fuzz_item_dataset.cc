// Fuzz target: the transactional item-data parser (label<TAB>items lines),
// with the item universe inferred from the data — the adversarial case,
// since a single huge id used to size the whole per-item index. Crash-
// freedom contract: any bytes parse to a valid dataset or a non-OK Status.

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace topkrgs;
  if (size > fuzzing::kMaxFuzzInputBytes) return 0;
  auto result =
      DiscreteDataset::ParseItemData(fuzzing::LinesFromBytes(data, size));
  (void)result;
  return 0;
}
