#include "discretize/entropy_discretizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/generator.h"

namespace topkrgs {
namespace {

ContinuousDataset TwoGeneDataset() {
  // Gene 0: cleanly separates the classes; gene 1: identical noise values.
  ContinuousDataset d(2);
  const double noise[] = {0.3, 0.1, 0.4, 0.1, 0.5, 0.9, 0.2, 0.6};
  for (int i = 0; i < 4; ++i) d.AddRow({static_cast<double>(i), noise[i]}, 0);
  for (int i = 4; i < 8; ++i) d.AddRow({static_cast<double>(i) + 10, noise[i]}, 1);
  return d;
}

TEST(EntropyDiscretizerTest, SelectsInformativeGeneOnly) {
  EntropyDiscretizer disc;
  Discretization result = disc.Fit(TwoGeneDataset());
  ASSERT_EQ(result.num_selected_genes(), 1u);
  EXPECT_EQ(result.selected_genes()[0], 0u);
  // One MDL-accepted cut -> two intervals.
  EXPECT_EQ(result.num_items(), 2u);
  const auto& cuts = result.cuts(0);
  ASSERT_EQ(cuts.size(), 1u);
  // Cut between 3 (last of class 0) and 14 (first of class 1).
  EXPECT_GT(cuts[0], 3.0);
  EXPECT_LT(cuts[0], 14.0);
}

TEST(EntropyDiscretizerTest, ItemIntervalsPartitionTheLine) {
  EntropyDiscretizer disc;
  Discretization result = disc.Fit(TwoGeneDataset());
  ASSERT_EQ(result.num_items(), 2u);
  const ItemInfo& lo = result.item(0);
  const ItemInfo& hi = result.item(1);
  EXPECT_TRUE(std::isinf(lo.lo));
  EXPECT_DOUBLE_EQ(lo.hi, hi.lo);
  EXPECT_TRUE(std::isinf(hi.hi));
  EXPECT_EQ(lo.gene, 0u);
  EXPECT_EQ(hi.gene, 0u);
}

TEST(EntropyDiscretizerTest, ApplyAssignsCorrectIntervals) {
  EntropyDiscretizer disc;
  ContinuousDataset train = TwoGeneDataset();
  Discretization result = disc.Fit(train);
  DiscreteDataset dd = result.Apply(train);
  EXPECT_EQ(dd.num_rows(), 8u);
  EXPECT_EQ(dd.num_items(), 2u);
  // Every row gets exactly one item per selected gene.
  for (RowId r = 0; r < dd.num_rows(); ++r) {
    ASSERT_EQ(dd.row_items(r).size(), 1u);
    EXPECT_EQ(dd.row_items(r)[0], dd.label(r) == 0 ? 0u : 1u);
  }
}

TEST(EntropyDiscretizerTest, DiscretizeRowHandlesBoundaryValues) {
  EntropyDiscretizer disc;
  Discretization result = disc.Fit(TwoGeneDataset());
  const double cut = result.cuts(0)[0];
  // Exactly at the cut: upper_bound sends it to the right interval's left
  // side only if v < cut; v == cut belongs to the upper interval.
  EXPECT_EQ(result.DiscretizeRow({cut - 1e-9, 0.0})[0], 0u);
  EXPECT_EQ(result.DiscretizeRow({cut, 0.0})[0], 1u);
  EXPECT_EQ(result.DiscretizeRow({cut + 1e-9, 0.0})[0], 1u);
}

TEST(EntropyDiscretizerTest, PureLabelsYieldNoGenes) {
  ContinuousDataset d(3);
  for (int i = 0; i < 6; ++i) {
    d.AddRow({static_cast<double>(i), 1.0 * i, -2.0 * i}, 0);
  }
  EntropyDiscretizer disc;
  EXPECT_EQ(disc.Fit(d).num_selected_genes(), 0u);
}

TEST(EntropyDiscretizerTest, MdlRejectsRandomNoise) {
  // Pure noise genes should mostly be rejected by the MDL criterion.
  DatasetProfile profile = DatasetProfile::Tiny(77);
  profile.strong_genes = 0;
  profile.weak_genes = 0;
  profile.correlated_blocks = 0;
  GeneratedData data = GenerateMicroarray(profile);
  EntropyDiscretizer disc;
  Discretization result = disc.Fit(data.train);
  EXPECT_LT(result.num_selected_genes(), profile.num_genes / 4);
}

TEST(EntropyDiscretizerTest, NoMdlOptionAcceptsMoreGenes) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(3));
  Discretization with_mdl = EntropyDiscretizer().Fit(data.train);
  EntropyDiscretizer::Options opt;
  opt.use_mdl = false;
  opt.max_depth = 1;
  Discretization without = EntropyDiscretizer(opt).Fit(data.train);
  EXPECT_GT(without.num_selected_genes(), with_mdl.num_selected_genes());
}

TEST(EntropyDiscretizerTest, MaxDepthLimitsIntervalCount) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(4));
  EntropyDiscretizer::Options opt;
  opt.max_depth = 1;
  Discretization result = EntropyDiscretizer(opt).Fit(data.train);
  for (uint32_t s = 0; s < result.num_selected_genes(); ++s) {
    EXPECT_LE(result.cuts(s).size(), 1u);
  }
}

TEST(EntropyDiscretizerTest, ItemNameFormatsInterval) {
  EntropyDiscretizer disc;
  ContinuousDataset train = TwoGeneDataset();
  train.set_gene_name(0, "X95735_at");
  Discretization result = disc.Fit(train);
  const std::string name = result.ItemName(train, 0);
  EXPECT_EQ(name.find("X95735_at"), 0u);
  EXPECT_NE(name.find("-inf"), std::string::npos);
}

}  // namespace
}  // namespace topkrgs
