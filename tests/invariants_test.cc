// Exercises the debug invariant-checking framework (util/check.h,
// DESIGN.md §11): the CheckInvariants() predicates on PrefixTree,
// RuleGroup and the per-row top-k lists both on well-formed objects (all
// build types) and on deliberately corrupted state, where the
// ValidateInvariants() death tests prove TKRGS_DCHECK actually aborts in
// DCHECK-enabled builds (Debug/asan/tsan presets) and stays silent in
// release.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/rule.h"
#include "mine/miner_common.h"
#include "mine/prefix_tree.h"
#include "mine/topk_miner.h"
#include "test_util.h"
#include "util/check.h"

namespace topkrgs {

/// Test-only backdoor (declared in mine/prefix_tree.h): reaches the
/// private buffers so the corruption tests can break one invariant at a
/// time without widening the public API.
struct PrefixTree::TestPeer {
  static void SetNodeCount(PrefixTree* tree, size_t node, uint32_t count) {
    tree->nodes_[node].count = count;
  }
  static void SetNodePos(PrefixTree* tree, size_t node, uint32_t pos) {
    tree->nodes_[node].pos = pos;
  }
  static void SetHeaderFreq(PrefixTree* tree, uint32_t pos, uint32_t freq) {
    tree->headers_[pos].freq = freq;
  }
  static void SetTupleCount(PrefixTree* tree, uint64_t count) {
    tree->tuple_count_ = count;
  }
  static size_t NumNodes(const PrefixTree& tree) { return tree.nodes_.size(); }
};

namespace {

using testing_util::RandomDataset;

std::vector<RowId> IdentityOrder(uint32_t n) {
  std::vector<RowId> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

PrefixTree BuildExampleTree() {
  DiscreteDataset d = MakeRunningExampleDataset();
  return PrefixTree::BuildRoot(d, IdentityOrder(d.num_rows()),
                               Bitset::AllSet(d.num_items()));
}

RuleGroup WellFormedGroup() {
  DiscreteDataset d = MakeRunningExampleDataset();
  Bitset itemset(d.num_items());
  itemset.Set(RunningExampleItem('c'));
  return CloseItemset(d, itemset, /*consequent=*/0);
}

// ---------------------------------------------------------------------------
// TKRGS_DCHECK framework basics.

TEST(CheckFrameworkTest, DcheckCompiledInMatchesBuildType) {
#ifdef TOPKRGS_ENABLE_DCHECK
  EXPECT_EQ(TOPKRGS_DCHECK_IS_ON(), 1);
#else
  EXPECT_EQ(TOPKRGS_DCHECK_IS_ON(), 0);
#endif
}

TEST(CheckFrameworkTest, PassingChecksNeverAbort) {
  TKRGS_DCHECK(true, "never fires");
  TKRGS_DCHECK_EQ(2 + 2, 4, "arithmetic");
  TKRGS_DCHECK_LE(1, 2, "ordering");
  const std::vector<int> sorted{1, 2, 2, 3};
  TKRGS_DCHECK_SORTED(sorted.begin(), sorted.end(), std::less<int>(),
                      "non-decreasing with duplicates is sorted");
  const std::vector<int> unique{1, 2, 3};
  TKRGS_DCHECK_SORTED_UNIQUE(unique.begin(), unique.end(), std::less<int>(),
                             "strictly increasing");
}

TEST(CheckFrameworkTest, ReleaseBuildDoesNotEvaluateCondition) {
#if !TOPKRGS_DCHECK_IS_ON()
  bool evaluated = false;
  TKRGS_DCHECK(([&] {
                 evaluated = true;
                 return true;
               }()),
               "must not run in release");
  EXPECT_FALSE(evaluated);
#else
  GTEST_SKIP() << "DCHECK-enabled build evaluates conditions by design";
#endif
}

TEST(CheckFrameworkTest, SortedUniqueRejectsDuplicatesAndDisorder) {
  const std::vector<int> dup{1, 2, 2};
  const std::vector<int> unordered{3, 1, 2};
  EXPECT_FALSE(internal::RangeIsSortedUnique(dup.begin(), dup.end(),
                                             std::less<int>()));
  EXPECT_FALSE(internal::RangeIsSortedUnique(unordered.begin(),
                                             unordered.end(),
                                             std::less<int>()));
  EXPECT_FALSE(internal::RangeIsSorted(unordered.begin(), unordered.end(),
                                       std::less<int>()));
  const std::vector<int> empty;
  EXPECT_TRUE(internal::RangeIsSortedUnique(empty.begin(), empty.end(),
                                            std::less<int>()));
}

// ---------------------------------------------------------------------------
// RuleGroup invariants.

TEST(RuleGroupInvariantsTest, ClosedItemsetIsWellFormed) {
  const RuleGroup group = WellFormedGroup();
  std::string error;
  EXPECT_TRUE(group.CheckInvariants(&error)) << error;
  group.ValidateInvariants();  // must not abort on a well-formed group
}

TEST(RuleGroupInvariantsTest, DetectsSupportAboveAntecedentSupport) {
  RuleGroup group = WellFormedGroup();
  group.support = group.antecedent_support + 1;
  std::string error;
  EXPECT_FALSE(group.CheckInvariants(&error));
  EXPECT_NE(error.find("support"), std::string::npos) << error;
}

TEST(RuleGroupInvariantsTest, DetectsSupportSetCountMismatch) {
  RuleGroup group = WellFormedGroup();
  group.antecedent_support += 2;
  group.support = group.antecedent_support;  // keep conf valid: isolate one
  std::string error;
  EXPECT_FALSE(group.CheckInvariants(&error));
  EXPECT_NE(error.find("row_support"), std::string::npos) << error;
}

TEST(RuleGroupInvariantsDeathTest, ValidateAbortsOnCorruptGroup) {
#if TOPKRGS_DCHECK_IS_ON()
  RuleGroup group = WellFormedGroup();
  group.support = group.antecedent_support + 7;
  EXPECT_DEATH(group.ValidateInvariants(), "DCHECK failed");
#else
  // Release contract: ValidateInvariants is a no-op even on corrupt state.
  RuleGroup group = WellFormedGroup();
  group.support = group.antecedent_support + 7;
  group.ValidateInvariants();
#endif
}

// ---------------------------------------------------------------------------
// PrefixTree invariants.

TEST(PrefixTreeInvariantsTest, FreshRootAndConditionalsAreWellFormed) {
  const PrefixTree tree = BuildExampleTree();
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  tree.ForEachFrequentPosition([&](uint32_t pos, uint32_t) {
    const PrefixTree cond = tree.Conditional(pos);
    std::string cond_error;
    EXPECT_TRUE(cond.CheckInvariants(&cond_error))
        << "conditional on " << pos << ": " << cond_error;
  });
}

TEST(PrefixTreeInvariantsTest, PlaceholderTreeIsWellFormed) {
  const PrefixTree tree;
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(PrefixTreeInvariantsTest, RandomDatasetTreesAreWellFormed) {
  const DiscreteDataset d = RandomDataset(/*seed=*/17, /*num_rows=*/24,
                                          /*num_items=*/40, /*density=*/0.3);
  const PrefixTree tree = PrefixTree::BuildRoot(d, IdentityOrder(d.num_rows()),
                                                Bitset::AllSet(d.num_items()));
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(PrefixTreeInvariantsTest, DetectsHeaderFreqMismatch) {
  PrefixTree tree = BuildExampleTree();
  PrefixTree::TestPeer::SetHeaderFreq(&tree, 0, tree.freq(0) + 1);
  std::string error;
  EXPECT_FALSE(tree.CheckInvariants(&error));
  EXPECT_NE(error.find("header chain"), std::string::npos) << error;
}

TEST(PrefixTreeInvariantsTest, DetectsChildCountExceedingParent) {
  PrefixTree tree = BuildExampleTree();
  ASSERT_GT(PrefixTree::TestPeer::NumNodes(tree), 2u);
  // Inflate a deep node: its parent's count no longer covers it.
  const size_t last = PrefixTree::TestPeer::NumNodes(tree) - 1;
  PrefixTree::TestPeer::SetNodeCount(&tree, last, 1u << 20);
  EXPECT_FALSE(tree.CheckInvariants());
}

TEST(PrefixTreeInvariantsTest, DetectsAscendingPathPosition) {
  PrefixTree tree = BuildExampleTree();
  ASSERT_GT(PrefixTree::TestPeer::NumNodes(tree), 2u);
  // Give the last node (guaranteed non-root, with a non-root parent in the
  // running example) a position above every parent: breaks the descending
  // path order AND its header chain membership.
  const size_t last = PrefixTree::TestPeer::NumNodes(tree) - 1;
  PrefixTree::TestPeer::SetNodePos(&tree, last, tree.num_positions() - 1);
  EXPECT_FALSE(tree.CheckInvariants());
}

TEST(PrefixTreeInvariantsTest, DetectsTupleCountBelowFirstLevel) {
  PrefixTree tree = BuildExampleTree();
  PrefixTree::TestPeer::SetTupleCount(&tree, 0);
  std::string error;
  EXPECT_FALSE(tree.CheckInvariants(&error));
  EXPECT_NE(error.find("tuple_count"), std::string::npos) << error;
}

TEST(PrefixTreeInvariantsDeathTest, ValidateAbortsOnCorruptTree) {
#if TOPKRGS_DCHECK_IS_ON()
  PrefixTree tree = BuildExampleTree();
  PrefixTree::TestPeer::SetHeaderFreq(&tree, 0, tree.freq(0) + 1);
  EXPECT_DEATH(tree.ValidateInvariants(), "DCHECK failed");
#else
  PrefixTree tree = BuildExampleTree();
  PrefixTree::TestPeer::SetHeaderFreq(&tree, 0, tree.freq(0) + 1);
  tree.ValidateInvariants();  // no-op in release
#endif
}

// ---------------------------------------------------------------------------
// Per-row top-k list invariants.

TopkResult MineExample(uint32_t k) {
  const DiscreteDataset d = RandomDataset(/*seed=*/5, /*num_rows=*/20,
                                          /*num_items=*/30, /*density=*/0.35);
  TopkMinerOptions options;
  options.k = k;
  options.min_support = 1;
  return MineTopkRGS(d, /*consequent=*/0, options);
}

TEST(TopkResultInvariantsTest, MinedResultsAreWellFormedForAllBackends) {
  const DiscreteDataset d = RandomDataset(/*seed=*/29, /*num_rows=*/18,
                                          /*num_items=*/28, /*density=*/0.3);
  for (const auto backend : {TopkMinerOptions::Backend::kPrefixTree,
                             TopkMinerOptions::Backend::kBitset,
                             TopkMinerOptions::Backend::kVector}) {
    for (const uint32_t k : {1u, 3u}) {
      TopkMinerOptions options;
      options.k = k;
      options.backend = backend;
      const TopkResult result = MineTopkRGS(d, /*consequent=*/0, options);
      std::string error;
      EXPECT_TRUE(result.CheckInvariants(k, &error))
          << "backend " << static_cast<int>(backend) << " k " << k << ": "
          << error;
    }
  }
}

TEST(TopkResultInvariantsTest, DetectsOverfullList) {
  TopkResult result = MineExample(/*k=*/2);
  // Claiming the result was mined with k = 1 makes any 2-entry list a
  // violation — same check that would catch a list overflowing its k.
  std::string error;
  bool has_two_entry_row = false;
  for (const auto& list : result.per_row) {
    has_two_entry_row = has_two_entry_row || list.size() == 2;
  }
  ASSERT_TRUE(has_two_entry_row) << "example dataset must fill some list";
  EXPECT_FALSE(result.CheckInvariants(1, &error));
  EXPECT_NE(error.find("more than k"), std::string::npos) << error;
}

TEST(TopkResultInvariantsTest, DetectsDuplicateEntry) {
  TopkResult result = MineExample(/*k=*/2);
  for (auto& list : result.per_row) {
    if (!list.empty()) {
      list.push_back(list.front());
      break;
    }
  }
  std::string error;
  EXPECT_FALSE(result.CheckInvariants(3, &error));
  // Either the duplicate or (if the duplicated head outranked the tail)
  // the sort check trips — both are real violations of the same list.
  EXPECT_FALSE(error.empty());
}

TEST(TopkResultInvariantsTest, DetectsUnsortedList) {
  TopkResult result = MineExample(/*k=*/3);
  for (auto& list : result.per_row) {
    if (list.size() >= 2 &&
        MoreSignificant(*list.front(), *list.back())) {
      std::swap(list.front(), list.back());
      std::string error;
      EXPECT_FALSE(result.CheckInvariants(3, &error));
      EXPECT_NE(error.find("not sorted"), std::string::npos) << error;
      return;
    }
  }
  GTEST_SKIP() << "no strictly-ranked list in the example; nothing to swap";
}

TEST(TopkResultInvariantsTest, DetectsNonCoveringGroup) {
  TopkResult result = MineExample(/*k=*/1);
  // Move a row's group to a row its support set does not contain.
  for (size_t src = 0; src < result.per_row.size(); ++src) {
    if (result.per_row[src].empty()) continue;
    const RuleGroupPtr group = result.per_row[src].front();
    for (size_t dst = 0; dst < result.per_row.size(); ++dst) {
      if (dst < group->row_support.size() && !group->row_support.Test(dst)) {
        result.per_row[dst].assign(1, group);
        std::string error;
        EXPECT_FALSE(result.CheckInvariants(1, &error));
        EXPECT_NE(error.find("cover"), std::string::npos) << error;
        return;
      }
    }
  }
  GTEST_SKIP() << "every group covers every row in the example dataset";
}

TEST(TopkResultInvariantsDeathTest, ValidateAbortsOnCorruptResult) {
  TopkResult result = MineExample(/*k=*/1);
  ASSERT_FALSE(result.per_row.empty());
  RuleGroup corrupt = WellFormedGroup();
  corrupt.support = corrupt.antecedent_support + 3;
  result.per_row[0].assign(1, std::make_shared<const RuleGroup>(corrupt));
#if TOPKRGS_DCHECK_IS_ON()
  EXPECT_DEATH(result.ValidateInvariants(1), "DCHECK failed");
#else
  result.ValidateInvariants(1);  // no-op in release
#endif
}

}  // namespace
}  // namespace topkrgs
