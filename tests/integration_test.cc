#include <gtest/gtest.h>

#include "topkrgs/topkrgs.h"

namespace topkrgs {
namespace {

/// End-to-end pipeline on a scaled-down dataset profile: generate,
/// discretize, mine, classify — the exact flow of the paper's evaluation.
class PipelineTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    data_ = GenerateMicroarray(DatasetProfile::Tiny(GetParam()));
    pipeline_ = PreparePipeline(data_.train, data_.test);
  }

  GeneratedData data_;
  Pipeline pipeline_;
};

TEST_P(PipelineTest, MinersAgreeOnTinyPipelineData) {
  const DiscreteDataset& train = pipeline_.train;
  const uint32_t minsup = std::max<uint32_t>(
      1, static_cast<uint32_t>(0.8 * train.ClassCounts()[1]));

  FarmerOptions fo;
  fo.min_support = minsup;
  const auto farmer = MineFarmer(train, 1, fo);
  FarmerOptions fp = fo;
  fp.backend = FarmerOptions::Backend::kPrefixTree;
  const auto farmer_prefix = MineFarmer(train, 1, fp);
  CharmOptions co;
  co.min_support = minsup;
  co.materialize_rowsets = false;
  const auto charm = MineCharm(train, 1, co);

  EXPECT_EQ(farmer.groups.size(), farmer_prefix.groups.size());
  EXPECT_EQ(farmer.groups.size(), charm.groups.size());

  // MineTopkRGS with k=1: each covering group must be at least as
  // significant as every FARMER group covering the same row.
  TopkMinerOptions to;
  to.k = 1;
  to.min_support = minsup;
  const auto topk = MineTopkRGS(train, 1, to);
  for (RowId r = 0; r < train.num_rows(); ++r) {
    if (train.label(r) != 1 || topk.per_row[r].empty()) continue;
    const RuleGroup& best = *topk.per_row[r][0];
    for (const RuleGroup& g : farmer.groups) {
      if (!g.row_support.Test(r)) continue;
      EXPECT_GE(CompareSignificance(best.support, best.antecedent_support,
                                    g.support, g.antecedent_support),
                0)
          << "row " << r;
    }
  }
}

TEST_P(PipelineTest, TopkRGSCoversEveryTrainingRow) {
  // The headline property: with minsup at 70% of the class size, every
  // consequent-class row gets at least one covering rule group.
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    const uint32_t class_rows = pipeline_.train.ClassCounts()[cls];
    TopkMinerOptions opt;
    opt.k = 1;
    opt.min_support =
        std::max<uint32_t>(1, static_cast<uint32_t>(0.7 * class_rows));
    const auto result = MineTopkRGS(pipeline_.train, cls, opt);
    for (RowId r = 0; r < pipeline_.train.num_rows(); ++r) {
      if (pipeline_.train.label(r) != cls) continue;
      EXPECT_FALSE(result.per_row[r].empty()) << "row " << r << " uncovered";
    }
  }
}

TEST_P(PipelineTest, AllClassifiersBeatRandomOnTest) {
  const auto counts = pipeline_.test.ClassCounts();
  const double majority =
      static_cast<double>(std::max(counts[0], counts[1])) /
      pipeline_.test.num_rows();

  RcbtOptions ro;
  ro.k = 4;
  ro.nl = 5;
  ro.item_scores = pipeline_.item_scores;
  RcbtClassifier rcbt = RcbtClassifier::Train(pipeline_.train, ro);
  const EvalOutcome rcbt_eval =
      EvaluateDiscrete(pipeline_.test, [&](const Bitset& row, bool* dflt) {
        const auto pred = rcbt.Predict(row);
        *dflt = pred.used_default;
        return pred.label;
      });
  EXPECT_GE(rcbt_eval.accuracy(), majority - 1e-9);

  CbaOptions co;
  co.item_scores = pipeline_.item_scores;
  CbaClassifier cba = TrainCba(pipeline_.train, co);
  const EvalOutcome cba_eval =
      EvaluateDiscrete(pipeline_.test, [&](const Bitset& row, bool* dflt) {
        return cba.Predict(row, dflt);
      });
  EXPECT_GT(cba_eval.accuracy(), 0.5);

  DecisionTree tree = DecisionTree::Train(pipeline_.train_selected, {}, {});
  const EvalOutcome tree_eval = EvaluateContinuous(
      pipeline_.test_selected, [&](const auto& x) { return tree.Predict(x); });
  EXPECT_GT(tree_eval.accuracy(), 0.5);

  SvmClassifier svm = SvmClassifier::Train(pipeline_.train_selected, {});
  const EvalOutcome svm_eval = EvaluateContinuous(
      pipeline_.test_selected, [&](const auto& x) { return svm.Predict(x); });
  EXPECT_GT(svm_eval.accuracy(), 0.5);
}

TEST_P(PipelineTest, RcbtUsesDefaultLessThanCba) {
  // The design goal of RCBT: fewer default-class decisions than CBA.
  RcbtOptions ro;
  ro.k = 4;
  ro.nl = 5;
  ro.item_scores = pipeline_.item_scores;
  RcbtClassifier rcbt = RcbtClassifier::Train(pipeline_.train, ro);
  CbaOptions co;
  co.item_scores = pipeline_.item_scores;
  CbaClassifier cba = TrainCba(pipeline_.train, co);

  const EvalOutcome rcbt_eval =
      EvaluateDiscrete(pipeline_.test, [&](const Bitset& row, bool* dflt) {
        const auto pred = rcbt.Predict(row);
        *dflt = pred.used_default;
        return pred.label;
      });
  const EvalOutcome cba_eval =
      EvaluateDiscrete(pipeline_.test, [&](const Bitset& row, bool* dflt) {
        return cba.Predict(row, dflt);
      });
  EXPECT_LE(rcbt_eval.default_used, cba_eval.default_used);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest,
                         ::testing::Values(1001, 1002, 1003));

TEST(TopkVsFarmerBoundTest, TopkOutputSizeIsBounded) {
  // |TopkRGS| <= k * rows while FARMER output is unbounded in comparison.
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(2024));
  Pipeline p = PreparePipeline(data.train, data.test);
  TopkMinerOptions opt;
  opt.k = 3;
  opt.min_support = std::max<uint32_t>(
      1, static_cast<uint32_t>(0.7 * p.train.ClassCounts()[1]));
  const auto result = MineTopkRGS(p.train, 1, opt);
  EXPECT_LE(result.DistinctGroups().size(),
            static_cast<size_t>(opt.k) * p.train.num_rows());
}

}  // namespace
}  // namespace topkrgs
