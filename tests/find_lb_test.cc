#include "classify/find_lb.h"

#include <gtest/gtest.h>

#include "core/rule.h"
#include "mine/naive_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

RuleGroup GroupFor(const DiscreteDataset& d, const std::string& items,
                   ClassLabel cls) {
  Bitset b(d.num_items());
  for (char c : items) b.Set(RunningExampleItem(c));
  return CloseItemset(d, b, cls);
}

TEST(FindLbTest, RunningExampleAbcHasLowerBoundsAandB) {
  // Example 2.2: group {a..abc -> C} has lower bounds a -> C and b -> C.
  DiscreteDataset d = MakeRunningExampleDataset();
  RuleGroup g = GroupFor(d, "abc", 1);
  FindLbOptions opt;
  opt.num_lower_bounds = 5;
  const auto lbs = FindLowerBounds(d, g, {}, opt);
  ASSERT_EQ(lbs.size(), 2u);
  for (const Rule& lb : lbs) {
    EXPECT_EQ(lb.antecedent.Count(), 1u);
    const uint32_t item = lb.antecedent.ToVector()[0];
    EXPECT_TRUE(item == RunningExampleItem('a') ||
                item == RunningExampleItem('b'));
    EXPECT_EQ(lb.support, g.support);
    EXPECT_EQ(lb.antecedent_support, g.antecedent_support);
  }
}

TEST(FindLbTest, StopsAtRequestedCount) {
  DiscreteDataset d = MakeRunningExampleDataset();
  RuleGroup g = GroupFor(d, "abc", 1);
  FindLbOptions opt;
  opt.num_lower_bounds = 1;
  EXPECT_EQ(FindLowerBounds(d, g, {}, opt).size(), 1u);
}

TEST(FindLbTest, MultiItemLowerBound) {
  // Group cde -> C over rows {1,3,4}: c alone covers {1,2,3,4}, d alone
  // {1,3,4}, e alone {1,3,4,5} — d is a single-item lower bound.
  DiscreteDataset d = MakeRunningExampleDataset();
  RuleGroup g = GroupFor(d, "cde", 1);
  FindLbOptions opt;
  opt.num_lower_bounds = 10;
  const auto lbs = FindLowerBounds(d, g, {}, opt);
  bool found_d = false;
  bool found_ce = false;
  for (const Rule& lb : lbs) {
    const auto items = lb.antecedent.ToVector();
    if (items == std::vector<uint32_t>{RunningExampleItem('d')}) found_d = true;
    if (items == std::vector<uint32_t>{RunningExampleItem('c'),
                                       RunningExampleItem('e')}) {
      found_ce = true;
    }
  }
  EXPECT_TRUE(found_d);
  // {c, e}: R(ce) = {1,3,4} as well, and neither c nor e alone suffices.
  EXPECT_TRUE(found_ce);
}

void ValidateLowerBounds(const DiscreteDataset& d, const RuleGroup& g,
                         const std::vector<Rule>& lbs) {
  for (const Rule& lb : lbs) {
    // Lemma 5.1 (1): subset of the upper bound.
    EXPECT_TRUE(lb.antecedent.IsSubsetOf(g.antecedent));
    // Lemma 5.1 (2): same antecedent support set.
    EXPECT_EQ(d.ItemSupportSet(lb.antecedent), g.row_support);
    // Lemma 5.1 (3): minimal — removing any item enlarges the support set.
    const auto items = lb.antecedent.ToVector();
    if (items.size() > 1) {
      for (uint32_t drop : items) {
        Bitset sub = lb.antecedent;
        sub.Reset(drop);
        EXPECT_GT(d.ItemSupportSet(sub).Count(), g.row_support.Count())
            << "non-minimal lower bound";
      }
    }
  }
  // No duplicates.
  for (size_t i = 0; i < lbs.size(); ++i) {
    for (size_t j = i + 1; j < lbs.size(); ++j) {
      EXPECT_FALSE(lbs[i].antecedent == lbs[j].antecedent);
    }
  }
}

class FindLbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FindLbPropertyTest, LowerBoundInvariants) {
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(GetParam()), 10, 12, 0.45);
  const auto groups = NaiveRuleGroups(d, 1, 2);
  FindLbOptions opt;
  opt.num_lower_bounds = 4;
  for (const RuleGroup& g : groups) {
    const auto lbs = FindLowerBounds(d, g, {}, opt);
    ASSERT_GE(lbs.size(), 1u) << "every group has at least one lower bound";
    ValidateLowerBounds(d, g, lbs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FindLbPropertyTest, ::testing::Range(0, 10));

TEST(FindLbTest, ScoresSteerSelection) {
  // With item 'a' scored far above 'b', nl=1 must pick {a}.
  DiscreteDataset d = MakeRunningExampleDataset();
  RuleGroup g = GroupFor(d, "abc", 1);
  std::vector<double> scores(d.num_items(), 0.0);
  scores[RunningExampleItem('a')] = 10.0;
  scores[RunningExampleItem('b')] = 1.0;
  FindLbOptions opt;
  opt.num_lower_bounds = 1;
  const auto lbs = FindLowerBounds(d, g, scores, opt);
  ASSERT_EQ(lbs.size(), 1u);
  EXPECT_TRUE(lbs[0].antecedent.Test(RunningExampleItem('a')));

  scores[RunningExampleItem('a')] = 1.0;
  scores[RunningExampleItem('b')] = 10.0;
  const auto lbs_b = FindLowerBounds(d, g, scores, opt);
  ASSERT_EQ(lbs_b.size(), 1u);
  EXPECT_TRUE(lbs_b[0].antecedent.Test(RunningExampleItem('b')));
}

TEST(ItemScoresTest, DiscriminativeItemScoresHigher) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const auto scores = ItemScoresFromDiscrete(d);
  // 'a' appears only in class-C rows (perfectly one-sided); 'e' appears in
  // 4 of 5 rows across both classes (nearly useless).
  EXPECT_GT(scores[RunningExampleItem('a')], scores[RunningExampleItem('e')]);
}

}  // namespace
}  // namespace topkrgs
