#include "util/bitset.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace topkrgs {
namespace {

TEST(BitsetTest, EmptyAndSize) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, SetResetTest) {
  Bitset b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(199));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, AllSetMasksTail) {
  for (size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    Bitset b = Bitset::AllSet(n);
    EXPECT_EQ(b.Count(), n) << n;
    EXPECT_TRUE(b.Test(n - 1));
  }
}

TEST(BitsetTest, AllSetZero) {
  Bitset b = Bitset::AllSet(0);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, IntersectUnionSubtract) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(60);
  EXPECT_EQ(Intersect(a, b).ToVector(), (std::vector<uint32_t>{50}));
  EXPECT_EQ(Union(a, b).ToVector(), (std::vector<uint32_t>{1, 50, 60, 99}));
  EXPECT_EQ(Subtract(a, b).ToVector(), (std::vector<uint32_t>{1, 99}));
}

TEST(BitsetTest, IntersectCountMatchesMaterialized) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Bitset a(300), b(300);
    for (int i = 0; i < 80; ++i) {
      a.Set(rng.NextBounded(300));
      b.Set(rng.NextBounded(300));
    }
    EXPECT_EQ(a.IntersectCount(b), Intersect(a, b).Count());
  }
}

TEST(BitsetTest, SubsetTests) {
  Bitset a(100), b(100);
  a.Set(10);
  a.Set(20);
  b.Set(10);
  b.Set(20);
  b.Set(30);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  Bitset empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(empty));
}

TEST(BitsetTest, Intersects) {
  Bitset a(100), b(100), c(100);
  a.Set(5);
  b.Set(5);
  c.Set(6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitsetTest, FindFirstNext) {
  Bitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(3);
  b.Set(64);
  b.Set(190);
  EXPECT_EQ(b.FindFirst(), 3u);
  EXPECT_EQ(b.FindNext(3), 64u);
  EXPECT_EQ(b.FindNext(64), 190u);
  EXPECT_EQ(b.FindNext(190), 200u);
  EXPECT_EQ(b.FindNext(0), 3u);
}

TEST(BitsetTest, ForEachAscending) {
  Bitset b(150);
  std::vector<size_t> expected = {0, 63, 64, 65, 149};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(100), b(100);
  a.Set(7);
  b.Set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(8);
  EXPECT_FALSE(a == b);
}

TEST(BitsetTest, HashDistinguishesTypicalSets) {
  Rng rng(7);
  std::set<uint64_t> hashes;
  for (int i = 0; i < 200; ++i) {
    Bitset b(128);
    for (int j = 0; j < 10; ++j) b.Set(rng.NextBounded(128));
    hashes.insert(b.Hash());
  }
  // Random distinct sets should essentially never collide.
  EXPECT_GT(hashes.size(), 195u);
}

TEST(BitsetTest, FindFirstOnEmptySet) {
  EXPECT_EQ(Bitset(0).FindFirst(), 0u);
  EXPECT_EQ(Bitset(1).FindFirst(), 1u);
  EXPECT_EQ(Bitset(64).FindFirst(), 64u);
  EXPECT_EQ(Bitset(200).FindFirst(), 200u);
}

TEST(BitsetTest, FindNextOnEmptySet) {
  Bitset b(130);
  EXPECT_EQ(b.FindNext(0), 130u);
  EXPECT_EQ(b.FindNext(64), 130u);
  EXPECT_EQ(b.FindNext(129), 130u);
}

TEST(BitsetTest, FindAcrossWordBoundary) {
  // Bits 63 and 64 straddle the first word boundary; FindNext must cross
  // it without skipping or repeating.
  Bitset b(130);
  b.Set(63);
  b.Set(64);
  EXPECT_EQ(b.FindFirst(), 63u);
  EXPECT_EQ(b.FindNext(62), 63u);
  EXPECT_EQ(b.FindNext(63), 64u);
  EXPECT_EQ(b.FindNext(64), 130u);
}

TEST(BitsetTest, FindLastBitOfWord) {
  // Universe of exactly one word with only its top bit set.
  Bitset b(64);
  b.Set(63);
  EXPECT_EQ(b.FindFirst(), 63u);
  EXPECT_EQ(b.FindNext(0), 63u);
  EXPECT_EQ(b.FindNext(62), 63u);
  EXPECT_EQ(b.FindNext(63), 64u);
}

TEST(BitsetTest, FindLastBitOfUniverse) {
  // Last bit of a universe that does not fill its final word.
  Bitset b(130);
  b.Set(129);
  EXPECT_EQ(b.FindFirst(), 129u);
  EXPECT_EQ(b.FindNext(128), 129u);
  EXPECT_EQ(b.FindNext(129), 130u);
}

TEST(BitsetTest, FindNextFromPosAtOrPastSize) {
  Bitset b(100);
  b.Set(99);
  // pos >= size() (and pos == size()-1) must return size(), never scan
  // out of range.
  EXPECT_EQ(b.FindNext(99), 100u);
  EXPECT_EQ(b.FindNext(100), 100u);
  EXPECT_EQ(b.FindNext(500), 100u);
}

TEST(BitsetTest, FindIterationMatchesForEach) {
  Rng rng(21);
  Bitset b(513);  // one bit past an eight-word universe
  for (int j = 0; j < 40; ++j) b.Set(rng.NextBounded(513));
  b.Set(512);
  std::vector<size_t> via_foreach;
  b.ForEach([&](size_t i) { via_foreach.push_back(i); });
  std::vector<size_t> via_find;
  for (size_t i = b.FindFirst(); i < b.size(); i = b.FindNext(i)) {
    via_find.push_back(i);
  }
  EXPECT_EQ(via_find, via_foreach);
}

TEST(BitsetTest, ClearResetsAll) {
  Bitset b(100);
  b.Set(1);
  b.Set(99);
  b.Clear();
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.size(), 100u);
}

}  // namespace
}  // namespace topkrgs
