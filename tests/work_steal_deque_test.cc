#include "util/work_steal_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace topkrgs {
namespace {

struct Task {
  explicit Task(size_t i) : id(i) {}
  size_t id;
  std::atomic<int> claims{0};
};

/// Owner-LIFO / thief-FIFO semantics, single-threaded.
TEST(WorkStealDequeTest, BottomIsLifoTopIsFifo) {
  WorkStealDeque<Task*> dq;
  EXPECT_TRUE(dq.Empty());
  EXPECT_EQ(dq.PopBottom(), nullptr);
  EXPECT_EQ(dq.StealTop(), nullptr);

  Task a(0), b(1), c(2);
  dq.PushBottom(&a);
  dq.PushBottom(&b);
  dq.PushBottom(&c);
  EXPECT_EQ(dq.SizeHint(), 3u);

  EXPECT_EQ(dq.PopBottom(), &c);   // owner: newest first
  EXPECT_EQ(dq.StealTop(), &a);    // thief: oldest first
  EXPECT_EQ(dq.PopBottom(), &b);
  EXPECT_TRUE(dq.Empty());
  EXPECT_EQ(dq.PopBottom(), nullptr);
}

/// Steal-vs-pop races: one owner popping, many thieves stealing, all from
/// a pre-filled deque. Every task must be handed out exactly once — the
/// property the miner's determinism replay relies on (run under the tsan
/// preset, this is also the data-race gate for the deque itself).
TEST(WorkStealDequeTest, StealVsPopHandsOutEachTaskExactlyOnce) {
  constexpr size_t kTasks = 20000;
  constexpr int kThieves = 3;
  std::vector<std::unique_ptr<Task>> tasks;
  tasks.reserve(kTasks);
  WorkStealDeque<Task*> dq;
  for (size_t i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<Task>(i));
    dq.PushBottom(tasks.back().get());
  }

  std::atomic<size_t> handed{0};
  auto drain = [&](bool owner) {
    while (handed.load(std::memory_order_relaxed) < kTasks) {
      Task* t = owner ? dq.PopBottom() : dq.StealTop();
      if (t == nullptr) {
        if (dq.Empty()) break;
        std::this_thread::yield();
        continue;
      }
      t->claims.fetch_add(1, std::memory_order_relaxed);
      handed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.emplace_back(drain, /*owner=*/true);
  for (int i = 0; i < kThieves; ++i) pool.emplace_back(drain, false);
  for (auto& th : pool) th.join();

  EXPECT_EQ(handed.load(), kTasks);
  for (const auto& t : tasks) {
    EXPECT_EQ(t->claims.load(), 1) << "task " << t->id;
  }
  EXPECT_TRUE(dq.Empty());
}

/// Thieves hammering a mostly-empty victim while the owner trickles work
/// in: nullptr returns must be clean (no spin-lock livelock, no double
/// hand-out) even when pushes and steals interleave tightly.
TEST(WorkStealDequeTest, EmptyVictimStealsReturnNullCleanly) {
  constexpr size_t kTasks = 2000;
  constexpr int kThieves = 4;
  std::vector<std::unique_ptr<Task>> tasks;
  tasks.reserve(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<Task>(i));
  }
  WorkStealDeque<Task*> dq;
  std::atomic<size_t> handed{0};
  std::atomic<size_t> empty_steals{0};

  std::thread owner([&] {
    for (auto& t : tasks) {
      dq.PushBottom(t.get());  // one at a time: the deque is usually empty
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (handed.load(std::memory_order_relaxed) < kTasks) {
        Task* t = dq.StealTop();
        if (t == nullptr) {
          empty_steals.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();  // single-core boxes: let the owner run
          continue;
        }
        t->claims.fetch_add(1, std::memory_order_relaxed);
        handed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  owner.join();
  for (auto& th : thieves) th.join();

  EXPECT_EQ(handed.load(), kTasks);
  EXPECT_GT(empty_steals.load(), 0u);  // the scenario actually exercised it
  for (const auto& t : tasks) {
    EXPECT_EQ(t->claims.load(), 1) << "task " << t->id;
  }
}

/// The miner's dynamic-split pattern under contention: W workers each own
/// a deque; a worker that runs dry steals round-robin; a worker holding a
/// "large" task sheds children onto its own deque whenever anyone is
/// starving. Terminates when the shared pending counter drains — the same
/// protocol TopkSearch runs, minus the mining.
TEST(WorkStealDequeTest, DynamicSplitUnderContentionDrainsEverything) {
  constexpr uint32_t kWorkers = 4;
  constexpr size_t kRoots = 64;
  constexpr size_t kChildrenPerSplit = 8;
  constexpr int kMaxDepth = 3;  // splits spawn splittable children up to this

  struct Node {
    explicit Node(int d) : depth(d) {}
    int depth;
    std::atomic<int> claims{0};
  };

  std::vector<std::unique_ptr<WorkStealDeque<Node*>>> deques;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    deques.push_back(std::make_unique<WorkStealDeque<Node*>>());
  }
  // Node ownership: append-only under a mutex-free scheme is racy, so
  // pre-register through per-worker arenas and collect afterwards.
  std::vector<std::vector<std::unique_ptr<Node>>> arenas(kWorkers);

  WorkStealDeque<Node*> roots;
  std::vector<std::unique_ptr<Node>> root_nodes;
  for (size_t i = 0; i < kRoots; ++i) {
    root_nodes.push_back(std::make_unique<Node>(0));
    roots.PushBottom(root_nodes.back().get());
  }
  std::atomic<size_t> pending{kRoots};
  std::atomic<uint32_t> starving{0};
  std::atomic<size_t> executed{0};
  std::atomic<size_t> stolen{0};

  auto worker = [&](uint32_t me) {
    auto& own = *deques[me];
    while (true) {
      Node* task = own.PopBottom();
      if (task == nullptr) task = roots.StealTop();
      if (task == nullptr) {
        if (pending.load(std::memory_order_acquire) == 0) break;
        starving.fetch_add(1, std::memory_order_relaxed);
        while (task == nullptr) {
          for (uint32_t v = 1; v < kWorkers && task == nullptr; ++v) {
            task = deques[(me + v) % kWorkers]->StealTop();
          }
          if (task != nullptr) {
            stolen.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (pending.load(std::memory_order_acquire) == 0) break;
          std::this_thread::yield();
        }
        starving.fetch_sub(1, std::memory_order_relaxed);
        if (task == nullptr) break;
      }
      // "Run" the task: maybe split, as the miner does when others starve.
      task->claims.fetch_add(1, std::memory_order_relaxed);
      executed.fetch_add(1, std::memory_order_relaxed);
      if (task->depth < kMaxDepth &&
          starving.load(std::memory_order_relaxed) > 0 && own.Empty()) {
        pending.fetch_add(kChildrenPerSplit, std::memory_order_release);
        for (size_t c = 0; c < kChildrenPerSplit; ++c) {
          arenas[me].push_back(std::make_unique<Node>(task->depth + 1));
          own.PushBottom(arenas[me].back().get());
        }
      }
      pending.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  for (uint32_t w = 0; w < kWorkers; ++w) pool.emplace_back(worker, w);
  for (auto& th : pool) th.join();

  EXPECT_EQ(pending.load(), 0u);
  size_t created = kRoots;
  for (const auto& arena : arenas) created += arena.size();
  EXPECT_EQ(executed.load(), created);  // nothing lost, nothing duplicated
  for (const auto& n : root_nodes) EXPECT_EQ(n->claims.load(), 1);
  for (const auto& arena : arenas) {
    for (const auto& n : arena) EXPECT_EQ(n->claims.load(), 1);
  }
  for (const auto& dq : deques) EXPECT_TRUE(dq->Empty());
}

}  // namespace
}  // namespace topkrgs
