#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace topkrgs {
namespace {

TEST(EntropyTest, PureIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
}

TEST(EntropyTest, UniformBinaryIsOne) {
  EXPECT_DOUBLE_EQ(Entropy({5, 5}), 1.0);
}

TEST(EntropyTest, UniformKClasses) {
  EXPECT_NEAR(Entropy({3, 3, 3, 3}), 2.0, 1e-12);
  EXPECT_NEAR(Entropy({2, 2, 2, 2, 2, 2, 2, 2}), 3.0, 1e-12);
}

TEST(EntropyTest, KnownValue) {
  // H(0.25) = 0.811278...
  EXPECT_NEAR(Entropy({1, 3}), 0.8112781244591328, 1e-12);
}

TEST(PartitionEntropyTest, WeightedAverage) {
  // Partition {4,0} and {0,4}: both pure -> 0.
  EXPECT_DOUBLE_EQ(PartitionEntropy({{4, 0}, {0, 4}}), 0.0);
  // Partition {2,2} and {2,2}: both uniform -> 1.
  EXPECT_DOUBLE_EQ(PartitionEntropy({{2, 2}, {2, 2}}), 1.0);
  // 3/4 weight pure, 1/4 weight uniform: 0.25.
  EXPECT_NEAR(PartitionEntropy({{6, 0}, {1, 1}}), 0.25, 1e-12);
}

TEST(InformationGainTest, PerfectSplit) {
  EXPECT_DOUBLE_EQ(InformationGain({4, 4}, {{4, 0}, {0, 4}}), 1.0);
}

TEST(InformationGainTest, UselessSplit) {
  EXPECT_NEAR(InformationGain({4, 4}, {{2, 2}, {2, 2}}), 0.0, 1e-12);
}

TEST(ChiSquareTest, IndependenceGivesZero) {
  EXPECT_NEAR(ChiSquare({{10, 20}, {20, 40}}), 0.0, 1e-9);
}

TEST(ChiSquareTest, PerfectAssociation) {
  // 2x2 perfect split of N = 20: chi-square = N.
  EXPECT_NEAR(ChiSquare({{10, 0}, {0, 10}}), 20.0, 1e-9);
}

TEST(ChiSquareTest, KnownTextbookValue) {
  // Classic 2x2: ((ad-bc)^2 * n) / ((a+b)(c+d)(a+c)(b+d)).
  const double expected =
      std::pow(30.0 * 34.0 - 10.0 * 26.0, 2) * 100.0 /
      (40.0 * 60.0 * 56.0 * 44.0);
  EXPECT_NEAR(ChiSquare({{30, 10}, {26, 34}}), expected, 1e-9);
}

TEST(ChiSquareTest, EmptyTable) {
  EXPECT_DOUBLE_EQ(ChiSquare({}), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquare({{0, 0}, {0, 0}}), 0.0);
}

TEST(BestSplitTest, SeparableFeatureHasFullGain) {
  const std::vector<double> values = {1, 2, 3, 10, 11, 12};
  const std::vector<uint8_t> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(BestSplitInfoGain(values, labels, 2), 1.0, 1e-12);
  EXPECT_NEAR(BestSplitChiSquare(values, labels, 2), 6.0, 1e-9);
}

TEST(BestSplitTest, ConstantFeatureHasZeroGain) {
  const std::vector<double> values = {5, 5, 5, 5};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(BestSplitInfoGain(values, labels, 2), 0.0);
  EXPECT_DOUBLE_EQ(BestSplitChiSquare(values, labels, 2), 0.0);
}

TEST(BestSplitTest, NoisyFeatureHasPartialGain) {
  const std::vector<double> values = {1, 2, 3, 4, 10, 11, 12, 13};
  const std::vector<uint8_t> labels = {0, 0, 0, 1, 0, 1, 1, 1};
  const double gain = BestSplitInfoGain(values, labels, 2);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, 1.0);
}

TEST(BestSplitTest, SingletonInput) {
  EXPECT_DOUBLE_EQ(BestSplitInfoGain({1.0}, {0}, 2), 0.0);
}

}  // namespace
}  // namespace topkrgs
