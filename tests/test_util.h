#ifndef TOPKRGS_TESTS_TEST_UTIL_H_
#define TOPKRGS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"
#include "util/random.h"

namespace topkrgs {
namespace testing_util {

/// Deterministic random discrete dataset for oracle-based property tests:
/// `num_rows` rows over `num_items` items, each item present with
/// probability `density`, labels split roughly in half.
inline DiscreteDataset RandomDataset(uint64_t seed, uint32_t num_rows,
                                     uint32_t num_items, double density) {
  Rng rng(seed);
  std::vector<std::vector<ItemId>> rows(num_rows);
  std::vector<ClassLabel> labels(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBool(density)) rows[r].push_back(i);
    }
    labels[r] = rng.NextBool(0.5) ? 1 : 0;
  }
  // Guarantee at least one row per class so both consequents are testable.
  if (num_rows >= 2) {
    labels[0] = 1;
    labels[1] = 0;
  }
  return DiscreteDataset(num_items, std::move(rows), std::move(labels));
}

/// Canonical form of a rule-group set for equality checks: sorted
/// (antecedent items, support, antecedent_support) triples.
struct CanonicalGroup {
  std::vector<uint32_t> items;
  uint32_t support;
  uint32_t antecedent_support;

  friend bool operator==(const CanonicalGroup&, const CanonicalGroup&) = default;
  friend bool operator<(const CanonicalGroup& a, const CanonicalGroup& b) {
    if (a.items != b.items) return a.items < b.items;
    if (a.support != b.support) return a.support < b.support;
    return a.antecedent_support < b.antecedent_support;
  }
};

inline std::vector<CanonicalGroup> Canonicalize(
    const std::vector<RuleGroup>& groups) {
  std::vector<CanonicalGroup> out;
  out.reserve(groups.size());
  for (const RuleGroup& g : groups) {
    out.push_back({g.antecedent.ToVector(), g.support, g.antecedent_support});
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Significance sequence of a per-row top-k list: (support, asup) pairs in
/// list order. Ties at the tail make the exact groups ambiguous, but the
/// significance sequence is uniquely determined by Definition 2.3.
template <typename List>
inline std::vector<std::pair<uint32_t, uint32_t>> SignificanceSeq(
    const List& list) {
  std::vector<std::pair<uint32_t, uint32_t>> seq;
  for (const auto& g : list) {
    seq.emplace_back(g->support, g->antecedent_support);
  }
  return seq;
}

inline std::vector<std::pair<uint32_t, uint32_t>> SignificanceSeqValues(
    const std::vector<RuleGroup>& list) {
  std::vector<std::pair<uint32_t, uint32_t>> seq;
  for (const auto& g : list) {
    seq.emplace_back(g.support, g.antecedent_support);
  }
  return seq;
}

}  // namespace testing_util
}  // namespace topkrgs

#endif  // TOPKRGS_TESTS_TEST_UTIL_H_
