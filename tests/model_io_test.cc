#include "classify/model_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "classify/cba.h"
#include "classify/rcbt.h"
#include "synth/generator.h"
#include "classify/evaluator.h"
#include "test_util.h"
#include "util/io.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

TEST(DiscretizationIoTest, RoundtripPreservesAssignments) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(21));
  Pipeline p = PreparePipeline(data.train, data.test);
  const std::string path = TempPath("disc.txt");
  ASSERT_TRUE(SaveDiscretization(p.discretization, path).ok());
  auto loaded_or = LoadDiscretization(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Discretization& loaded = loaded_or.value();

  EXPECT_EQ(loaded.num_items(), p.discretization.num_items());
  EXPECT_EQ(loaded.num_selected_genes(),
            p.discretization.num_selected_genes());
  EXPECT_EQ(loaded.selected_genes(), p.discretization.selected_genes());
  // Re-discretizing the test set must give identical items.
  DiscreteDataset original = p.discretization.Apply(data.test);
  DiscreteDataset redone = loaded.Apply(data.test);
  for (RowId r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(original.row_items(r), redone.row_items(r)) << r;
  }
  std::remove(path.c_str());
}

TEST(DiscretizationIoTest, RejectsCorruptFiles) {
  const std::string path = TempPath("disc_bad.txt");
  ASSERT_TRUE(WriteLines(path, {"not a model"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());
  ASSERT_TRUE(WriteLines(path, {"topkrgs-discretization v1", "genes 2",
                                "gene 5 1 0.5"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());  // truncated
  ASSERT_TRUE(WriteLines(path, {"topkrgs-discretization v1", "genes 1",
                                "gene 5 2 0.9 0.1"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());  // unsorted cuts
  std::remove(path.c_str());
}

TEST(CbaIoTest, RoundtripPreservesPredictions) {
  DiscreteDataset d = testing_util::RandomDataset(31, 14, 10, 0.4);
  CbaOptions opt;
  opt.min_support_frac = 0.4;
  CbaClassifier clf = TrainCba(d, opt);
  const std::string path = TempPath("cba.txt");
  ASSERT_TRUE(SaveCbaClassifier(clf, d.num_items(), path).ok());
  uint32_t num_items = 0;
  auto loaded_or = LoadCbaClassifier(path, &num_items);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const CbaClassifier& loaded = loaded_or.value();
  EXPECT_EQ(num_items, d.num_items());
  EXPECT_EQ(loaded.rules().size(), clf.rules().size());
  EXPECT_EQ(loaded.default_class(), clf.default_class());
  for (RowId r = 0; r < d.num_rows(); ++r) {
    bool dflt1 = false, dflt2 = false;
    EXPECT_EQ(loaded.Predict(d.row_bitset(r), &dflt1),
              clf.Predict(d.row_bitset(r), &dflt2));
    EXPECT_EQ(dflt1, dflt2);
  }
  std::remove(path.c_str());
}

TEST(RcbtIoTest, RoundtripPreservesPredictions) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(22));
  Pipeline p = PreparePipeline(data.train, data.test);
  RcbtOptions opt;
  opt.k = 3;
  opt.nl = 4;
  opt.item_scores = p.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
  const std::string path = TempPath("rcbt.txt");
  ASSERT_TRUE(SaveRcbtClassifier(clf, p.train.num_items(), path).ok());
  auto loaded_or = LoadRcbtClassifier(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const RcbtClassifier& loaded = loaded_or.value();
  EXPECT_EQ(loaded.num_classifiers(), clf.num_classifiers());
  EXPECT_EQ(loaded.default_class(), clf.default_class());
  EXPECT_EQ(loaded.class_counts(), clf.class_counts());
  for (RowId r = 0; r < p.test.num_rows(); ++r) {
    const auto a = clf.Predict(p.test.row_bitset(r));
    const auto b = loaded.Predict(p.test.row_bitset(r));
    EXPECT_EQ(a.label, b.label) << r;
    EXPECT_EQ(a.classifier_index, b.classifier_index) << r;
    EXPECT_EQ(a.used_default, b.used_default) << r;
  }
  std::remove(path.c_str());
}

TEST(RcbtIoTest, RejectsWrongKind) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(23));
  Pipeline p = PreparePipeline(data.train, data.test);
  CbaOptions copt;
  copt.item_scores = p.item_scores;
  CbaClassifier cba = TrainCba(p.train, copt);
  const std::string path = TempPath("kind.txt");
  ASSERT_TRUE(SaveCbaClassifier(cba, p.train.num_items(), path).ok());
  EXPECT_FALSE(LoadRcbtClassifier(path).ok());
  EXPECT_TRUE(LoadCbaClassifier(path).ok());
  std::remove(path.c_str());
}

TEST(CbaIoTest, RejectsItemOutOfRange) {
  const std::string path = TempPath("cba_bad.txt");
  ASSERT_TRUE(WriteLines(path, {"topkrgs-cba v1", "num_items 4", "default 0",
                                "rules 1", "rule 1 2 3 9"}).ok());
  EXPECT_FALSE(LoadCbaClassifier(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadCbaClassifier("/nonexistent/model.txt").ok());
  EXPECT_FALSE(LoadRcbtClassifier("/nonexistent/model.txt").ok());
  EXPECT_FALSE(LoadDiscretization("/nonexistent/model.txt").ok());
}

}  // namespace
}  // namespace topkrgs
