#include "classify/model_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "classify/cba.h"
#include "classify/rcbt.h"
#include "synth/generator.h"
#include "classify/evaluator.h"
#include "test_util.h"
#include "util/io.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

TEST(DiscretizationIoTest, RoundtripPreservesAssignments) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(21));
  Pipeline p = PreparePipeline(data.train, data.test);
  const std::string path = TempPath("disc.txt");
  ASSERT_TRUE(SaveDiscretization(p.discretization, path).ok());
  auto loaded_or = LoadDiscretization(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Discretization& loaded = loaded_or.value();

  EXPECT_EQ(loaded.num_items(), p.discretization.num_items());
  EXPECT_EQ(loaded.num_selected_genes(),
            p.discretization.num_selected_genes());
  EXPECT_EQ(loaded.selected_genes(), p.discretization.selected_genes());
  // Re-discretizing the test set must give identical items.
  DiscreteDataset original = p.discretization.Apply(data.test);
  DiscreteDataset redone = loaded.Apply(data.test);
  for (RowId r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(original.row_items(r), redone.row_items(r)) << r;
  }
  std::remove(path.c_str());
}

TEST(DiscretizationIoTest, RejectsCorruptFiles) {
  const std::string path = TempPath("disc_bad.txt");
  ASSERT_TRUE(WriteLines(path, {"not a model"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());
  ASSERT_TRUE(WriteLines(path, {"topkrgs-discretization v1", "genes 2",
                                "gene 5 1 0.5"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());  // truncated
  ASSERT_TRUE(WriteLines(path, {"topkrgs-discretization v1", "genes 1",
                                "gene 5 2 0.9 0.1"}).ok());
  EXPECT_FALSE(LoadDiscretization(path).ok());  // unsorted cuts
  std::remove(path.c_str());
}

TEST(CbaIoTest, RoundtripPreservesPredictions) {
  DiscreteDataset d = testing_util::RandomDataset(31, 14, 10, 0.4);
  CbaOptions opt;
  opt.min_support_frac = 0.4;
  CbaClassifier clf = TrainCba(d, opt);
  const std::string path = TempPath("cba.txt");
  ASSERT_TRUE(SaveCbaClassifier(clf, d.num_items(), path).ok());
  uint32_t num_items = 0;
  auto loaded_or = LoadCbaClassifier(path, &num_items);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const CbaClassifier& loaded = loaded_or.value();
  EXPECT_EQ(num_items, d.num_items());
  EXPECT_EQ(loaded.rules().size(), clf.rules().size());
  EXPECT_EQ(loaded.default_class(), clf.default_class());
  for (RowId r = 0; r < d.num_rows(); ++r) {
    bool dflt1 = false, dflt2 = false;
    EXPECT_EQ(loaded.Predict(d.row_bitset(r), &dflt1),
              clf.Predict(d.row_bitset(r), &dflt2));
    EXPECT_EQ(dflt1, dflt2);
  }
  std::remove(path.c_str());
}

TEST(RcbtIoTest, RoundtripPreservesPredictions) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(22));
  Pipeline p = PreparePipeline(data.train, data.test);
  RcbtOptions opt;
  opt.k = 3;
  opt.nl = 4;
  opt.item_scores = p.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
  const std::string path = TempPath("rcbt.txt");
  ASSERT_TRUE(SaveRcbtClassifier(clf, p.train.num_items(), path).ok());
  auto loaded_or = LoadRcbtClassifier(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const RcbtClassifier& loaded = loaded_or.value();
  EXPECT_EQ(loaded.num_classifiers(), clf.num_classifiers());
  EXPECT_EQ(loaded.default_class(), clf.default_class());
  EXPECT_EQ(loaded.class_counts(), clf.class_counts());
  for (RowId r = 0; r < p.test.num_rows(); ++r) {
    const auto a = clf.Predict(p.test.row_bitset(r));
    const auto b = loaded.Predict(p.test.row_bitset(r));
    EXPECT_EQ(a.label, b.label) << r;
    EXPECT_EQ(a.classifier_index, b.classifier_index) << r;
    EXPECT_EQ(a.used_default, b.used_default) << r;
  }
  std::remove(path.c_str());
}

TEST(RcbtIoTest, RejectsWrongKind) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(23));
  Pipeline p = PreparePipeline(data.train, data.test);
  CbaOptions copt;
  copt.item_scores = p.item_scores;
  CbaClassifier cba = TrainCba(p.train, copt);
  const std::string path = TempPath("kind.txt");
  ASSERT_TRUE(SaveCbaClassifier(cba, p.train.num_items(), path).ok());
  EXPECT_FALSE(LoadRcbtClassifier(path).ok());
  EXPECT_TRUE(LoadCbaClassifier(path).ok());
  std::remove(path.c_str());
}

TEST(CbaIoTest, RejectsItemOutOfRange) {
  const std::string path = TempPath("cba_bad.txt");
  ASSERT_TRUE(WriteLines(path, {"topkrgs-cba v1", "num_items 4", "default 0",
                                "rules 1", "rule 1 2 3 9"}).ok());
  EXPECT_FALSE(LoadCbaClassifier(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadCbaClassifier("/nonexistent/model.txt").ok());
  EXPECT_FALSE(LoadRcbtClassifier("/nonexistent/model.txt").ok());
  EXPECT_FALSE(LoadDiscretization("/nonexistent/model.txt").ok());
}

// ---------------------------------------------------------------------------
// Save → load → re-save must reproduce the file byte-for-byte: the format is
// canonical, so a second generation of the file proves the loader captured
// every field the saver wrote (nothing dropped, reordered, or re-rounded).

TEST(DiscretizationIoTest, ResaveIsBitIdentical) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(31));
  Pipeline p = PreparePipeline(data.train, data.test);
  const std::string path1 = TempPath("disc1.txt");
  const std::string path2 = TempPath("disc2.txt");
  ASSERT_TRUE(SaveDiscretization(p.discretization, path1).ok());
  auto loaded_or = LoadDiscretization(path1);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  ASSERT_TRUE(SaveDiscretization(loaded_or.value(), path2).ok());
  auto lines1 = ReadLines(path1);
  auto lines2 = ReadLines(path2);
  ASSERT_TRUE(lines1.ok() && lines2.ok());
  EXPECT_EQ(lines1.value(), lines2.value());
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(CbaIoTest, ResaveIsBitIdentical) {
  DiscreteDataset d = testing_util::RandomDataset(29, 12, 11, 0.4);
  CbaOptions opt;
  opt.min_support_frac = 0.3;
  CbaClassifier clf = TrainCba(d, opt);
  const std::string path1 = TempPath("cba1.txt");
  const std::string path2 = TempPath("cba2.txt");
  ASSERT_TRUE(SaveCbaClassifier(clf, d.num_items(), path1).ok());
  uint32_t num_items = 0;
  auto loaded_or = LoadCbaClassifier(path1, &num_items);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  ASSERT_TRUE(SaveCbaClassifier(loaded_or.value(), num_items, path2).ok());
  auto lines1 = ReadLines(path1);
  auto lines2 = ReadLines(path2);
  ASSERT_TRUE(lines1.ok() && lines2.ok());
  EXPECT_EQ(lines1.value(), lines2.value());
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(RcbtIoTest, ResaveIsBitIdentical) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(32));
  Pipeline p = PreparePipeline(data.train, data.test);
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  opt.item_scores = p.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
  const std::string path1 = TempPath("rcbt1.txt");
  const std::string path2 = TempPath("rcbt2.txt");
  ASSERT_TRUE(SaveRcbtClassifier(clf, p.train.num_items(), path1).ok());
  uint32_t num_items = 0;
  auto loaded_or = LoadRcbtClassifier(path1, &num_items);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  ASSERT_TRUE(SaveRcbtClassifier(loaded_or.value(), num_items, path2).ok());
  auto lines1 = ReadLines(path1);
  auto lines2 = ReadLines(path2);
  ASSERT_TRUE(lines1.ok() && lines2.ok());
  EXPECT_EQ(lines1.value(), lines2.value());
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// ---------------------------------------------------------------------------
// Semantic-invariant rejections at the Parse* boundary (no file needed).

TEST(RcbtParseTest, RejectsConsequentOutOfClassRange) {
  // 3 classes declared; a rule predicting class 9 would index past
  // score_norm[2] in FromParts — this must die at the parse boundary.
  auto result = ParseRcbtModel({"topkrgs-rcbt v1", "num_items 6",
                                "class_counts 2 5 4", "default 0",
                                "classifiers 1", "classifier 0 1",
                                "rule 9 3 4 0 2"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RcbtParseTest, RejectsDefaultClassOutOfRange) {
  auto result = ParseRcbtModel({"topkrgs-rcbt v1", "num_items 6",
                                "class_counts 2 5", "default 7",
                                "classifiers 0"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RcbtParseTest, RejectsClassCountFieldMismatch) {
  // class_counts declares 3 classes but provides 2 counts.
  auto result = ParseRcbtModel({"topkrgs-rcbt v1", "num_items 6",
                                "class_counts 3 5 4", "default 0",
                                "classifiers 0"});
  EXPECT_FALSE(result.ok());
}

TEST(CbaParseTest, RejectsSupportExceedingAntecedentSupport) {
  auto result = ParseCbaModel({"topkrgs-cba v1", "num_items 4", "default 0",
                               "rules 1", "rule 1 9 4 0 2"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CbaParseTest, RejectsZeroAntecedentSupport) {
  auto result = ParseCbaModel({"topkrgs-cba v1", "num_items 4", "default 0",
                               "rules 1", "rule 1 0 0 0 2"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CbaParseTest, RejectsNonLabelConsequent) {
  // 300 does not fit in ClassLabel (uint8_t); a narrowing cast would
  // silently alias it to class 44.
  auto result = ParseCbaModel({"topkrgs-cba v1", "num_items 4", "default 0",
                               "rules 1", "rule 300 2 3 0 2"});
  EXPECT_FALSE(result.ok());
}

TEST(CbaParseTest, RejectsTrailingGarbage) {
  auto result = ParseCbaModel({"topkrgs-cba v1", "num_items 4", "default 0",
                               "rules 1", "rule 1 2 3 0 2", "extra junk"});
  EXPECT_FALSE(result.ok());
}

TEST(DiscretizationParseTest, RejectsNanCut) {
  auto result = ParseDiscretizationModel(
      {"topkrgs-discretization v1", "genes 1", "gene 5 1 nan"});
  EXPECT_FALSE(result.ok());
}

TEST(DiscretizationParseTest, RejectsOverflowingGeneId) {
  auto result = ParseDiscretizationModel(
      {"topkrgs-discretization v1", "genes 1", "gene 4294967296 1 0.5"});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace topkrgs
