#include "classify/cross_validation.h"

#include <gtest/gtest.h>

#include <set>

#include "classify/cba.h"
#include "classify/find_lb.h"
#include "classify/rcbt.h"
#include "mine/naive_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

TEST(StratifiedFoldsTest, EveryRowAssignedInRange) {
  std::vector<ClassLabel> labels(23);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  const auto folds = StratifiedFolds(labels, 5, 1);
  ASSERT_EQ(folds.size(), labels.size());
  for (uint32_t f : folds) EXPECT_LT(f, 5u);
}

TEST(StratifiedFoldsTest, ClassBalancePerFold) {
  // 40 rows of class 1 and 20 of class 0, 4 folds: each fold must get
  // exactly 10 class-1 and 5 class-0 rows.
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(1);
  for (int i = 0; i < 20; ++i) labels.push_back(0);
  const auto folds = StratifiedFolds(labels, 4, 7);
  std::vector<std::vector<uint32_t>> counts(4, std::vector<uint32_t>(2, 0));
  for (size_t r = 0; r < labels.size(); ++r) ++counts[folds[r]][labels[r]];
  for (int f = 0; f < 4; ++f) {
    EXPECT_EQ(counts[f][1], 10u) << f;
    EXPECT_EQ(counts[f][0], 5u) << f;
  }
}

TEST(StratifiedFoldsTest, DeterministicPerSeed) {
  std::vector<ClassLabel> labels(30);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  EXPECT_EQ(StratifiedFolds(labels, 3, 5), StratifiedFolds(labels, 3, 5));
  EXPECT_NE(StratifiedFolds(labels, 3, 5), StratifiedFolds(labels, 3, 6));
}

TEST(CrossValidationTest, CoversEveryRowExactlyOnce) {
  DiscreteDataset d = RandomDataset(3, 24, 10, 0.4);
  uint32_t trained = 0;
  const auto result =
      CrossValidateDiscrete(d, 4, 11, [&](const DiscreteDataset& train) {
        ++trained;
        // Majority-class predictor.
        const auto counts = train.ClassCounts();
        const ClassLabel majority = counts[1] >= counts[0] ? 1 : 0;
        return [majority](const Bitset&, bool* dflt) {
          *dflt = true;
          return majority;
        };
      });
  EXPECT_EQ(trained, 4u);
  uint32_t total = 0;
  for (const EvalOutcome& fold : result.folds) total += fold.total;
  EXPECT_EQ(total, d.num_rows());
}

TEST(CrossValidationTest, PerfectPredictorScoresOne) {
  DiscreteDataset d = RandomDataset(4, 20, 8, 0.5);
  const auto result =
      CrossValidateDiscrete(d, 5, 2, [&](const DiscreteDataset&) {
        // Cheating predictor used only to validate the plumbing: the
        // evaluator passes held-out rows whose labels we cannot see, so a
        // real check uses separable data below; here assert score range.
        return [](const Bitset&, bool* dflt) {
          *dflt = false;
          return ClassLabel{1};
        };
      });
  EXPECT_GE(result.mean_accuracy(), 0.0);
  EXPECT_LE(result.mean_accuracy(), 1.0);
  EXPECT_GE(result.pooled_accuracy(), 0.0);
}

TEST(CrossValidationTest, CbaOnSeparableDataIsAccurate) {
  // Separable: item 0 marks class 1, item 1 marks class 0, plus noise.
  Rng rng(5);
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 30; ++i) {
    std::vector<ItemId> row = {static_cast<ItemId>(i % 2)};
    for (ItemId noise = 2; noise < 8; ++noise) {
      if (rng.NextBool(0.4)) row.push_back(noise);
    }
    rows.push_back(row);
    labels.push_back(i % 2 == 0 ? 1 : 0);
  }
  DiscreteDataset d(8, std::move(rows), std::move(labels));
  const auto result =
      CrossValidateDiscrete(d, 5, 3, [](const DiscreteDataset& train) {
        CbaOptions opt;
        opt.min_support_frac = 0.6;
        auto clf = std::make_shared<CbaClassifier>(TrainCba(train, opt));
        return [clf](const Bitset& items, bool* dflt) {
          return clf->Predict(items, dflt);
        };
      });
  EXPECT_GE(result.pooled_accuracy(), 0.95);
}

TEST(FindAllLowerBoundsTest, RunningExampleAbc) {
  DiscreteDataset d = MakeRunningExampleDataset();
  Bitset a(d.num_items());
  a.Set(RunningExampleItem('a'));
  RuleGroup g = CloseItemset(d, a, 1);
  const auto all = FindAllLowerBounds(d, g);
  // Example 2.2: exactly the lower bounds a -> C and b -> C.
  ASSERT_EQ(all.size(), 2u);
  std::set<uint32_t> singles;
  for (const Rule& lb : all) {
    ASSERT_EQ(lb.antecedent.Count(), 1u);
    singles.insert(lb.antecedent.ToVector()[0]);
  }
  EXPECT_TRUE(singles.count(RunningExampleItem('a')));
  EXPECT_TRUE(singles.count(RunningExampleItem('b')));
}

TEST(FindAllLowerBoundsTest, CompleteAndMinimalOnRandomGroups) {
  DiscreteDataset d = RandomDataset(8, 9, 10, 0.45);
  for (const RuleGroup& g : NaiveRuleGroups(d, 1, 2)) {
    const auto all = FindAllLowerBounds(d, g, /*max_depth=*/10);
    ASSERT_GE(all.size(), 1u);
    for (const Rule& lb : all) {
      EXPECT_TRUE(lb.antecedent.IsSubsetOf(g.antecedent));
      EXPECT_EQ(d.ItemSupportSet(lb.antecedent), g.row_support);
      // Minimality.
      lb.antecedent.ForEach([&](size_t drop) {
        if (lb.antecedent.Count() == 1) return;
        Bitset sub = lb.antecedent;
        sub.Reset(drop);
        EXPECT_GT(d.ItemSupportSet(sub).Count(), g.row_support.Count());
      });
    }
    // Completeness: the subset of FindLowerBounds results must appear.
    FindLbOptions opt;
    opt.num_lower_bounds = 1000;
    opt.max_depth = 10;
    const auto bfs = FindLowerBounds(d, g, {}, opt);
    EXPECT_EQ(all.size(), bfs.size()) << "complete enumeration differs";
  }
}

TEST(FindAllLowerBoundsTest, MaxBoundsCaps) {
  DiscreteDataset d = RandomDataset(9, 10, 12, 0.5);
  const auto groups = NaiveRuleGroups(d, 1, 1);
  ASSERT_FALSE(groups.empty());
  const auto capped = FindAllLowerBounds(d, groups[0], 10, 1);
  EXPECT_EQ(capped.size(), 1u);
}

}  // namespace
}  // namespace topkrgs
