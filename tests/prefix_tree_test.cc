#include "mine/prefix_tree.h"

#include <gtest/gtest.h>

#include "mine/miner_common.h"
#include "mine/transposed_table.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

std::vector<RowId> IdentityOrder(uint32_t n) {
  std::vector<RowId> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(TransposedTableTest, RunningExampleFigure1b) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TransposedTable tt = TransposedTable::Build(
      d, IdentityOrder(5), Bitset::AllSet(d.num_items()));
  EXPECT_EQ(tt.num_tuples(), 10u);
  // Tuple of item c spans rows 1..4 (positions 0..3).
  for (const auto& tuple : tt.tuples()) {
    if (tuple.item == RunningExampleItem('c')) {
      EXPECT_EQ(tuple.positions, (std::vector<uint32_t>{0, 1, 2, 3}));
    }
    if (tuple.item == RunningExampleItem('h')) {
      EXPECT_EQ(tuple.positions, (std::vector<uint32_t>{4}));
    }
  }
}

TEST(TransposedTableTest, ProjectionFigure1cAnd1d) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TransposedTable tt = TransposedTable::Build(
      d, IdentityOrder(5), Bitset::AllSet(d.num_items()));
  // TT|{1}: tuples containing position 0, truncated to positions > 0.
  TransposedTable tt1 = tt.Project(0);
  EXPECT_EQ(tt1.num_tuples(), 5u);  // a, b, c, d, e
  // TT|{1,3}: project again on position 2 -> items c, d, e remain.
  TransposedTable tt13 = tt1.Project(2);
  EXPECT_EQ(tt13.num_tuples(), 3u);
  // Figure 1(d): c -> {4}, d -> {4}, e -> {4, 5} (positions 3 / 3,4).
  for (const auto& tuple : tt13.tuples()) {
    if (tuple.item == RunningExampleItem('e')) {
      EXPECT_EQ(tuple.positions, (std::vector<uint32_t>{3, 4}));
    } else {
      EXPECT_EQ(tuple.positions, (std::vector<uint32_t>{3}));
    }
  }
}

TEST(TransposedTableTest, FrequencyCountsTuplesContainingPosition) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TransposedTable tt = TransposedTable::Build(
      d, IdentityOrder(5), Bitset::AllSet(d.num_items()));
  // freq(pos) == number of items of that row == 5 for every row here.
  for (uint32_t pos = 0; pos < 5; ++pos) {
    EXPECT_EQ(tt.Frequency(pos), 5u);
  }
}

TEST(PrefixTreeTest, RootMatchesTransposedTable) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const auto order = IdentityOrder(5);
  const Bitset all = Bitset::AllSet(d.num_items());
  PrefixTree tree = PrefixTree::BuildRoot(d, order, all);
  TransposedTable tt = TransposedTable::Build(d, order, all);
  EXPECT_EQ(tree.tuple_count(), tt.num_tuples());
  for (uint32_t pos = 0; pos < 5; ++pos) {
    EXPECT_EQ(tree.freq(pos), tt.Frequency(pos)) << pos;
  }
}

TEST(PrefixTreeTest, ConditionalMatchesProjection) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const auto order = IdentityOrder(5);
  const Bitset all = Bitset::AllSet(d.num_items());
  PrefixTree tree = PrefixTree::BuildRoot(d, order, all);
  TransposedTable tt = TransposedTable::Build(d, order, all);
  for (uint32_t pos = 0; pos < 5; ++pos) {
    PrefixTree cond = tree.Conditional(pos);
    TransposedTable proj = tt.Project(pos);
    EXPECT_EQ(cond.tuple_count(), proj.num_tuples()) << pos;
    for (uint32_t q = pos + 1; q < 5; ++q) {
      EXPECT_EQ(cond.freq(q), proj.Frequency(q)) << pos << "," << q;
    }
  }
}

TEST(PrefixTreeTest, NestedConditionalsMatchNestedProjections) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const auto order = IdentityOrder(5);
  const Bitset all = Bitset::AllSet(d.num_items());
  PrefixTree tree = PrefixTree::BuildRoot(d, order, all);
  TransposedTable tt = TransposedTable::Build(d, order, all);
  // {1,3}: I(X) = {c,d,e}; Figure 1(d).
  PrefixTree cond = tree.Conditional(0).Conditional(2);
  TransposedTable proj = tt.Project(0).Project(2);
  EXPECT_EQ(cond.tuple_count(), 3u);
  EXPECT_EQ(cond.tuple_count(), proj.num_tuples());
  EXPECT_EQ(cond.freq(3), 3u);  // c, d, e all contain row 4
  EXPECT_EQ(cond.freq(4), 1u);  // only e contains row 5
}

TEST(PrefixTreeTest, SharesPrefixPaths) {
  // Rows 0 and 1 share all items: the tree must share paths, not duplicate.
  DiscreteDataset d(4, {{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1}}, {1, 1, 0});
  PrefixTree tree =
      PrefixTree::BuildRoot(d, IdentityOrder(3), Bitset::AllSet(4));
  // Tuples: item0 {0,1,2}, item1 {0,1,2}, item2 {0,1}, item3 {0,1}.
  // Descending paths: {2,1,0} x2 and {1,0} x2 share the whole structure:
  // 2-1-0 chain plus 1-0 chain = 5 nodes.
  EXPECT_EQ(tree.node_count(), 5u);
  EXPECT_EQ(tree.tuple_count(), 4u);
}

TEST(PrefixTreeTest, RandomizedAgreementWithTransposedTable) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DiscreteDataset d = RandomDataset(seed, 9, 12, 0.4);
    const auto order = IdentityOrder(9);
    const Bitset all = Bitset::AllSet(d.num_items());
    PrefixTree tree = PrefixTree::BuildRoot(d, order, all);
    TransposedTable tt = TransposedTable::Build(d, order, all);
    for (uint32_t a = 0; a < 9; ++a) {
      PrefixTree ca = tree.Conditional(a);
      TransposedTable pa = tt.Project(a);
      ASSERT_EQ(ca.tuple_count(), pa.num_tuples()) << seed << " " << a;
      for (uint32_t b = a + 1; b < 9; ++b) {
        ASSERT_EQ(ca.freq(b), pa.Frequency(b)) << seed << " " << a << " " << b;
        PrefixTree cab = ca.Conditional(b);
        TransposedTable pab = pa.Project(b);
        ASSERT_EQ(cab.tuple_count(), pab.num_tuples());
        for (uint32_t c = b + 1; c < 9; ++c) {
          ASSERT_EQ(cab.freq(c), pab.Frequency(c));
        }
      }
    }
  }
}

TEST(MinerCommonTest, ClassDominantOrder) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const Bitset all = Bitset::AllSet(d.num_items());
  auto order = ClassDominantOrder(d, 1, all);
  ASSERT_EQ(order.size(), 5u);
  // Rows of class 1 (r1,r2,r3) precede rows of class 0 (r4,r5).
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d.label(order[i]), 1);
  for (int i = 3; i < 5; ++i) EXPECT_EQ(d.label(order[i]), 0);
}

TEST(MinerCommonTest, OrderSortsByFrequentItemCountWithinClass) {
  // Class-1 rows with 1, 3, 2 frequent items -> order 0, 2, 1 by weight.
  DiscreteDataset d(4, {{0}, {0, 1, 2}, {0, 1}, {3}}, {1, 1, 1, 0});
  Bitset freq = Bitset::AllSet(4);
  auto order = ClassDominantOrder(d, 1, freq);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 3u);
}

TEST(MinerCommonTest, FrequentItemsCountsClassSupport) {
  DiscreteDataset d = MakeRunningExampleDataset();
  // Class C support: a:2 b:2 c:3 d:2 e:2 f:1 g:1 h:0 o:1 p:1.
  Bitset freq2 = FrequentItems(d, 1, 2);
  EXPECT_EQ(freq2.ToVector(),
            (std::vector<uint32_t>{RunningExampleItem('a'),
                                   RunningExampleItem('b'),
                                   RunningExampleItem('c'),
                                   RunningExampleItem('d'),
                                   RunningExampleItem('e')}));
  Bitset freq3 = FrequentItems(d, 1, 3);
  EXPECT_EQ(freq3.ToVector(),
            (std::vector<uint32_t>{RunningExampleItem('c')}));
}

TEST(MinerCommonTest, CountClassRows) {
  DiscreteDataset d = MakeRunningExampleDataset();
  EXPECT_EQ(CountClassRows(d, 1), 3u);
  EXPECT_EQ(CountClassRows(d, 0), 2u);
}

}  // namespace
}  // namespace topkrgs
