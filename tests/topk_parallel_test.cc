#include <gtest/gtest.h>

#include <vector>

#include "classify/evaluator.h"
#include "mine/hybrid_miner.h"
#include "mine/naive_miner.h"
#include "mine/topk_miner.h"
#include "synth/generator.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;
using testing_util::SignificanceSeq;

/// Deep equality of two mining results: every per-row list must match
/// group-for-group (antecedent, supports, row support, order), along with
/// the derived threshold and the distinct-group ordering. This is the
/// "bit-for-bit deterministic for any thread count" contract of
/// TopkMinerOptions::threads.
void ExpectIdenticalResults(const TopkResult& a, const TopkResult& b,
                            const std::string& context) {
  EXPECT_EQ(a.effective_min_support, b.effective_min_support) << context;
  ASSERT_EQ(a.per_row.size(), b.per_row.size()) << context;
  for (size_t r = 0; r < a.per_row.size(); ++r) {
    const auto& la = a.per_row[r];
    const auto& lb = b.per_row[r];
    ASSERT_EQ(la.size(), lb.size()) << context << " row " << r;
    for (size_t i = 0; i < la.size(); ++i) {
      const RuleGroup& ga = *la[i];
      const RuleGroup& gb = *lb[i];
      EXPECT_EQ(ga.antecedent, gb.antecedent)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.consequent, gb.consequent)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.support, gb.support)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.antecedent_support, gb.antecedent_support)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.row_support, gb.row_support)
          << context << " row " << r << " rank " << i;
    }
  }
  const auto da = a.DistinctGroups();
  const auto db = b.DistinctGroups();
  ASSERT_EQ(da.size(), db.size()) << context;
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i]->antecedent, db[i]->antecedent) << context << " #" << i;
    EXPECT_EQ(da[i]->row_support, db[i]->row_support) << context << " #" << i;
  }
}

/// Mines `data` with every thread count in `thread_counts` and asserts all
/// runs reproduce the threads=1 result exactly.
void CheckThreadInvariance(const DiscreteDataset& data, ClassLabel consequent,
                           TopkMinerOptions opt, const std::string& context) {
  opt.threads = 1;
  const TopkResult reference = MineTopkRGS(data, consequent, opt);
  EXPECT_FALSE(reference.stats.timed_out) << context;
  for (uint32_t threads : {2u, 8u, 0u /* auto = hardware cores */}) {
    TopkMinerOptions par = opt;
    par.threads = threads;
    const TopkResult result = MineTopkRGS(data, consequent, par);
    ExpectIdenticalResults(reference, result,
                           context + " threads=" + std::to_string(threads));
  }
}

TEST(TopkParallelTest, DeterministicOnSyntheticPipelineData) {
  for (uint64_t seed : {7u, 19u}) {
    const GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(seed));
    const Pipeline pipeline = PreparePipeline(data.train, data.test);
    for (ClassLabel consequent : {0, 1}) {
      TopkMinerOptions opt;
      opt.k = 3;
      opt.min_support = 2;
      CheckThreadInvariance(pipeline.train, consequent, opt,
                            "tiny seed " + std::to_string(seed) + " class " +
                                std::to_string(consequent));
    }
  }
}

TEST(TopkParallelTest, DeterministicAcrossBackends) {
  const DiscreteDataset data = RandomDataset(11, 28, 40, 0.35);
  for (auto backend : {TopkMinerOptions::Backend::kPrefixTree,
                       TopkMinerOptions::Backend::kBitset,
                       TopkMinerOptions::Backend::kVector}) {
    TopkMinerOptions opt;
    opt.k = 4;
    opt.min_support = 2;
    opt.backend = backend;
    CheckThreadInvariance(
        data, 1, opt,
        "backend " + std::to_string(static_cast<int>(backend)));
  }
}

TEST(TopkParallelTest, DeterministicOverRandomDatasets) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const DiscreteDataset data = RandomDataset(seed, 24, 32, 0.4);
    for (uint32_t k : {1u, 2u, 5u}) {
      TopkMinerOptions opt;
      opt.k = k;
      opt.min_support = 1 + static_cast<uint32_t>(seed % 3);
      CheckThreadInvariance(data, 1, opt,
                            "seed " + std::to_string(seed) + " k " +
                                std::to_string(k));
    }
  }
}

TEST(TopkParallelTest, DeterministicWithoutTopkPruningAblation) {
  // The strict-inequality pruning argument is moot when top-k pruning is
  // off; determinism must then come purely from the replay merge.
  const DiscreteDataset data = RandomDataset(3, 22, 30, 0.4);
  TopkMinerOptions opt;
  opt.k = 3;
  opt.min_support = 2;
  opt.use_topk_pruning = false;
  CheckThreadInvariance(data, 1, opt, "no-topk-pruning");

  opt.use_topk_pruning = true;
  opt.use_bound_pruning = false;
  CheckThreadInvariance(data, 1, opt, "no-bound-pruning");

  opt.use_bound_pruning = true;
  opt.seed_single_items = false;
  opt.dynamic_min_support = false;
  CheckThreadInvariance(data, 1, opt, "no-seeding-no-dynamic-minsup");
}

TEST(TopkParallelTest, ParallelResultMatchesOracle) {
  // The exhaustive oracle pins the parallel miner to the paper's
  // Definition 2.3 semantics, not merely to its own serial run.
  for (uint64_t seed : {2u, 5u}) {
    const DiscreteDataset data = RandomDataset(seed, 16, 18, 0.45);
    TopkMinerOptions opt;
    opt.k = 2;
    opt.min_support = 2;
    opt.threads = 8;
    const TopkResult fast = MineTopkRGS(data, 1, opt);
    const auto oracle = NaiveTopkRGS(data, 1, opt.min_support, opt.k);
    ASSERT_EQ(fast.per_row.size(), oracle.size());
    for (size_t r = 0; r < fast.per_row.size(); ++r) {
      EXPECT_EQ(SignificanceSeq(fast.per_row[r]),
                testing_util::SignificanceSeqValues(oracle[r]))
          << "seed " << seed << " row " << r;
    }
  }
}

TEST(TopkParallelTest, HybridMinerHonorsThreadsField) {
  const DiscreteDataset data = RandomDataset(13, 20, 24, 0.4);
  TopkMinerOptions serial;
  serial.k = 2;
  serial.min_support = 2;
  serial.threads = 1;
  const TopkResult reference = MineTopkRGSHybrid(data, 1, serial);
  TopkMinerOptions parallel = serial;
  parallel.threads = 4;  // new field name; no hybrid_threads assignment
  const TopkResult result = MineTopkRGSHybrid(data, 1, parallel);
  ExpectIdenticalResults(reference, result, "hybrid threads=4");

  TopkMinerOptions alias = serial;
  alias.hybrid_threads = 4;  // deprecated alias must still be honored
  const TopkResult alias_result = MineTopkRGSHybrid(data, 1, alias);
  ExpectIdenticalResults(reference, alias_result, "hybrid alias threads=4");
}

TEST(TopkParallelTest, ConflictingThreadsAliasIsInvalidArgument) {
  // Regression: the deprecated hybrid_threads alias used to silently
  // override an explicitly set `threads`, hiding conflicting requests.
  // The legacy calling convention (alias assigned, `threads` left at its
  // default) must keep working; an actual conflict must be rejected.
  TopkMinerOptions opt;
  EXPECT_TRUE(opt.Validate().ok());

  opt.hybrid_threads = 2;  // legacy call site: only the alias assigned
  EXPECT_TRUE(opt.Validate().ok());
  EXPECT_EQ(opt.RequestedThreads(), 2u);

  opt.threads = 8;  // now both are set, to different values
  const Status conflict = opt.Validate();
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.code(), StatusCode::kInvalidArgument);

  opt.hybrid_threads = 8;  // both set but agreeing: no conflict
  EXPECT_TRUE(opt.Validate().ok());
  EXPECT_EQ(opt.RequestedThreads(), 8u);

  opt.hybrid_threads = TopkMinerOptions::kThreadsUnset;
  EXPECT_TRUE(opt.Validate().ok());
  EXPECT_EQ(opt.RequestedThreads(), 8u);
}

TEST(TopkParallelTest, ConflictingThreadsAliasAbortsTheMiner) {
  const DiscreteDataset data = RandomDataset(5, 10, 12, 0.4);
  TopkMinerOptions opt;
  opt.k = 1;
  opt.threads = 8;
  opt.hybrid_threads = 2;
  EXPECT_DEATH(MineTopkRGS(data, 1, opt), "conflicts");
  EXPECT_DEATH(MineTopkRGSHybrid(data, 1, opt), "conflicts");
}

TEST(TopkParallelTest, ResolveThreadCountClampsAutoToAtLeastOne) {
  // threads = 0 means "one per hardware core", but the standard allows
  // hardware_concurrency() to report 0 when the core count is unknowable;
  // the resolved worker count must still be >= 1.
  EXPECT_EQ(ResolveThreadCount(0, 0), 1u);
  EXPECT_EQ(ResolveThreadCount(0, 1), 1u);
  EXPECT_EQ(ResolveThreadCount(0, 8), 8u);
  // Explicit requests pass through untouched, even on the 0-core report.
  EXPECT_EQ(ResolveThreadCount(3, 0), 3u);
  EXPECT_EQ(ResolveThreadCount(1, 16), 1u);
}

TEST(TopkParallelTest, DeterministicUnderHeavyStealing) {
  // A wide, deep search at 8 workers: the first-level task queue drains
  // quickly relative to the subtree sizes, so workers starve and running
  // tasks shed their unvisited children mid-DFS (dynamic splits), which a
  // starving worker then steals — the spawn-marker replay and the striped
  // split-task origin ranges must still reproduce the serial result
  // bit for bit. k above the per-row group count keeps top-k thresholds
  // loose, maximizing surviving subtrees (= split opportunities);
  // warmup_nodes = 0 throws every first-level task open immediately so
  // stealing actually happens.
  for (uint64_t seed : {21u, 42u}) {
    const DiscreteDataset data = RandomDataset(seed, 40, 44, 0.45);
    TopkMinerOptions opt;
    opt.k = 6;
    opt.min_support = 1;
    opt.threads = 1;
    opt.warmup_nodes = 0;
    const TopkResult reference = MineTopkRGS(data, 1, opt);
    TopkMinerOptions par = opt;
    par.threads = 8;
    const TopkResult stolen = MineTopkRGS(data, 1, par);
    ExpectIdenticalResults(reference, stolen,
                           "heavy-steal seed " + std::to_string(seed));
  }
}

TEST(TopkParallelTest, WarmupBudgetDoesNotChangeResults) {
  // The serial warm-up only reorders which thread visits which subtree;
  // any budget — off, tiny (pool starts almost cold), huge (the whole
  // search runs inside the warm-up) or auto — must yield bit-identical
  // results.
  const DiscreteDataset data = RandomDataset(7, 36, 40, 0.45);
  TopkMinerOptions serial;
  serial.k = 5;
  serial.min_support = 1;
  serial.threads = 1;
  const TopkResult reference = MineTopkRGS(data, 1, serial);
  for (int64_t budget : {int64_t{0}, int64_t{8}, int64_t{1 << 20},
                         int64_t{-1}}) {
    TopkMinerOptions par = serial;
    par.threads = 4;
    par.warmup_nodes = budget;
    const TopkResult got = MineTopkRGS(data, 1, par);
    ExpectIdenticalResults(reference, got,
                           "warmup budget " + std::to_string(budget));
  }
}

}  // namespace
}  // namespace topkrgs
