// Unit tests of the serving subsystem below the HTTP layer: the JSON
// tree, the predict-request parser, the model registry (load, hot-swap,
// rollback), the servable model's equivalence with the batch CLI path,
// and the executor's shedding / deadline / shutdown semantics.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "classify/evaluator.h"
#include "classify/model_io.h"
#include "classify/rcbt.h"
#include "serve/executor.h"
#include "serve/json.h"
#include "serve/model_registry.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "util/lock_ranks.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

// One trained Tiny-profile RCBT model plus the data it came from, shared
// by most serving tests.
struct TrainedModel {
  GeneratedData data;
  Pipeline pipeline;
  RcbtClassifier rcbt;

  std::shared_ptr<const ServableModel> Servable(const std::string& name,
                                                const std::string& version) {
    auto model_or = ServableModel::Create(
        name, version, pipeline.discretization, rcbt, std::nullopt,
        pipeline.discretization.num_items());
    EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
    return model_or.value();
  }

  std::vector<double> TestRow(RowId r) const {
    std::vector<double> row(data.test.num_genes());
    for (GeneId g = 0; g < data.test.num_genes(); ++g) {
      row[g] = data.test.value(r, g);
    }
    return row;
  }
};

TrainedModel Train(uint64_t seed) {
  TrainedModel out;
  out.data = GenerateMicroarray(DatasetProfile::Tiny(seed));
  out.pipeline = PreparePipeline(out.data.train, out.data.test);
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  opt.item_scores = out.pipeline.item_scores;
  out.rcbt = RcbtClassifier::Train(out.pipeline.train, opt);
  return out;
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ParsesAndDumpsRoundTrip) {
  auto doc_or = JsonValue::Parse(
      R"({"a": [1, -2.5, 1e3], "b": "x\ny\u00e9", "c": true, "d": null})");
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const JsonValue& doc = doc_or.value();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("a"), nullptr);
  EXPECT_EQ(doc.Find("a")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.Find("a")->array()[2].number(), 1000.0);
  EXPECT_EQ(doc.Find("b")->str(), "x\ny\xc3\xa9");
  EXPECT_TRUE(doc.Find("c")->boolean());
  EXPECT_TRUE(doc.Find("d")->is_null());

  // Dump must re-parse to the same tree (shortest-round-trip numbers).
  auto again_or = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(again_or.ok());
  EXPECT_EQ(again_or.value().Dump(), doc.Dump());
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",       "[1,]",     "{\"a\":}",  "01",
      "1.2.3",      "nul",     "\"\\q\"",  "[1] garbage",
      "{\"a\":1,}", "\"\\ud800\"",  // unpaired surrogate
      "1e999",                        // overflows to infinity
  };
  for (const char* text : bad) {
    auto doc_or = JsonValue::Parse(text);
    EXPECT_FALSE(doc_or.ok()) << "accepted: " << text;
    EXPECT_EQ(doc_or.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  auto doc_or = JsonValue::Parse(deep);
  ASSERT_FALSE(doc_or.ok());
  EXPECT_EQ(doc_or.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- ParsePredictRequest --

TEST(ParsePredictRequestTest, ParsesFullRequest) {
  auto parsed_or = ParsePredictRequest(
      R"({"model":"m","version":"v2","deadline_ms":50,"rows":[[1,2],[3,4]]})");
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().ToString();
  const ParsedPredictRequest& parsed = parsed_or.value();
  EXPECT_EQ(parsed.model, "m");
  EXPECT_EQ(parsed.version, "v2");
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, 50.0);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[1], (std::vector<double>{3, 4}));
}

TEST(ParsePredictRequestTest, DefaultsModelAndVersion) {
  auto parsed_or = ParsePredictRequest(R"({"rows":[[0.5]]})");
  ASSERT_TRUE(parsed_or.ok());
  EXPECT_EQ(parsed_or.value().model, "default");
  EXPECT_TRUE(parsed_or.value().version.empty());
  EXPECT_DOUBLE_EQ(parsed_or.value().deadline_ms, 0.0);
}

TEST(ParsePredictRequestTest, RejectsBadShapes) {
  const char* bad[] = {
      "[1]",                        // not an object
      "{}",                         // missing rows
      R"({"rows":[]})",             // empty rows
      R"({"rows":[[]]})",           // empty row
      R"({"rows":[[1,"x"]]})",      // non-number value
      R"({"rows":[[1]],"modle":"m"})",   // unknown key (typo must not pass)
      R"({"rows":[[1]],"model":""})",    // empty model name
      R"({"rows":[[1]],"deadline_ms":0})",
      R"({"rows":1})",
  };
  for (const char* text : bad) {
    auto parsed_or = ParsePredictRequest(text);
    EXPECT_FALSE(parsed_or.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed_or.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

// ------------------------------------------------------- ServableModel --

TEST(ServableModelTest, MatchesBatchCliPath) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ASSERT_NE(model, nullptr);

  // Reference: the batch path the CLI uses — Discretization::Apply over the
  // whole test set, then classifier Predict per row.
  const DiscreteDataset discrete =
      trained.pipeline.discretization.Apply(trained.data.test);
  for (RowId r = 0; r < trained.data.test.num_rows(); ++r) {
    auto result_or = model->Predict(trained.TestRow(r));
    ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
    const auto& row = result_or.value();
    const auto expected = trained.rcbt.Predict(discrete.row_bitset(r));
    EXPECT_EQ(row.label, expected.label) << r;
    EXPECT_EQ(row.classifier_index, expected.classifier_index) << r;
    EXPECT_EQ(row.used_default, expected.used_default) << r;
    ASSERT_EQ(row.scores.size(), expected.scores.size()) << r;
    for (size_t c = 0; c < row.scores.size(); ++c) {
      EXPECT_DOUBLE_EQ(row.scores[c], expected.scores[c]) << r;
    }
    EXPECT_EQ(row.matched_rules.size(), expected.matched_rules.size()) << r;
  }
}

TEST(ServableModelTest, RejectsShortAndNonFiniteRows) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ASSERT_GE(model->min_genes(), 1u);

  std::vector<double> short_row(model->min_genes() - 1, 0.0);
  auto short_or = model->Predict(short_row);
  ASSERT_FALSE(short_or.ok());
  EXPECT_EQ(short_or.status().code(), StatusCode::kInvalidArgument);

  std::vector<double> nan_row = trained.TestRow(0);
  nan_row[0] = std::numeric_limits<double>::quiet_NaN();
  auto nan_or = model->Predict(nan_row);
  ASSERT_FALSE(nan_or.ok());
  EXPECT_EQ(nan_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServableModelTest, CreateRejectsUniverseMismatch) {
  TrainedModel trained = Train(5);
  auto model_or = ServableModel::Create(
      "m", "v", trained.pipeline.discretization, trained.rcbt, std::nullopt,
      trained.pipeline.discretization.num_items() + 2);
  ASSERT_FALSE(model_or.ok());
  EXPECT_EQ(model_or.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- ModelRegistry --

TEST(ModelRegistryTest, LoadFromDiskAndResolve) {
  TrainedModel trained = Train(5);
  const std::string model_path = TempPath("model.txt");
  const std::string disc_path = TempPath("disc.txt");
  ASSERT_TRUE(SaveRcbtClassifier(trained.rcbt,
                                 trained.pipeline.discretization.num_items(),
                                 model_path)
                  .ok());
  ASSERT_TRUE(
      SaveDiscretization(trained.pipeline.discretization, disc_path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", "v1", ServableModel::Kind::kRcbt,
                            model_path, disc_path)
                  .ok());
  auto model_or = registry.Get("default");
  ASSERT_TRUE(model_or.ok());
  EXPECT_EQ(model_or.value()->version(), "v1");
  // Resolving a missing name or version is NotFound, not a crash.
  EXPECT_EQ(registry.Get("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Get("default", "v9").status().code(),
            StatusCode::kNotFound);
  // A bad artifact path must not disturb the registry.
  EXPECT_FALSE(registry
                   .Load("default", "v2", ServableModel::Kind::kRcbt,
                         model_path + ".missing", disc_path)
                   .ok());
  EXPECT_EQ(registry.Get("default").value()->version(), "v1");

  std::remove(model_path.c_str());
  std::remove(disc_path.c_str());
}

TEST(ModelRegistryTest, HotSwapAndRollback) {
  TrainedModel trained = Train(5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Insert(trained.Servable("default", "v1")).ok());
  ASSERT_TRUE(registry.Insert(trained.Servable("default", "v2")).ok());
  EXPECT_EQ(registry.Get("default").value()->version(), "v2");
  // Both versions stay resolvable explicitly.
  EXPECT_EQ(registry.Get("default", "v1").value()->version(), "v1");

  ASSERT_TRUE(registry.Rollback("default").ok());
  EXPECT_EQ(registry.Get("default").value()->version(), "v1");

  // Unloading the active version is refused; inactive versions drop.
  EXPECT_EQ(registry.Unload("default", "v1").code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(registry.Unload("default", "v2").ok());
  EXPECT_EQ(registry.Get("default", "v2").status().code(),
            StatusCode::kNotFound);

  // Rollback with no further history fails cleanly.
  EXPECT_EQ(registry.Rollback("nope").code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, ListReportsActiveFlags) {
  TrainedModel trained = Train(5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Insert(trained.Servable("a", "v1")).ok());
  ASSERT_TRUE(registry.Insert(trained.Servable("a", "v2")).ok());
  ASSERT_TRUE(registry.Insert(trained.Servable("b", "v1")).ok());
  const auto list = registry.List();
  ASSERT_EQ(list.size(), 3u);
  int active = 0;
  for (const auto& info : list) {
    if (info.active) {
      ++active;
      EXPECT_TRUE((info.name == "a" && info.version == "v2") ||
                  (info.name == "b" && info.version == "v1"));
    }
  }
  EXPECT_EQ(active, 2);
}

// The ISSUE's hot-swap guarantee: readers that resolved the old version
// keep serving on it while the active pointer changes underneath them.
TEST(ModelRegistryTest, HotSwapUnderConcurrentPredictions) {
  TrainedModel trained = Train(5);
  ServeMetrics metrics;
  ModelRegistry registry(&metrics);
  ASSERT_TRUE(registry.Insert(trained.Servable("default", "v1")).ok());

  const std::vector<double> row = trained.TestRow(0);
  const ClassLabel expected =
      registry.Get("default").value()->Predict(row).value().label;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto model_or = registry.Get("default");
        if (!model_or.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto result_or = model_or.value()->Predict(row);
        if (!result_or.ok() || result_or.value().label != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Swap versions back and forth while the readers hammer Get+Predict.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        registry.Insert(trained.Servable("default", i % 2 ? "v2" : "v3"))
            .ok());
    ASSERT_TRUE(registry.Rollback("default").ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------------------------- PredictionExecutor --

TEST(ExecutorTest, BatchedResultsMatchInlinePredictions) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ServeMetrics metrics;
  PredictionExecutor executor({2, 64, false}, &metrics);

  PredictRequest request;
  request.model = model;
  for (RowId r = 0; r < trained.data.test.num_rows(); ++r) {
    request.rows.push_back(trained.TestRow(r));
  }
  auto response_or = executor.Predict(request);
  ASSERT_TRUE(response_or.ok()) << response_or.status().ToString();
  const auto& rows = response_or.value().rows;
  ASSERT_EQ(rows.size(), trained.data.test.num_rows());
  for (RowId r = 0; r < trained.data.test.num_rows(); ++r) {
    const auto inline_result = model->Predict(trained.TestRow(r)).value();
    EXPECT_EQ(rows[r].label, inline_result.label) << r;
    EXPECT_EQ(rows[r].scores, inline_result.scores) << r;
    EXPECT_EQ(rows[r].matched_rules, inline_result.matched_rules) << r;
  }
  EXPECT_EQ(metrics.rows_total.load(), trained.data.test.num_rows());
}

TEST(ExecutorTest, FullQueueShedsWithResourceExhausted) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ServeMetrics metrics;
  PredictionExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.start_paused = true;  // workers hold off so the queue fills
  PredictionExecutor executor(options, &metrics);

  PredictRequest request;
  request.model = model;
  request.rows.push_back(trained.TestRow(0));

  auto f1 = executor.Submit(request);
  auto f2 = executor.Submit(request);
  auto f3 = executor.Submit(request);  // over capacity: shed at submit
  auto shed_or = f3.get();
  ASSERT_FALSE(shed_or.ok());
  EXPECT_EQ(shed_or.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.shed_total.load(), 1u);
  EXPECT_EQ(executor.queue_depth(), 2u);

  executor.Resume();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

TEST(ExecutorTest, QueuedRequestPastDeadlineFails) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ServeMetrics metrics;
  PredictionExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.start_paused = true;
  PredictionExecutor executor(options, &metrics);

  PredictRequest request;
  request.model = model;
  request.rows.push_back(trained.TestRow(0));
  request.deadline = Deadline(5e-3);  // 5ms, will expire while paused
  auto future = executor.Submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  executor.Resume();
  auto result_or = future.get();
  ASSERT_FALSE(result_or.ok());
  EXPECT_EQ(result_or.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(metrics.deadline_exceeded_total.load(), 1u);
}

TEST(ExecutorTest, ShutdownDrainsPendingAndRejectsNewWork) {
  TrainedModel trained = Train(5);
  auto model = trained.Servable("default", "v1");
  ServeMetrics metrics;
  PredictionExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.start_paused = true;
  PredictionExecutor executor(options, &metrics);

  PredictRequest request;
  request.model = model;
  request.rows.push_back(trained.TestRow(0));
  auto pending = executor.Submit(request);
  executor.Shutdown();
  auto pending_or = pending.get();
  ASSERT_FALSE(pending_or.ok());
  EXPECT_EQ(pending_or.status().code(), StatusCode::kResourceExhausted);

  auto late_or = executor.Submit(request).get();
  ASSERT_FALSE(late_or.ok());
  EXPECT_EQ(late_or.status().code(), StatusCode::kResourceExhausted);
  executor.Shutdown();  // idempotent
}

// Shutdown racing live traffic AND registry hot-swaps: every in-flight
// request must resolve to exactly OK, ResourceExhausted or
// DeadlineExceeded (never another code, never a hang), every response
// must come from a complete model — correct name, a real version, the
// v1-trained prediction — and the lock-rank checker must stay quiet and
// balanced across the registry→executor lock nesting the whole time.
TEST(ExecutorTest, ShutdownDuringHotSwapDrainsCleanly) {
  TrainedModel trained = Train(5);
  ServeMetrics metrics;
  ModelRegistry registry(&metrics);
  ASSERT_TRUE(registry.Insert(trained.Servable("default", "v1")).ok());

  const std::vector<double> row = trained.TestRow(0);
  const ClassLabel expected =
      registry.Get("default").value()->Predict(row).value().label;

  PredictionExecutor::Options options;
  options.workers = 2;
  options.queue_capacity = 8;
  auto executor = std::make_unique<PredictionExecutor>(options, &metrics);

  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> shed_count{0};

  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto model_or = registry.Get("default");
        if (!model_or.ok()) {
          anomalies.fetch_add(1);  // the active entry must never vanish
          continue;
        }
        const auto model = model_or.value();
        const std::string& v = model->version();
        if (model->name() != "default" ||
            (v != "v1" && v != "v2" && v != "v3")) {
          anomalies.fetch_add(1);  // half-swapped registry entry
        }
        PredictRequest request;
        request.model = model;
        request.rows.push_back(row);
        auto result_or = executor->Submit(request).get();
        if (result_or.ok()) {
          ok_count.fetch_add(1);
          if (result_or.value().rows.size() != 1 ||
              result_or.value().rows[0].label != expected) {
            anomalies.fetch_add(1);  // torn model produced a wrong answer
          }
        } else if (result_or.status().code() ==
                   StatusCode::kResourceExhausted) {
          shed_count.fetch_add(1);
        } else if (result_or.status().code() !=
                   StatusCode::kDeadlineExceeded) {
          anomalies.fetch_add(1);  // no other failure mode is acceptable
        }
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < 50 && !stop.load(std::memory_order_relaxed); ++i) {
      if (!registry.Insert(trained.Servable("default", i % 2 ? "v2" : "v3"))
               .ok() ||
          !registry.Rollback("default").ok()) {
        anomalies.fetch_add(1);
      }
    }
  });

  // Let traffic and swaps overlap, then pull the plug mid-flight; the
  // submitters keep going briefly so post-shutdown sheds are observed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  executor->Shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& t : submitters) t.join();
  swapper.join();

  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_GT(ok_count.load(), 0u);    // traffic flowed before shutdown...
  EXPECT_GT(shed_count.load(), 0u);  // ...and was shed cleanly after
  executor.reset();  // destructor re-runs Shutdown: must be idempotent

#if TOPKRGS_LOCK_RANK_IS_ON()
  // Balanced checker: nothing above leaked a ranked lock on this thread.
  EXPECT_EQ(lock_rank::HeldCount(), 0);
#endif
}

// -------------------------------------------- in-process service path --

TEST(PredictionServiceTest, InProcessPredictUsesActiveModel) {
  TrainedModel trained = Train(5);
  PredictionService::Options options;
  options.workers = 2;
  PredictionService service(options);
  ASSERT_TRUE(service.registry().Insert(trained.Servable("default", "v1")).ok());

  ParsedPredictRequest request;
  request.rows.push_back(trained.TestRow(0));
  auto response_or = service.Predict(request);
  ASSERT_TRUE(response_or.ok()) << response_or.status().ToString();
  ASSERT_EQ(response_or.value().rows.size(), 1u);

  request.model = "missing";
  EXPECT_EQ(service.Predict(request).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace topkrgs
