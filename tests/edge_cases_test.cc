// Edge cases across modules: degenerate datasets, deadline behaviour of the
// column miners, string rendering, and numeric extremes.

#include <gtest/gtest.h>

#include "core/rule.h"
#include "mine/charm.h"
#include "mine/closet.h"
#include "mine/hybrid_miner.h"
#include "mine/naive_miner.h"
#include "mine/topk_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

TEST(EdgeCaseTest, RuleToStringRendersItemsAndStats) {
  Rule r;
  r.antecedent = Bitset(8);
  r.antecedent.Set(2);
  r.antecedent.Set(5);
  r.consequent = 1;
  r.support = 3;
  r.antecedent_support = 4;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("i2"), std::string::npos);
  EXPECT_NE(s.find("i5"), std::string::npos);
  EXPECT_NE(s.find("sup=3"), std::string::npos);
  EXPECT_NE(s.find("0.750"), std::string::npos);
}

TEST(EdgeCaseTest, CompareSignificanceAtExtremes) {
  // Products reach (2^32-1)^2 and must not overflow uint64.
  EXPECT_EQ(CompareSignificance(UINT32_MAX, UINT32_MAX, UINT32_MAX,
                                UINT32_MAX),
            0);
  EXPECT_GT(CompareSignificance(UINT32_MAX, UINT32_MAX, UINT32_MAX - 1,
                                UINT32_MAX),
            0);
  EXPECT_GT(CompareSignificance(1, 1, UINT32_MAX - 1, UINT32_MAX), 0);
}

TEST(EdgeCaseTest, MinerOnSingleClassDataset) {
  // All rows share one class: mining the absent class yields nothing and
  // must not crash; mining the present class works normally.
  DiscreteDataset d(4, {{0, 1}, {0, 2}, {0, 3}}, {1, 1, 1});
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support = 1;
  const TopkResult present = MineTopkRGS(d, 1, opt);
  EXPECT_FALSE(present.per_row[0].empty());
  const TopkResult absent = MineTopkRGS(d, 0, opt);
  for (const auto& list : absent.per_row) EXPECT_TRUE(list.empty());
}

TEST(EdgeCaseTest, MinerOnRowsWithNoItems) {
  DiscreteDataset d(3, {{}, {0}, {}}, {1, 1, 0});
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 1;
  const TopkResult result = MineTopkRGS(d, 1, opt);
  // The empty row cannot be covered by any (non-empty) rule.
  EXPECT_TRUE(result.per_row[0].empty());
  ASSERT_EQ(result.per_row[1].size(), 1u);
  EXPECT_EQ(result.per_row[1][0]->support, 1u);
}

TEST(EdgeCaseTest, HybridOnRowsWithNoItems) {
  DiscreteDataset d(3, {{}, {0}, {}}, {1, 1, 0});
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 1;
  const TopkResult result = MineTopkRGSHybrid(d, 1, opt);
  EXPECT_TRUE(result.per_row[0].empty());
  ASSERT_EQ(result.per_row[1].size(), 1u);
}

TEST(EdgeCaseTest, CharmDeadlineFlagsTimeout) {
  DiscreteDataset d = RandomDataset(101, 14, 16, 0.6);
  CharmOptions opt;
  opt.min_support = 1;
  opt.deadline = Deadline(1e-9);
  const MiningResult result = MineCharm(d, 1, opt);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(EdgeCaseTest, ClosetDeadlineFlagsTimeout) {
  DiscreteDataset d = RandomDataset(102, 14, 16, 0.6);
  ClosetOptions opt;
  opt.min_support = 1;
  opt.deadline = Deadline(1e-9);
  const MiningResult result = MineCloset(d, 1, opt);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(EdgeCaseTest, CharmMaxGroupsStopsEarly) {
  DiscreteDataset d = RandomDataset(103, 12, 14, 0.5);
  CharmOptions opt;
  opt.min_support = 1;
  opt.max_groups = 5;
  const MiningResult result = MineCharm(d, 1, opt);
  EXPECT_EQ(result.groups.size(), 5u);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(EdgeCaseTest, DuplicateRowsAreAbsorbedNotDuplicated) {
  // Five identical rows: exactly one rule group exists (the shared items
  // with full support).
  DiscreteDataset d(3, {{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}},
                    {1, 1, 1, 1, 1});
  TopkMinerOptions opt;
  opt.k = 5;
  opt.min_support = 1;
  const TopkResult result = MineTopkRGS(d, 1, opt);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    ASSERT_EQ(result.per_row[r].size(), 1u) << r;
    EXPECT_EQ(result.per_row[r][0]->support, 5u);
    EXPECT_EQ(result.per_row[r][0]->antecedent.Count(), 2u);
  }
}

TEST(EdgeCaseTest, KLargerThanGroupCountReturnsAll) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 50;  // far more than exist
  opt.min_support = 1;
  const TopkResult result = MineTopkRGS(d, 1, opt);
  const auto oracle = NaiveTopkRGS(d, 1, 1, 50);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(result.per_row[r].size(), oracle[r].size()) << r;
  }
}

}  // namespace
}  // namespace topkrgs
