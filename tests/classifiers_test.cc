#include <gtest/gtest.h>

#include "classify/decision_tree.h"
#include "classify/ensemble.h"
#include "classify/evaluator.h"
#include "classify/svm.h"
#include "synth/generator.h"
#include "util/random.h"

namespace topkrgs {
namespace {

/// Linearly separable 2D data: class = (x0 > 5).
ContinuousDataset Separable2d(uint32_t per_class, uint64_t seed) {
  ContinuousDataset d(2);
  Rng rng(seed);
  for (uint32_t i = 0; i < per_class; ++i) {
    d.AddRow({rng.NextGaussian(2.0, 1.0), rng.NextGaussian(0.0, 1.0)}, 0);
    d.AddRow({rng.NextGaussian(8.0, 1.0), rng.NextGaussian(0.0, 1.0)}, 1);
  }
  return d;
}

/// XOR-style data no linear model can fit.
ContinuousDataset XorData(uint32_t per_quadrant, uint64_t seed) {
  ContinuousDataset d(2);
  Rng rng(seed);
  for (uint32_t i = 0; i < per_quadrant; ++i) {
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        const double x = sx * (2.0 + rng.NextDouble());
        const double y = sy * (2.0 + rng.NextDouble());
        d.AddRow({x, y}, (sx * sy > 0) ? 1 : 0);
      }
    }
  }
  return d;
}

double TrainAccuracy(const ContinuousDataset& d,
                     const std::function<ClassLabel(const std::vector<double>&)>&
                         predict) {
  return EvaluateContinuous(d, predict).accuracy();
}

TEST(DecisionTreeTest, FitsSeparableData) {
  ContinuousDataset d = Separable2d(20, 1);
  DecisionTree tree = DecisionTree::Train(d, {}, {});
  EXPECT_DOUBLE_EQ(
      TrainAccuracy(d, [&](const auto& x) { return tree.Predict(x); }), 1.0);
  EXPECT_GE(tree.num_leaves(), 2u);
}

TEST(DecisionTreeTest, FitsXor) {
  ContinuousDataset d = XorData(10, 2);
  DecisionTree tree = DecisionTree::Train(d, {}, {});
  EXPECT_DOUBLE_EQ(
      TrainAccuracy(d, [&](const auto& x) { return tree.Predict(x); }), 1.0);
}

TEST(DecisionTreeTest, MaxDepthOneIsAStump) {
  ContinuousDataset d = XorData(10, 3);
  DecisionTree::Options opt;
  opt.max_depth = 1;
  opt.prune = false;
  DecisionTree stump = DecisionTree::Train(d, {}, opt);
  EXPECT_LE(stump.num_leaves(), 2u);
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  ContinuousDataset d(2);
  for (int i = 0; i < 6; ++i) d.AddRow({1.0 * i, 2.0}, 0);
  DecisionTree tree = DecisionTree::Train(d, {}, {});
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(DecisionTreeTest, WeightsShiftTheModel) {
  // Class 0 everywhere except one heavily weighted class-1 point; with a
  // dominant weight, the tree must predict class 1 around that point.
  ContinuousDataset d(1);
  d.AddRow({1.0}, 0);
  d.AddRow({2.0}, 0);
  d.AddRow({3.0}, 0);
  d.AddRow({10.0}, 1);
  std::vector<double> weights = {1, 1, 1, 100};
  DecisionTree::Options opt;
  opt.min_split_weight = 2.0;
  opt.prune = false;
  DecisionTree tree = DecisionTree::Train(d, weights, opt);
  EXPECT_EQ(tree.Predict({10.0}), 1);
  EXPECT_EQ(tree.Predict({1.0}), 0);
}

TEST(DecisionTreeTest, PredictDistributionSumsToOne) {
  ContinuousDataset d = Separable2d(10, 4);
  DecisionTree tree = DecisionTree::Train(d, {}, {});
  const auto dist = tree.PredictDistribution({5.0, 0.0});
  double sum = 0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BaggingTest, FitsSeparableData) {
  ContinuousDataset d = Separable2d(15, 5);
  BaggingClassifier::Options opt;
  opt.num_trees = 7;
  BaggingClassifier clf = BaggingClassifier::Train(d, opt);
  EXPECT_EQ(clf.num_trees(), 7u);
  EXPECT_GE(TrainAccuracy(d, [&](const auto& x) { return clf.Predict(x); }),
            0.95);
}

TEST(AdaBoostTest, FitsXor) {
  ContinuousDataset d = XorData(8, 6);
  AdaBoostClassifier::Options opt;
  opt.num_rounds = 10;
  AdaBoostClassifier clf = AdaBoostClassifier::Train(d, opt);
  EXPECT_GE(clf.num_rounds_used(), 1u);
  EXPECT_GE(TrainAccuracy(d, [&](const auto& x) { return clf.Predict(x); }),
            0.95);
}

TEST(AdaBoostTest, StumpsImproveWithRounds) {
  // Diagonal boundary x0 + x1 > 9 on a grid: one axis-aligned stump is a
  // weak learner here, and boosting many stumps approximates the diagonal.
  ContinuousDataset d(2);
  for (int x0 = 0; x0 < 10; ++x0) {
    for (int x1 = 0; x1 < 10; ++x1) {
      d.AddRow({static_cast<double>(x0), static_cast<double>(x1)},
               x0 + x1 > 9 ? 1 : 0);
    }
  }
  AdaBoostClassifier::Options one;
  one.num_rounds = 1;
  one.tree.max_depth = 1;
  one.tree.prune = false;
  AdaBoostClassifier::Options many = one;
  many.num_rounds = 80;
  const double acc1 = TrainAccuracy(d, [clf = AdaBoostClassifier::Train(d, one)](
                                           const auto& x) {
    return clf.Predict(x);
  });
  const double acc2 = TrainAccuracy(
      d, [clf = AdaBoostClassifier::Train(d, many)](const auto& x) {
        return clf.Predict(x);
      });
  EXPECT_GE(acc2, acc1);
  EXPECT_GT(acc2, 0.9);
  EXPECT_LT(acc1, 1.0);  // a single stump cannot draw a diagonal
}

TEST(SvmTest, LinearKernelFitsSeparableData) {
  ContinuousDataset d = Separable2d(15, 8);
  SvmClassifier::Options opt;
  SvmClassifier clf = SvmClassifier::Train(d, opt);
  EXPECT_GT(clf.num_support_vectors(), 0u);
  EXPECT_GE(TrainAccuracy(d, [&](const auto& x) { return clf.Predict(x); }),
            0.95);
}

TEST(SvmTest, PolynomialKernelFitsXor) {
  ContinuousDataset d = XorData(8, 9);
  SvmClassifier::Options lin;
  SvmClassifier::Options poly;
  poly.kernel = SvmClassifier::Kernel::kPolynomial;
  poly.poly_degree = 2;
  const double lin_acc = TrainAccuracy(
      d, [clf = SvmClassifier::Train(d, lin)](const auto& x) {
        return clf.Predict(x);
      });
  const double poly_acc = TrainAccuracy(
      d, [clf = SvmClassifier::Train(d, poly)](const auto& x) {
        return clf.Predict(x);
      });
  EXPECT_GE(poly_acc, 0.9);
  EXPECT_GT(poly_acc, lin_acc);
}

TEST(SvmTest, DecisionValueSignMatchesPrediction) {
  ContinuousDataset d = Separable2d(10, 10);
  SvmClassifier clf = SvmClassifier::Train(d, {});
  for (double x0 : {0.0, 4.0, 10.0}) {
    const std::vector<double> x = {x0, 0.0};
    EXPECT_EQ(clf.Predict(x), clf.DecisionValue(x) >= 0 ? 1 : 0);
  }
}

TEST(SvmTest, HighDimensionalMicroarrayShape) {
  // Few rows, many features — the regime the paper's comparators run in.
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(11));
  SvmClassifier clf = SvmClassifier::Train(data.train, {});
  const double train_acc = TrainAccuracy(
      data.train, [&](const auto& x) { return clf.Predict(x); });
  EXPECT_GE(train_acc, 0.9);
}

}  // namespace
}  // namespace topkrgs
