#include "mine/topk_miner.h"

#include <gtest/gtest.h>

#include "mine/miner_common.h"
#include "mine/naive_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;
using testing_util::SignificanceSeq;
using testing_util::SignificanceSeqValues;

Bitset NamedItems(const DiscreteDataset& d, const std::string& names) {
  Bitset b(d.num_items());
  for (char c : names) b.Set(RunningExampleItem(c));
  return b;
}

TEST(TopkMinerTest, RunningExampleTop1ClassC) {
  // Example 1.1 / 3.1: minsup = 2, k = 1, consequent C.
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 1, opt);

  // r1 and r2: {abc -> C}, confidence 100%, support 2.
  for (RowId r : {0u, 1u}) {
    ASSERT_EQ(result.per_row[r].size(), 1u) << r;
    const RuleGroup& g = *result.per_row[r][0];
    EXPECT_EQ(g.antecedent, NamedItems(d, "abc"));
    EXPECT_EQ(g.support, 2u);
    EXPECT_EQ(g.antecedent_support, 2u);
  }
  // r3: the paper's Example 1.1 names {cde -> C} (confidence 66.7%), but by
  // its own Definition 2.2 the rule group {c -> C} (rows {1,2,3,4},
  // confidence 75%, support 3) covers r3 and is strictly more significant.
  // The exhaustive oracle (NaiveTopkRGS) agrees; we follow the definition.
  ASSERT_EQ(result.per_row[2].size(), 1u);
  const RuleGroup& g3 = *result.per_row[2][0];
  EXPECT_EQ(g3.antecedent, NamedItems(d, "c"));
  EXPECT_EQ(g3.support, 3u);
  EXPECT_EQ(g3.antecedent_support, 4u);
  // Rows of the other class have no lists.
  EXPECT_TRUE(result.per_row[3].empty());
  EXPECT_TRUE(result.per_row[4].empty());
}

TEST(TopkMinerTest, RunningExampleTop1ClassNotC) {
  // Example 1.1: top-1 for r4, r5 is {fge -> ¬C}, confidence 66.7%, sup 2.
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 0, opt);
  for (RowId r : {3u, 4u}) {
    ASSERT_EQ(result.per_row[r].size(), 1u) << r;
    const RuleGroup& g = *result.per_row[r][0];
    EXPECT_EQ(g.antecedent, NamedItems(d, "efg"));
    EXPECT_EQ(g.support, 2u);
    EXPECT_EQ(g.antecedent_support, 3u);
  }
}

TEST(TopkMinerTest, BothBackendsAgreeOnRunningExample) {
  DiscreteDataset d = MakeRunningExampleDataset();
  for (uint32_t k : {1u, 2u, 3u}) {
    TopkMinerOptions tree_opt;
    tree_opt.k = k;
    tree_opt.min_support = 1;
    TopkMinerOptions bit_opt = tree_opt;
    bit_opt.backend = TopkMinerOptions::Backend::kBitset;
    TopkResult a = MineTopkRGS(d, 1, tree_opt);
    TopkResult b = MineTopkRGS(d, 1, bit_opt);
    for (RowId r = 0; r < d.num_rows(); ++r) {
      EXPECT_EQ(SignificanceSeq(a.per_row[r]), SignificanceSeq(b.per_row[r]))
          << "k=" << k << " row=" << r;
    }
  }
}

/// Validates every invariant a top-k result must satisfy against the data.
void ValidateResult(const DiscreteDataset& d, ClassLabel cls, uint32_t minsup,
                    uint32_t k, const TopkResult& result) {
  const Bitset frequent = FrequentItems(d, cls, minsup);
  const Bitset class_rows = d.ClassRowset(cls);
  ASSERT_EQ(result.per_row.size(), d.num_rows());
  for (RowId r = 0; r < d.num_rows(); ++r) {
    const auto& list = result.per_row[r];
    if (d.label(r) != cls) {
      EXPECT_TRUE(list.empty());
      continue;
    }
    EXPECT_LE(list.size(), k);
    for (size_t i = 0; i < list.size(); ++i) {
      const RuleGroup& g = *list[i];
      // Covers the row and meets minsup.
      EXPECT_TRUE(g.row_support.Test(r));
      EXPECT_TRUE(g.antecedent.IsSubsetOf(d.row_bitset(r)));
      EXPECT_GE(g.support, minsup);
      // Counts are consistent.
      EXPECT_EQ(g.antecedent_support, g.row_support.Count());
      EXPECT_EQ(g.support, g.row_support.IntersectCount(class_rows));
      // The group is closed: antecedent is exactly I(R) over frequent
      // items, and R is exactly R(antecedent).
      EXPECT_EQ(d.ItemSupportSet(g.antecedent), g.row_support);
      Bitset closure = d.RowSupportSet(g.row_support);
      closure.IntersectWith(frequent);
      EXPECT_EQ(g.antecedent, closure);
      // List is ordered by non-increasing significance, without duplicates.
      if (i > 0) {
        const RuleGroup& prev = *list[i - 1];
        EXPECT_GE(CompareSignificance(prev.support, prev.antecedent_support,
                                      g.support, g.antecedent_support),
                  0);
        for (size_t j = 0; j < i; ++j) {
          EXPECT_FALSE(list[j]->row_support == g.row_support)
              << "duplicate group in list";
        }
      }
    }
  }
}

class TopkOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>> {};

TEST_P(TopkOracleTest, MatchesNaiveEnumeration) {
  const auto [seed, k, minsup] = GetParam();
  DiscreteDataset d =
      RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.35 + 0.03 * (seed % 5));
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    const auto oracle = NaiveTopkRGS(d, cls, minsup, k);
    for (auto backend : {TopkMinerOptions::Backend::kPrefixTree,
                         TopkMinerOptions::Backend::kBitset,
                         TopkMinerOptions::Backend::kVector}) {
      TopkMinerOptions opt;
      opt.k = k;
      opt.min_support = minsup;
      opt.backend = backend;
      TopkResult result = MineTopkRGS(d, cls, opt);
      ValidateResult(d, cls, minsup, k, result);
      for (RowId r = 0; r < d.num_rows(); ++r) {
        ASSERT_EQ(SignificanceSeq(result.per_row[r]),
                  SignificanceSeqValues(oracle[r]))
            << "seed=" << seed << " k=" << k << " minsup=" << minsup
            << " cls=" << int(cls) << " row=" << r
            << " backend=" << int(backend);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopkOracleTest,
    ::testing::Combine(::testing::Range(0, 12),        // seeds
                       ::testing::Values(1u, 2u, 4u),  // k
                       ::testing::Values(1u, 2u, 3u)   // minsup
                       ));

class TopkAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(TopkAblationTest, PruningTogglesPreserveResults) {
  const int seed = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 9, 11, 0.4);
  TopkMinerOptions base;
  base.k = 3;
  base.min_support = 2;
  const TopkResult expected = MineTopkRGS(d, 1, base);

  std::vector<TopkMinerOptions> variants;
  {
    TopkMinerOptions o = base;
    o.use_topk_pruning = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.use_bound_pruning = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.use_backward_pruning = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.seed_single_items = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.dynamic_min_support = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.use_topk_pruning = o.use_bound_pruning = o.use_backward_pruning = false;
    o.seed_single_items = o.dynamic_min_support = false;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.row_order = TopkMinerOptions::RowOrder::kClassDominant;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.row_order = TopkMinerOptions::RowOrder::kNatural;
    variants.push_back(o);
  }
  {
    TopkMinerOptions o = base;
    o.row_order = TopkMinerOptions::RowOrder::kNatural;
    o.backend = TopkMinerOptions::Backend::kBitset;
    variants.push_back(o);
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    const TopkResult got = MineTopkRGS(d, 1, variants[v]);
    for (RowId r = 0; r < d.num_rows(); ++r) {
      EXPECT_EQ(SignificanceSeq(got.per_row[r]),
                SignificanceSeq(expected.per_row[r]))
          << "variant=" << v << " seed=" << seed << " row=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopkAblationTest, ::testing::Range(0, 10));

TEST(TopkMinerTest, PruningReducesSearchNodes) {
  DiscreteDataset d = RandomDataset(3, 12, 14, 0.5);
  TopkMinerOptions with;
  with.k = 1;
  with.min_support = 2;
  TopkMinerOptions without = with;
  without.use_topk_pruning = false;
  without.seed_single_items = false;
  const auto a = MineTopkRGS(d, 1, with);
  const auto b = MineTopkRGS(d, 1, without);
  EXPECT_LT(a.stats.nodes_visited, b.stats.nodes_visited);
}

TEST(TopkMinerTest, DynamicMinsupNeverDecreases) {
  DiscreteDataset d = RandomDataset(5, 10, 12, 0.5);
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  const TopkResult result = MineTopkRGS(d, 1, opt);
  EXPECT_GE(result.effective_min_support, opt.min_support);
}

TEST(TopkMinerTest, DeadlineSetsTimeoutFlag) {
  DiscreteDataset d = RandomDataset(7, 14, 16, 0.6);
  TopkMinerOptions opt;
  opt.k = 8;
  opt.min_support = 1;
  opt.use_topk_pruning = false;
  opt.seed_single_items = false;
  opt.deadline = Deadline(1e-9);
  const TopkResult result = MineTopkRGS(d, 1, opt);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(TopkMinerTest, DistinctGroupsDeduplicates) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 1, opt);
  // abc (shared by r1, r2) and cde (r3): exactly 2 distinct groups.
  EXPECT_EQ(result.DistinctGroups().size(), 2u);
  EXPECT_EQ(result.GroupsAtRank(1).size(), 2u);
}

TEST(TopkMinerTest, DistinctGroupsHashSaltInvariant) {
  // The dedup collapse must be a function of the data alone, never of the
  // bucketing hash: salting the rowset hash reshuffles every bucket, and
  // the result — content AND order — must not move. This is the
  // regression test behind the determinism lint's no-bucket-order rule
  // (DESIGN.md §12); it fails on any dedup rewrite that lets hash or
  // bucket layout leak into the collapse order.
  DiscreteDataset d = RandomDataset(12, 24, 20, 0.5);
  TopkMinerOptions opt;
  opt.k = 4;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 1, opt);
  const std::vector<RuleGroupPtr> baseline = result.DistinctGroups();
  ASSERT_FALSE(baseline.empty());
  const std::vector<RuleGroupPtr> rank1 = result.GroupsAtRank(1);
  for (uint64_t salt :
       {uint64_t{1}, uint64_t{0x9e3779b97f4a7c15ULL}, uint64_t{0xdeadbeefULL}}) {
    const auto salted = result.DistinctGroups(salt);
    ASSERT_EQ(salted.size(), baseline.size()) << "salt " << salt;
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(salted[i], baseline[i])
          << "salt " << salt << " moved element " << i;
    }
    const auto salted_rank1 = result.GroupsAtRank(1, salt);
    ASSERT_EQ(salted_rank1.size(), rank1.size()) << "salt " << salt;
    for (size_t i = 0; i < rank1.size(); ++i) {
      EXPECT_EQ(salted_rank1[i], rank1[i])
          << "salt " << salt << " moved rank-1 element " << i;
    }
  }
}

TEST(TopkMinerTest, GroupsAtRankBeyondListsIsEmpty) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support = 2;
  TopkResult result = MineTopkRGS(d, 1, opt);
  // No row can have a 3rd group when k = 2.
  EXPECT_TRUE(result.GroupsAtRank(3).empty());
}

TEST(TopkMinerTest, MinsupAboveClassSizeYieldsEmptyLists) {
  DiscreteDataset d = MakeRunningExampleDataset();
  TopkMinerOptions opt;
  opt.k = 1;
  opt.min_support = 10;
  TopkResult result = MineTopkRGS(d, 1, opt);
  for (const auto& list : result.per_row) EXPECT_TRUE(list.empty());
}

TEST(TopkMinerTest, SingleRowDataset) {
  DiscreteDataset d(3, {{0, 1, 2}}, {1});
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support = 1;
  TopkResult result = MineTopkRGS(d, 1, opt);
  ASSERT_EQ(result.per_row[0].size(), 1u);
  EXPECT_EQ(result.per_row[0][0]->antecedent.Count(), 3u);
  EXPECT_EQ(result.per_row[0][0]->support, 1u);
}

TEST(TopkMinerTest, LargerKFindsSupersetOfSmallerK) {
  DiscreteDataset d = RandomDataset(11, 11, 13, 0.45);
  TopkMinerOptions opt1;
  opt1.k = 1;
  opt1.min_support = 1;
  TopkMinerOptions opt4 = opt1;
  opt4.k = 4;
  const TopkResult r1 = MineTopkRGS(d, 1, opt1);
  const TopkResult r4 = MineTopkRGS(d, 1, opt4);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    const auto s1 = SignificanceSeq(r1.per_row[r]);
    const auto s4 = SignificanceSeq(r4.per_row[r]);
    ASSERT_LE(s1.size(), s4.size());
    for (size_t i = 0; i < s1.size(); ++i) {
      EXPECT_EQ(s1[i], s4[i]) << "row " << r << " i " << i;
    }
  }
}

}  // namespace
}  // namespace topkrgs
