#include "classify/cba.h"

#include <gtest/gtest.h>

#include "classify/irg.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

Rule MakeRule(const DiscreteDataset& d, std::initializer_list<uint32_t> items,
              ClassLabel cls, uint32_t sup, uint32_t asup) {
  Rule r;
  r.antecedent = Bitset(d.num_items());
  for (uint32_t i : items) r.antecedent.Set(i);
  r.consequent = cls;
  r.support = sup;
  r.antecedent_support = asup;
  return r;
}

TEST(SortRulesTest, PrecedenceOrder) {
  DiscreteDataset d(6, {{0}}, {0});
  std::vector<Rule> rules;
  rules.push_back(MakeRule(d, {0, 1}, 0, 2, 4));  // conf .5
  rules.push_back(MakeRule(d, {2}, 1, 3, 3));     // conf 1, sup 3
  rules.push_back(MakeRule(d, {3}, 1, 5, 5));     // conf 1, sup 5
  rules.push_back(MakeRule(d, {4, 5}, 0, 3, 3));  // conf 1, sup 3, longer? same len as {2}? no: 2 items
  SortRulesByPrecedence(&rules);
  // conf 1 sup 5 first; then conf 1 sup 3 (shorter antecedent {2} before
  // {4,5}); then conf .5.
  EXPECT_TRUE(rules[0].antecedent.Test(3));
  EXPECT_TRUE(rules[1].antecedent.Test(2));
  EXPECT_TRUE(rules[2].antecedent.Test(4));
  EXPECT_TRUE(rules[3].antecedent.Test(0));
}

TEST(SortRulesTest, TieBreakByDiscoveryOrder) {
  DiscreteDataset d(4, {{0}}, {0});
  std::vector<Rule> rules;
  rules.push_back(MakeRule(d, {0}, 0, 2, 2));
  rules.push_back(MakeRule(d, {1}, 1, 2, 2));
  SortRulesByPrecedence(&rules);
  EXPECT_TRUE(rules[0].antecedent.Test(0));  // earlier discovery first
}

TEST(CbaClassifierTest, SeparableDataIsLearnedPerfectly) {
  // Class 1 rows share item 0; class 0 rows share item 1.
  DiscreteDataset d(4, {{0, 2}, {0, 3}, {0, 2, 3}, {1, 2}, {1, 3}, {1, 2, 3}},
                    {1, 1, 1, 0, 0, 0});
  std::vector<Rule> rules;
  rules.push_back(MakeRule(d, {0}, 1, 3, 3));
  rules.push_back(MakeRule(d, {1}, 0, 3, 3));
  CbaClassifier clf = CbaClassifier::TrainFromRules(d, rules);
  // CBA cuts the rule list at the earliest prefix with minimal training
  // error; with a perfect first rule plus a matching default class, rows of
  // the default's class may legitimately be handled by the default.
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(clf.Predict(d.row_bitset(r)), d.label(r));
  }
  ASSERT_FALSE(clf.rules().empty());
  EXPECT_TRUE(clf.rules()[0].antecedent.Test(0));
}

TEST(CbaClassifierTest, DefaultClassIsMajorityOfUncovered) {
  // Only class-1 rows are covered by the single rule; the default must be
  // the majority among the remaining (class 0).
  DiscreteDataset d(3, {{0}, {0}, {1}, {1}, {1, 2}}, {1, 1, 0, 0, 0});
  std::vector<Rule> rules;
  rules.push_back(MakeRule(d, {0}, 1, 2, 2));
  CbaClassifier clf = CbaClassifier::TrainFromRules(d, rules);
  EXPECT_EQ(clf.default_class(), 0);
  Bitset unseen(3);
  bool used_default = false;
  EXPECT_EQ(clf.Predict(unseen, &used_default), 0);
  EXPECT_TRUE(used_default);
}

TEST(CbaClassifierTest, ErrorCutDropsHarmfulRules) {
  // A bad low-confidence rule sorted last should be cut away when it only
  // adds errors.
  DiscreteDataset d(4, {{0}, {0}, {1}, {1}}, {1, 1, 0, 0});
  std::vector<Rule> rules;
  rules.push_back(MakeRule(d, {0}, 1, 2, 2));  // perfect for class 1
  rules.push_back(MakeRule(d, {1}, 0, 2, 2));  // perfect for class 0
  rules.push_back(MakeRule(d, {1}, 1, 1, 2));  // conf 0.5 wrong rule
  CbaClassifier clf = CbaClassifier::TrainFromRules(d, rules);
  // The wrong rule never correctly classifies anything remaining (rows with
  // item 1 are removed by the second rule), so it is never selected; the
  // error cut may trim further, but training predictions stay perfect.
  EXPECT_LE(clf.rules().size(), 2u);
  for (const Rule& r : clf.rules()) {
    EXPECT_FALSE(r.antecedent.Test(1) && r.consequent == 1);
  }
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(clf.Predict(d.row_bitset(r)), d.label(r));
  }
}

TEST(CbaClassifierTest, EmptyRulesFallBackToMajority) {
  DiscreteDataset d(2, {{0}, {0}, {1}}, {1, 1, 0});
  CbaClassifier clf = CbaClassifier::TrainFromRules(d, {});
  EXPECT_EQ(clf.default_class(), 1);
  bool used_default = false;
  EXPECT_EQ(clf.Predict(d.row_bitset(2), &used_default), 1);
  EXPECT_TRUE(used_default);
}

TEST(TrainCbaTest, LearnsSeparableSyntheticData) {
  // Class-separable discrete data: items 0/1 mark the classes, plus noise.
  Rng rng(3);
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 16; ++i) {
    std::vector<ItemId> row = {static_cast<ItemId>(i % 2 == 0 ? 0 : 1)};
    for (ItemId noise = 2; noise < 8; ++noise) {
      if (rng.NextBool(0.4)) row.push_back(noise);
    }
    rows.push_back(row);
    labels.push_back(i % 2 == 0 ? 1 : 0);
  }
  DiscreteDataset d(8, std::move(rows), std::move(labels));
  CbaOptions opt;
  opt.min_support_frac = 0.7;
  CbaClassifier clf = TrainCba(d, opt);
  uint32_t correct = 0;
  for (RowId r = 0; r < d.num_rows(); ++r) {
    correct += clf.Predict(d.row_bitset(r)) == d.label(r);
  }
  EXPECT_EQ(correct, d.num_rows());
}

TEST(TrainIrgTest, UpperBoundRulesClassifySeparableData) {
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 0) {
      rows.push_back({0, 2});
      labels.push_back(1);
    } else {
      rows.push_back({1, 3});
      labels.push_back(0);
    }
  }
  DiscreteDataset d(4, std::move(rows), std::move(labels));
  IrgOptions opt;
  CbaClassifier clf = TrainIrg(d, opt);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(clf.Predict(d.row_bitset(r)), d.label(r));
  }
}

TEST(TrainCbaTest, RandomDataDoesNotCrashAndCoversTraining) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiscreteDataset d = RandomDataset(seed, 12, 10, 0.4);
    CbaOptions opt;
    opt.min_support_frac = 0.3;
    CbaClassifier clf = TrainCba(d, opt);
    // Training accuracy must beat always-guessing-the-minority.
    uint32_t correct = 0;
    for (RowId r = 0; r < d.num_rows(); ++r) {
      correct += clf.Predict(d.row_bitset(r)) == d.label(r);
    }
    const auto counts = d.ClassCounts();
    const uint32_t majority = std::max(counts[0], counts[1]);
    EXPECT_GE(correct, majority) << seed;
  }
}

}  // namespace
}  // namespace topkrgs
