// Replays the committed fuzz corpus through the ingestion parsers as plain
// unit tests, so CI exercises every known crasher and malformed input
// without needing the libFuzzer toolchain. Two contracts:
//   * every file under tests/fuzz/regressions/<format>/ must parse to a
//     non-OK Status — no abort, no sanitizer report, no silent acceptance;
//   * every file under tests/fuzz/seeds/<format>/ must parse OK, keeping
//     the seed corpus meaningful as fuzzing starting points.
// TOPKRGS_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "classify/model_io.h"
#include "core/dataset.h"
#include "serve/service.h"
#include "util/io.h"

namespace topkrgs {
namespace {

namespace fs = std::filesystem;

/// Parser adapter: returns the Status a corpus file parses to.
using ParseFn = std::function<Status(const std::vector<std::string>&)>;

struct FormatCase {
  const char* corpus_name;
  ParseFn parse;
};

std::vector<FormatCase> AllFormats() {
  return {
      {"discretization",
       [](const std::vector<std::string>& lines) {
         return ParseDiscretizationModel(lines).status();
       }},
      {"cba_model",
       [](const std::vector<std::string>& lines) {
         return ParseCbaModel(lines).status();
       }},
      {"rcbt_model",
       [](const std::vector<std::string>& lines) {
         return ParseRcbtModel(lines).status();
       }},
      {"tsv_dataset",
       [](const std::vector<std::string>& lines) {
         return ContinuousDataset::ParseTsv(lines).status();
       }},
      {"item_dataset",
       [](const std::vector<std::string>& lines) {
         return DiscreteDataset::ParseItemData(lines).status();
       }},
  };
}

/// Formats whose parser consumes raw bytes rather than lines (the serving
/// JSON boundary: a NUL or an unterminated line is meaningful input there).
using RawParseFn = std::function<Status(const std::string&)>;

struct RawFormatCase {
  const char* corpus_name;
  RawParseFn parse;
};

std::vector<RawFormatCase> AllRawFormats() {
  return {
      {"predict_request",
       [](const std::string& bytes) {
         return ParsePredictRequest(bytes).status();
       }},
  };
}

std::string ReadBytes(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<fs::path> CorpusFiles(const std::string& kind,
                                  const std::string& corpus_name) {
  const fs::path dir =
      fs::path(TOPKRGS_FUZZ_CORPUS_DIR) / kind / corpus_name;
  std::vector<fs::path> files;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, EveryRegressionInputIsRejected) {
  size_t replayed = 0;
  for (const FormatCase& format : AllFormats()) {
    for (const fs::path& file : CorpusFiles("regressions", format.corpus_name)) {
      auto lines_or = ReadLines(file.string());
      ASSERT_TRUE(lines_or.ok()) << file;
      const Status status = format.parse(lines_or.value());
      EXPECT_FALSE(status.ok())
          << file << " parsed OK but is a malformed-input regression";
      ++replayed;
    }
  }
  for (const RawFormatCase& format : AllRawFormats()) {
    for (const fs::path& file : CorpusFiles("regressions", format.corpus_name)) {
      const Status status = format.parse(ReadBytes(file));
      EXPECT_FALSE(status.ok())
          << file << " parsed OK but is a malformed-input regression";
      ++replayed;
    }
  }
  // Guard against the corpus silently going missing (e.g. a bad path after
  // a directory rename): an empty replay proves nothing.
  EXPECT_GE(replayed, 30u) << "regression corpus appears to be missing";
}

TEST(CorpusReplayTest, EverySeedInputParses) {
  size_t replayed = 0;
  for (const FormatCase& format : AllFormats()) {
    for (const fs::path& file : CorpusFiles("seeds", format.corpus_name)) {
      auto lines_or = ReadLines(file.string());
      ASSERT_TRUE(lines_or.ok()) << file;
      const Status status = format.parse(lines_or.value());
      EXPECT_TRUE(status.ok())
          << file << " failed to parse: " << status.ToString();
      ++replayed;
    }
  }
  for (const RawFormatCase& format : AllRawFormats()) {
    for (const fs::path& file : CorpusFiles("seeds", format.corpus_name)) {
      const Status status = format.parse(ReadBytes(file));
      EXPECT_TRUE(status.ok())
          << file << " failed to parse: " << status.ToString();
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 5u) << "seed corpus appears to be missing";
}

/// The malformed corpus must fail for the *right* reason: every regression
/// Status is InvalidArgument (bad content), never IOError (bad test setup).
TEST(CorpusReplayTest, RegressionsFailAsInvalidArgument) {
  for (const FormatCase& format : AllFormats()) {
    for (const fs::path& file : CorpusFiles("regressions", format.corpus_name)) {
      auto lines_or = ReadLines(file.string());
      ASSERT_TRUE(lines_or.ok()) << file;
      const Status status = format.parse(lines_or.value());
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << file << ": " << status.ToString();
    }
  }
  for (const RawFormatCase& format : AllRawFormats()) {
    for (const fs::path& file : CorpusFiles("regressions", format.corpus_name)) {
      const Status status = format.parse(ReadBytes(file));
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << file << ": " << status.ToString();
    }
  }
}

}  // namespace
}  // namespace topkrgs
