// End-to-end coverage of the HTTP front end: the request parser's framing
// rules, and a real PredictionService on an ephemeral port exercised
// through actual sockets — load a model over the wire, predict, compare
// against the batch CLI path, scrape /metrics.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "classify/evaluator.h"
#include "classify/model_io.h"
#include "classify/rcbt.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "util/socket.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

// ------------------------------------------------- ParseHttpRequest --

TEST(HttpParseTest, ParsesPostWithBody) {
  const std::string wire =
      "POST /v1/predict?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "abcdEXTRA";
  size_t consumed = 0;
  auto request_or = ParseHttpRequest(wire, &consumed);
  ASSERT_TRUE(request_or.ok()) << request_or.status().ToString();
  const HttpRequest& request = request_or.value();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/v1/predict");
  EXPECT_EQ(request.query, "x=1");
  EXPECT_EQ(request.body, "abcd");
  EXPECT_EQ(consumed, wire.size() - 5);  // EXTRA not consumed
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("content-type"), "application/json");
}

TEST(HttpParseTest, IncompleteIsNotFoundNotError) {
  size_t consumed = 0;
  // Headers not terminated yet: the connection should read more bytes.
  auto partial_or = ParseHttpRequest("GET /x HTTP/1.1\r\nHost: a\r\n", &consumed);
  ASSERT_FALSE(partial_or.ok());
  EXPECT_EQ(partial_or.status().code(), StatusCode::kNotFound);
  // Body shorter than Content-Length: same.
  auto body_or = ParseHttpRequest(
      "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", &consumed);
  ASSERT_FALSE(body_or.ok());
  EXPECT_EQ(body_or.status().code(), StatusCode::kNotFound);
}

TEST(HttpParseTest, FatallyMalformedIsInvalidArgument) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",
      "GET /x HTTP/2.0\r\n\r\n",
      "GET /x HTTP/1.1\r\nContent-Length: huge\r\n\r\n",
      "GET /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      "GET  HTTP/1.1\r\n\r\n",
  };
  for (const char* wire : bad) {
    size_t consumed = 0;
    auto request_or = ParseHttpRequest(wire, &consumed);
    ASSERT_FALSE(request_or.ok()) << wire;
    EXPECT_EQ(request_or.status().code(), StatusCode::kInvalidArgument) << wire;
  }
}

// --------------------------------------------------- socket client --

struct HttpReply {
  int status_code = 0;
  std::string body;
};

// One-shot HTTP client matching the server's one-request-per-connection
// contract: connect, send, read to EOF, split the reply.
HttpReply Fetch(uint16_t port, const std::string& method,
                const std::string& path, const std::string& body = "") {
  HttpReply reply;
  auto fd_or = ConnectTcp(port);
  EXPECT_TRUE(fd_or.ok()) << fd_or.status().ToString();
  if (!fd_or.ok()) return reply;
  const int fd = fd_or.value();
  std::string wire = method + " " + path + " HTTP/1.1\r\nHost: l\r\n" +
                     "Content-Length: " + std::to_string(body.size()) +
                     "\r\n\r\n" + body;
  EXPECT_TRUE(SendAll(fd, wire).ok());
  std::string raw;
  EXPECT_TRUE(RecvAll(fd, &raw).ok());
  CloseSocket(fd);
  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (raw.size() > 12) reply.status_code = std::atoi(raw.c_str() + 9);
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) reply.body = raw.substr(split + 4);
  return reply;
}

// --------------------------------------------------- end to end --

class ServeHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateMicroarray(DatasetProfile::Tiny(5));
    pipeline_ = PreparePipeline(data_.train, data_.test);
    RcbtOptions opt;
    opt.k = 2;
    opt.nl = 3;
    opt.item_scores = pipeline_.item_scores;
    rcbt_ = RcbtClassifier::Train(pipeline_.train, opt);

    model_path_ = TempPath("model.txt");
    disc_path_ = TempPath("disc.txt");
    ASSERT_TRUE(SaveRcbtClassifier(rcbt_, pipeline_.discretization.num_items(),
                                   model_path_)
                    .ok());
    ASSERT_TRUE(SaveDiscretization(pipeline_.discretization, disc_path_).ok());

    PredictionService::Options options;
    options.workers = 2;
    service_ = std::make_unique<PredictionService>(options);
    ASSERT_TRUE(service_->Start(0).ok());  // --port 0 semantics
    ASSERT_NE(service_->port(), 0);
  }

  void TearDown() override {
    service_->Stop();
    std::remove(model_path_.c_str());
    std::remove(disc_path_.c_str());
  }

  std::string RowJson(RowId r) const {
    std::string out = "[";
    for (GeneId g = 0; g < data_.test.num_genes(); ++g) {
      if (g > 0) out.push_back(',');
      JsonValue v = JsonValue::Number(data_.test.value(r, g));
      out += v.Dump();
    }
    return out + "]";
  }

  // Loads the saved model over the wire and returns the reply.
  HttpReply LoadOverHttp(const std::string& name, const std::string& version) {
    JsonValue body = JsonValue::Object();
    body.Set("kind", JsonValue::String("rcbt"));
    body.Set("model_path", JsonValue::String(model_path_));
    body.Set("discretization_path", JsonValue::String(disc_path_));
    return Fetch(service_->port(), "POST",
                 "/v1/models/" + name + "/" + version + ":load", body.Dump());
  }

  GeneratedData data_;
  Pipeline pipeline_;
  RcbtClassifier rcbt_;
  std::string model_path_;
  std::string disc_path_;
  std::unique_ptr<PredictionService> service_;
};

TEST_F(ServeHttpTest, HealthzAndEmptyModelList) {
  EXPECT_EQ(Fetch(service_->port(), "GET", "/healthz").status_code, 200);
  EXPECT_EQ(Fetch(service_->port(), "GET", "/healthz").body, "ok\n");
  const HttpReply models = Fetch(service_->port(), "GET", "/v1/models");
  EXPECT_EQ(models.status_code, 200);
  EXPECT_EQ(models.body, R"({"models":[]})");
  EXPECT_EQ(Fetch(service_->port(), "GET", "/nope").status_code, 404);
  EXPECT_EQ(Fetch(service_->port(), "DELETE", "/healthz").status_code, 405);
}

TEST_F(ServeHttpTest, LoadPredictMatchesCliPath) {
  ASSERT_EQ(LoadOverHttp("default", "v1").status_code, 200);

  // Predict every test row over the wire; the reply must agree exactly
  // with the batch CLI path (Discretization::Apply + RCBT Predict).
  const DiscreteDataset discrete =
      pipeline_.discretization.Apply(data_.test);
  std::string rows = "[";
  for (RowId r = 0; r < data_.test.num_rows(); ++r) {
    if (r > 0) rows.push_back(',');
    rows += RowJson(r);
  }
  rows += "]";
  const HttpReply reply = Fetch(service_->port(), "POST", "/v1/predict",
                                std::string("{\"rows\":") + rows + "}");
  ASSERT_EQ(reply.status_code, 200) << reply.body;

  auto doc_or = JsonValue::Parse(reply.body);
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const JsonValue* predictions = doc_or.value().Find("predictions");
  ASSERT_NE(predictions, nullptr);
  ASSERT_EQ(predictions->array().size(), data_.test.num_rows());
  for (RowId r = 0; r < data_.test.num_rows(); ++r) {
    const auto expected = rcbt_.Predict(discrete.row_bitset(r));
    const JsonValue& got = predictions->array()[r];
    ASSERT_NE(got.Find("label"), nullptr) << r;
    EXPECT_EQ(static_cast<ClassLabel>(got.Find("label")->number()),
              expected.label)
        << r;
    EXPECT_EQ(got.Find("used_default")->boolean(), expected.used_default) << r;
    ASSERT_EQ(got.Find("scores")->array().size(), expected.scores.size()) << r;
    for (size_t c = 0; c < expected.scores.size(); ++c) {
      EXPECT_DOUBLE_EQ(got.Find("scores")->array()[c].number(),
                       expected.scores[c])
          << r;
    }
    EXPECT_EQ(got.Find("matched_rules")->array().size(),
              expected.matched_rules.size())
        << r;
  }

  // Two identical requests must produce byte-identical replies.
  const HttpReply again = Fetch(service_->port(), "POST", "/v1/predict",
                                std::string("{\"rows\":") + rows + "}");
  EXPECT_EQ(again.body, reply.body);
}

TEST_F(ServeHttpTest, ErrorPathsMapToHttpCodes) {
  // No model loaded yet: predict is 404.
  const std::string one_row = std::string("{\"rows\":[") + RowJson(0) + "]}";
  EXPECT_EQ(Fetch(service_->port(), "POST", "/v1/predict", one_row).status_code,
            404);
  // Malformed JSON: 400.
  EXPECT_EQ(
      Fetch(service_->port(), "POST", "/v1/predict", "{nope").status_code,
      400);
  // Unknown key: 400.
  EXPECT_EQ(Fetch(service_->port(), "POST", "/v1/predict",
                  R"({"rows":[[1]],"bogus":1})")
                .status_code,
            400);
  // Loading from a missing artifact path: the registry reports the failure.
  JsonValue body = JsonValue::Object();
  body.Set("kind", JsonValue::String("rcbt"));
  body.Set("model_path", JsonValue::String(model_path_ + ".missing"));
  body.Set("discretization_path", JsonValue::String(disc_path_));
  const HttpReply bad_load = Fetch(service_->port(), "POST",
                                   "/v1/models/default/v1:load", body.Dump());
  EXPECT_EQ(bad_load.status_code, 500);  // IOError
  // Rollback without history: 409 (FailedPrecondition).
  ASSERT_EQ(LoadOverHttp("default", "v1").status_code, 200);
  EXPECT_EQ(Fetch(service_->port(), "POST", "/v1/models/default:rollback")
                .status_code,
            409);
  // Short row: 400 from the model's validation inside the executor.
  EXPECT_EQ(Fetch(service_->port(), "POST", "/v1/predict",
                  R"({"rows":[[1.0]]})")
                .status_code,
            400);
}

TEST_F(ServeHttpTest, HotSwapAndRollbackOverHttp) {
  ASSERT_EQ(LoadOverHttp("default", "v1").status_code, 200);
  ASSERT_EQ(LoadOverHttp("default", "v2").status_code, 200);
  auto doc_or = JsonValue::Parse(Fetch(service_->port(), "GET", "/v1/models").body);
  ASSERT_TRUE(doc_or.ok());
  const JsonValue* models = doc_or.value().Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->array().size(), 2u);
  for (const JsonValue& entry : models->array()) {
    const bool is_v2 = entry.Find("version")->str() == "v2";
    EXPECT_EQ(entry.Find("active")->boolean(), is_v2);
  }
  ASSERT_EQ(Fetch(service_->port(), "POST", "/v1/models/default:rollback")
                .status_code,
            200);
  doc_or = JsonValue::Parse(Fetch(service_->port(), "GET", "/v1/models").body);
  ASSERT_TRUE(doc_or.ok());
  for (const JsonValue& entry : doc_or.value().Find("models")->array()) {
    const bool is_v1 = entry.Find("version")->str() == "v1";
    EXPECT_EQ(entry.Find("active")->boolean(), is_v1);
  }
}

TEST_F(ServeHttpTest, MetricsScrapeCountsRequests) {
  ASSERT_EQ(LoadOverHttp("default", "v1").status_code, 200);
  const std::string one_row = std::string("{\"rows\":[") + RowJson(0) + "]}";
  ASSERT_EQ(Fetch(service_->port(), "POST", "/v1/predict", one_row).status_code,
            200);
  const HttpReply scrape = Fetch(service_->port(), "GET", "/metrics");
  ASSERT_EQ(scrape.status_code, 200);
  EXPECT_NE(scrape.body.find("topkrgs_requests_total 1"), std::string::npos)
      << scrape.body;
  EXPECT_NE(scrape.body.find("topkrgs_rows_total 1"), std::string::npos);
  EXPECT_NE(scrape.body.find("topkrgs_models_loaded 1"), std::string::npos);
  EXPECT_NE(scrape.body.find("topkrgs_request_latency_seconds_bucket"),
            std::string::npos);
  // A malformed request counts as an error on the next scrape.
  Fetch(service_->port(), "POST", "/v1/predict", "{nope");
  const HttpReply scrape2 = Fetch(service_->port(), "GET", "/metrics");
  EXPECT_NE(scrape2.body.find("topkrgs_errors_total 1"), std::string::npos)
      << scrape2.body;
}

TEST_F(ServeHttpTest, MalformedWireBytesGet400) {
  auto fd_or = ConnectTcp(service_->port());
  ASSERT_TRUE(fd_or.ok());
  ASSERT_TRUE(SendAll(fd_or.value(), "NOT HTTP AT ALL\r\n\r\n").ok());
  std::string raw;
  ASSERT_TRUE(RecvAll(fd_or.value(), &raw).ok());
  CloseSocket(fd_or.value());
  EXPECT_EQ(raw.rfind("HTTP/1.1 400", 0), 0u) << raw;
}

}  // namespace
}  // namespace topkrgs
