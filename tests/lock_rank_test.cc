// Tests of the lock-rank deadlock detector (util/lock_ranks.h, DESIGN.md
// §12): rank-respecting acquisition sequences stay silent, a rank
// inversion (and a same-rank double acquisition) aborts with both stack
// traces, unranked locks are exempt, and the bookkeeping survives
// out-of-order releases and try-locks. The checker is compiled out of
// release builds; every runtime expectation gates on
// TOPKRGS_LOCK_RANK_IS_ON().
#include <gtest/gtest.h>

#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace topkrgs {
namespace {

#if TOPKRGS_LOCK_RANK_IS_ON()

TEST(LockRankTest, IncreasingRanksAreSilent) {
  Mutex outer(lock_rank::kModelRegistry, "outer");
  Mutex inner(lock_rank::kExecutorQueue, "inner");
  Mutex leaf(lock_rank::kMinerTopkStripe, "leaf");
  EXPECT_EQ(lock_rank::HeldCount(), 0);
  outer.Lock();
  inner.Lock();
  leaf.Lock();
  EXPECT_EQ(lock_rank::HeldCount(), 3);
  leaf.Unlock();
  inner.Unlock();
  outer.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankDeathTest, InversionAborts) {
  Mutex registry(lock_rank::kModelRegistry, "ModelRegistry::mu_");
  Mutex queue(lock_rank::kExecutorQueue, "PredictionExecutor::mu_");
  EXPECT_DEATH(
      {
        MutexLock hold_queue(queue);
        MutexLock hold_registry(registry);  // 200 after 300: inversion
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, SameRankAborts) {
  // Two stripe-ranked locks held together have no order between them —
  // the strict-increase rule treats equality as an inversion.
  Mutex stripe_a(lock_rank::kMinerTopkStripe, "stripe_a");
  Mutex stripe_b(lock_rank::kMinerTopkStripe, "stripe_b");
  EXPECT_DEATH(
      {
        MutexLock hold_a(stripe_a);
        MutexLock hold_b(stripe_b);
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, SharedAcquisitionChecksLikeExclusive) {
  SharedMutex registry(lock_rank::kModelRegistry, "registry");
  Mutex conn(lock_rank::kHttpConnTracking, "conn");
  EXPECT_DEATH(
      {
        ReaderMutexLock read(registry);
        MutexLock hold(conn);  // 100 after 200, even under a reader lock
      },
      "lock rank inversion");
}

TEST(LockRankTest, SharedThenHigherExclusiveIsSilent) {
  SharedMutex registry(lock_rank::kModelRegistry, "registry");
  Mutex queue(lock_rank::kExecutorQueue, "queue");
  ReaderMutexLock read(registry);
  MutexLock hold(queue);
  EXPECT_EQ(lock_rank::HeldCount(), 2);
}

TEST(LockRankTest, UnrankedLocksAreExempt) {
  Mutex unranked_a;
  Mutex ranked(lock_rank::kExecutorQueue, "ranked");
  Mutex unranked_b;
  MutexLock a(unranked_a);
  MutexLock r(ranked);
  // An unranked lock under a ranked one does not trip the checker (and is
  // never pushed).
  MutexLock b(unranked_b);
  EXPECT_EQ(lock_rank::HeldCount(), 1);
}

TEST(LockRankTest, OutOfOrderReleaseUnwindsByIdentity) {
  Mutex outer(lock_rank::kModelRegistry, "outer");
  Mutex inner(lock_rank::kExecutorQueue, "inner");
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // release the OLDER lock first
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  // With only rank-300 held, a fresh rank-400 acquisition must pass.
  Mutex leaf(lock_rank::kMinerTopkStripe, "leaf");
  leaf.Lock();
  leaf.Unlock();
  inner.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankTest, TryLockRecordsWithoutChecking) {
  Mutex queue(lock_rank::kExecutorQueue, "queue");
  Mutex registry(lock_rank::kModelRegistry, "registry");
  MutexLock hold(queue);
  // A try-acquisition cannot block, so acquiring DOWN-rank via TryLock is
  // permitted...
  ASSERT_TRUE(registry.TryLock());
  EXPECT_EQ(lock_rank::HeldCount(), 2);
  registry.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 1);
}

TEST(LockRankDeathTest, TryLockStillConstrainsLaterAcquisitions) {
  Mutex queue(lock_rank::kExecutorQueue, "queue");
  Mutex registry(lock_rank::kModelRegistry, "registry");
  EXPECT_DEATH(
      {
        if (queue.TryLock()) {
          MutexLock hold(registry);  // blocking 200 while holding 300
        }
      },
      "lock rank inversion");
}

#else  // !TOPKRGS_LOCK_RANK_IS_ON()

TEST(LockRankTest, CompiledOutInRelease) {
  // Ranked construction must still compile and behave as a plain mutex.
  Mutex ranked(lock_rank::kExecutorQueue, "ranked");
  ranked.Lock();
  ranked.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
  GTEST_SKIP() << "lock-rank checker is compiled out (TOPKRGS_ENABLE_DCHECK "
                  "off); run under the tsan/lint/Debug presets";
}

#endif  // TOPKRGS_LOCK_RANK_IS_ON()

}  // namespace
}  // namespace topkrgs
