#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "util/io.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace topkrgs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, SplitString) {
  auto fields = SplitString("a\tbb\t\tc", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "bb");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(IoTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(IoTest, ParseUint) {
  EXPECT_EQ(ParseUint("0").value(), 0u);
  EXPECT_EQ(ParseUint("123456").value(), 123456u);
  EXPECT_FALSE(ParseUint("-3").ok());
  EXPECT_FALSE(ParseUint("").ok());
}

TEST(IoTest, ParseUintDetectsOverflow) {
  EXPECT_EQ(ParseUint("18446744073709551615").value(),
            std::numeric_limits<uint64_t>::max());
  // One past UINT64_MAX used to wrap around silently.
  EXPECT_FALSE(ParseUint("18446744073709551616").ok());
  EXPECT_FALSE(ParseUint("99999999999999999999999999").ok());
}

TEST(IoTest, ParseUint32RejectsValuesPastUint32) {
  EXPECT_EQ(ParseUint32("4294967295").value(), 4294967295u);
  EXPECT_FALSE(ParseUint32("4294967296").ok());
  EXPECT_FALSE(ParseUint32("-1").ok());
}

TEST(IoTest, ParseFiniteDoubleRejectsNanAndInf) {
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("2.5").value(), 2.5);
  // NaN breaks strict weak ordering in the discretizer's sorts; inf breaks
  // cut-point arithmetic. Both must be rejected at the ingestion boundary.
  EXPECT_FALSE(ParseFiniteDouble("nan").ok());
  EXPECT_FALSE(ParseFiniteDouble("-nan").ok());
  EXPECT_FALSE(ParseFiniteDouble("inf").ok());
  EXPECT_FALSE(ParseFiniteDouble("-inf").ok());
  EXPECT_FALSE(ParseFiniteDouble("1e999").ok());
}

TEST(IoTest, SplitIntoLinesHandlesCrlfAndFinalNewline) {
  EXPECT_EQ(SplitIntoLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitIntoLines("a\r\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitIntoLines(""), std::vector<std::string>{});
  EXPECT_EQ(SplitIntoLines("\n"), std::vector<std::string>{""});
}

TEST(IoTest, WriteReadRoundtrip) {
  const std::string path = ::testing::TempDir() + "/topkrgs_io_test.txt";
  ASSERT_TRUE(WriteLines(path, {"one", "two", ""}).ok());
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines.value(), (std::vector<std::string>{"one", "two", ""}));
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadLines("/nonexistent/missing.txt").ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(5), b(5), c(6);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedInRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 10u);
  auto small = rng.SampleWithoutReplacement(100, 5);
  EXPECT_EQ(small.size(), 5u);
  for (uint32_t v : small) EXPECT_LT(v, 100u);
}

TEST(TimerTest, DeadlineUnlimitedNeverExpires) {
  EXPECT_FALSE(Deadline::Unlimited().Expired());
  EXPECT_FALSE(Deadline().Expired());
}

TEST(TimerTest, DeadlineExpires) {
  Deadline d(-1.0);  // nonpositive budget: treated as unlimited
  EXPECT_FALSE(d.Expired());
  Deadline tiny(1e-9);
  // A nanosecond budget has certainly elapsed by now.
  EXPECT_TRUE(tiny.Expired());
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace topkrgs
