#include "core/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/rule.h"
#include "util/io.h"

namespace topkrgs {
namespace {

// Items of the running example (Figure 1a).
ItemId I(char c) { return RunningExampleItem(c); }

Bitset ItemsOf(const DiscreteDataset& data, const std::string& names) {
  Bitset b(data.num_items());
  for (char c : names) b.Set(I(c));
  return b;
}

Bitset RowsOf(const DiscreteDataset& data, std::initializer_list<uint32_t> rows) {
  Bitset b(data.num_rows());
  for (uint32_t r : rows) b.Set(r - 1);  // paper rows are 1-based
  return b;
}

TEST(RunningExampleTest, Shape) {
  DiscreteDataset d = MakeRunningExampleDataset();
  EXPECT_EQ(d.num_rows(), 5u);
  EXPECT_EQ(d.num_items(), 10u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.label(0), 1);  // r1 is class C
  EXPECT_EQ(d.label(4), 0);  // r5 is ¬C
  EXPECT_EQ(d.ClassCounts(), (std::vector<uint32_t>{2, 3}));
}

TEST(RunningExampleTest, ItemSupportSetExample21) {
  // Example 2.1: R({c,d,e}) = {r1, r3, r4}.
  DiscreteDataset d = MakeRunningExampleDataset();
  EXPECT_EQ(d.ItemSupportSet(ItemsOf(d, "cde")), RowsOf(d, {1, 3, 4}));
}

TEST(RunningExampleTest, RowSupportSetExample21) {
  // Example 2.1: I({r1, r3}) = {c, d, e}.
  DiscreteDataset d = MakeRunningExampleDataset();
  EXPECT_EQ(d.RowSupportSet(RowsOf(d, {1, 3})), ItemsOf(d, "cde"));
}

TEST(RunningExampleTest, RuleGroupExample22) {
  // Example 2.2: R(a)=R(b)=R(ab)=...=R(abc)={r1,r2}; upper bound abc -> C.
  DiscreteDataset d = MakeRunningExampleDataset();
  for (const char* lower : {"a", "b", "ab", "ac", "bc", "abc"}) {
    EXPECT_EQ(d.ItemSupportSet(ItemsOf(d, lower)), RowsOf(d, {1, 2})) << lower;
  }
  RuleGroup g = CloseItemset(d, ItemsOf(d, "a"), 1);
  EXPECT_EQ(g.antecedent, ItemsOf(d, "abc"));
  EXPECT_EQ(g.support, 2u);
  EXPECT_EQ(g.antecedent_support, 2u);
  EXPECT_DOUBLE_EQ(g.confidence(), 1.0);
}

TEST(RunningExampleTest, EmptyItemsetSupportsAllRows) {
  DiscreteDataset d = MakeRunningExampleDataset();
  EXPECT_EQ(d.ItemSupportSet(Bitset(d.num_items())).Count(), 5u);
  EXPECT_EQ(d.RowSupportSet(Bitset(d.num_rows())).Count(), 10u);
}

TEST(DiscreteDatasetTest, DeduplicatesAndSortsRowItems) {
  DiscreteDataset d(5, {{3, 1, 3, 0}}, {0});
  EXPECT_EQ(d.row_items(0), (std::vector<ItemId>{0, 1, 3}));
}

TEST(DiscreteDatasetTest, IndexesAreConsistent) {
  DiscreteDataset d = MakeRunningExampleDataset();
  for (RowId r = 0; r < d.num_rows(); ++r) {
    for (ItemId i = 0; i < d.num_items(); ++i) {
      EXPECT_EQ(d.row_bitset(r).Test(i), d.item_rows(i).Test(r));
    }
  }
}

TEST(DiscreteDatasetTest, FilterInfrequentItems) {
  DiscreteDataset d = MakeRunningExampleDataset();
  std::vector<ItemId> kept;
  // Items with support >= 3 over all rows: c (4), d(3), e(4), f(3), g(3).
  DiscreteDataset f = d.FilterInfrequentItems(3, &kept);
  EXPECT_EQ(f.num_items(), 5u);
  EXPECT_EQ(kept, (std::vector<ItemId>{I('c'), I('d'), I('e'), I('f'), I('g')}));
  EXPECT_EQ(f.num_rows(), 5u);
  // Row r2 = {a,b,c,o,p} keeps only c.
  EXPECT_EQ(f.row_items(1).size(), 1u);
}

TEST(DiscreteDatasetTest, SelectRows) {
  DiscreteDataset d = MakeRunningExampleDataset();
  DiscreteDataset s = d.SelectRows({4, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.label(0), 0);
  EXPECT_EQ(s.label(1), 1);
  EXPECT_EQ(s.row_items(1), d.row_items(0));
}

TEST(ContinuousDatasetTest, AddRowAndAccess) {
  ContinuousDataset d(3);
  d.AddRow({1.0, 2.0, 3.0}, 1);
  d.AddRow({4.0, 5.0, 6.0}, 0);
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_genes(), 3u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_DOUBLE_EQ(d.value(1, 2), 6.0);
  EXPECT_EQ(d.GeneColumn(1), (std::vector<double>{2.0, 5.0}));
  EXPECT_EQ(d.ClassCounts(), (std::vector<uint32_t>{1, 1}));
}

TEST(ContinuousDatasetTest, TsvRoundtrip) {
  ContinuousDataset d(2);
  d.set_gene_name(0, "TP53");
  d.set_gene_name(1, "BRCA1");
  d.AddRow({1.25, -3.5e-4}, 1);
  d.AddRow({0.0, 42.0}, 0);
  const std::string path = ::testing::TempDir() + "/topkrgs_ds.tsv";
  ASSERT_TRUE(d.WriteTsv(path).ok());
  auto back = ContinuousDataset::ReadTsv(path);
  ASSERT_TRUE(back.ok());
  const ContinuousDataset& r = back.value();
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.num_genes(), 2u);
  EXPECT_EQ(r.gene_name(0), "TP53");
  EXPECT_DOUBLE_EQ(r.value(0, 1), -3.5e-4);
  EXPECT_EQ(r.label(1), 0);
  std::remove(path.c_str());
}

TEST(ContinuousDatasetTest, ReadRejectsMalformed) {
  const std::string path = ::testing::TempDir() + "/topkrgs_bad.tsv";
  ASSERT_TRUE(WriteLines(path, {"label\tG0", "1\t2.0\t3.0"}).ok());
  EXPECT_FALSE(ContinuousDataset::ReadTsv(path).ok());
  ASSERT_TRUE(WriteLines(path, {"notlabel\tG0", "1\t2.0"}).ok());
  EXPECT_FALSE(ContinuousDataset::ReadTsv(path).ok());
  std::remove(path.c_str());
}

TEST(ContinuousDatasetTest, ParseTsvRejectsSemanticViolations) {
  // Label 300 does not fit in ClassLabel (uint8_t); a silent narrowing
  // cast would alias it to class 44.
  EXPECT_FALSE(ContinuousDataset::ParseTsv({"label\tG0", "300\t2.0"}).ok());
  // NaN breaks strict weak ordering in the discretizer's value sorts.
  EXPECT_FALSE(ContinuousDataset::ParseTsv({"label\tG0", "1\tnan"}).ok());
  EXPECT_FALSE(ContinuousDataset::ParseTsv({"label\tG0", "1\tinf"}).ok());
  // Header-only input: zero data rows would make EntropyDiscretizer::Fit
  // abort downstream.
  EXPECT_FALSE(ContinuousDataset::ParseTsv({"label\tG0\tG1"}).ok());
  EXPECT_FALSE(ContinuousDataset::ParseTsv({}).ok());
}

TEST(DiscreteDatasetTest, ParseItemDataRejectsSemanticViolations) {
  // Valid baseline parses.
  auto ok = DiscreteDataset::ParseItemData({"0\t1 2 5", "1\t0 3"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().num_rows(), 2u);
  // Label beyond ClassLabel range.
  EXPECT_FALSE(DiscreteDataset::ParseItemData({"300\t1 2"}).ok());
  // Item id beyond the declared universe.
  EXPECT_FALSE(DiscreteDataset::ParseItemData({"0\t1 9"}, /*num_items=*/4).ok());
  // Inferred-universe allocation bomb: one huge id would size the whole
  // per-item row index.
  EXPECT_FALSE(DiscreteDataset::ParseItemData({"0\t99999999"}).ok());
  // uint64 overflow in an item id.
  EXPECT_FALSE(
      DiscreteDataset::ParseItemData({"0\t18446744073709551616"}).ok());
  // Missing the label<TAB>items separator entirely.
  EXPECT_FALSE(DiscreteDataset::ParseItemData({"0 1 2"}).ok());
}

TEST(RuleSignificanceTest, Definition22) {
  // Higher confidence wins regardless of support.
  EXPECT_GT(CompareSignificance(2, 2, 10, 20), 0);   // 100% beats 50%
  EXPECT_LT(CompareSignificance(10, 20, 2, 2), 0);
  // Equal confidence: higher support wins.
  EXPECT_GT(CompareSignificance(4, 8, 2, 4), 0);
  EXPECT_LT(CompareSignificance(2, 4, 4, 8), 0);
  // Full tie.
  EXPECT_EQ(CompareSignificance(3, 6, 3, 6), 0);
  // Dummies (confidence 0).
  EXPECT_GT(CompareSignificance(1, 2, 0, 0), 0);
  EXPECT_EQ(CompareSignificance(0, 0, 0, 0), 0);
}

}  // namespace
}  // namespace topkrgs
