#include "classify/rcbt.h"

#include <gtest/gtest.h>

#include "classify/evaluator.h"
#include "mine/miner_common.h"
#include "synth/generator.h"
#include "test_util.h"

namespace topkrgs {
namespace {

DiscreteDataset SeparableData(uint32_t per_class) {
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  Rng rng(17);
  for (uint32_t i = 0; i < per_class; ++i) {
    std::vector<ItemId> row1 = {0, 2};
    std::vector<ItemId> row0 = {1, 3};
    for (ItemId noise = 4; noise < 10; ++noise) {
      if (rng.NextBool(0.5)) row1.push_back(noise);
      if (rng.NextBool(0.5)) row0.push_back(noise);
    }
    rows.push_back(row1);
    labels.push_back(1);
    rows.push_back(row0);
    labels.push_back(0);
  }
  return DiscreteDataset(10, std::move(rows), std::move(labels));
}

TEST(RcbtTest, SeparableDataPerfectTraining) {
  DiscreteDataset d = SeparableData(8);
  RcbtOptions opt;
  opt.k = 3;
  opt.nl = 5;
  opt.min_support_frac = 0.7;
  RcbtClassifier clf = RcbtClassifier::Train(d, opt);
  EXPECT_GE(clf.num_classifiers(), 1u);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    const auto pred = clf.Predict(d.row_bitset(r));
    EXPECT_EQ(pred.label, d.label(r)) << r;
    EXPECT_FALSE(pred.used_default);
    EXPECT_EQ(pred.classifier_index, 1u);  // main classifier decides
  }
}

TEST(RcbtTest, DefaultClassFiresOnAlienRow) {
  DiscreteDataset d = SeparableData(6);
  RcbtOptions opt;
  opt.k = 2;
  opt.nl = 3;
  RcbtClassifier clf = RcbtClassifier::Train(d, opt);
  Bitset alien(d.num_items());  // empty row matches no rule
  const auto pred = clf.Predict(alien);
  EXPECT_TRUE(pred.used_default);
  EXPECT_EQ(pred.classifier_index, 0u);
  EXPECT_EQ(pred.label, clf.default_class());
}

TEST(RcbtTest, StandbyClassifierHandlesRowsMainCannot) {
  DiscreteDataset d = SeparableData(6);
  RcbtOptions opt;
  opt.k = 3;
  opt.nl = 3;
  RcbtClassifier clf = RcbtClassifier::Train(d, opt);
  if (clf.num_classifiers() < 2) GTEST_SKIP() << "no standby built";
  // Construct a row matching a standby rule but no main rule: take a
  // standby rule's antecedent directly.
  const auto& rules = clf.classifier_rules(2);
  if (rules.empty()) GTEST_SKIP();
  Bitset row = rules[0].antecedent;
  const auto pred = clf.Predict(row);
  EXPECT_FALSE(pred.used_default);
  EXPECT_GE(pred.classifier_index, 1u);
}

TEST(RcbtTest, ScoresAreNormalizedPerClass) {
  DiscreteDataset d = SeparableData(8);
  RcbtOptions opt;
  opt.k = 1;
  opt.nl = 10;
  RcbtClassifier clf = RcbtClassifier::Train(d, opt);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    const auto pred = clf.Predict(d.row_bitset(r));
    if (pred.used_default) continue;
    for (double s : pred.scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-9);
    }
  }
}

TEST(RcbtTest, PipelineAccuracyOnTinyProfileBeatsMajority) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(42));
  Pipeline p = PreparePipeline(data.train, data.test);
  RcbtOptions opt;
  opt.k = 4;
  opt.nl = 5;
  opt.item_scores = p.item_scores;
  RcbtClassifier clf = RcbtClassifier::Train(p.train, opt);
  EvalOutcome eval = EvaluateDiscrete(
      p.test, [&](const Bitset& row, bool* used_default) {
        const auto pred = clf.Predict(row);
        *used_default = pred.used_default;
        return pred.label;
      });
  const auto counts = p.test.ClassCounts();
  const double majority =
      static_cast<double>(std::max(counts[0], counts[1])) / p.test.num_rows();
  EXPECT_GT(eval.accuracy(), majority);
}

TEST(RcbtTest, KOneEqualsSingleClassifier) {
  DiscreteDataset d = SeparableData(5);
  RcbtOptions opt;
  opt.k = 1;
  opt.nl = 2;
  RcbtClassifier clf = RcbtClassifier::Train(d, opt);
  EXPECT_EQ(clf.num_classifiers(), 1u);
}

TEST(MinSupportTest, RoundsToNearestInsteadOfTruncating) {
  // Regression: 0.7 * 10 is 6.999... in binary floating point, and the old
  // static_cast<uint32_t> truncated it to 6 — silently mining with a looser
  // support threshold than requested.
  EXPECT_EQ(MinSupportFromFrac(0.7, 10), 7u);
  EXPECT_EQ(MinSupportFromFrac(0.3, 10), 3u);
  EXPECT_EQ(MinSupportFromFrac(0.5, 27), 14u);   // 13.5 rounds away from zero
  EXPECT_EQ(MinSupportFromFrac(0.01, 10), 1u);   // floor of 1: support 0 is meaningless
  EXPECT_EQ(MinSupportFromFrac(0.0, 100), 1u);
  EXPECT_EQ(MinSupportFromFrac(1.0, 38), 38u);
}

}  // namespace
}  // namespace topkrgs
