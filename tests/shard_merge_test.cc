#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "mine/topk_miner.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "scale/topk_merge.h"
#include "synth/scale_profile.h"

namespace topkrgs {
namespace {

/// The oracle of DESIGN.md §14: sharded mining must be bit-identical to
/// single-shot MineTopkRGS on the materialized dataset, for ANY shard
/// count and thread count. These tests drive both engines over the same
/// tables and compare per-row lists group-for-group, plus the digest the
/// bench gates on.

StreamedTable TableFromText(const std::string& text) {
  auto table_or = StreamReader::ParseItemData(text);
  EXPECT_TRUE(table_or.ok()) << table_or.status().ToString();
  return std::move(table_or).value();
}

StreamedTable TableFromProfile(const ScaleProfile& profile) {
  std::string text;
  for (uint64_t row = 0; row < profile.rows; ++row) {
    AppendScaleRow(profile, row, &text);
  }
  return TableFromText(text);
}

TopkResult SingleShot(const TransposedView& view, ClassLabel consequent,
                      uint32_t k, uint32_t minsup) {
  const DiscreteDataset data = MaterializeDataset(view);
  TopkMinerOptions opt;
  opt.k = k;
  opt.min_support = minsup;
  return MineTopkRGS(data, consequent, opt);
}

void ExpectIdentical(const TopkResult& oracle, const MergedTopk& merged,
                     const std::string& context) {
  EXPECT_EQ(oracle.effective_min_support, merged.effective_min_support)
      << context;
  ASSERT_EQ(oracle.per_row.size(), merged.per_row.size()) << context;
  for (size_t r = 0; r < oracle.per_row.size(); ++r) {
    const auto& la = oracle.per_row[r];
    const auto& lb = merged.per_row[r];
    ASSERT_EQ(la.size(), lb.size()) << context << " row " << r;
    for (size_t i = 0; i < la.size(); ++i) {
      const RuleGroup& ga = *la[i];
      const RuleGroup& gb = *lb[i];
      EXPECT_EQ(ga.antecedent, gb.antecedent)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.consequent, gb.consequent)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.support, gb.support)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.antecedent_support, gb.antecedent_support)
          << context << " row " << r << " rank " << i;
      EXPECT_EQ(ga.row_support, gb.row_support)
          << context << " row " << r << " rank " << i;
    }
  }
  EXPECT_EQ(TopkDigest(oracle.per_row, oracle.effective_min_support),
            TopkDigest(merged.per_row, merged.effective_min_support))
      << context;
}

/// Sweeps shard counts × thread counts over one table and compares every
/// run against the single-shot oracle.
void CheckShardInvariance(const TransposedView& view, ClassLabel consequent,
                          uint32_t k, uint32_t minsup,
                          const std::vector<uint32_t>& shard_counts,
                          const std::vector<uint32_t>& thread_counts,
                          const std::string& context) {
  const TopkResult oracle = SingleShot(view, consequent, k, minsup);
  for (const uint32_t shards : shard_counts) {
    for (const uint32_t threads : thread_counts) {
      ShardPlanOptions plan_opt;
      plan_opt.k = k;
      plan_opt.min_support = minsup;
      plan_opt.shard_count = shards;
      ShardMineOptions mine_opt;
      mine_opt.threads = threads;
      ShardPlan plan;
      auto merged_or =
          MineShardedTopkRGS(view, consequent, plan_opt, mine_opt, &plan);
      ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
      ExpectIdentical(oracle, merged_or.value(),
                      context + " shards=" + std::to_string(shards) +
                          " threads=" + std::to_string(threads) +
                          " planned=" + std::to_string(plan.shards.size()));
    }
  }
}

/// Three single-item patterns with IDENTICAL significance (support 6,
/// confidence 1.0) all covering the two shared rows, k=2: the k-th-slot
/// tie discipline must keep the canonically-earliest two in every shard
/// split, which is exactly where a merge with the wrong tie order breaks.
TEST(ShardMergeTest, TieSaturatedKthSlot) {
  std::string text;
  text += "1\t0 1 2\n";  // rows 0-1: all three patterns
  text += "1\t0 1 2\n";
  for (int i = 0; i < 4; ++i) text += "1\t0\n";  // rows 2-5: pattern 0
  for (int i = 0; i < 4; ++i) text += "1\t1\n";  // rows 6-9: pattern 1
  for (int i = 0; i < 4; ++i) text += "1\t2\n";  // rows 10-13: pattern 2
  text += "0\t3\n";  // negatives
  text += "0\t3\n";
  const StreamedTable table = TableFromText(text);

  // Sanity: on the shared rows the three (6, 6) groups tie for both slots
  // of k=2 and the (2, 2) closed triple is outranked.
  const TopkResult oracle = SingleShot(table.View(), 1, 2, 2);
  ASSERT_EQ(oracle.per_row[0].size(), 2u);
  EXPECT_EQ(oracle.per_row[0][0]->support, 6u);
  EXPECT_EQ(oracle.per_row[0][1]->support, 6u);

  CheckShardInvariance(table.View(), 1, 2, 2, {1, 2, 3, 7, 14, 16}, {1},
                       "tie-saturated");
}

TEST(ShardMergeTest, MicroProfileAcrossShardAndThreadCounts) {
  const ScaleProfile profile = ScaleProfile::Micro();
  const StreamedTable table = TableFromProfile(profile);
  CheckShardInvariance(table.View(), 1, 3, profile.SuggestedMinSupport(),
                       {1, 2, 7, 16}, {1, 8}, "micro profile");
}

/// Distinct k and consequent: the merge must reconstruct the OTHER class's
/// seeds and root correctly too.
TEST(ShardMergeTest, MicroProfileNegativeClassConsequent) {
  const ScaleProfile profile = ScaleProfile::Micro();
  const StreamedTable table = TableFromProfile(profile);
  CheckShardInvariance(table.View(), 0, 2, profile.SuggestedMinSupport(),
                       {1, 3, 16}, {1}, "micro profile class 0");
}

/// A dataset where one row contains every frequent item: the earliest
/// absorbed row truncates the plan (later shards are provably inert), and
/// the absorbing shard takes unlimited fan-out. Output must not change.
TEST(ShardMergeTest, AbsorbedRowTruncatesPlan) {
  std::string text;
  text += "1\t0 1 2 3\n";  // contains every (frequent) item
  text += "1\t0 1\n";
  text += "1\t0 1\n";
  text += "1\t2 3\n";
  text += "1\t2 3\n";
  text += "1\t0 2\n";
  text += "0\t4\n";
  text += "0\t4\n";
  const StreamedTable table = TableFromText(text);

  ShardPlanOptions plan_opt;
  plan_opt.k = 2;
  plan_opt.min_support = 2;
  plan_opt.shard_count = 6;
  auto plan_or = PlanShards(table.View(), 1, plan_opt);
  ASSERT_TRUE(plan_or.ok());
  // The absorbed row has the maximum weight, so it sorts LAST among the
  // positives: all six singleton shards up to it survive, and the last one
  // gets unlimited fan-out.
  ASSERT_FALSE(plan_or.value().shards.empty());
  EXPECT_EQ(plan_or.value().shards.back().first_level_limit, UINT32_MAX);
  EXPECT_EQ(plan_or.value().shards.back().end_pos, plan_or.value().positives);

  CheckShardInvariance(table.View(), 1, 2, 2, {1, 2, 3, 6}, {1},
                       "absorbed row");
}

/// Degenerate shapes: no frequent items (minsup too high) and a dataset
/// with a single positive row must survive any shard count.
TEST(ShardMergeTest, DegenerateShapes) {
  const StreamedTable sparse =
      TableFromText("1\t0\n1\t1\n1\t2\n0\t3\n");  // every item support 1
  CheckShardInvariance(sparse.View(), 1, 2, 2, {1, 2, 3}, {1},
                       "no frequent items");

  const StreamedTable single = TableFromText("1\t0 1\n0\t0\n0\t2\n");
  CheckShardInvariance(single.View(), 1, 2, 1, {1, 2}, {1},
                       "single positive row");
}

/// Reduced profile end-to-end — minutes-scale work, so tier-1 skips it;
/// set TOPKRGS_SLOW_TESTS=1 (the ci.sh scale stage does) to run.
TEST(ShardMergeSlowTest, ReducedProfileAcrossShardCounts) {
  if (std::getenv("TOPKRGS_SLOW_TESTS") == nullptr) {
    GTEST_SKIP() << "set TOPKRGS_SLOW_TESTS=1 to run the reduced profile";
  }
  const ScaleProfile profile = ScaleProfile::Reduced();
  const StreamedTable table = TableFromProfile(profile);
  CheckShardInvariance(table.View(), 1, 3, profile.SuggestedMinSupport(),
                       {1, 4, 9}, {1, 8}, "reduced profile");
}

}  // namespace
}  // namespace topkrgs
