// Randomized model-based tests: Bitset against std::set, dataset index
// invariants, significance-order laws, and rule-sorting properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "classify/cba.h"
#include "core/dataset.h"
#include "core/rule.h"
#include "test_util.h"
#include "util/bitset.h"
#include "util/random.h"

namespace topkrgs {
namespace {

using testing_util::RandomDataset;

class BitsetFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetFuzzTest, MatchesSetModel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const size_t universe = 1 + rng.NextBounded(300);
  Bitset a(universe), b(universe);
  std::set<size_t> ma, mb;

  for (int op = 0; op < 300; ++op) {
    const size_t pos = rng.NextBounded(universe);
    switch (rng.NextBounded(6)) {
      case 0:
        a.Set(pos);
        ma.insert(pos);
        break;
      case 1:
        a.Reset(pos);
        ma.erase(pos);
        break;
      case 2:
        b.Set(pos);
        mb.insert(pos);
        break;
      case 3:
        b.Reset(pos);
        mb.erase(pos);
        break;
      case 4: {
        // Verify a derived operation against the model.
        std::set<size_t> expected;
        std::set_intersection(ma.begin(), ma.end(), mb.begin(), mb.end(),
                              std::inserter(expected, expected.begin()));
        ASSERT_EQ(a.IntersectCount(b), expected.size());
        const Bitset inter = Intersect(a, b);
        ASSERT_EQ(inter.Count(), expected.size());
        for (size_t i : expected) ASSERT_TRUE(inter.Test(i));
        break;
      }
      case 5: {
        const bool subset =
            std::includes(mb.begin(), mb.end(), ma.begin(), ma.end());
        ASSERT_EQ(a.IsSubsetOf(b), subset);
        bool intersects = false;
        for (size_t i : ma) {
          if (mb.count(i)) {
            intersects = true;
            break;
          }
        }
        ASSERT_EQ(a.Intersects(b), intersects);
        break;
      }
    }
    ASSERT_EQ(a.Count(), ma.size());
    ASSERT_EQ(a.None(), ma.empty());
    // Iteration agrees with the model.
    if (op % 37 == 0) {
      std::vector<uint32_t> listed = a.ToVector();
      std::vector<uint32_t> expected(ma.begin(), ma.end());
      ASSERT_EQ(listed, expected);
      // FindFirst / FindNext walk the same sequence.
      size_t pos2 = a.FindFirst();
      for (uint32_t e : expected) {
        ASSERT_EQ(pos2, e);
        pos2 = a.FindNext(pos2);
      }
      ASSERT_EQ(pos2, a.size());
    }
  }
  // Union and subtraction, final check.
  std::set<size_t> u;
  std::set_union(ma.begin(), ma.end(), mb.begin(), mb.end(),
                 std::inserter(u, u.begin()));
  EXPECT_EQ(Union(a, b).Count(), u.size());
  std::set<size_t> diff;
  std::set_difference(ma.begin(), ma.end(), mb.begin(), mb.end(),
                      std::inserter(diff, diff.begin()));
  EXPECT_EQ(Subtract(a, b).Count(), diff.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsetFuzzTest, ::testing::Range(0, 8));

class DatasetInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetInvariantTest, GaloisConnectionLaws) {
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(GetParam()) + 400,
                                    11, 13, 0.4);
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    // Random itemset A: R(A) then I(R(A)) ⊇ A, and R(I(R(A))) == R(A)
    // (the Galois closure laws the miners rely on).
    Bitset items(d.num_items());
    for (int i = 0; i < 4; ++i) items.Set(rng.NextBounded(d.num_items()));
    const Bitset rows = d.ItemSupportSet(items);
    const Bitset closure = d.RowSupportSet(rows);
    if (rows.Any()) {
      ASSERT_TRUE(items.IsSubsetOf(closure));
    }
    ASSERT_EQ(d.ItemSupportSet(closure), rows);

    // Dually for row sets.
    Bitset rset(d.num_rows());
    for (int i = 0; i < 3; ++i) rset.Set(rng.NextBounded(d.num_rows()));
    const Bitset common = d.RowSupportSet(rset);
    const Bitset rclosure = d.ItemSupportSet(common);
    ASSERT_TRUE(rset.IsSubsetOf(rclosure));
    ASSERT_EQ(d.RowSupportSet(rclosure), common);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DatasetInvariantTest, ::testing::Range(0, 6));

TEST(SignificanceLawsTest, TotalPreorderOnRandomPairs) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint32_t a_as = 1 + rng.NextBounded(40);
    const uint32_t a_sup = rng.NextBounded(a_as + 1);
    const uint32_t b_as = 1 + rng.NextBounded(40);
    const uint32_t b_sup = rng.NextBounded(b_as + 1);
    const uint32_t c_as = 1 + rng.NextBounded(40);
    const uint32_t c_sup = rng.NextBounded(c_as + 1);

    const int ab = CompareSignificance(a_sup, a_as, b_sup, b_as);
    const int ba = CompareSignificance(b_sup, b_as, a_sup, a_as);
    ASSERT_EQ(ab, -ba);  // antisymmetry
    ASSERT_EQ(CompareSignificance(a_sup, a_as, a_sup, a_as), 0);

    // Transitivity of "not less significant".
    const int bc = CompareSignificance(b_sup, b_as, c_sup, c_as);
    const int ac = CompareSignificance(a_sup, a_as, c_sup, c_as);
    if (ab >= 0 && bc >= 0) {
      ASSERT_GE(ac, 0);
    }
    if (ab > 0 && bc > 0) {
      ASSERT_GT(ac, 0);
    }

    // Consistency with floating-point confidence where it is exact enough.
    const double ca = static_cast<double>(a_sup) / a_as;
    const double cb = static_cast<double>(b_sup) / b_as;
    if (ca > cb + 1e-9) {
      ASSERT_GT(ab, 0);
    }
    if (cb > ca + 1e-9) {
      ASSERT_LT(ab, 0);
    }
  }
}

TEST(SortRulesTest, OutputIsSortedByPrecedence) {
  Rng rng(7);
  DiscreteDataset d = RandomDataset(17, 8, 12, 0.4);
  std::vector<Rule> rules;
  for (int i = 0; i < 40; ++i) {
    Rule r;
    r.antecedent = Bitset(d.num_items());
    const int len = 1 + rng.NextBounded(4);
    for (int j = 0; j < len; ++j) r.antecedent.Set(rng.NextBounded(12));
    r.consequent = rng.NextBool(0.5) ? 1 : 0;
    r.antecedent_support = 1 + rng.NextBounded(10);
    r.support = rng.NextBounded(r.antecedent_support + 1);
    rules.push_back(std::move(r));
  }
  SortRulesByPrecedence(&rules);
  for (size_t i = 1; i < rules.size(); ++i) {
    const int sig = CompareSignificance(
        rules[i - 1].support, rules[i - 1].antecedent_support,
        rules[i].support, rules[i].antecedent_support);
    ASSERT_GE(sig, 0) << i;
    if (sig == 0) {
      ASSERT_LE(rules[i - 1].antecedent.Count(), rules[i].antecedent.Count())
          << "equal significance must order shorter rules first";
    }
  }
}

TEST(RandomDatasetTest, FilterThenIndexesStayConsistent) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiscreteDataset d = RandomDataset(seed + 900, 12, 14, 0.35);
    std::vector<ItemId> kept;
    DiscreteDataset f = d.FilterInfrequentItems(3, &kept);
    for (ItemId new_id = 0; new_id < f.num_items(); ++new_id) {
      // Remapped supports match the original item's.
      ASSERT_EQ(f.ItemSupport(new_id), d.ItemSupport(kept[new_id]));
      ASSERT_GE(f.ItemSupport(new_id), 3u);
    }
    for (RowId r = 0; r < f.num_rows(); ++r) {
      for (ItemId item : f.row_items(r)) {
        ASSERT_TRUE(d.row_bitset(r).Test(kept[item]));
      }
    }
  }
}

}  // namespace
}  // namespace topkrgs
