// Boundary tests for util/safe_math.h (DESIGN.md §15): every checked
// operation is exercised at the exact edge where the unchecked
// equivalent would silently wrap or truncate. All failure paths are
// ordinary StatusOr errors — no EXPECT_DEATH anywhere, so the suite
// runs identically under Release, sanitizer, and coverage presets.
#include "util/safe_math.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/types.h"
#include "util/status.h"

namespace topkrgs {
namespace {

constexpr uint32_t kU32Max = std::numeric_limits<uint32_t>::max();
constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int32_t kI32Min = std::numeric_limits<int32_t>::min();

bool Mentions(const Status& status, const std::string& needle) {
  return status.message().find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// CheckedCast: narrowing

TEST(CheckedCastTest, U64ToU32Boundary) {
  auto fits = CheckedCast<uint32_t>(static_cast<uint64_t>(kU32Max), "row count");
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(fits.value(), kU32Max);

  auto over =
      CheckedCast<uint32_t>(static_cast<uint64_t>(kU32Max) + 1, "row count");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(Mentions(over.status(), "row count"));
  EXPECT_TRUE(Mentions(over.status(), "uint32"));
  // The offending value must be in the message so a log line is enough
  // to reconstruct the failure.
  EXPECT_TRUE(Mentions(over.status(), std::to_string(uint64_t{kU32Max} + 1)));
}

TEST(CheckedCastTest, SizeMaxNeverFitsNarrower) {
  const size_t size_max = std::numeric_limits<size_t>::max();
  EXPECT_FALSE(CheckedCast<uint32_t>(size_max, "byte budget").ok());
  EXPECT_FALSE(CheckedCast<int64_t>(size_max, "byte budget").ok());

  auto same_width = CheckedCast<uint64_t>(size_max, "byte budget");
  ASSERT_TRUE(same_width.ok());
  EXPECT_EQ(same_width.value(), kU64Max);
}

TEST(CheckedCastTest, SignedToUnsignedRejectsNegatives) {
  // The classic bug this layer exists to kill: -1 -> SIZE_MAX.
  EXPECT_FALSE(CheckedCast<uint32_t>(int64_t{-1}, "column index").ok());
  EXPECT_FALSE(CheckedCast<uint64_t>(int64_t{-1}, "column index").ok());
  EXPECT_FALSE(CheckedCast<uint32_t>(kI64Min, "column index").ok());
  EXPECT_FALSE(CheckedCast<uint8_t>(kI32Min, "class label").ok());

  auto zero = CheckedCast<uint32_t>(int64_t{0}, "column index");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0u);
}

TEST(CheckedCastTest, SignedMinRoundTripsAtSameWidth) {
  auto min64 = CheckedCast<int64_t>(kI64Min, "offset delta");
  ASSERT_TRUE(min64.ok());
  EXPECT_EQ(min64.value(), kI64Min);

  auto min32 = CheckedCast<int32_t>(int64_t{kI32Min}, "offset delta");
  ASSERT_TRUE(min32.ok());
  EXPECT_EQ(min32.value(), kI32Min);

  // One below INT32_MIN no longer fits.
  EXPECT_FALSE(
      CheckedCast<int32_t>(int64_t{kI32Min} - 1, "offset delta").ok());
}

TEST(CheckedCastTest, UnsignedToSignedBoundary) {
  const uint64_t i64_max = static_cast<uint64_t>(
      std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(CheckedCast<int64_t>(i64_max, "signed size").ok());
  EXPECT_FALSE(CheckedCast<int64_t>(i64_max + 1, "signed size").ok());
}

TEST(CheckedCastTest, DomainTypesAtTheirLimits) {
  // ItemId/RowId are uint32, ClassLabel is uint8 — the three narrowings
  // the parsers perform on every record.
  EXPECT_TRUE(CheckedCast<ItemId>(uint64_t{kU32Max}, "item id").ok());
  EXPECT_FALSE(CheckedCast<ItemId>(uint64_t{kU32Max} + 1, "item id").ok());

  auto label = CheckedCast<ClassLabel>(uint32_t{255}, "class label");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(label.value(), 255u);
  auto label_over = CheckedCast<ClassLabel>(uint32_t{256}, "class label");
  ASSERT_FALSE(label_over.ok());
  EXPECT_EQ(label_over.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(Mentions(label_over.status(), "uint8"));
}

// ---------------------------------------------------------------------------
// CheckedAdd / CheckedSub

TEST(CheckedAddTest, U64Boundary) {
  auto exact = CheckedAdd<uint64_t>(kU64Max - 1, 1, "offset total");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), kU64Max);

  auto over = CheckedAdd<uint64_t>(kU64Max, 1, "offset total");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(Mentions(over.status(), "offset total"));
  EXPECT_TRUE(Mentions(over.status(), "uint64"));
}

TEST(CheckedAddTest, SignedOverflowBothDirections) {
  const int64_t i64_max = std::numeric_limits<int64_t>::max();
  EXPECT_FALSE(CheckedAdd<int64_t>(i64_max, 1, "delta").ok());
  EXPECT_FALSE(CheckedAdd<int64_t>(kI64Min, -1, "delta").ok());

  auto ok = CheckedAdd<int64_t>(kI64Min, i64_max, "delta");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), int64_t{-1});
}

TEST(CheckedSubTest, UnsignedUnderflowFailsInsteadOfWrapping) {
  auto under = CheckedSub<uint64_t>(0, 1, "remaining budget");
  ASSERT_FALSE(under.ok());
  EXPECT_EQ(under.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(Mentions(under.status(), "remaining budget"));

  auto zero = CheckedSub<uint64_t>(7, 7, "remaining budget");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0u);
}

TEST(CheckedSubTest, SignedMinNegation) {
  // 0 - INT64_MIN overflows (|INT64_MIN| is not representable).
  EXPECT_FALSE(CheckedSub<int64_t>(0, kI64Min, "negated offset").ok());
  EXPECT_TRUE(CheckedSub<int64_t>(0, kI64Min + 1, "negated offset").ok());
}

// ---------------------------------------------------------------------------
// CheckedMul — the CSR layout shape: nnz * sizeof(element) + header.

TEST(CheckedMulTest, U64Boundary) {
  auto exact = CheckedMul<uint64_t>(kU64Max / 2, 2, "csr bytes");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), kU64Max - 1);

  auto over = CheckedMul<uint64_t>(kU64Max / 2 + 1, 2, "csr bytes");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(Mentions(over.status(), "csr bytes"));
}

TEST(CheckedMulTest, CsrOffsetShape) {
  // A hostile nnz sized so that nnz * sizeof(uint32_t) wraps a uint64 —
  // exactly the product scale/mmap_dataset's LayoutFor must reject.
  const uint64_t hostile_nnz = kU64Max / sizeof(uint32_t) + 1;
  auto bytes =
      CheckedMul<uint64_t>(hostile_nnz, sizeof(uint32_t), "item_row_ids bytes");
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kOutOfRange);

  // The largest nnz that does fit, then adding a header past the top
  // fails in CheckedAdd rather than wrapping to a tiny mapping size.
  const uint64_t max_nnz = kU64Max / sizeof(uint32_t);
  auto fit = CheckedMul<uint64_t>(max_nnz, sizeof(uint32_t), "bytes");
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(CheckedAdd<uint64_t>(fit.value(), 64, "bytes + header").ok());
}

TEST(CheckedMulTest, ZeroAndIdentity) {
  auto zero = CheckedMul<uint64_t>(0, kU64Max, "bytes");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0u);

  auto ident = CheckedMul<uint64_t>(kU64Max, 1, "bytes");
  ASSERT_TRUE(ident.ok());
  EXPECT_EQ(ident.value(), kU64Max);
}

TEST(CheckedMulTest, SignedMinTimesMinusOne) {
  // The one signed multiply UBSan can't save you from at -O2.
  EXPECT_FALSE(CheckedMul<int64_t>(kI64Min, -1, "scaled delta").ok());
  EXPECT_FALSE(CheckedMul<int32_t>(kI32Min, -1, "scaled delta").ok());
}

// ---------------------------------------------------------------------------
// CheckedIndexU32 — the sanctioned u64 -> u32 index gate.

TEST(CheckedIndexU32Test, BoundaryAndMessageContract) {
  auto max_ok = CheckedIndexU32(uint64_t{kU32Max}, "row count");
  ASSERT_TRUE(max_ok.ok());
  EXPECT_EQ(max_ok.value(), kU32Max);

  auto over = CheckedIndexU32(uint64_t{kU32Max} + 1, "row count");
  ASSERT_FALSE(over.ok());
  // InvalidArgument, not OutOfRange: callers classify an oversized count
  // as malformed input (see the note in safe_math.h).
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Mentions(over.status(), "row count"));
  EXPECT_TRUE(Mentions(over.status(), "32-bit index space"));
}

// ---------------------------------------------------------------------------
// StatusOr error-path discipline: results are [[nodiscard]] and errors
// carry enough context to act on — no process-death semantics anywhere.

TEST(SafeMathStatusTest, ErrorsAreValuesNotTraps) {
  StatusOr<uint32_t> bad = CheckedCast<uint32_t>(kU64Max, "nnz");
  ASSERT_FALSE(bad.ok());
  // status() is inspectable repeatedly and copyable like any value.
  const Status copy = bad.status();
  EXPECT_EQ(copy.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.message(), bad.status().message());
}

}  // namespace
}  // namespace topkrgs
