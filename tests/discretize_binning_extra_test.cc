// ChiMerge discretizer, transactional dataset I/O, multi-class mining, and
// loader robustness fuzzing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "classify/cba.h"
#include "classify/evaluator.h"
#include "classify/model_io.h"
#include "core/dataset.h"
#include "discretize/binning.h"
#include "mine/naive_miner.h"
#include "mine/topk_miner.h"
#include "synth/generator.h"
#include "test_util.h"
#include "util/io.h"
#include "util/random.h"

namespace topkrgs {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" + test +
         "_" + name;
}

TEST(ChiMergeTest, SeparableGeneGetsOneCut) {
  ContinuousDataset d(2);
  const double noise[] = {0.3, 0.1, 0.4, 0.1, 0.5, 0.9, 0.2, 0.6};
  for (int i = 0; i < 4; ++i) d.AddRow({static_cast<double>(i), noise[i]}, 0);
  for (int i = 4; i < 8; ++i) {
    d.AddRow({static_cast<double>(i) + 10, noise[i]}, 1);
  }
  Discretization disc = FitChiMerge(d);
  // Gene 0 separates the classes: kept with a single cut between 3 and 14.
  ASSERT_GE(disc.num_selected_genes(), 1u);
  EXPECT_EQ(disc.selected_genes()[0], 0u);
  const auto& cuts = disc.cuts(0);
  ASSERT_GE(cuts.size(), 1u);
  EXPECT_GT(cuts.front(), 3.0);
  EXPECT_LT(cuts.back(), 14.0);
  // Applying it separates the training rows perfectly on gene 0's item.
  DiscreteDataset dd = disc.Apply(d);
  for (RowId r = 0; r < dd.num_rows(); ++r) {
    EXPECT_EQ(dd.row_items(r)[0] == 0, d.label(r) == 0);
  }
}

TEST(ChiMergeTest, PureNoiseGeneIsDropped) {
  ContinuousDataset d(1);
  Rng rng(12);
  for (int i = 0; i < 40; ++i) d.AddRow({rng.NextGaussian()}, i % 2);
  Discretization disc = FitChiMerge(d, /*chi_threshold=*/3.8);
  // A single noise gene over many rows should almost always merge away.
  EXPECT_LE(disc.num_selected_genes(), 1u);
  if (disc.num_selected_genes() == 1) {
    EXPECT_LE(disc.cuts(0).size(), 5u);
  }
}

TEST(ChiMergeTest, MaxIntervalsCaps) {
  ContinuousDataset d(1);
  // Alternating labels along the value axis: chi-square wants many cuts.
  for (int i = 0; i < 30; ++i) d.AddRow({static_cast<double>(i)}, i % 2);
  Discretization disc = FitChiMerge(d, 0.1, 4);
  ASSERT_EQ(disc.num_selected_genes(), 1u);
  EXPECT_LE(disc.cuts(0).size(), 3u);  // <= max_intervals - 1 cuts
}

TEST(ChiMergeTest, TinyProfilePipelineWorks) {
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(55));
  Discretization disc = FitChiMerge(data.train);
  ASSERT_GT(disc.num_selected_genes(), 0u);
  DiscreteDataset train = disc.Apply(data.train);
  TopkMinerOptions opt;
  opt.k = 2;
  opt.min_support = std::max<uint32_t>(1, 7 * train.ClassCounts()[1] / 10);
  const TopkResult result = MineTopkRGS(train, 1, opt);
  for (RowId r = 0; r < train.num_rows(); ++r) {
    if (train.label(r) == 1) {
      EXPECT_FALSE(result.per_row[r].empty());
    }
  }
}

TEST(ItemDataIoTest, RoundtripPreservesDataset) {
  DiscreteDataset d = testing_util::RandomDataset(61, 15, 20, 0.35);
  const std::string path = TempPath("items.txt");
  ASSERT_TRUE(d.WriteItemData(path).ok());
  auto back_or = DiscreteDataset::ReadItemData(path, d.num_items());
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  const DiscreteDataset& back = back_or.value();
  ASSERT_EQ(back.num_rows(), d.num_rows());
  ASSERT_EQ(back.num_items(), d.num_items());
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(back.row_items(r), d.row_items(r));
    EXPECT_EQ(back.label(r), d.label(r));
  }
  std::remove(path.c_str());
}

TEST(ItemDataIoTest, InfersUniverseWhenUnspecified) {
  const std::string path = TempPath("items2.txt");
  ASSERT_TRUE(WriteLines(path, {"1\t0 4 7", "0\t2"}).ok());
  auto ds = DiscreteDataset::ReadItemData(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().num_items(), 8u);
  EXPECT_EQ(ds.value().num_rows(), 2u);
  // Declared universe too small -> error.
  EXPECT_FALSE(DiscreteDataset::ReadItemData(path, 5).ok());
  std::remove(path.c_str());
}

TEST(ItemDataIoTest, RejectsMalformed) {
  const std::string path = TempPath("items3.txt");
  ASSERT_TRUE(WriteLines(path, {"no-tab-here"}).ok());
  EXPECT_FALSE(DiscreteDataset::ReadItemData(path).ok());
  ASSERT_TRUE(WriteLines(path, {"1\tx y"}).ok());
  EXPECT_FALSE(DiscreteDataset::ReadItemData(path).ok());
  std::remove(path.c_str());
}

TEST(MultiClassTest, MinersHandleThreeClasses) {
  // Three-class dataset: miners run one consequent at a time; every class's
  // result must match the exhaustive oracle.
  Rng rng(71);
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 12; ++i) {
    std::vector<ItemId> row = {static_cast<ItemId>(i % 3)};  // class marker
    for (ItemId noise = 3; noise < 10; ++noise) {
      if (rng.NextBool(0.4)) row.push_back(noise);
    }
    rows.push_back(row);
    labels.push_back(static_cast<ClassLabel>(i % 3));
  }
  DiscreteDataset d(10, std::move(rows), std::move(labels));
  ASSERT_EQ(d.num_classes(), 3u);
  for (ClassLabel cls = 0; cls < 3; ++cls) {
    const auto oracle = NaiveTopkRGS(d, cls, 2, 2);
    TopkMinerOptions opt;
    opt.k = 2;
    opt.min_support = 2;
    const TopkResult result = MineTopkRGS(d, cls, opt);
    for (RowId r = 0; r < d.num_rows(); ++r) {
      ASSERT_EQ(testing_util::SignificanceSeq(result.per_row[r]),
                testing_util::SignificanceSeqValues(oracle[r]))
          << "cls=" << int(cls) << " row=" << r;
    }
  }
}

TEST(MultiClassTest, CbaTrainsOnThreeClasses) {
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 15; ++i) {
    rows.push_back({static_cast<ItemId>(i % 3), static_cast<ItemId>(3 + i % 2)});
    labels.push_back(static_cast<ClassLabel>(i % 3));
  }
  DiscreteDataset d(5, std::move(rows), std::move(labels));
  CbaOptions opt;
  opt.min_support_frac = 0.5;
  CbaClassifier clf = TrainCba(d, opt);
  uint32_t correct = 0;
  for (RowId r = 0; r < d.num_rows(); ++r) {
    correct += clf.Predict(d.row_bitset(r)) == d.label(r);
  }
  EXPECT_EQ(correct, d.num_rows());
}

TEST(LoaderFuzzTest, CorruptedModelFilesNeverCrash) {
  // Save a real model, then hammer the loaders with random mutations of
  // its bytes: every load must either fail cleanly or return a usable
  // model — never crash.
  GeneratedData data = GenerateMicroarray(DatasetProfile::Tiny(81));
  Pipeline p = PreparePipeline(data.train, data.test);
  CbaOptions copt;
  copt.item_scores = p.item_scores;
  CbaClassifier cba = TrainCba(p.train, copt);
  const std::string path = TempPath("model.txt");
  ASSERT_TRUE(SaveCbaClassifier(cba, p.train.num_items(), path).ok());
  auto original_or = ReadLines(path);
  ASSERT_TRUE(original_or.ok());
  const auto& original = original_or.value();

  Rng rng(1234);
  const std::string mutated_path = TempPath("mutated.txt");
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::string> lines = original;
    switch (rng.NextBounded(4)) {
      case 0:  // truncate
        lines.resize(rng.NextBounded(lines.size() + 1));
        break;
      case 1: {  // corrupt one line
        if (!lines.empty()) {
          std::string& line = lines[rng.NextBounded(lines.size())];
          if (!line.empty()) {
            line[rng.NextBounded(line.size())] =
                static_cast<char>('!' + rng.NextBounded(90));
          }
        }
        break;
      }
      case 2:  // duplicate a line
        if (!lines.empty()) {
          lines.insert(lines.begin() + rng.NextBounded(lines.size()),
                       lines[rng.NextBounded(lines.size())]);
        }
        break;
      case 3:  // shuffle
        rng.Shuffle(lines);
        break;
    }
    ASSERT_TRUE(WriteLines(mutated_path, lines).ok());
    auto loaded = LoadCbaClassifier(mutated_path);
    if (loaded.ok()) {
      // If it parsed, it must predict without crashing.
      loaded.value().Predict(p.train.row_bitset(0));
    }
    auto as_rcbt = LoadRcbtClassifier(mutated_path);
    auto as_disc = LoadDiscretization(mutated_path);
    (void)as_rcbt;
    (void)as_disc;
  }
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

}  // namespace
}  // namespace topkrgs
