#include <gtest/gtest.h>

#include "core/stats.h"
#include "mine/charm.h"
#include "mine/closet.h"
#include "mine/farmer.h"
#include "mine/naive_miner.h"
#include "test_util.h"

namespace topkrgs {
namespace {

using testing_util::Canonicalize;
using testing_util::RandomDataset;

std::vector<RuleGroup> OracleWithMinConf(const DiscreteDataset& d,
                                         ClassLabel cls, uint32_t minsup,
                                         double minconf) {
  std::vector<RuleGroup> groups = NaiveRuleGroups(d, cls, minsup);
  std::erase_if(groups, [&](const RuleGroup& g) {
    return g.confidence() < minconf - 1e-12;
  });
  return groups;
}

TEST(FarmerTest, RunningExampleAllGroups) {
  DiscreteDataset d = MakeRunningExampleDataset();
  FarmerOptions opt;
  opt.min_support = 2;
  MiningResult result = MineFarmer(d, 1, opt);
  const auto oracle = NaiveRuleGroups(d, 1, 2);
  EXPECT_EQ(Canonicalize(result.groups), Canonicalize(oracle));
}

class FarmerOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, double>> {};

TEST_P(FarmerOracleTest, MatchesOracle) {
  const auto [seed, minsup, minconf] = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.4);
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    const auto oracle = OracleWithMinConf(d, cls, minsup, minconf);
    for (auto backend :
         {FarmerOptions::Backend::kVector, FarmerOptions::Backend::kPrefixTree,
          FarmerOptions::Backend::kBitset}) {
      FarmerOptions opt;
      opt.min_support = minsup;
      opt.min_confidence = minconf;
      opt.backend = backend;
      MiningResult result = MineFarmer(d, cls, opt);
      ASSERT_EQ(Canonicalize(result.groups), Canonicalize(oracle))
          << "seed=" << seed << " minsup=" << minsup << " minconf=" << minconf
          << " cls=" << int(cls) << " backend=" << int(backend);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FarmerOracleTest,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.0, 0.6, 0.9)));

TEST(FarmerTest, ConfidencePruningNeverLosesGroups) {
  // minconf = 0 must produce every group that minconf = 0.8 produces.
  DiscreteDataset d = RandomDataset(21, 11, 13, 0.45);
  FarmerOptions all_opt;
  all_opt.min_support = 2;
  FarmerOptions conf_opt = all_opt;
  conf_opt.min_confidence = 0.8;
  const auto all = Canonicalize(MineFarmer(d, 1, all_opt).groups);
  const auto conf = Canonicalize(MineFarmer(d, 1, conf_opt).groups);
  for (const auto& g : conf) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), g));
  }
}

TEST(FarmerTest, ChiSquareFilterKeepsOnlyAssociatedGroups) {
  DiscreteDataset d = RandomDataset(41, 11, 13, 0.45);
  FarmerOptions base;
  base.min_support = 2;
  const auto all = MineFarmer(d, 1, base);
  FarmerOptions filtered = base;
  filtered.min_chi_square = 2.0;
  const auto strong = MineFarmer(d, 1, filtered);
  EXPECT_LE(strong.groups.size(), all.groups.size());
  // Every surviving group really has chi-square >= the threshold.
  const auto counts = d.ClassCounts();
  for (const RuleGroup& g : strong.groups) {
    const uint32_t with_class = g.support;
    const uint32_t with_other = g.antecedent_support - g.support;
    const double chi =
        ChiSquare({{with_class, with_other},
                   {counts[1] - with_class, counts[0] - with_other}});
    EXPECT_GE(chi, 2.0 - 1e-9);
  }
  // And the filter is exactly a post-filter of the unfiltered output.
  uint32_t qualifying = 0;
  for (const RuleGroup& g : all.groups) {
    const uint32_t with_class = g.support;
    const uint32_t with_other = g.antecedent_support - g.support;
    const double chi =
        ChiSquare({{with_class, with_other},
                   {counts[1] - with_class, counts[0] - with_other}});
    qualifying += chi >= 2.0;
  }
  EXPECT_EQ(strong.groups.size(), qualifying);
}

TEST(FarmerTest, MaxGroupsStopsEarly) {
  DiscreteDataset d = RandomDataset(13, 12, 14, 0.5);
  FarmerOptions opt;
  opt.min_support = 1;
  opt.max_groups = 3;
  MiningResult result = MineFarmer(d, 1, opt);
  EXPECT_EQ(result.groups.size(), 3u);
  EXPECT_TRUE(result.stats.timed_out);
}

class CharmOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(CharmOracleTest, MatchesOracle) {
  const auto [seed, minsup] = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.4);
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    const auto oracle = NaiveRuleGroups(d, cls, minsup);
    CharmOptions opt;
    opt.min_support = minsup;
    MiningResult result = MineCharm(d, cls, opt);
    ASSERT_EQ(Canonicalize(result.groups), Canonicalize(oracle))
        << "seed=" << seed << " minsup=" << minsup << " cls=" << int(cls);
    // Row supports must be materialized and consistent.
    for (const RuleGroup& g : result.groups) {
      EXPECT_EQ(g.row_support, d.ItemSupportSet(g.antecedent));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CharmOracleTest,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1u, 2u, 3u)));

class ClosetOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(ClosetOracleTest, MatchesOracle) {
  const auto [seed, minsup] = GetParam();
  DiscreteDataset d = RandomDataset(static_cast<uint64_t>(seed), 10, 12, 0.4);
  for (ClassLabel cls : {ClassLabel{1}, ClassLabel{0}}) {
    const auto oracle = NaiveRuleGroups(d, cls, minsup);
    ClosetOptions opt;
    opt.min_support = minsup;
    MiningResult result = MineCloset(d, cls, opt);
    ASSERT_EQ(Canonicalize(result.groups), Canonicalize(oracle))
        << "seed=" << seed << " minsup=" << minsup << " cls=" << int(cls);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosetOracleTest,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(BaselineAgreementTest, AllMinersFindTheSameClosedGroups) {
  for (uint64_t seed = 50; seed < 56; ++seed) {
    DiscreteDataset d = RandomDataset(seed, 11, 14, 0.45);
    FarmerOptions fo;
    fo.min_support = 2;
    CharmOptions co;
    co.min_support = 2;
    ClosetOptions lo;
    lo.min_support = 2;
    const auto farmer = Canonicalize(MineFarmer(d, 1, fo).groups);
    const auto charm = Canonicalize(MineCharm(d, 1, co).groups);
    const auto closet = Canonicalize(MineCloset(d, 1, lo).groups);
    EXPECT_EQ(farmer, charm) << seed;
    EXPECT_EQ(farmer, closet) << seed;
  }
}

TEST(NaiveMinerTest, RunningExampleGroups) {
  DiscreteDataset d = MakeRunningExampleDataset();
  const auto groups = NaiveRuleGroups(d, 1, 2);
  // Closed groups with class-C support >= 2: abc (rows 12), c (rows 1234),
  // cde (rows 134), e (rows 1345)... enumerate and sanity check key facts.
  bool found_abc = false;
  for (const auto& g : groups) {
    if (g.antecedent.Count() == 3 && g.support == 2 &&
        g.antecedent_support == 2) {
      found_abc = true;
    }
    EXPECT_GE(g.support, 2u);
    EXPECT_EQ(d.ItemSupportSet(g.antecedent), g.row_support);
  }
  EXPECT_TRUE(found_abc);
}

TEST(NaiveMinerTest, TopkListsAreSortedAndCovering) {
  DiscreteDataset d = RandomDataset(31, 9, 11, 0.5);
  const auto per_row = NaiveTopkRGS(d, 1, 1, 3);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    if (d.label(r) != 1) {
      EXPECT_TRUE(per_row[r].empty());
      continue;
    }
    for (size_t i = 0; i < per_row[r].size(); ++i) {
      EXPECT_TRUE(per_row[r][i].row_support.Test(r));
      if (i > 0) {
        EXPECT_GE(CompareSignificance(per_row[r][i - 1].support,
                                      per_row[r][i - 1].antecedent_support,
                                      per_row[r][i].support,
                                      per_row[r][i].antecedent_support),
                  0);
      }
    }
  }
}

}  // namespace
}  // namespace topkrgs
