// Property tests for the set-algebra kernels and the density-adaptive
// RowSet container (DESIGN.md §13).
//
// The determinism contract says representation and SIMD tier can never
// change results, only speed. These tests pin it from both ends:
//
//  * every kernel table the machine offers (scalar always; AVX2/AVX-512
//    when present) is compared pairwise against the blocked-scalar
//    reference on randomized word arrays, including the boundary shapes
//    the block loops must not fumble (n % 4 != 0 tails, all-zero,
//    all-ones, single straddling bits);
//  * the sparse and dense RowSet representations of the same element set
//    are compared on every operation of the interface, including Hash,
//    which must also equal Bitset::Hash of the same set.
//
// All randomness flows from explicit Rng seeds (determinism lint).

#include "util/rowset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/bitkernels.h"
#include "util/bitset.h"
#include "util/random.h"

namespace topkrgs {
namespace {

namespace bk = bitkernels;

std::vector<const bk::Kernels*> AllKernelTables() {
  std::vector<const bk::Kernels*> tables = {&bk::ScalarKernels()};
  if (bk::Avx2Kernels() != nullptr) tables.push_back(bk::Avx2Kernels());
  if (bk::Avx512Kernels() != nullptr) tables.push_back(bk::Avx512Kernels());
  return tables;
}

// Unblocked single-word loops: the semantics oracle every table must
// match (deliberately the dumbest possible implementation).
size_t NaivePopcount(const std::vector<uint64_t>& a) {
  size_t total = 0;
  for (uint64_t w : a) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t NaiveAndPopcount(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

bool NaiveIsSubset(const std::vector<uint64_t>& sub,
                   const std::vector<uint64_t>& sup) {
  for (size_t i = 0; i < sub.size(); ++i) {
    if ((sub[i] & ~sup[i]) != 0) return false;
  }
  return true;
}

bool NaiveIntersects(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

std::vector<uint64_t> RandomWords(Rng& rng, size_t n, int mode) {
  std::vector<uint64_t> w(n, 0);
  if (n == 0) return w;
  switch (mode) {
    case 0:  // uniform dense
      for (auto& x : w) x = rng.Next();
      break;
    case 1:  // sparse: a few set bits
      for (size_t j = 0; j < n / 2 + 1; ++j) {
        w[rng.NextBounded(n)] |= uint64_t{1} << rng.NextBounded(64);
      }
      break;
    case 2:  // all ones
      for (auto& x : w) x = ~uint64_t{0};
      break;
    case 3:  // all zeros
      break;
    case 4:  // single bit straddling a word boundary region
      w[rng.NextBounded(n)] = uint64_t{1} << 63;
      break;
    default:
      break;
  }
  return w;
}

TEST(BitKernelsTest, AllTiersMatchNaiveReference) {
  const auto tables = AllKernelTables();
  ASSERT_GE(tables.size(), 1u);
  Rng rng(101);
  // Word counts hit the 4-word (scalar/AVX2) and 8-word (AVX-512) block
  // boundaries and their tails; 0 checks the empty universe.
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 64, 129};
  for (size_t n : sizes) {
    for (int mode_a = 0; mode_a < 5; ++mode_a) {
      for (int mode_b = 0; mode_b < 5; ++mode_b) {
        const auto a = RandomWords(rng, n, mode_a);
        const auto b = RandomWords(rng, n, mode_b);
        for (const bk::Kernels* k : tables) {
          SCOPED_TRACE(testing::Message() << "tier=" << k->name << " n=" << n
                                          << " modes=" << mode_a << ","
                                          << mode_b);
          EXPECT_EQ(k->popcount(a.data(), n), NaivePopcount(a));
          EXPECT_EQ(k->and_popcount(a.data(), b.data(), n),
                    NaiveAndPopcount(a, b));
          EXPECT_EQ(k->is_subset(a.data(), b.data(), n), NaiveIsSubset(a, b));
          EXPECT_EQ(k->intersects(a.data(), b.data(), n),
                    NaiveIntersects(a, b));
          EXPECT_EQ(k->all_zero(a.data(), n), NaivePopcount(a) == 0);

          auto anded = a;
          k->and_inplace(anded.data(), b.data(), n);
          auto ored = a;
          k->or_inplace(ored.data(), b.data(), n);
          auto subbed = a;
          k->andnot_inplace(subbed.data(), b.data(), n);
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(anded[i], a[i] & b[i]);
            ASSERT_EQ(ored[i], a[i] | b[i]);
            ASSERT_EQ(subbed[i], a[i] & ~b[i]);
          }
        }
      }
    }
  }
}

TEST(BitKernelsTest, SubsetDetectsViolationInEveryBlockLane) {
  // A stray bit in any of the 4 (or 8) lanes of one block must flip the
  // verdict — catches a kernel that ORs the wrong lane.
  const auto tables = AllKernelTables();
  const size_t n = 16;
  for (size_t stray = 0; stray < n; ++stray) {
    std::vector<uint64_t> sup(n, ~uint64_t{0});
    std::vector<uint64_t> sub(n, 0x5555555555555555ULL);
    sup[stray] = ~0x8000000000000000ULL;
    sub[stray] = 0x8000000000000000ULL;
    for (const bk::Kernels* k : tables) {
      SCOPED_TRACE(testing::Message() << k->name << " stray=" << stray);
      EXPECT_FALSE(k->is_subset(sub.data(), sup.data(), n));
      sub[stray] = 0;
      EXPECT_TRUE(k->is_subset(sub.data(), sup.data(), n));
      sub[stray] = 0x8000000000000000ULL;
    }
  }
}

TEST(BitKernelsTest, ActiveTableIsOneOfTheResolvedTiers) {
  const bk::Kernels& active = bk::ActiveKernels();
  const auto tables = AllKernelTables();
  EXPECT_NE(std::find(tables.begin(), tables.end(), &active), tables.end())
      << "active tier " << active.name << " not among the resolvable tables";
  EXPECT_STREQ(bk::ActiveKernelName(), active.name);
}

TEST(BitKernelsTest, HashWordsMatchesStreamingHasher) {
  Rng rng(77);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
    const auto words = RandomWords(rng, n, 0);
    bk::WordHasher h(bk::kHashSeed ^ n);
    for (uint64_t w : words) h.Consume(w);
    EXPECT_EQ(bk::HashWords(words.data(), n, bk::kHashSeed ^ n), h.Finish());
  }
}

// --- sorted:: primitives -------------------------------------------------

std::vector<uint32_t> RandomSortedIds(Rng& rng, size_t universe,
                                      size_t target) {
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < universe && ids.size() < target; ++i) {
    if (rng.NextBounded(universe) < target) {
      ids.push_back(static_cast<uint32_t>(i));
    }
  }
  return ids;
}

TEST(SortedOpsTest, MatchStdAlgorithms) {
  Rng rng(303);
  for (int round = 0; round < 50; ++round) {
    const size_t universe = 1 + rng.NextBounded(2000);
    const auto a = RandomSortedIds(rng, universe, rng.NextBounded(universe));
    const auto b = RandomSortedIds(rng, universe, rng.NextBounded(universe));

    std::vector<uint32_t> expect_inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect_inter));
    std::vector<uint32_t> expect_diff;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expect_diff));

    EXPECT_EQ(sorted::IntersectCount(a.data(), a.size(), b.data(), b.size()),
              expect_inter.size());
    std::vector<uint32_t> inter;
    sorted::Intersect(a.data(), a.size(), b.data(), b.size(), &inter);
    EXPECT_EQ(inter, expect_inter);
    std::vector<uint32_t> diff;
    sorted::Difference(a.data(), a.size(), b.data(), b.size(), &diff);
    EXPECT_EQ(diff, expect_diff);
    for (uint32_t probe = 0; probe < 5; ++probe) {
      const uint32_t v = static_cast<uint32_t>(rng.NextBounded(universe));
      EXPECT_EQ(sorted::Contains(a.data(), a.size(), v),
                std::binary_search(a.begin(), a.end(), v));
    }
  }
}

TEST(SortedOpsTest, GallopingPathOnSkewedLists) {
  // Small ∩ huge exercises the galloping branch explicitly.
  std::vector<uint32_t> big;
  for (uint32_t i = 0; i < 5000; i += 2) big.push_back(i);
  const std::vector<uint32_t> small = {0, 4, 5, 4996, 4998, 4999};
  EXPECT_EQ(sorted::IntersectCount(small.data(), small.size(), big.data(),
                                   big.size()),
            4u);  // 0, 4, 4996, 4998
  std::vector<uint32_t> inter;
  sorted::Intersect(big.data(), big.size(), small.data(), small.size(),
                    &inter);
  EXPECT_EQ(inter, (std::vector<uint32_t>{0, 4, 4996, 4998}));
}

// --- RowSet: sparse vs dense --------------------------------------------

Bitset BitsetOf(const std::vector<uint32_t>& ids, size_t universe) {
  Bitset b(universe);
  for (uint32_t id : ids) b.Set(id);
  return b;
}

TEST(RowSetTest, RepresentationsAgreeOnEveryOperation) {
  Rng rng(555);
  const size_t universes[] = {1, 63, 64, 65, 127, 128, 129, 1000, 4096, 8192};
  for (size_t universe : universes) {
    for (int round = 0; round < 8; ++round) {
      const size_t target = rng.NextBounded(universe + 1);
      const auto ids = RandomSortedIds(rng, universe, target);
      const Bitset bits = BitsetOf(ids, universe);
      const RowSet dense = RowSet::DenseFrom(Bitset(bits));
      const RowSet sparse = RowSet::SparseFrom(ids, universe);
      const Bitset other =
          BitsetOf(RandomSortedIds(rng, universe,
                                   rng.NextBounded(universe + 1)),
                   universe);
      SCOPED_TRACE(testing::Message()
                   << "universe=" << universe << " |set|=" << ids.size());

      EXPECT_EQ(dense.Count(), ids.size());
      EXPECT_EQ(sparse.Count(), ids.size());
      EXPECT_EQ(sparse.universe(), dense.universe());
      EXPECT_EQ(dense.IntersectCount(other), sparse.IntersectCount(other));
      EXPECT_EQ(dense.IsSubsetOf(other), sparse.IsSubsetOf(other));
      EXPECT_EQ(dense.Intersects(other), sparse.Intersects(other));
      EXPECT_EQ(dense.ToVector(), sparse.ToVector());
      EXPECT_TRUE(dense.ToBitset() == sparse.ToBitset());

      // Hash: representation-independent AND equal to Bitset::Hash.
      EXPECT_EQ(dense.Hash(), bits.Hash());
      EXPECT_EQ(sparse.Hash(), bits.Hash());

      // Membership and ascending iteration.
      for (uint32_t probe = 0; probe < 5; ++probe) {
        const uint32_t v = static_cast<uint32_t>(rng.NextBounded(universe));
        EXPECT_EQ(dense.Test(v), sparse.Test(v));
        EXPECT_EQ(dense.Test(v), bits.Test(v));
      }
      std::vector<uint32_t> dense_iter, sparse_iter;
      dense.ForEach([&](size_t i) {
        dense_iter.push_back(static_cast<uint32_t>(i));
      });
      sparse.ForEach([&](size_t i) {
        sparse_iter.push_back(static_cast<uint32_t>(i));
      });
      EXPECT_EQ(dense_iter, sparse_iter);

      // Adaptive intersection: identical element sets and hashes out of
      // either input representation, whatever repr each result picked.
      const RowSet from_dense = dense.IntersectAdaptive(other);
      const RowSet from_sparse = sparse.IntersectAdaptive(other);
      EXPECT_EQ(from_dense.ToVector(), from_sparse.ToVector());
      EXPECT_EQ(from_dense.Hash(), from_sparse.Hash());
      EXPECT_EQ(from_dense.Count(), from_sparse.Count());
      EXPECT_EQ(from_dense.Count(),
                static_cast<size_t>(bits.IntersectCount(other)));
    }
  }
}

TEST(RowSetTest, FromBitsetHonorsDensityThreshold) {
  const size_t universe = 8192;  // 128 words
  Bitset sparse_bits(universe);
  for (uint32_t i = 0; i < 32; ++i) sparse_bits.Set(i * 17);
  EXPECT_TRUE(RowSet::PreferSparse(32, universe));
  EXPECT_TRUE(RowSet::FromBitset(sparse_bits).is_sparse());

  Bitset dense_bits(universe);
  for (uint32_t i = 0; i < 4096; ++i) dense_bits.Set(i * 2);
  EXPECT_FALSE(RowSet::PreferSparse(4096, universe));
  EXPECT_TRUE(RowSet::FromBitset(dense_bits).is_dense());
}

TEST(RowSetTest, SparseInputStaysSparseThroughIntersection) {
  const size_t universe = 4096;
  const std::vector<uint32_t> ids = {3, 64, 65, 1000, 4095};
  const RowSet s = RowSet::SparseFrom(ids, universe);
  ASSERT_TRUE(s.is_sparse());
  Bitset mask(universe);
  mask.Set(64);
  mask.Set(4095);
  const RowSet out = s.IntersectAdaptive(mask);
  EXPECT_TRUE(out.is_sparse());
  EXPECT_EQ(out.ToVector(), (std::vector<uint32_t>{64, 4095}));
}

TEST(RowSetTest, EmptyAndFullSets) {
  for (size_t universe : {size_t{64}, size_t{100}}) {
    const RowSet empty_sparse = RowSet::SparseFrom({}, universe);
    const RowSet empty_dense = RowSet::DenseFrom(Bitset(universe));
    EXPECT_TRUE(empty_sparse.None());
    EXPECT_TRUE(empty_dense.None());
    EXPECT_EQ(empty_sparse.Hash(), empty_dense.Hash());

    const Bitset all = Bitset::AllSet(universe);
    const RowSet full = RowSet::FromBitset(all);
    EXPECT_TRUE(full.is_dense());
    EXPECT_EQ(full.Count(), universe);
    EXPECT_TRUE(full.IsSubsetOf(all));
    EXPECT_EQ(full.Hash(), all.Hash());
  }
}

}  // namespace
}  // namespace topkrgs
