#include "classify/irg.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mine/topk_miner.h"

namespace topkrgs {

CbaClassifier TrainIrg(const DiscreteDataset& train, const IrgOptions& options) {
  std::vector<Rule> rules;
  const std::vector<uint32_t> class_counts = train.ClassCounts();
  for (uint32_t cls = 0; cls < train.num_classes(); ++cls) {
    if (class_counts[cls] == 0) continue;
    TopkMinerOptions mopt;
    mopt.k = 1;
    mopt.min_support = std::max<uint32_t>(
        1, static_cast<uint32_t>(options.min_support_frac * class_counts[cls]));
    TopkResult mined = MineTopkRGS(train, static_cast<ClassLabel>(cls), mopt);
    for (const RuleGroupPtr& group : mined.DistinctGroups()) {
      if (group->confidence() < options.min_confidence) continue;
      Rule rule;
      rule.antecedent = group->antecedent;  // upper bound rule
      rule.consequent = group->consequent;
      rule.support = group->support;
      rule.antecedent_support = group->antecedent_support;
      rules.push_back(std::move(rule));
    }
  }
  return CbaClassifier::TrainFromRules(train, std::move(rules));
}

}  // namespace topkrgs
