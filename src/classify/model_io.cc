#include "classify/model_io.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "util/io.h"

namespace topkrgs {

namespace {

std::string FormatRule(const Rule& rule) {
  std::string line = "rule " + std::to_string(static_cast<int>(rule.consequent)) +
                     ' ' + std::to_string(rule.support) + ' ' +
                     std::to_string(rule.antecedent_support);
  rule.antecedent.ForEach([&](size_t item) {
    line += ' ';
    line += std::to_string(item);
  });
  return line;
}

/// Parses "rule <consequent> <sup> <asup> <items...>" produced above.
/// Enforces the semantic rule invariants, not just the syntax: the
/// consequent must name a known class (RcbtClassifier::FromParts indexes
/// score_norm[consequent], so an unchecked value is an out-of-bounds
/// write), the antecedent support must be >= 1 (confidence() would divide
/// by zero), and support <= antecedent_support (confidence > 1 corrupts
/// SortRulesByPrecedence and RCBT voting).
StatusOr<Rule> ParseRule(std::string_view line, uint32_t num_items,
                         uint32_t num_classes) {
  const auto fields = SplitString(line, ' ');
  if (fields.size() < 5 || fields[0] != "rule") {
    return Status::InvalidArgument("malformed rule line: " + std::string(line));
  }
  auto consequent = ParseUint32(fields[1]);
  auto support = ParseUint32(fields[2]);
  auto asup = ParseUint32(fields[3]);
  if (!consequent.ok() || !support.ok() || !asup.ok()) {
    return Status::InvalidArgument("malformed rule numbers: " +
                                   std::string(line));
  }
  if (consequent.value() >= num_classes) {
    return Status::InvalidArgument(
        "rule consequent " + std::to_string(consequent.value()) +
        " out of range (num classes " + std::to_string(num_classes) + ")");
  }
  if (asup.value() == 0) {
    return Status::InvalidArgument("rule antecedent support must be >= 1: " +
                                   std::string(line));
  }
  if (support.value() > asup.value()) {
    return Status::InvalidArgument(
        "rule support exceeds antecedent support: " + std::string(line));
  }
  Rule rule;
  rule.consequent = static_cast<ClassLabel>(consequent.value());
  rule.support = support.value();
  rule.antecedent_support = asup.value();
  rule.antecedent = Bitset(num_items);
  for (size_t i = 4; i < fields.size(); ++i) {
    auto item = ParseUint(fields[i]);
    if (!item.ok() || item.value() >= num_items) {
      return Status::InvalidArgument("rule item out of range: " +
                                     std::string(fields[i]));
    }
    rule.antecedent.Set(item.value());
  }
  return rule;
}

StatusOr<uint64_t> ParseHeaderValue(const std::vector<std::string>& lines,
                                    size_t index, const std::string& key) {
  if (index >= lines.size()) {
    return Status::InvalidArgument("truncated model file: missing " + key);
  }
  const auto fields = SplitString(lines[index], ' ');
  if (fields.size() != 2 || fields[0] != key) {
    return Status::InvalidArgument("expected '" + key +
                                   " <value>', got: " + lines[index]);
  }
  return ParseUint(fields[1]);
}

/// "num_items <n>" with the ingestion cap: every rule antecedent is a
/// Bitset over this universe, so an unchecked count is an allocation bomb.
StatusOr<uint32_t> ParseNumItemsHeader(const std::vector<std::string>& lines,
                                       size_t index) {
  auto items = ParseHeaderValue(lines, index, "num_items");
  if (!items.ok()) return items.status();
  if (items.value() > kMaxItemUniverse) {
    return Status::InvalidArgument("num_items implausibly large: " +
                                   std::to_string(items.value()));
  }
  return static_cast<uint32_t>(items.value());
}

/// The line counts declared in headers must account for every line of the
/// file: anything left over is either a corrupt header undercounting its
/// payload or appended garbage, and both mean the file cannot be trusted.
/// Trailing blank lines are tolerated (editors add them).
Status ExpectNoTrailingContent(const std::vector<std::string>& lines,
                               size_t cursor) {
  for (size_t i = cursor; i < lines.size(); ++i) {
    if (!lines[i].empty()) {
      return Status::InvalidArgument("trailing garbage at line " +
                                     std::to_string(i + 1) + ": " + lines[i]);
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveDiscretization(const Discretization& disc, const std::string& path) {
  std::vector<std::string> lines;
  lines.push_back("topkrgs-discretization v1");
  lines.push_back("genes " + std::to_string(disc.num_selected_genes()));
  char buf[64];
  for (uint32_t s = 0; s < disc.num_selected_genes(); ++s) {
    std::string line = "gene " + std::to_string(disc.selected_genes()[s]);
    line += ' ';
    line += std::to_string(disc.cuts(s).size());
    for (double cut : disc.cuts(s)) {
      std::snprintf(buf, sizeof(buf), " %.17g", cut);
      line += buf;
    }
    lines.push_back(std::move(line));
  }
  return WriteLines(path, lines);
}

StatusOr<Discretization> ParseDiscretizationModel(
    const std::vector<std::string>& lines) {
  if (lines.empty() || lines[0] != "topkrgs-discretization v1") {
    return Status::InvalidArgument("not a topkrgs-discretization v1 file");
  }
  auto count = ParseHeaderValue(lines, 1, "genes");
  if (!count.ok()) return count.status();

  std::vector<GeneId> genes;
  std::vector<std::vector<double>> cuts;
  for (uint64_t i = 0; i < count.value(); ++i) {
    const size_t index = 2 + i;
    if (index >= lines.size()) {
      return Status::InvalidArgument("truncated discretization file");
    }
    const auto fields = SplitString(lines[index], ' ');
    if (fields.size() < 3 || fields[0] != "gene") {
      return Status::InvalidArgument("malformed gene line: " + lines[index]);
    }
    auto gene = ParseUint32(fields[1]);
    auto num_cuts = ParseUint32(fields[2]);
    if (!gene.ok() || !num_cuts.ok() ||
        fields.size() != static_cast<size_t>(3) + num_cuts.value()) {
      return Status::InvalidArgument("malformed gene line: " + lines[index]);
    }
    std::vector<double> gene_cuts;
    for (uint64_t c = 0; c < num_cuts.value(); ++c) {
      // Cut points define interval boundaries; a NaN cut would break the
      // strict weak ordering DiscretizeRow's binary search relies on.
      auto v = ParseFiniteDouble(fields[3 + c]);
      if (!v.ok()) return v.status();
      gene_cuts.push_back(v.value());
    }
    if (!genes.empty() && gene.value() <= genes.back()) {
      return Status::InvalidArgument("gene ids not ascending");
    }
    if (gene_cuts.empty() ||
        !std::is_sorted(gene_cuts.begin(), gene_cuts.end())) {
      return Status::InvalidArgument("cut points empty or unsorted");
    }
    genes.push_back(gene.value());
    cuts.push_back(std::move(gene_cuts));
  }
  TOPKRGS_RETURN_NOT_OK(
      ExpectNoTrailingContent(lines, 2 + static_cast<size_t>(count.value())));
  return Discretization::FromCuts(std::move(genes), std::move(cuts));
}

StatusOr<Discretization> LoadDiscretization(const std::string& path) {
  auto lines_or = ReadLines(path);
  if (!lines_or.ok()) return lines_or.status();
  return ParseDiscretizationModel(lines_or.value());
}

Status SaveCbaClassifier(const CbaClassifier& clf, uint32_t num_items,
                         const std::string& path) {
  std::vector<std::string> lines;
  lines.push_back("topkrgs-cba v1");
  lines.push_back("num_items " + std::to_string(num_items));
  lines.push_back("default " + std::to_string(static_cast<int>(clf.default_class())));
  lines.push_back("rules " + std::to_string(clf.rules().size()));
  for (const Rule& rule : clf.rules()) lines.push_back(FormatRule(rule));
  return WriteLines(path, lines);
}

StatusOr<CbaClassifier> ParseCbaModel(const std::vector<std::string>& lines,
                                      uint32_t* num_items) {
  if (lines.empty() || lines[0] != "topkrgs-cba v1") {
    return Status::InvalidArgument("not a topkrgs-cba v1 file");
  }
  auto items = ParseNumItemsHeader(lines, 1);
  if (!items.ok()) return items.status();
  auto default_class = ParseHeaderValue(lines, 2, "default");
  if (!default_class.ok()) return default_class.status();
  // The CBA format carries no class count, so the only hard bound is the
  // label type itself; anything wider would silently alias on narrowing.
  if (default_class.value() >= kMaxClasses) {
    return Status::InvalidArgument("default class out of range: " +
                                   std::to_string(default_class.value()));
  }
  auto num_rules = ParseHeaderValue(lines, 3, "rules");
  if (!num_rules.ok()) return num_rules.status();

  std::vector<Rule> rules;
  for (uint64_t i = 0; i < num_rules.value(); ++i) {
    if (4 + i >= lines.size()) {
      return Status::InvalidArgument("truncated cba model file");
    }
    auto rule = ParseRule(lines[4 + i], items.value(), kMaxClasses);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  TOPKRGS_RETURN_NOT_OK(ExpectNoTrailingContent(
      lines, 4 + static_cast<size_t>(num_rules.value())));
  if (num_items != nullptr) *num_items = items.value();
  return CbaClassifier::FromParts(
      std::move(rules), static_cast<ClassLabel>(default_class.value()));
}

StatusOr<CbaClassifier> LoadCbaClassifier(const std::string& path,
                                          uint32_t* num_items) {
  auto lines_or = ReadLines(path);
  if (!lines_or.ok()) return lines_or.status();
  return ParseCbaModel(lines_or.value(), num_items);
}

Status SaveRcbtClassifier(const RcbtClassifier& clf, uint32_t num_items,
                          const std::string& path) {
  std::vector<std::string> lines;
  lines.push_back("topkrgs-rcbt v1");
  lines.push_back("num_items " + std::to_string(num_items));
  {
    std::string line = "class_counts " +
                       std::to_string(clf.class_counts().size());
    for (uint32_t c : clf.class_counts()) {
      line += ' ';
      line += std::to_string(c);
    }
    lines.push_back(std::move(line));
  }
  lines.push_back("default " +
                  std::to_string(static_cast<int>(clf.default_class())));
  lines.push_back("classifiers " + std::to_string(clf.num_classifiers()));
  for (uint32_t j = 1; j <= clf.num_classifiers(); ++j) {
    const auto& rules = clf.classifier_rules(j);
    lines.push_back("classifier " + std::to_string(rules.size()));
    for (const Rule& rule : rules) lines.push_back(FormatRule(rule));
  }
  return WriteLines(path, lines);
}

StatusOr<RcbtClassifier> ParseRcbtModel(const std::vector<std::string>& lines,
                                        uint32_t* num_items) {
  if (lines.empty() || lines[0] != "topkrgs-rcbt v1") {
    return Status::InvalidArgument("not a topkrgs-rcbt v1 file");
  }
  auto items = ParseNumItemsHeader(lines, 1);
  if (!items.ok()) return items.status();

  // class_counts <n> <counts...>
  if (lines.size() < 3) return Status::InvalidArgument("truncated rcbt file");
  const auto count_fields = SplitString(lines[2], ' ');
  if (count_fields.size() < 2 || count_fields[0] != "class_counts") {
    return Status::InvalidArgument("expected class_counts line");
  }
  auto num_classes = ParseUint32(count_fields[1]);
  if (!num_classes.ok() || num_classes.value() == 0 ||
      num_classes.value() > kMaxClasses) {
    return Status::InvalidArgument("malformed class_counts line: " + lines[2]);
  }
  if (count_fields.size() !=
      static_cast<size_t>(2) + num_classes.value()) {
    return Status::InvalidArgument("class_counts count mismatch: " + lines[2]);
  }
  std::vector<uint32_t> class_counts;
  for (uint32_t c = 0; c < num_classes.value(); ++c) {
    auto v = ParseUint32(count_fields[2 + c]);
    if (!v.ok()) return v.status();
    class_counts.push_back(v.value());
  }

  auto default_class = ParseHeaderValue(lines, 3, "default");
  if (!default_class.ok()) return default_class.status();
  if (default_class.value() >= num_classes.value()) {
    return Status::InvalidArgument("default class out of range: " +
                                   std::to_string(default_class.value()));
  }
  auto num_classifiers = ParseHeaderValue(lines, 4, "classifiers");
  if (!num_classifiers.ok()) return num_classifiers.status();

  std::vector<std::vector<Rule>> classifiers;
  size_t cursor = 5;
  for (uint64_t j = 0; j < num_classifiers.value(); ++j) {
    auto num_rules = ParseHeaderValue(lines, cursor, "classifier");
    if (!num_rules.ok()) return num_rules.status();
    ++cursor;
    std::vector<Rule> rules;
    for (uint64_t i = 0; i < num_rules.value(); ++i, ++cursor) {
      if (cursor >= lines.size()) {
        return Status::InvalidArgument("truncated rcbt model file");
      }
      auto rule = ParseRule(lines[cursor], items.value(), num_classes.value());
      if (!rule.ok()) return rule.status();
      rules.push_back(std::move(rule).value());
    }
    classifiers.push_back(std::move(rules));
  }
  TOPKRGS_RETURN_NOT_OK(ExpectNoTrailingContent(lines, cursor));
  if (num_items != nullptr) *num_items = items.value();
  return RcbtClassifier::FromParts(
      std::move(classifiers), std::move(class_counts),
      static_cast<ClassLabel>(default_class.value()));
}

StatusOr<RcbtClassifier> LoadRcbtClassifier(const std::string& path,
                                            uint32_t* num_items) {
  auto lines_or = ReadLines(path);
  if (!lines_or.ok()) return lines_or.status();
  return ParseRcbtModel(lines_or.value(), num_items);
}

}  // namespace topkrgs
