#ifndef TOPKRGS_CLASSIFY_FIND_LB_H_
#define TOPKRGS_CLASSIFY_FIND_LB_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"

namespace topkrgs {

/// Options of algorithm FindLB (Figure 5): breadth-first search for the
/// `nl` shortest lower bound rules of a rule group, expanding items in
/// descending discriminative-score order.
struct FindLbOptions {
  /// Number of lower bounds requested (nl).
  uint32_t num_lower_bounds = 1;
  /// Maximum antecedent size searched; the paper observes real lower
  /// bounds contain 1-5 items.
  uint32_t max_depth = 5;
  /// Upper limit on examined candidate combinations (safety valve for the
  /// exponential worst case).
  uint64_t max_candidates = 2000000;
};

/// Finds up to nl shortest lower bound rules of `group` (Lemma 5.1):
/// minimal sub-antecedents A' of the upper bound with R(A') == R(A).
/// `item_scores[i]` ranks item i (higher = more discriminative gene, tried
/// first); pass an empty vector to rank by per-item information gain
/// computed from `data`. Results are ordered shortest-first, then by score.
std::vector<Rule> FindLowerBounds(const DiscreteDataset& data,
                                  const RuleGroup& group,
                                  const std::vector<double>& item_scores,
                                  const FindLbOptions& options);

/// Enumerates the COMPLETE set of lower bounds of `group` — every minimal
/// sub-antecedent with the same support set — the full enumeration FARMER
/// [6] performs (§5.1 notes it can be huge on entropy-discretized data;
/// this is intended for analysis on small groups and for tests).
/// `max_bounds` caps the output (0 = unlimited); `max_depth` caps the
/// antecedent size searched.
std::vector<Rule> FindAllLowerBounds(const DiscreteDataset& data,
                                     const RuleGroup& group,
                                     uint32_t max_depth = 6,
                                     uint64_t max_bounds = 100000);

/// Discriminative score per item computed from the discrete data alone:
/// information gain of the item-presence split against the class labels.
/// Used when no continuous gene values (entropy scores) are available.
std::vector<double> ItemScoresFromDiscrete(const DiscreteDataset& data);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_FIND_LB_H_
