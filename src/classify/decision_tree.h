#ifndef TOPKRGS_CLASSIFY_DECISION_TREE_H_
#define TOPKRGS_CLASSIFY_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace topkrgs {

/// A C4.5-style decision tree over continuous features: binary threshold
/// splits chosen by gain ratio, with C4.5's pessimistic (confidence-bound)
/// error pruning. Supports per-row weights so AdaBoost can reuse it.
class DecisionTree {
 public:
  struct Options {
    /// 0 = unlimited depth.
    uint32_t max_depth = 0;
    /// Minimum total weight required to attempt a split.
    double min_split_weight = 4.0;
    /// Use gain ratio (true, C4.5) or plain information gain.
    bool use_gain_ratio = true;
    /// Apply pessimistic subtree-replacement pruning.
    bool prune = true;
    /// C4.5 pruning confidence factor.
    double prune_cf = 0.25;
  };

  /// Tree node; exposed for tests and tools that inspect the model.
  struct Node {
    bool leaf = true;
    GeneId feature = 0;
    double threshold = 0.0;
    int32_t left = -1;   // x[feature] <= threshold
    int32_t right = -1;  // x[feature] >  threshold
    std::vector<double> class_weight;
  };

  /// Trains on `data`; `weights` may be empty (uniform) or one weight per
  /// row.
  static DecisionTree Train(const ContinuousDataset& data,
                            const std::vector<double>& weights,
                            const Options& options);

  ClassLabel Predict(const std::vector<double>& x) const;

  /// Fraction of training weight of each class at the reached leaf.
  std::vector<double> PredictDistribution(const std::vector<double>& x) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;

 private:
  int32_t Walk(const std::vector<double>& x) const;

  std::vector<Node> nodes_;
  uint32_t num_classes_ = 0;
};

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_DECISION_TREE_H_
