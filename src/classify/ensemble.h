#ifndef TOPKRGS_CLASSIFY_ENSEMBLE_H_
#define TOPKRGS_CLASSIFY_ENSEMBLE_H_

#include <cstdint>
#include <vector>

#include "classify/decision_tree.h"
#include "core/dataset.h"

namespace topkrgs {

/// Bagged decision trees (the C4.5-family "bagging" comparator): B trees
/// trained on bootstrap resamples, majority vote.
class BaggingClassifier {
 public:
  struct Options {
    uint32_t num_trees = 10;
    uint64_t seed = 7;
    DecisionTree::Options tree;
  };

  static BaggingClassifier Train(const ContinuousDataset& data,
                                 const Options& options);

  ClassLabel Predict(const std::vector<double>& x) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  uint32_t num_classes_ = 0;
};

/// AdaBoost.M1 over decision trees (the "boosting" comparator): weighted
/// reweighting rounds, log-odds vote. Stops early when a round's weighted
/// error reaches 0 or exceeds 1/2.
class AdaBoostClassifier {
 public:
  struct Options {
    uint32_t num_rounds = 10;
    DecisionTree::Options tree;
  };

  static AdaBoostClassifier Train(const ContinuousDataset& data,
                                  const Options& options);

  ClassLabel Predict(const std::vector<double>& x) const;

  size_t num_rounds_used() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
  uint32_t num_classes_ = 0;
};

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_ENSEMBLE_H_
