#include "classify/find_lb.h"

#include <algorithm>
#include <numeric>

#include "core/stats.h"
#include "util/hot_path.h"
#include "util/rowset.h"
#include "util/status.h"

namespace topkrgs {

std::vector<double> ItemScoresFromDiscrete(const DiscreteDataset& data) {
  std::vector<double> scores(data.num_items(), 0.0);
  std::vector<uint32_t> total(data.num_classes(), 0);
  for (RowId r = 0; r < data.num_rows(); ++r) ++total[data.label(r)];
  for (ItemId item = 0; item < data.num_items(); ++item) {
    std::vector<uint32_t> with(data.num_classes(), 0);
    data.item_rows(item).ForEach([&](size_t r) {
      ++with[data.label(static_cast<RowId>(r))];
    });
    std::vector<uint32_t> without(data.num_classes(), 0);
    for (uint32_t c = 0; c < data.num_classes(); ++c) {
      without[c] = total[c] - with[c];
    }
    scores[item] = InformationGain(total, {with, without});
  }
  return scores;
}

namespace {

/// BFS state: a candidate is a set of indices into the ranked item list,
/// stored ascending; children extend with strictly larger indices so every
/// combination is generated once.
struct Candidate {
  std::vector<uint32_t> indices;
};

/// Probe kernel shared by both lower-bound searches: intersects the row
/// sets of universe_items[indices[...]] through the caller's ping-pong
/// scratch pair and reports whether the chain's support hits target_rows
/// exactly. Intersection only shrinks the set, so once the running count
/// drops below the target the chain stops early; the adaptive container
/// switches to an id walk once the chain gets sparse. Hot: the windowed
/// BFS calls this once per candidate subset, and the scratch pair is what
/// keeps the per-probe allocation count at zero in steady state.
TKRGS_HOT bool ChainSupportMatches(const DiscreteDataset& data,
                                   const std::vector<ItemId>& universe_items,
                                   const std::vector<uint32_t>& indices,
                                   uint32_t target_rows, RowSet* rows,
                                   RowSet* next) {
  if (indices.size() == 1) {
    return data.item_rows(universe_items[indices[0]]).Count() == target_rows;
  }
  RowSet::IntersectOfInto(data.item_rows(universe_items[indices[0]]),
                          data.item_rows(universe_items[indices[1]]), rows);
  for (size_t i = 2; i < indices.size(); ++i) {
    if (rows->Count() < target_rows) return false;
    rows->IntersectAdaptiveInto(data.item_rows(universe_items[indices[i]]),
                                next);
    std::swap(rows, next);
  }
  return rows->Count() == target_rows;
}

}  // namespace

std::vector<Rule> FindLowerBounds(const DiscreteDataset& data,
                                  const RuleGroup& group,
                                  const std::vector<double>& item_scores,
                                  const FindLbOptions& options) {
  const uint32_t nl = std::max<uint32_t>(1, options.num_lower_bounds);

  // Step 1: rank the upper bound's items by descending score.
  std::vector<ItemId> ranked = group.antecedent.ToVector();
  std::vector<double> scores =
      item_scores.empty() ? ItemScoresFromDiscrete(data) : item_scores;
  TOPKRGS_CHECK(scores.size() >= data.num_items(), "item_scores too short");
  std::stable_sort(ranked.begin(), ranked.end(), [&](ItemId a, ItemId b) {
    return scores[a] > scores[b];
  });

  const uint32_t target_rows = group.antecedent_support;
  // Ping-pong scratch pair reused across every probe: the windowed BFS
  // evaluates thousands of candidate subsets, and rebuilding a dense
  // rowset from scratch for each was the dominant allocation source.
  RowSet rows_scratch, next_scratch;
  auto is_lower_bound_support = [&](const std::vector<uint32_t>& indices) {
    // Condition (2) of Lemma 5.1: R(A') == R(A). A' ⊆ A implies
    // R(A') ⊇ R(A), so comparing cardinalities suffices.
    return ChainSupportMatches(data, ranked, indices, target_rows,
                               &rows_scratch, &next_scratch);
  };

  std::vector<Rule> found;
  std::vector<std::vector<uint32_t>> found_indices;  // for minimality checks
  auto contains_found_subset = [&](const std::vector<uint32_t>& indices) {
    // Condition (3): no member of the group is a proper subset; BFS by size
    // means it is enough that no already-found lower bound is contained.
    for (const auto& lb : found_indices) {
      if (std::includes(indices.begin(), indices.end(), lb.begin(), lb.end())) {
        return true;
      }
    }
    return false;
  };

  // Step 2: breadth-first search, iteratively widening the window of
  // top-ranked items so the common case (short lower bounds among the most
  // discriminative genes) stays cheap.
  uint64_t examined = 0;
  for (uint32_t window = std::min<size_t>(16, ranked.size());;
       window = std::min<size_t>(static_cast<size_t>(window) * 2,
                                 ranked.size())) {
    found.clear();
    found_indices.clear();
    examined = 0;

    std::vector<Candidate> frontier;
    for (uint32_t i = 0; i < window; ++i) frontier.push_back({{i}});
    uint32_t depth = 1;
    while (!frontier.empty() && found.size() < nl &&
           depth <= options.max_depth && examined < options.max_candidates) {
      std::vector<Candidate> next;
      for (const Candidate& c : frontier) {
        if (found.size() >= nl || examined >= options.max_candidates) break;
        ++examined;
        if (contains_found_subset(c.indices)) continue;
        if (is_lower_bound_support(c.indices)) {
          Rule rule;
          rule.antecedent = Bitset(data.num_items());
          for (uint32_t idx : c.indices) rule.antecedent.Set(ranked[idx]);
          rule.consequent = group.consequent;
          rule.support = group.support;
          rule.antecedent_support = group.antecedent_support;
          found.push_back(std::move(rule));
          found_indices.push_back(c.indices);
          continue;  // supersets cannot be minimal
        }
        for (uint32_t idx = c.indices.back() + 1;
             idx < window && next.size() < options.max_candidates; ++idx) {
          Candidate child = c;
          child.indices.push_back(idx);
          next.push_back(std::move(child));
        }
      }
      frontier = std::move(next);
      ++depth;
    }

    if (found.size() >= nl || window == ranked.size() ||
        examined >= options.max_candidates) {
      break;
    }
  }

  if (found.empty() && !ranked.empty()) {
    // The bounded BFS can come up empty when every minimal lower bound is
    // longer than max_depth (e.g. a closure that needs several items to
    // exclude every outside row). Guarantee at least one rule by greedy
    // minimization: drop items (least discriminative first) whenever the
    // support set stays unchanged.
    Bitset antecedent = group.antecedent;
    for (auto it = ranked.rbegin(); it != ranked.rend(); ++it) {
      if (antecedent.Count() <= 1) break;
      Bitset trial = antecedent;
      trial.Reset(*it);
      if (data.ItemSupportSet(trial).Count() == target_rows) {
        antecedent = std::move(trial);
      }
    }
    Rule rule;
    rule.antecedent = std::move(antecedent);
    rule.consequent = group.consequent;
    rule.support = group.support;
    rule.antecedent_support = group.antecedent_support;
    found.push_back(std::move(rule));
  }
  return found;
}

std::vector<Rule> FindAllLowerBounds(const DiscreteDataset& data,
                                     const RuleGroup& group,
                                     uint32_t max_depth, uint64_t max_bounds) {
  const std::vector<ItemId> items = group.antecedent.ToVector();
  const uint32_t target_rows = group.antecedent_support;

  RowSet rows_scratch, next_scratch;  // reused across probes, as above
  auto supports_match = [&](const std::vector<uint32_t>& indices) {
    return ChainSupportMatches(data, items, indices, target_rows,
                               &rows_scratch, &next_scratch);
  };

  std::vector<Rule> found;
  std::vector<std::vector<uint32_t>> found_indices;
  std::vector<Candidate> frontier;
  for (uint32_t i = 0; i < items.size(); ++i) frontier.push_back({{i}});
  uint32_t depth = 1;
  while (!frontier.empty() && depth <= max_depth &&
         (max_bounds == 0 || found.size() < max_bounds)) {
    std::vector<Candidate> next;
    for (const Candidate& c : frontier) {
      if (max_bounds != 0 && found.size() >= max_bounds) break;
      bool superset_of_found = false;
      for (const auto& lb : found_indices) {
        if (std::includes(c.indices.begin(), c.indices.end(), lb.begin(),
                          lb.end())) {
          superset_of_found = true;
          break;
        }
      }
      if (superset_of_found) continue;
      if (supports_match(c.indices)) {
        Rule rule;
        rule.antecedent = Bitset(data.num_items());
        for (uint32_t idx : c.indices) rule.antecedent.Set(items[idx]);
        rule.consequent = group.consequent;
        rule.support = group.support;
        rule.antecedent_support = group.antecedent_support;
        found.push_back(std::move(rule));
        found_indices.push_back(c.indices);
        continue;
      }
      for (uint32_t idx = c.indices.back() + 1; idx < items.size(); ++idx) {
        Candidate child = c;
        child.indices.push_back(idx);
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return found;
}

}  // namespace topkrgs
