#ifndef TOPKRGS_CLASSIFY_CROSS_VALIDATION_H_
#define TOPKRGS_CLASSIFY_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "classify/evaluator.h"
#include "core/dataset.h"

namespace topkrgs {

/// Stratified k-fold assignment: fold_of[r] in [0, num_folds), with each
/// class's rows spread evenly across folds (shuffled by `seed`). Folds of
/// small classes may be empty only when the class has fewer rows than
/// folds.
std::vector<uint32_t> StratifiedFolds(const std::vector<ClassLabel>& labels,
                                      uint32_t num_folds, uint64_t seed);

/// Result of a cross-validation run: one evaluation per fold.
struct CrossValidationResult {
  std::vector<EvalOutcome> folds;

  double mean_accuracy() const;
  /// Pooled accuracy over all held-out rows.
  double pooled_accuracy() const;
};

/// A trained discrete-data classifier as a prediction closure:
/// (row items, used_default*) -> label.
using DiscretePredictor = std::function<ClassLabel(const Bitset&, bool*)>;

/// A trainer builds a predictor from a training dataset.
using DiscreteTrainer =
    std::function<DiscretePredictor(const DiscreteDataset&)>;

/// Runs stratified k-fold cross-validation of a discrete-data classifier on
/// `data`: for each fold, trains on the remaining rows and evaluates on the
/// held-out ones. The paper evaluates on fixed train/test splits; CV is the
/// standard protocol when no independent test set exists.
CrossValidationResult CrossValidateDiscrete(const DiscreteDataset& data,
                                            uint32_t num_folds, uint64_t seed,
                                            const DiscreteTrainer& trainer);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_CROSS_VALIDATION_H_
