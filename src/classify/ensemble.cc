#include "classify/ensemble.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/status.h"

namespace topkrgs {

BaggingClassifier BaggingClassifier::Train(const ContinuousDataset& data,
                                           const Options& options) {
  BaggingClassifier clf;
  clf.num_classes_ = data.num_classes();
  Rng rng(options.seed);
  const uint32_t n = data.num_rows();
  std::vector<double> weights(n);
  for (uint32_t t = 0; t < options.num_trees; ++t) {
    // A bootstrap resample expressed as integer weights keeps one shared
    // dataset instead of materializing copies.
    std::fill(weights.begin(), weights.end(), 0.0);
    for (uint32_t i = 0; i < n; ++i) {
      weights[rng.NextBounded(n)] += 1.0;
    }
    clf.trees_.push_back(DecisionTree::Train(data, weights, options.tree));
  }
  return clf;
}

ClassLabel BaggingClassifier::Predict(const std::vector<double>& x) const {
  std::vector<uint32_t> votes(num_classes_, 0);
  for (const DecisionTree& tree : trees_) ++votes[tree.Predict(x)];
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return static_cast<ClassLabel>(best);
}

AdaBoostClassifier AdaBoostClassifier::Train(const ContinuousDataset& data,
                                             const Options& options) {
  AdaBoostClassifier clf;
  clf.num_classes_ = data.num_classes();
  const uint32_t n = data.num_rows();
  TOPKRGS_CHECK(n > 0, "cannot boost on empty data");

  std::vector<double> weights(n, 1.0 / n);
  std::vector<double> scaled(n);
  std::vector<double> x(data.num_genes());
  for (uint32_t round = 0; round < options.num_rounds; ++round) {
    // The tree's stopping thresholds (min_split_weight) are calibrated in
    // row counts; rescale the distribution to total weight n.
    for (uint32_t r = 0; r < n; ++r) scaled[r] = weights[r] * n;
    DecisionTree tree = DecisionTree::Train(data, scaled, options.tree);

    double err = 0.0;
    std::vector<bool> wrong(n, false);
    for (uint32_t r = 0; r < n; ++r) {
      for (GeneId g = 0; g < data.num_genes(); ++g) x[g] = data.value(r, g);
      if (tree.Predict(x) != data.label(r)) {
        wrong[r] = true;
        err += weights[r];
      }
    }
    if (err >= 0.5) break;  // weak learner failed; AdaBoost.M1 stops
    const double safe_err = std::max(err, 1e-10);
    const double alpha = std::log((1.0 - safe_err) / safe_err);
    clf.trees_.push_back(std::move(tree));
    clf.alphas_.push_back(alpha);
    if (err <= 0.0) break;  // perfect round dominates all future votes

    const double beta = safe_err / (1.0 - safe_err);
    double total = 0.0;
    for (uint32_t r = 0; r < n; ++r) {
      if (!wrong[r]) weights[r] *= beta;
      total += weights[r];
    }
    for (double& w : weights) w /= total;
  }
  if (clf.trees_.empty()) {
    // Degenerate data: fall back to one unweighted tree with weight 1.
    clf.trees_.push_back(DecisionTree::Train(data, {}, options.tree));
    clf.alphas_.push_back(1.0);
  }
  return clf;
}

ClassLabel AdaBoostClassifier::Predict(const std::vector<double>& x) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (size_t t = 0; t < trees_.size(); ++t) {
    votes[trees_[t].Predict(x)] += alphas_[t];
  }
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return static_cast<ClassLabel>(best);
}

}  // namespace topkrgs
