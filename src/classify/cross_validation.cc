#include "classify/cross_validation.h"

#include <algorithm>

#include "util/random.h"
#include "util/status.h"

namespace topkrgs {

std::vector<uint32_t> StratifiedFolds(const std::vector<ClassLabel>& labels,
                                      uint32_t num_folds, uint64_t seed) {
  TOPKRGS_CHECK(num_folds >= 2, "need at least 2 folds");
  Rng rng(seed);
  std::vector<uint32_t> fold_of(labels.size(), 0);

  ClassLabel max_label = 0;
  for (ClassLabel l : labels) max_label = std::max(max_label, l);
  for (uint32_t cls = 0; cls <= max_label; ++cls) {
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < labels.size(); ++r) {
      if (labels[r] == cls) rows.push_back(r);
    }
    rng.Shuffle(rows);
    for (uint32_t i = 0; i < rows.size(); ++i) {
      fold_of[rows[i]] = i % num_folds;
    }
  }
  return fold_of;
}

double CrossValidationResult::mean_accuracy() const {
  if (folds.empty()) return 0.0;
  double sum = 0.0;
  for (const EvalOutcome& f : folds) sum += f.accuracy();
  return sum / folds.size();
}

double CrossValidationResult::pooled_accuracy() const {
  uint32_t correct = 0;
  uint32_t total = 0;
  for (const EvalOutcome& f : folds) {
    correct += f.correct;
    total += f.total;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

CrossValidationResult CrossValidateDiscrete(const DiscreteDataset& data,
                                            uint32_t num_folds, uint64_t seed,
                                            const DiscreteTrainer& trainer) {
  std::vector<ClassLabel> labels(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) labels[r] = data.label(r);
  const std::vector<uint32_t> fold_of =
      StratifiedFolds(labels, num_folds, seed);

  CrossValidationResult result;
  for (uint32_t fold = 0; fold < num_folds; ++fold) {
    std::vector<RowId> train_rows;
    std::vector<RowId> test_rows;
    for (RowId r = 0; r < data.num_rows(); ++r) {
      (fold_of[r] == fold ? test_rows : train_rows).push_back(r);
    }
    if (test_rows.empty() || train_rows.empty()) {
      result.folds.push_back(EvalOutcome{});
      continue;
    }
    const DiscreteDataset train = data.SelectRows(train_rows);
    const DiscreteDataset test = data.SelectRows(test_rows);
    const DiscretePredictor predictor = trainer(train);
    result.folds.push_back(EvaluateDiscrete(test, predictor));
  }
  return result;
}

}  // namespace topkrgs
