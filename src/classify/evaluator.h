#ifndef TOPKRGS_CLASSIFY_EVALUATOR_H_
#define TOPKRGS_CLASSIFY_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dataset.h"
#include "discretize/entropy_discretizer.h"

namespace topkrgs {

/// Accuracy summary of one classifier on one test set, including how often
/// the default class fired (Table 2's commentary metric).
struct EvalOutcome {
  uint32_t total = 0;
  uint32_t correct = 0;
  uint32_t default_used = 0;
  uint32_t default_errors = 0;

  double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }
};

/// Everything the paper's evaluation pipeline derives from one train/test
/// split: the fitted discretization, the discrete train/test datasets, the
/// continuous datasets restricted to the selected genes (what SVM and the
/// C4.5 family consume, per §6.2), and entropy scores per item for FindLB.
struct Pipeline {
  Discretization discretization;
  DiscreteDataset train;
  DiscreteDataset test;
  ContinuousDataset train_selected;
  ContinuousDataset test_selected;
  /// Entropy (best-split info gain) score of each item's gene.
  std::vector<double> item_scores;
};

/// Runs discretization on the training split and derives all views.
Pipeline PreparePipeline(const ContinuousDataset& train,
                         const ContinuousDataset& test);

/// Projects a continuous dataset onto a gene subset (keeping order).
ContinuousDataset SelectGenes(const ContinuousDataset& data,
                              const std::vector<GeneId>& genes);

/// Full confusion matrix plus the derived per-class metrics.
struct ConfusionMatrix {
  /// counts[actual][predicted].
  std::vector<std::vector<uint32_t>> counts;

  uint32_t total() const;
  double accuracy() const;
  /// Precision of class c: TP / (TP + FP); 0 when nothing was predicted c.
  double precision(ClassLabel c) const;
  /// Recall of class c: TP / (TP + FN); 0 when the class has no rows.
  double recall(ClassLabel c) const;
  /// F1 of class c (harmonic mean of precision and recall).
  double f1(ClassLabel c) const;
};

/// Evaluates a discrete-data classifier into a confusion matrix.
ConfusionMatrix ConfusionDiscrete(
    const DiscreteDataset& test,
    const std::function<ClassLabel(const Bitset&, bool*)>& predict);

/// Evaluates a discrete-data classifier. `predict` returns the label and
/// sets *used_default when the classifier fell back to its default class.
EvalOutcome EvaluateDiscrete(
    const DiscreteDataset& test,
    const std::function<ClassLabel(const Bitset&, bool*)>& predict);

/// Evaluates a continuous-data classifier (no default-class notion).
EvalOutcome EvaluateContinuous(
    const ContinuousDataset& test,
    const std::function<ClassLabel(const std::vector<double>&)>& predict);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_EVALUATOR_H_
