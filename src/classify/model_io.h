#ifndef TOPKRGS_CLASSIFY_MODEL_IO_H_
#define TOPKRGS_CLASSIFY_MODEL_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "classify/cba.h"
#include "classify/rcbt.h"
#include "discretize/entropy_discretizer.h"
#include "util/status.h"

namespace topkrgs {

/// Text (line-based) serialization of trained models and fitted
/// discretizations, so a mined rule base or classifier can be shipped and
/// applied without re-mining. Formats are versioned ("topkrgs-<kind> v1").
///
/// The Parse* functions are the hardened ingestion boundary: they consume
/// untrusted lines (a file, a network payload, fuzzer input) and either
/// return a fully validated object or a non-OK Status — never an abort,
/// never a partially checked object. Validated invariants, per README's
/// format spec: magic line and header keys, counts consistent with the
/// number of lines (truncation and trailing garbage both rejected), all
/// ids/counts fit their storage width (no silent narrowing, no integer
/// overflow), consequent/default < num_classes, item < num_items,
/// 1 <= antecedent_support, support <= antecedent_support, cut points
/// finite/sorted/non-empty, gene ids strictly ascending, and declared
/// universes bounded by kMaxItemUniverse/kMaxClasses.
///
/// The Load* wrappers add file I/O (IOError on unreadable paths) and are
/// what the CLI uses.

/// Saves/loads a fitted discretization (selected genes and cut points; the
/// item catalog is rebuilt on load).
[[nodiscard]] Status SaveDiscretization(const Discretization& disc, const std::string& path);
[[nodiscard]] StatusOr<Discretization> ParseDiscretizationModel(
    const std::vector<std::string>& lines);
[[nodiscard]] StatusOr<Discretization> LoadDiscretization(const std::string& path);

/// Saves/loads a CBA rule-list classifier. `num_items` on load must match
/// the dataset the model will be applied to.
[[nodiscard]] Status SaveCbaClassifier(const CbaClassifier& clf, uint32_t num_items,
                         const std::string& path);
[[nodiscard]] StatusOr<CbaClassifier> ParseCbaModel(const std::vector<std::string>& lines,
                                      uint32_t* num_items = nullptr);
[[nodiscard]] StatusOr<CbaClassifier> LoadCbaClassifier(const std::string& path,
                                          uint32_t* num_items = nullptr);

/// Saves/loads an RCBT classifier (all sub-classifier rule lists, the
/// class counts and the default class).
[[nodiscard]] Status SaveRcbtClassifier(const RcbtClassifier& clf, uint32_t num_items,
                          const std::string& path);
[[nodiscard]] StatusOr<RcbtClassifier> ParseRcbtModel(const std::vector<std::string>& lines,
                                        uint32_t* num_items = nullptr);
[[nodiscard]] StatusOr<RcbtClassifier> LoadRcbtClassifier(const std::string& path,
                                            uint32_t* num_items = nullptr);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_MODEL_IO_H_
