#ifndef TOPKRGS_CLASSIFY_MODEL_IO_H_
#define TOPKRGS_CLASSIFY_MODEL_IO_H_

#include <string>

#include "classify/cba.h"
#include "classify/rcbt.h"
#include "discretize/entropy_discretizer.h"
#include "util/status.h"

namespace topkrgs {

/// Text (line-based) serialization of trained models and fitted
/// discretizations, so a mined rule base or classifier can be shipped and
/// applied without re-mining. Formats are versioned ("topkrgs-<kind> v1");
/// loaders reject unknown kinds/versions and malformed payloads with
/// InvalidArgument.

/// Saves/loads a fitted discretization (selected genes and cut points; the
/// item catalog is rebuilt on load).
Status SaveDiscretization(const Discretization& disc, const std::string& path);
StatusOr<Discretization> LoadDiscretization(const std::string& path);

/// Saves/loads a CBA rule-list classifier. `num_items` on load must match
/// the dataset the model will be applied to.
Status SaveCbaClassifier(const CbaClassifier& clf, uint32_t num_items,
                         const std::string& path);
StatusOr<CbaClassifier> LoadCbaClassifier(const std::string& path,
                                          uint32_t* num_items = nullptr);

/// Saves/loads an RCBT classifier (all sub-classifier rule lists, the
/// class counts and the default class).
Status SaveRcbtClassifier(const RcbtClassifier& clf, uint32_t num_items,
                          const std::string& path);
StatusOr<RcbtClassifier> LoadRcbtClassifier(const std::string& path,
                                            uint32_t* num_items = nullptr);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_MODEL_IO_H_
