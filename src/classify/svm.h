#ifndef TOPKRGS_CLASSIFY_SVM_H_
#define TOPKRGS_CLASSIFY_SVM_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace topkrgs {

/// Binary soft-margin SVM trained with SMO (the SVM^light comparator of
/// Table 2). Supports the two kernels the paper evaluates: linear and
/// polynomial. Labels must be {0, 1}; features are standardized on the
/// training statistics.
class SvmClassifier {
 public:
  enum class Kernel { kLinear, kPolynomial };

  struct Options {
    Kernel kernel = Kernel::kLinear;
    double c = 1.0;           // soft-margin penalty
    uint32_t poly_degree = 3;
    double poly_coef0 = 1.0;
    double tolerance = 1e-3;
    uint32_t max_passes = 20;   // SMO passes without alpha changes
    uint32_t max_iterations = 100000;
    bool standardize = true;
    uint64_t seed = 11;
  };

  static SvmClassifier Train(const ContinuousDataset& data,
                             const Options& options);

  ClassLabel Predict(const std::vector<double>& x) const;
  /// Signed decision value (positive = class 1).
  double DecisionValue(const std::vector<double>& x) const;

  size_t num_support_vectors() const { return support_vectors_.size(); }

 private:
  double KernelValue(const std::vector<double>& a,
                     const std::vector<double>& b) const;
  std::vector<double> StandardizeRow(const std::vector<double>& x) const;

  Options opt_;
  std::vector<std::vector<double>> support_vectors_;  // standardized
  std::vector<double> coefficients_;                  // alpha_i * y_i
  double bias_ = 0.0;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_SVM_H_
