#include "classify/svm.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/status.h"

namespace topkrgs {

namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

double SvmClassifier::KernelValue(const std::vector<double>& a,
                                  const std::vector<double>& b) const {
  const double d = Dot(a, b);
  if (opt_.kernel == Kernel::kLinear) return d;
  // Scale the inner product by the dimension (gamma = 1/m, the libsvm
  // default); raw dots of thousands of standardized features would make
  // the polynomial kernel numerically useless.
  const double base = d / static_cast<double>(a.size()) + opt_.poly_coef0;
  double v = 1.0;
  for (uint32_t i = 0; i < opt_.poly_degree; ++i) v *= base;
  return v;
}

std::vector<double> SvmClassifier::StandardizeRow(
    const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - feature_mean_[i]) * feature_scale_[i];
  }
  return out;
}

SvmClassifier SvmClassifier::Train(const ContinuousDataset& data,
                                   const Options& options) {
  TOPKRGS_CHECK(data.num_classes() <= 2, "SVM comparator is binary");
  const uint32_t n = data.num_rows();
  const uint32_t m = data.num_genes();
  TOPKRGS_CHECK(n >= 2, "SVM needs at least two rows");

  SvmClassifier clf;
  clf.opt_ = options;
  clf.feature_mean_.assign(m, 0.0);
  clf.feature_scale_.assign(m, 1.0);
  if (options.standardize) {
    for (GeneId g = 0; g < m; ++g) {
      double mean = 0.0;
      for (RowId r = 0; r < n; ++r) mean += data.value(r, g);
      mean /= n;
      double var = 0.0;
      for (RowId r = 0; r < n; ++r) {
        const double d = data.value(r, g) - mean;
        var += d * d;
      }
      var /= n;
      clf.feature_mean_[g] = mean;
      clf.feature_scale_[g] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  std::vector<std::vector<double>> x(n, std::vector<double>(m));
  std::vector<double> y(n);
  for (RowId r = 0; r < n; ++r) {
    std::vector<double> raw(m);
    for (GeneId g = 0; g < m; ++g) raw[g] = data.value(r, g);
    x[r] = clf.StandardizeRow(raw);
    y[r] = data.label(r) == 1 ? 1.0 : -1.0;
  }

  // Precompute the kernel matrix; the paper's datasets have few rows.
  std::vector<std::vector<double>> kernel(n, std::vector<double>(n));
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i; j < n; ++j) {
      kernel[i][j] = kernel[j][i] = clf.KernelValue(x[i], x[j]);
    }
  }

  // Simplified SMO (Platt 1998 via the simplified variant): pick violating
  // alpha_i, pair with a random alpha_j, solve the 2-variable subproblem.
  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  Rng rng(options.seed);
  auto decision = [&](uint32_t i) {
    double s = b;
    for (uint32_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) s += alpha[j] * y[j] * kernel[j][i];
    }
    return s;
  };

  uint32_t passes = 0;
  uint32_t iterations = 0;
  const double c = options.c;
  const double tol = options.tolerance;
  while (passes < options.max_passes && iterations < options.max_iterations) {
    ++iterations;
    uint32_t changed = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const double ei = decision(i) - y[i];
      if (!((y[i] * ei < -tol && alpha[i] < c) ||
            (y[i] * ei > tol && alpha[i] > 0))) {
        continue;
      }
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n - 1));
      if (j >= i) ++j;
      const double ej = decision(j) - y[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2 * kernel[i][j] - kernel[i][i] - kernel[j][j];
      if (eta >= 0) continue;
      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - ei - y[i] * (ai - ai_old) * kernel[i][i] -
                        y[j] * (aj - aj_old) * kernel[i][j];
      const double b2 = b - ej - y[i] * (ai - ai_old) * kernel[i][j] -
                        y[j] * (aj - aj_old) * kernel[j][j];
      if (ai > 0 && ai < c) {
        b = b1;
      } else if (aj > 0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  clf.bias_ = b;
  for (uint32_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      clf.support_vectors_.push_back(std::move(x[i]));
      clf.coefficients_.push_back(alpha[i] * y[i]);
    }
  }
  return clf;
}

double SvmClassifier::DecisionValue(const std::vector<double>& x) const {
  const std::vector<double> z = StandardizeRow(x);
  double s = bias_;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    s += coefficients_[i] * KernelValue(support_vectors_[i], z);
  }
  return s;
}

ClassLabel SvmClassifier::Predict(const std::vector<double>& x) const {
  return DecisionValue(x) >= 0.0 ? 1 : 0;
}

}  // namespace topkrgs
