#include "classify/rcbt.h"


#include "classify/cba.h"
#include "classify/find_lb.h"
#include "mine/miner_common.h"
#include "mine/topk_miner.h"
#include "util/status.h"

namespace topkrgs {

namespace {

/// Voting score S(γ) = conf * sup / d_c (bounded by 1).
double VotingScore(const Rule& rule, const std::vector<uint32_t>& class_counts) {
  const uint32_t d = class_counts[rule.consequent];
  if (d == 0) return 0.0;
  return rule.confidence() * static_cast<double>(rule.support) / d;
}

}  // namespace

RcbtClassifier RcbtClassifier::FromParts(
    std::vector<std::vector<Rule>> classifiers,
    std::vector<uint32_t> class_counts, ClassLabel default_class) {
  RcbtClassifier clf;
  clf.class_counts_ = std::move(class_counts);
  clf.num_classes_ = static_cast<uint32_t>(clf.class_counts_.size());
  clf.default_class_ = default_class;
  for (auto& rules : classifiers) {
    SubClassifier sub;
    sub.rules = std::move(rules);
    sub.score_norm.assign(clf.num_classes_, 0.0);
    for (const Rule& rule : sub.rules) {
      // Deserialization (ParseRcbtModel) validates consequents against the
      // class count before calling here; an out-of-range consequent at this
      // point is a caller bug, not bad input.
      TOPKRGS_CHECK(rule.consequent < clf.num_classes_,
                    "FromParts: rule consequent out of range");
      sub.score_norm[rule.consequent] += VotingScore(rule, clf.class_counts_);
    }
    clf.classifiers_.push_back(std::move(sub));
  }
  return clf;
}

RcbtClassifier RcbtClassifier::Train(const DiscreteDataset& train,
                                     const RcbtOptions& options) {
  TOPKRGS_CHECK(options.k >= 1, "RCBT needs k >= 1");
  RcbtClassifier clf;
  clf.num_classes_ = train.num_classes();
  clf.class_counts_ = train.ClassCounts();

  // Mine top-k covering rule groups once per class.
  std::vector<TopkResult> mined(train.num_classes());
  for (uint32_t cls = 0; cls < train.num_classes(); ++cls) {
    if (clf.class_counts_[cls] == 0) continue;
    TopkMinerOptions mopt;
    mopt.k = options.k;
    mopt.min_support =
        MinSupportFromFrac(options.min_support_frac, clf.class_counts_[cls]);
    mined[cls] = MineTopkRGS(train, static_cast<ClassLabel>(cls), mopt);
  }

  FindLbOptions lopt;
  lopt.num_lower_bounds = options.nl;

  bool default_set = false;
  for (uint32_t j = 1; j <= options.k; ++j) {
    // RG_j: groups appearing as a top-j group of some row, over all classes.
    std::vector<Rule> rules;
    for (uint32_t cls = 0; cls < train.num_classes(); ++cls) {
      for (const RuleGroupPtr& group : mined[cls].GroupsAtRank(j)) {
        std::vector<Rule> lbs =
            FindLowerBounds(train, *group, options.item_scores, lopt);
        for (Rule& lb : lbs) rules.push_back(std::move(lb));
      }
    }
    if (rules.empty()) {
      if (j == 1) break;  // nothing mined at all
      continue;
    }
    // Sort by CBA's precedence and prune rules that classify no training
    // row correctly. Unlike CBA's Step 3 this keeps every such rule rather
    // than cascading row removal: RCBT aggregates a *subset of rules* per
    // decision, and Figure 7 (accuracy responds to nl up to ~15-20 rules
    // per group) only makes sense if the covering lists survive selection.
    SortRulesByPrecedence(&rules);
    SubClassifier sub;
    std::vector<uint32_t> covered_correctly(train.num_rows(), 0);
    for (Rule& rule : rules) {
      bool correct = false;
      for (RowId r = 0; r < train.num_rows(); ++r) {
        if (train.label(r) == rule.consequent &&
            rule.antecedent.IsSubsetOf(train.row_bitset(r))) {
          correct = true;
          covered_correctly[r] = 1;
        }
      }
      if (correct) sub.rules.push_back(std::move(rule));
    }
    sub.score_norm.assign(train.num_classes(), 0.0);
    for (const Rule& rule : sub.rules) {
      sub.score_norm[rule.consequent] += VotingScore(rule, clf.class_counts_);
    }
    if (j == 1) {
      // Default class: majority among the training rows no main-classifier
      // rule classifies correctly.
      std::vector<uint32_t> uncovered(train.num_classes(), 0);
      bool any_uncovered = false;
      for (RowId r = 0; r < train.num_rows(); ++r) {
        if (!covered_correctly[r]) {
          ++uncovered[train.label(r)];
          any_uncovered = true;
        }
      }
      if (any_uncovered) {
        ClassLabel majority = 0;
        for (uint32_t c = 1; c < uncovered.size(); ++c) {
          if (uncovered[c] > uncovered[majority]) {
            majority = static_cast<ClassLabel>(c);
          }
        }
        clf.default_class_ = majority;
        default_set = true;
      }
    }
    clf.classifiers_.push_back(std::move(sub));
  }

  if (!default_set) {
    ClassLabel majority = 0;
    for (uint32_t c = 1; c < clf.class_counts_.size(); ++c) {
      if (clf.class_counts_[c] > clf.class_counts_[majority]) {
        majority = static_cast<ClassLabel>(c);
      }
    }
    clf.default_class_ = majority;
  }
  return clf;
}

RcbtClassifier::Prediction RcbtClassifier::Predict(
    const Bitset& row_items) const {
  Prediction out;
  for (uint32_t j = 0; j < classifiers_.size(); ++j) {
    const SubClassifier& sub = classifiers_[j];
    std::vector<double> scores(num_classes_, 0.0);
    std::vector<uint32_t> matched;
    for (uint32_t i = 0; i < sub.rules.size(); ++i) {
      const Rule& rule = sub.rules[i];
      if (!rule.antecedent.IsSubsetOf(row_items)) continue;
      matched.push_back(i);
      scores[rule.consequent] += VotingScore(rule, class_counts_);
    }
    if (matched.empty()) continue;
    for (uint32_t c = 0; c < num_classes_; ++c) {
      if (sub.score_norm[c] > 0.0) scores[c] /= sub.score_norm[c];
    }
    uint32_t best = 0;
    for (uint32_t c = 1; c < num_classes_; ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    out.label = static_cast<ClassLabel>(best);
    out.classifier_index = j + 1;
    out.used_default = false;
    out.scores = std::move(scores);
    out.matched_rules = std::move(matched);
    return out;
  }
  out.label = default_class_;
  out.classifier_index = 0;
  out.used_default = true;
  return out;
}

}  // namespace topkrgs
