#ifndef TOPKRGS_CLASSIFY_CBA_H_
#define TOPKRGS_CLASSIFY_CBA_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"

namespace topkrgs {

/// A rule-list classifier built with CBA's method [Liu, Hsu & Ma, KDD 98]:
/// candidate rules sorted by the "<" precedence (confidence desc, support
/// desc, shorter antecedent / earlier discovery first), selected by the
/// database-coverage procedure (Step 3 of §2.2), truncated at the prefix
/// with the fewest training errors (Step 4), with a default class for
/// uncovered data.
class CbaClassifier {
 public:
  /// Reassembles a classifier from its parts (model deserialization); no
  /// selection is performed — `rules` must already be the final sorted list.
  static CbaClassifier FromParts(std::vector<Rule> rules,
                                 ClassLabel default_class);

  /// Builds the classifier from candidate rules; `rules` order is the
  /// discovery order used for tie-breaking. `apply_error_cut` toggles Step 4
  /// (truncation at the minimal-error prefix); RCBT's sub-classifiers use
  /// only the Step-3 coverage selection and keep the full covering list.
  static CbaClassifier TrainFromRules(const DiscreteDataset& train,
                                      std::vector<Rule> rules,
                                      bool apply_error_cut = true);

  /// Predicts by the first matching rule; falls back to the default class.
  /// `used_default`, when non-null, reports whether the default fired.
  /// Read-only and data-race-free: one trained classifier may be shared
  /// across any number of threads (the serving stack does; pinned under
  /// TSan by classify_threads_test).
  ClassLabel Predict(const Bitset& row_items,
                     bool* used_default = nullptr) const;

  struct Prediction {
    ClassLabel label = 0;
    bool used_default = false;
    /// Index into rules() of the first matching rule; -1 when the default
    /// fired.
    int64_t matched_rule = -1;
    /// Confidence of the matched rule (0 when the default fired).
    double confidence = 0.0;
  };

  /// Predict plus the evidence the serving layer reports: which rule
  /// decided and how confident it is. Same decision as Predict.
  Prediction PredictDetailed(const Bitset& row_items) const;

  const std::vector<Rule>& rules() const { return rules_; }
  ClassLabel default_class() const { return default_class_; }

  /// Rows of `train` left uncovered after the coverage phase — the data the
  /// default class was chosen from. Exposed for RCBT's default selection.
  const std::vector<RowId>& uncovered_rows() const { return uncovered_rows_; }

 private:
  std::vector<Rule> rules_;
  ClassLabel default_class_ = 0;
  std::vector<RowId> uncovered_rows_;
};

/// End-to-end CBA exactly as the paper builds it: mine the top-1 covering
/// rule group of every training row (per class), take one shortest lower
/// bound each (FindLB with nl = 1), then run CBA rule selection.
struct CbaOptions {
  /// minsup as a fraction of the consequent class size (paper: 0.7).
  double min_support_frac = 0.7;
  /// Optional minimum confidence imposed on the lower bounds (0 disables;
  /// the paper notes all top-1 groups passed 0.8 in its experiments).
  double min_confidence = 0.0;
  /// Item ranking for FindLB; empty = info gain from the discrete data.
  std::vector<double> item_scores;
};

CbaClassifier TrainCba(const DiscreteDataset& train, const CbaOptions& options);

/// Sorts rules by CBA's "<" precedence in place (stable for full ties).
void SortRulesByPrecedence(std::vector<Rule>* rules);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_CBA_H_
