#include "classify/cba.h"

#include <algorithm>
#include <numeric>

#include "classify/find_lb.h"
#include "mine/miner_common.h"
#include "mine/topk_miner.h"
#include "util/status.h"

namespace topkrgs {

void SortRulesByPrecedence(std::vector<Rule>* rules) {
  std::vector<uint32_t> index(rules->size());
  std::iota(index.begin(), index.end(), 0);
  std::stable_sort(index.begin(), index.end(), [&](uint32_t a, uint32_t b) {
    const Rule& ra = (*rules)[a];
    const Rule& rb = (*rules)[b];
    const int sig = CompareSignificance(ra.support, ra.antecedent_support,
                                        rb.support, rb.antecedent_support);
    if (sig != 0) return sig > 0;
    const size_t la = ra.antecedent.Count();
    const size_t lb = rb.antecedent.Count();
    if (la != lb) return la < lb;  // shorter rule first
    return a < b;                  // discovered earlier first
  });
  std::vector<Rule> sorted;
  sorted.reserve(rules->size());
  for (uint32_t i : index) sorted.push_back(std::move((*rules)[i]));
  *rules = std::move(sorted);
}

CbaClassifier CbaClassifier::FromParts(std::vector<Rule> rules,
                                       ClassLabel default_class) {
  CbaClassifier clf;
  clf.rules_ = std::move(rules);
  clf.default_class_ = default_class;
  return clf;
}

CbaClassifier CbaClassifier::TrainFromRules(const DiscreteDataset& train,
                                            std::vector<Rule> rules,
                                            bool apply_error_cut) {
  SortRulesByPrecedence(&rules);

  CbaClassifier clf;
  const uint32_t n = train.num_rows();
  std::vector<bool> covered(n, false);
  uint32_t remaining = n;

  std::vector<uint32_t> class_remaining(train.num_classes(), 0);
  for (RowId r = 0; r < n; ++r) ++class_remaining[train.label(r)];

  struct Step {
    uint32_t rule_errors;      // misclassified among rows this rule removed
    ClassLabel default_class;  // majority of the data remaining afterwards
    uint32_t default_errors;   // errors that default would make afterwards
  };
  std::vector<Step> steps;
  std::vector<Rule> selected;

  for (Rule& rule : rules) {
    if (remaining == 0) break;
    // Does the rule correctly classify some remaining row?
    bool correct = false;
    std::vector<RowId> matches;
    for (RowId r = 0; r < n; ++r) {
      if (covered[r]) continue;
      if (!rule.antecedent.IsSubsetOf(train.row_bitset(r))) continue;
      matches.push_back(r);
      if (train.label(r) == rule.consequent) correct = true;
    }
    if (!correct) continue;

    uint32_t rule_errors = 0;
    for (RowId r : matches) {
      covered[r] = true;
      --remaining;
      --class_remaining[train.label(r)];
      if (train.label(r) != rule.consequent) ++rule_errors;
    }
    ClassLabel majority = 0;
    for (uint32_t c = 1; c < class_remaining.size(); ++c) {
      if (class_remaining[c] > class_remaining[majority]) {
        majority = static_cast<ClassLabel>(c);
      }
    }
    const uint32_t default_errors = remaining - class_remaining[majority];
    steps.push_back(Step{rule_errors, majority, default_errors});
    selected.push_back(std::move(rule));
  }

  // Step 4: cut the list at the prefix with the least total error.
  ClassLabel best_default = 0;
  {
    std::vector<uint32_t> counts = train.ClassCounts();
    for (uint32_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[best_default]) {
        best_default = static_cast<ClassLabel>(c);
      }
    }
  }
  uint32_t best_errors = n;  // empty classifier: default over everything
  {
    std::vector<uint32_t> counts = train.ClassCounts();
    best_errors = n - counts[best_default];
  }
  size_t best_len = 0;
  uint32_t cumulative = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    cumulative += steps[i].rule_errors;
    const uint32_t total = cumulative + steps[i].default_errors;
    if (total < best_errors) {
      best_errors = total;
      best_len = i + 1;
      best_default = steps[i].default_class;
    }
  }
  if (!apply_error_cut) {
    // Keep every coverage-selected rule; the default still comes from the
    // data left uncovered at the end of the coverage phase.
    best_len = steps.size();
    if (!steps.empty()) best_default = steps.back().default_class;
  }
  selected.resize(best_len);
  clf.rules_ = std::move(selected);
  clf.default_class_ = best_default;

  // Recompute the uncovered set w.r.t. the final (possibly truncated) list.
  std::vector<bool> final_covered(n, false);
  for (const Rule& rule : clf.rules_) {
    for (RowId r = 0; r < n; ++r) {
      if (!final_covered[r] && rule.antecedent.IsSubsetOf(train.row_bitset(r))) {
        final_covered[r] = true;
      }
    }
  }
  for (RowId r = 0; r < n; ++r) {
    if (!final_covered[r]) clf.uncovered_rows_.push_back(r);
  }
  return clf;
}

ClassLabel CbaClassifier::Predict(const Bitset& row_items,
                                  bool* used_default) const {
  for (const Rule& rule : rules_) {
    if (rule.antecedent.IsSubsetOf(row_items)) {
      if (used_default != nullptr) *used_default = false;
      return rule.consequent;
    }
  }
  if (used_default != nullptr) *used_default = true;
  return default_class_;
}

CbaClassifier::Prediction CbaClassifier::PredictDetailed(
    const Bitset& row_items) const {
  Prediction out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.antecedent.IsSubsetOf(row_items)) {
      out.label = rule.consequent;
      out.used_default = false;
      out.matched_rule = static_cast<int64_t>(i);
      out.confidence = rule.confidence();
      return out;
    }
  }
  out.label = default_class_;
  out.used_default = true;
  return out;
}

CbaClassifier TrainCba(const DiscreteDataset& train, const CbaOptions& options) {
  std::vector<Rule> rules;
  const std::vector<uint32_t> class_counts = train.ClassCounts();
  for (uint32_t cls = 0; cls < train.num_classes(); ++cls) {
    if (class_counts[cls] == 0) continue;
    TopkMinerOptions mopt;
    mopt.k = 1;
    mopt.min_support =
        MinSupportFromFrac(options.min_support_frac, class_counts[cls]);
    TopkResult mined =
        MineTopkRGS(train, static_cast<ClassLabel>(cls), mopt);
    FindLbOptions lopt;
    lopt.num_lower_bounds = 1;
    for (const RuleGroupPtr& group : mined.DistinctGroups()) {
      std::vector<Rule> lbs =
          FindLowerBounds(train, *group, options.item_scores, lopt);
      for (Rule& lb : lbs) {
        if (options.min_confidence > 0.0 &&
            lb.confidence() < options.min_confidence) {
          continue;
        }
        rules.push_back(std::move(lb));
      }
    }
  }
  return CbaClassifier::TrainFromRules(train, std::move(rules));
}

}  // namespace topkrgs
