#ifndef TOPKRGS_CLASSIFY_RCBT_H_
#define TOPKRGS_CLASSIFY_RCBT_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"

namespace topkrgs {

/// Options of RCBT — Refined Classification Based on TopkRGS (§5.2).
struct RcbtOptions {
  /// Covering rule groups mined per row; builds 1 main + (k-1) standby
  /// classifiers (paper: 10).
  uint32_t k = 10;
  /// Shortest lower bound rules per rule group (paper: 20).
  uint32_t nl = 20;
  /// minsup as a fraction of the consequent class size (paper: 0.7).
  double min_support_frac = 0.7;
  /// Item ranking for FindLB; empty = info gain from the discrete data.
  std::vector<double> item_scores;
};

/// RCBT: a main classifier CL_1 built from the top-1 covering rule groups
/// plus standby classifiers CL_2..CL_k from the lower-ranked groups. Each
/// classifier aggregates normalized confidence-times-support voting scores
/// over all of its matching rules; a test row falls through to the first
/// classifier with any matching rule, and to the default class only when
/// none matches.
class RcbtClassifier {
 public:
  static RcbtClassifier Train(const DiscreteDataset& train,
                              const RcbtOptions& options);

  /// Reassembles a classifier from its parts (model deserialization):
  /// the rule lists of CL_1..CL_k in order, the training class counts
  /// (d_ci, the voting-score denominators), and the default class. The
  /// per-class score normalizers are recomputed.
  static RcbtClassifier FromParts(std::vector<std::vector<Rule>> classifiers,
                                  std::vector<uint32_t> class_counts,
                                  ClassLabel default_class);

  /// Training rows per class (the voting-score denominators d_ci).
  const std::vector<uint32_t>& class_counts() const { return class_counts_; }

  struct Prediction {
    ClassLabel label = 0;
    /// 1-based index of the classifier that decided (1 = main classifier);
    /// 0 when the default class was used.
    uint32_t classifier_index = 0;
    bool used_default = false;
    /// Aggregated per-class scores of the deciding classifier (empty when
    /// the default fired).
    std::vector<double> scores;
    /// Indices (into classifier_rules(classifier_index)) of the lower-bound
    /// rules that matched the row — the evidence behind the vote. Empty
    /// when the default fired.
    std::vector<uint32_t> matched_rules;
  };

  /// Classifies one row. Read-only and data-race-free: callers may share
  /// one trained classifier across any number of threads (the serving
  /// stack does; pinned under TSan by classify_threads_test).
  Prediction Predict(const Bitset& row_items) const;

  uint32_t num_classifiers() const {
    return static_cast<uint32_t>(classifiers_.size());
  }
  /// Selected rules of classifier CL_j (1-based).
  const std::vector<Rule>& classifier_rules(uint32_t j) const {
    return classifiers_[j - 1].rules;
  }
  ClassLabel default_class() const { return default_class_; }

 private:
  struct SubClassifier {
    std::vector<Rule> rules;
    /// S_norm per class: sum of rule voting scores of that class.
    std::vector<double> score_norm;
  };

  std::vector<SubClassifier> classifiers_;
  std::vector<uint32_t> class_counts_;  // d_ci: training rows per class
  ClassLabel default_class_ = 0;
  uint32_t num_classes_ = 0;
};

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_RCBT_H_
