#include "classify/evaluator.h"

#include "core/stats.h"

namespace topkrgs {

ContinuousDataset SelectGenes(const ContinuousDataset& data,
                              const std::vector<GeneId>& genes) {
  ContinuousDataset out(static_cast<uint32_t>(genes.size()));
  for (uint32_t i = 0; i < genes.size(); ++i) {
    out.set_gene_name(i, data.gene_name(genes[i]));
  }
  out.set_class_names(data.class_names());
  std::vector<double> row(genes.size());
  for (RowId r = 0; r < data.num_rows(); ++r) {
    for (uint32_t i = 0; i < genes.size(); ++i) {
      row[i] = data.value(r, genes[i]);
    }
    out.AddRow(row, data.label(r));
  }
  return out;
}

Pipeline PreparePipeline(const ContinuousDataset& train,
                         const ContinuousDataset& test) {
  Pipeline p;
  EntropyDiscretizer discretizer;
  p.discretization = discretizer.Fit(train);
  p.train = p.discretization.Apply(train);
  p.test = p.discretization.Apply(test);
  p.train_selected = SelectGenes(train, p.discretization.selected_genes());
  p.test_selected = SelectGenes(test, p.discretization.selected_genes());

  // Entropy score of each item = best-split info gain of its gene on the
  // training data (the ranking FindLB uses, §5.1).
  std::vector<uint8_t> labels(train.num_rows());
  for (RowId r = 0; r < train.num_rows(); ++r) labels[r] = train.label(r);
  std::vector<double> gene_score(train.num_genes(), 0.0);
  for (GeneId g : p.discretization.selected_genes()) {
    gene_score[g] =
        BestSplitInfoGain(train.GeneColumn(g), labels, train.num_classes());
  }
  p.item_scores.resize(p.discretization.num_items());
  for (ItemId item = 0; item < p.discretization.num_items(); ++item) {
    p.item_scores[item] = gene_score[p.discretization.item(item).gene];
  }
  return p;
}

uint32_t ConfusionMatrix::total() const {
  uint32_t t = 0;
  for (const auto& row : counts) {
    for (uint32_t c : row) t += c;
  }
  return t;
}

double ConfusionMatrix::accuracy() const {
  const uint32_t t = total();
  if (t == 0) return 0.0;
  uint32_t diag = 0;
  for (size_t c = 0; c < counts.size(); ++c) diag += counts[c][c];
  return static_cast<double>(diag) / t;
}

double ConfusionMatrix::precision(ClassLabel c) const {
  uint32_t predicted = 0;
  for (const auto& row : counts) predicted += row[c];
  return predicted == 0 ? 0.0
                        : static_cast<double>(counts[c][c]) / predicted;
}

double ConfusionMatrix::recall(ClassLabel c) const {
  uint32_t actual = 0;
  for (uint32_t v : counts[c]) actual += v;
  return actual == 0 ? 0.0 : static_cast<double>(counts[c][c]) / actual;
}

double ConfusionMatrix::f1(ClassLabel c) const {
  const double p = precision(c);
  const double r = recall(c);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix ConfusionDiscrete(
    const DiscreteDataset& test,
    const std::function<ClassLabel(const Bitset&, bool*)>& predict) {
  ConfusionMatrix matrix;
  matrix.counts.assign(test.num_classes(),
                       std::vector<uint32_t>(test.num_classes(), 0));
  for (RowId r = 0; r < test.num_rows(); ++r) {
    bool used_default = false;
    const ClassLabel got = predict(test.row_bitset(r), &used_default);
    if (got < test.num_classes()) {
      ++matrix.counts[test.label(r)][got];
    }
  }
  return matrix;
}

EvalOutcome EvaluateDiscrete(
    const DiscreteDataset& test,
    const std::function<ClassLabel(const Bitset&, bool*)>& predict) {
  EvalOutcome out;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    bool used_default = false;
    const ClassLabel got = predict(test.row_bitset(r), &used_default);
    ++out.total;
    const bool ok = got == test.label(r);
    out.correct += ok;
    if (used_default) {
      ++out.default_used;
      out.default_errors += !ok;
    }
  }
  return out;
}

EvalOutcome EvaluateContinuous(
    const ContinuousDataset& test,
    const std::function<ClassLabel(const std::vector<double>&)>& predict) {
  EvalOutcome out;
  std::vector<double> x(test.num_genes());
  for (RowId r = 0; r < test.num_rows(); ++r) {
    for (GeneId g = 0; g < test.num_genes(); ++g) x[g] = test.value(r, g);
    ++out.total;
    out.correct += predict(x) == test.label(r);
  }
  return out;
}

}  // namespace topkrgs
