#ifndef TOPKRGS_CLASSIFY_IRG_H_
#define TOPKRGS_CLASSIFY_IRG_H_

#include "classify/cba.h"
#include "core/dataset.h"

namespace topkrgs {

/// The IRG classifier of FARMER [Cong et al., SIGMOD 2004]: identical to
/// CBA's selection procedure but built directly from the *upper bound*
/// rules of the interesting rule groups, filtered by a fixed minimum
/// confidence (the paper's experiments use 0.8).
struct IrgOptions {
  /// minsup as a fraction of the consequent class size (paper: 0.7).
  double min_support_frac = 0.7;
  double min_confidence = 0.8;
};

CbaClassifier TrainIrg(const DiscreteDataset& train, const IrgOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_CLASSIFY_IRG_H_
