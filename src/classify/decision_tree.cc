#include "classify/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace topkrgs {

namespace {

double WeightedEntropy(const std::vector<double>& class_weight, double total) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : class_weight) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

/// Normal quantile for the upper-tail probability cf (C4.5 uses cf = 0.25,
/// z ≈ 0.6745); small table with linear interpolation.
double ZFromCf(double cf) {
  struct P {
    double cf, z;
  };
  static constexpr P kTable[] = {{0.001, 3.0902}, {0.005, 2.5758},
                                 {0.01, 2.3263},  {0.05, 1.6449},
                                 {0.10, 1.2816},  {0.20, 0.8416},
                                 {0.25, 0.6745},  {0.40, 0.2533},
                                 {0.50, 0.0}};
  if (cf <= kTable[0].cf) return kTable[0].z;
  for (size_t i = 1; i < std::size(kTable); ++i) {
    if (cf <= kTable[i].cf) {
      const double t =
          (cf - kTable[i - 1].cf) / (kTable[i].cf - kTable[i - 1].cf);
      return kTable[i - 1].z + t * (kTable[i].z - kTable[i - 1].z);
    }
  }
  return 0.0;
}

/// C4.5's pessimistic error estimate: upper confidence bound on the number
/// of errors given E observed errors out of N (weighted) cases.
double PessimisticErrors(double errors, double n, double cf) {
  if (n <= 0.0) return 0.0;
  if (errors <= 0.0) {
    return n * (1.0 - std::pow(cf, 1.0 / n));
  }
  const double z = ZFromCf(cf);
  const double f = errors / n;
  const double z2 = z * z;
  const double p =
      (f + z2 / (2 * n) + z * std::sqrt(f / n - f * f / n + z2 / (4 * n * n))) /
      (1.0 + z2 / n);
  return n * std::min(1.0, p);
}

double LeafErrors(const std::vector<double>& class_weight) {
  double total = 0.0;
  double best = 0.0;
  for (double w : class_weight) {
    total += w;
    best = std::max(best, w);
  }
  return total - best;
}

class TreeBuilder {
 public:
  TreeBuilder(const ContinuousDataset& data, const std::vector<double>& weights,
              const DecisionTree::Options& options)
      : data_(data), weights_(weights), opt_(options) {}

  int32_t Build(std::vector<DecisionTree::Node>& nodes,
                std::vector<uint32_t> rows, uint32_t depth) {
    std::vector<double> class_weight(data_.num_classes(), 0.0);
    double total = 0.0;
    for (uint32_t r : rows) {
      class_weight[data_.label(r)] += weights_[r];
      total += weights_[r];
    }
    const int32_t index = static_cast<int32_t>(nodes.size());
    nodes.push_back(DecisionTree::Node{});
    nodes[index].class_weight = class_weight;

    uint32_t classes_present = 0;
    for (double w : class_weight) classes_present += (w > 0.0);
    const bool depth_ok = opt_.max_depth == 0 || depth < opt_.max_depth;
    if (classes_present < 2 || total < opt_.min_split_weight || !depth_ok) {
      return index;
    }

    GeneId best_feature = 0;
    double best_threshold = 0.0;
    if (!FindBestSplit(rows, class_weight, total, &best_feature,
                       &best_threshold)) {
      return index;
    }

    std::vector<uint32_t> left_rows;
    std::vector<uint32_t> right_rows;
    for (uint32_t r : rows) {
      (data_.value(r, best_feature) <= best_threshold ? left_rows : right_rows)
          .push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) return index;
    rows.clear();
    rows.shrink_to_fit();

    nodes[index].leaf = false;
    nodes[index].feature = best_feature;
    nodes[index].threshold = best_threshold;
    const int32_t left = Build(nodes, std::move(left_rows), depth + 1);
    nodes[index].left = left;
    const int32_t right = Build(nodes, std::move(right_rows), depth + 1);
    nodes[index].right = right;

    if (opt_.prune) MaybePrune(nodes, index);
    return index;
  }

 private:
  bool FindBestSplit(const std::vector<uint32_t>& rows,
                     const std::vector<double>& parent_weight, double total,
                     GeneId* best_feature, double* best_threshold) const {
    const double parent_entropy = WeightedEntropy(parent_weight, total);
    std::vector<uint32_t> order(rows);
    std::vector<double> left(data_.num_classes());
    std::vector<double> right(data_.num_classes());
    double best_score = 0.0;
    bool found = false;
    for (GeneId g = 0; g < data_.num_genes(); ++g) {
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return data_.value(a, g) < data_.value(b, g);
      });
      std::fill(left.begin(), left.end(), 0.0);
      double left_total = 0.0;
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        const uint32_t r = order[i];
        left[data_.label(r)] += weights_[r];
        left_total += weights_[r];
        if (data_.value(r, g) == data_.value(order[i + 1], g)) continue;
        const double right_total = total - left_total;
        if (left_total <= 0.0 || right_total <= 0.0) continue;
        for (uint32_t c = 0; c < right.size(); ++c) {
          right[c] = parent_weight[c] - left[c];
        }
        const double cond =
            (left_total / total) * WeightedEntropy(left, left_total) +
            (right_total / total) * WeightedEntropy(right, right_total);
        const double gain = parent_entropy - cond;
        if (gain <= 1e-12) continue;
        double score = gain;
        if (opt_.use_gain_ratio) {
          const double pl = left_total / total;
          const double split_info =
              -pl * std::log2(pl) - (1 - pl) * std::log2(1 - pl);
          if (split_info <= 1e-12) continue;
          score = gain / split_info;
        }
        if (!found || score > best_score) {
          found = true;
          best_score = score;
          *best_feature = g;
          *best_threshold =
              0.5 * (data_.value(r, g) + data_.value(order[i + 1], g));
        }
      }
    }
    return found;
  }

  double SubtreeErrors(const std::vector<DecisionTree::Node>& nodes,
                       int32_t index) const {
    const DecisionTree::Node& node = nodes[index];
    if (node.leaf) {
      double total = 0.0;
      for (double w : node.class_weight) total += w;
      return PessimisticErrors(LeafErrors(node.class_weight), total,
                               opt_.prune_cf);
    }
    return SubtreeErrors(nodes, node.left) + SubtreeErrors(nodes, node.right);
  }

  /// Subtree replacement: collapse `index` into a leaf when the pessimistic
  /// error of the leaf is no worse than that of the subtree.
  void MaybePrune(std::vector<DecisionTree::Node>& nodes, int32_t index) const {
    DecisionTree::Node& node = nodes[index];
    double total = 0.0;
    for (double w : node.class_weight) total += w;
    const double as_leaf = PessimisticErrors(LeafErrors(node.class_weight),
                                             total, opt_.prune_cf);
    const double as_subtree = SubtreeErrors(nodes, index);
    if (as_leaf <= as_subtree + 0.1) {
      node.leaf = true;
      node.left = node.right = -1;
      // Child nodes become unreachable; they are left in the arena, which
      // only costs memory during training.
    }
  }

  const ContinuousDataset& data_;
  const std::vector<double>& weights_;
  const DecisionTree::Options& opt_;
};

}  // namespace

DecisionTree DecisionTree::Train(const ContinuousDataset& data,
                                 const std::vector<double>& weights,
                                 const Options& options) {
  TOPKRGS_CHECK(data.num_rows() > 0, "cannot train a tree on empty data");
  std::vector<double> w = weights;
  if (w.empty()) w.assign(data.num_rows(), 1.0);
  TOPKRGS_CHECK(w.size() == data.num_rows(), "weights/rows size mismatch");

  DecisionTree tree;
  tree.num_classes_ = data.num_classes();
  std::vector<uint32_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  TreeBuilder builder(data, w, options);
  builder.Build(tree.nodes_, std::move(rows), 0);
  return tree;
}

size_t DecisionTree::num_leaves() const {
  // Count only reachable leaves (pruning may orphan arena nodes).
  size_t leaves = 0;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    if (node.leaf) {
      ++leaves;
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return leaves;
}

int32_t DecisionTree::Walk(const std::vector<double>& x) const {
  int32_t node = 0;
  while (!nodes_[node].leaf) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return node;
}

ClassLabel DecisionTree::Predict(const std::vector<double>& x) const {
  const Node& leaf = nodes_[Walk(x)];
  uint32_t best = 0;
  for (uint32_t c = 1; c < leaf.class_weight.size(); ++c) {
    if (leaf.class_weight[c] > leaf.class_weight[best]) best = c;
  }
  return static_cast<ClassLabel>(best);
}

std::vector<double> DecisionTree::PredictDistribution(
    const std::vector<double>& x) const {
  const Node& leaf = nodes_[Walk(x)];
  double total = 0.0;
  for (double w : leaf.class_weight) total += w;
  std::vector<double> dist(leaf.class_weight);
  if (total > 0.0) {
    for (double& w : dist) w /= total;
  }
  return dist;
}

}  // namespace topkrgs
