#ifndef TOPKRGS_SYNTH_GENERATOR_H_
#define TOPKRGS_SYNTH_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/status.h"

namespace topkrgs {

/// Shape and signal parameters of one synthetic microarray dataset.
///
/// The paper evaluates on four clinical datasets (Table 1) that are no
/// longer publicly retrievable; this generator reproduces their statistical
/// shape: the same row/gene counts and train/test splits, a planted set of
/// class-informative genes of graded strength (so the entropy-MDL
/// discretizer selects a comparable feature subset), and correlated gene
/// blocks (co-expressed genes, which give rule groups the large upper
/// bounds and huge lower-bound counts the paper describes).
struct DatasetProfile {
  std::string name;
  uint32_t num_genes = 1000;
  // Training rows per class (class 1 listed first, as in Table 1).
  uint32_t train_class1 = 20;
  uint32_t train_class0 = 20;
  // Test rows per class.
  uint32_t test_class1 = 10;
  uint32_t test_class0 = 10;
  /// Contamination-immune on/off marker genes (huge shift, no flips) —
  /// the clean biomarkers that make datasets like the ovarian proteomics
  /// profiles nearly perfectly separable.
  uint32_t perfect_genes = 0;
  /// Trap genes: flawless class signal on the training batch, pure noise on
  /// the test batch. Models the batch-specific artifacts of the prostate
  /// data that make greedy top-ranked-gene methods (C4.5, and partially
  /// SVM) collapse while rule conjunctions merely abstain (§6.2).
  uint32_t trap_genes = 0;
  /// Genes carrying a strong class signal (mean shift kStrongShift sigmas).
  uint32_t strong_genes = 40;
  /// Genes carrying a weak class signal (mean shift drawn from
  /// [weak_shift_lo, weak_shift_hi] sigmas).
  uint32_t weak_genes = 400;
  double weak_shift_lo = 0.8;
  double weak_shift_hi = 1.6;
  /// Number of correlated blocks among informative genes; genes in a block
  /// share one latent class-dependent factor, creating co-expression.
  uint32_t correlated_blocks = 12;
  /// Genes per correlated block.
  uint32_t block_size = 8;
  /// Probability that an informative gene's value for a sample is drawn
  /// from the opposite class's distribution (class overlap / noise).
  double contamination = 0.08;
  /// Fraction of informative genes that are one-sided markers: their
  /// class-1 expression is clean (every class-1 sample shows it) and only
  /// class-0 samples spill over. One-sided items cover the whole class —
  /// the "present in all tumors, sometimes in normals" biomarker pattern —
  /// which is what gives the full-class rule groups genuine, transferable
  /// lower bounds.
  double one_sided_frac = 0.5;
  /// Probability that a *test* row is atypical: drawn with heavy
  /// contamination that also hits the perfect marker genes. Models the
  /// distribution shift of the paper's independent test sets (collected in
  /// different labs/batches than the training data).
  double test_flip_prob = 0.0;
  /// Constant added to every gene value of every test row (global batch /
  /// intensity shift between training and test experiments).
  double test_batch_shift = 0.0;
  uint64_t seed = 1;

  /// Profiles approximating the paper's Table 1 datasets.
  static DatasetProfile ALL();  // ALL/AML leukemia: 38 train (27:11), 34 test
  static DatasetProfile LC();   // Lung cancer: 32 train (16:16), 149 test
  static DatasetProfile OC();   // Ovarian cancer: 210 train (133:77), 43 test
  static DatasetProfile PC();   // Prostate cancer: 102 train (52:50), 34 test

  /// Scaled-down profiles of the same shape for fast unit tests and CI.
  static DatasetProfile Tiny(uint64_t seed);
};

/// A generated dataset split into the paper's fixed train/test partitions.
struct GeneratedData {
  ContinuousDataset train;
  ContinuousDataset test;
};

/// Deterministically generates a dataset from a profile (same seed, same
/// bytes on every platform).
GeneratedData GenerateMicroarray(const DatasetProfile& profile);

/// The four Table 1 profiles in paper order.
std::vector<DatasetProfile> PaperProfiles();

/// Streams a profile's train and test splits straight to TSV files,
/// holding one formatted chunk (~chunk_bytes) in memory instead of the
/// whole matrix. Output is byte-identical to GenerateMicroarray followed
/// by ContinuousDataset::WriteTsv on each split — the generator draws in
/// the same order, only the sink differs.
Status StreamMicroarrayTsv(const DatasetProfile& profile,
                           const std::string& train_path,
                           const std::string& test_path,
                           size_t chunk_bytes = size_t{1} << 20);

}  // namespace topkrgs

#endif  // TOPKRGS_SYNTH_GENERATOR_H_
