#include "synth/scale_profile.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/random.h"

namespace topkrgs {

namespace {

/// SplitMix64 finalizer over (seed, row): decorrelates adjacent row seeds
/// so per-row streams are independent, and ties a row's content to its
/// index alone — the writer's chunk size can never leak into the bytes.
uint64_t RowSeed(uint64_t seed, uint64_t row) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (row + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ScaleProfile ScaleProfile::Full() {
  ScaleProfile p;
  p.name = "scale-full";
  p.rows = 100000;
  p.num_items = 10000;
  p.patterns = 20;
  p.pattern_items = 12;
  p.noise_items_per_row = 16;
  p.seed = 2005;
  return p;
}

ScaleProfile ScaleProfile::Reduced() {
  ScaleProfile p;
  p.name = "scale-reduced";
  p.rows = 8000;
  p.num_items = 2000;
  p.patterns = 12;
  p.pattern_items = 10;
  p.noise_items_per_row = 10;
  p.seed = 2005;
  return p;
}

ScaleProfile ScaleProfile::Micro() {
  ScaleProfile p;
  p.name = "scale-micro";
  p.rows = 400;
  p.num_items = 300;
  p.patterns = 6;
  p.pattern_items = 8;
  p.noise_items_per_row = 6;
  p.two_pattern_prob = 0.15;
  p.seed = 2005;
  return p;
}

uint32_t ScaleProfile::SuggestedMinSupport() const {
  const double positives = static_cast<double>(rows) * positive_frac;
  const double per_pattern = positives / std::max<uint32_t>(patterns, 1);
  // NOLINT(cast: per_pattern <= rows <= the uint32 row space, so the
  // truncated quotient always fits)
  return std::max<uint32_t>(2, static_cast<uint32_t>(per_pattern / 2.0));
}

void AppendScaleRow(const ScaleProfile& p, uint64_t row, std::string* out) {
  Rng rng(RowSeed(p.seed, row));
  const bool positive = rng.NextBool(p.positive_frac);
  // NOLINT(cast: NextBounded(n) < n, and n here is a uint32 field)
  const uint32_t primary = static_cast<uint32_t>(rng.NextBounded(p.patterns));
  uint32_t secondary = primary;
  if (rng.NextBool(p.two_pattern_prob)) {
    // NOLINT(cast: NextBounded(n) < n, and n here is a uint32 field)
    secondary = static_cast<uint32_t>(rng.NextBounded(p.patterns));
  }

  std::vector<uint32_t> items;
  items.reserve(static_cast<size_t>(2) * p.pattern_items +
                p.noise_items_per_row);
  for (uint32_t s = 0; s < p.pattern_items; ++s) {
    items.push_back(primary * p.pattern_items + s);
  }
  if (secondary != primary) {
    for (uint32_t s = 0; s < p.pattern_items; ++s) {
      items.push_back(secondary * p.pattern_items + s);
    }
  }
  const uint32_t noise_begin = p.patterns * p.pattern_items;
  const uint32_t noise_universe =
      p.num_items > noise_begin ? p.num_items - noise_begin : 0;
  if (noise_universe > 0) {
    for (uint32_t n = 0; n < p.noise_items_per_row; ++n) {
      // NOLINT(cast: NextBounded(n) < n, and n here is a uint32 value)
      const auto noise = static_cast<uint32_t>(rng.NextBounded(noise_universe));
      items.push_back(noise_begin + noise);
    }
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());

  out->push_back(positive ? '1' : '0');
  out->push_back('\t');
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out->push_back(' ');
    out->append(std::to_string(items[i]));
  }
  out->push_back('\n');
}

Status WriteScaleItemData(const ScaleProfile& profile, const std::string& path,
                          uint64_t chunk_rows) {
  if (profile.rows == 0 || profile.patterns == 0 ||
      profile.pattern_items == 0) {
    return Status::InvalidArgument("scale profile needs rows and patterns");
  }
  if (static_cast<uint64_t>(profile.patterns) * profile.pattern_items >
      profile.num_items) {
    return Status::InvalidArgument(
        "pattern blocks do not fit the item universe");
  }
  if (chunk_rows == 0) chunk_rows = 1;

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  bool failed = false;
  std::string buffer;
  auto flush = [&]() {
    if (!failed && !buffer.empty() &&
        std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
      failed = true;
    }
    buffer.clear();
  };
  uint64_t in_chunk = 0;
  for (uint64_t row = 0; row < profile.rows; ++row) {
    AppendScaleRow(profile, row, &buffer);
    if (++in_chunk >= chunk_rows) {
      flush();
      in_chunk = 0;
    }
  }
  flush();
  if (std::fclose(file) != 0) failed = true;
  if (failed) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace topkrgs
