#ifndef TOPKRGS_SYNTH_SCALE_PROFILE_H_
#define TOPKRGS_SYNTH_SCALE_PROFILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace topkrgs {

/// Shape of a streaming-scale synthetic item dataset (the out-of-core
/// engine's workload, DESIGN.md §14). Unlike the microarray generator the
/// row count here is far too large to materialize: rows are produced one
/// at a time from a per-row seed, so any contiguous slice of the file can
/// be regenerated independently and the emitted bytes do not depend on
/// writer chunking.
///
/// Signal model: items split into `patterns` disjoint blocks of
/// `pattern_items` ids each ([p*pattern_items, (p+1)*pattern_items)),
/// followed by a noise region. Every row carries exactly one full pattern
/// block (a `two_pattern_prob` fraction carries a second, giving the
/// search depth-2 closed sets) plus `noise_items_per_row` uniform draws
/// from the noise region. With SuggestedMinSupport, each pattern block is
/// frequent while every noise item stays far below threshold, so the
/// closed-set structure — and therefore mining cost — is governed by the
/// pattern count, not the row count.
struct ScaleProfile {
  std::string name;
  uint64_t rows = 100000;
  uint32_t num_items = 10000;
  uint32_t patterns = 20;
  uint32_t pattern_items = 12;
  uint32_t noise_items_per_row = 16;
  /// Fraction of rows that carry a second (distinct) pattern block.
  double two_pattern_prob = 0.1;
  /// Fraction of rows labeled with the consequent class (label 1).
  double positive_frac = 0.5;
  uint64_t seed = 2005;

  /// The ISSUE's headline workload: 100k rows x 10k items.
  static ScaleProfile Full();
  /// CI-sized end-to-end profile (seconds, not minutes).
  static ScaleProfile Reduced();
  /// Oracle-test scale: small enough to single-shot mine in-memory.
  static ScaleProfile Micro();

  /// Half the expected per-pattern positive support: every pattern block
  /// clears it, every noise item sits far below it.
  uint32_t SuggestedMinSupport() const;
};

/// Streams the profile to `path` in the repo's item-data format
/// ('label<TAB>space-separated sorted item ids'), holding at most
/// `chunk_rows` formatted rows in memory. Each row is drawn from its own
/// SplitMix-derived seed, so the bytes are identical for every
/// chunk_rows choice.
Status WriteScaleItemData(const ScaleProfile& profile, const std::string& path,
                          uint64_t chunk_rows = 4096);

/// Formats row `row` of the profile (deterministic in (seed, row) alone)
/// and appends it, newline-terminated, to `out`. Exposed for tests that
/// check chunking independence and for samplers that need a row slice.
void AppendScaleRow(const ScaleProfile& profile, uint64_t row,
                    std::string* out);

}  // namespace topkrgs

#endif  // TOPKRGS_SYNTH_SCALE_PROFILE_H_
