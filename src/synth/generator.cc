#include "synth/generator.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "util/random.h"
#include "util/status.h"

namespace topkrgs {

namespace {

// Mean shift (in sigmas) between classes for strong marker genes.
constexpr double kStrongShift = 2.6;
// Mean shift for perfect on/off marker genes (never contaminated).
constexpr double kPerfectShift = 7.0;
// Mean shift for trap genes on the training batch.
constexpr double kTrapShift = 5.0;
// Fraction of class-0 training rows affected by the traps' batch artifact.
// The SAME rows flip in EVERY trap gene, so no conjunction of traps alone
// can exclude them: every lower bound of the full-class rule group must
// recruit at least one genuine gene. Trap gain ratio still tops the
// ranking, which is what greedy single-gene learners fall for.
constexpr double kTrapArtifactFraction = 0.06;
// Standard deviation of the latent factor shared by a correlated block.
constexpr double kBlockFactorSigma = 0.7;

/// Per-gene generation parameters derived from a profile.
struct GenePlan {
  bool informative = false;
  bool immune = false;     // perfect marker: never contaminated
  bool trap = false;       // training-batch artifact: noise on test rows
  bool one_sided = false;  // contamination hits class-0 samples only
  double direction = 1.0;  // +1: up-regulated in class 1, -1: down
  double shift = 0.0;      // class mean separation in sigmas
  double baseline = 0.0;   // gene-specific expression baseline
  int32_t block = -1;      // correlated block index, -1 if none
};

std::vector<GenePlan> PlanGenes(const DatasetProfile& p, Rng& rng) {
  std::vector<GenePlan> plan(p.num_genes);
  const uint32_t informative =
      std::min(p.perfect_genes + p.trap_genes + p.strong_genes + p.weak_genes,
               p.num_genes);

  // Choose which gene ids carry signal, spread over the whole id range.
  std::vector<uint32_t> ids =
      rng.SampleWithoutReplacement(p.num_genes, informative);

  for (uint32_t j = 0; j < informative; ++j) {
    GenePlan& g = plan[ids[j]];
    g.informative = true;
    g.direction = rng.NextBool(0.5) ? 1.0 : -1.0;
    if (j < p.perfect_genes) {
      g.immune = true;
      g.shift = kPerfectShift;
    } else if (j < p.perfect_genes + p.trap_genes) {
      // One-sided and nearly clean on the training batch: traps top the
      // gain-ratio ranking (greedy learners root on them) but are not
      // flawless, so rule lower bounds must conjoin them with other genes —
      // the abstention asymmetry that keeps rule classifiers standing when
      // the traps turn into a coherent artifact on the test batch.
      g.trap = true;
      g.one_sided = true;
      g.shift = kTrapShift;
    } else if (j < p.perfect_genes + p.trap_genes + p.strong_genes) {
      g.shift = kStrongShift;
    } else {
      g.shift = p.weak_shift_lo +
                rng.NextDouble() * (p.weak_shift_hi - p.weak_shift_lo);
    }
    if (!g.immune && !g.trap) g.one_sided = rng.NextBool(p.one_sided_frac);
  }
  for (auto& g : plan) g.baseline = rng.NextGaussian(0.0, 2.0);

  // Assign correlated blocks over the informative genes (first block_size
  // genes of the shuffled informative list per block).
  const uint32_t blocks = p.correlated_blocks;
  uint32_t cursor = 0;
  std::vector<uint32_t> shuffled = ids;
  rng.Shuffle(shuffled);
  // Perfect markers and traps keep their own noise model; blocks only
  // group the ordinary informative genes.
  std::erase_if(shuffled, [&](uint32_t id) {
    return plan[id].immune || plan[id].trap;
  });
  for (uint32_t b = 0; b < blocks && cursor + p.block_size <= shuffled.size();
       ++b) {
    for (uint32_t s = 0; s < p.block_size; ++s) {
      // NOLINT(cast: b < blocks <= num_genes, well inside int32)
      plan[shuffled[cursor++]].block = static_cast<int32_t>(b);
    }
  }
  return plan;
}

/// One generated sample handed to a sink; the row buffer is reused
/// between calls, so sinks must copy (or serialize) before returning.
using RowSink = std::function<void(const std::vector<double>&, ClassLabel)>;

/// Draws `rows_per_class[c]` samples per class into `sink`. Test rows
/// (is_test) apply the profile's distribution shift: atypical rows whose
/// contamination also hits the perfect markers, plus a global batch shift.
void EmitRows(const DatasetProfile& p, const std::vector<GenePlan>& plan,
              const std::vector<uint32_t>& rows_per_class, bool is_test,
              Rng& rng, const RowSink& sink) {
  // Per-gene contamination rate of an atypical test row.
  constexpr double kAtypicalContamination = 0.45;
  std::vector<double> row(p.num_genes);
  std::vector<double> block_factor(p.correlated_blocks, 0.0);
  std::vector<uint8_t> block_flip(p.correlated_blocks, 0);
  for (ClassLabel cls = 0; cls < rows_per_class.size(); ++cls) {
    for (uint32_t i = 0; i < rows_per_class[cls]; ++i) {
      const bool atypical = is_test && rng.NextBool(p.test_flip_prob);
      const double contamination =
          atypical ? kAtypicalContamination : p.contamination;
      // The batch artifact behind the trap genes is shared within a sample
      // and biased toward the class-0 expression side: on test rows every
      // trap moves together, so trees rooted on any trap (and ensembles of
      // them) route almost every test row to the class-0 side — the paper's
      // C4.5 collapse to the 26.47% base rate. On training rows the
      // artifact hits a small set of class-0 samples, in all traps at once.
      const double trap_factor = rng.NextGaussian(-0.9, 0.5);
      const bool trap_affected =
          !is_test && cls == 0 && rng.NextBool(kTrapArtifactFraction);
      for (uint32_t b = 0; b < p.correlated_blocks; ++b) {
        block_factor[b] = rng.NextGaussian(0.0, kBlockFactorSigma);
        block_flip[b] = rng.NextBool(contamination) ? 1 : 0;
      }
      for (GeneId g = 0; g < p.num_genes; ++g) {
        const GenePlan& gp = plan[g];
        double v = gp.baseline + rng.NextGaussian();
        if (is_test && gp.trap) {
          v += gp.direction * gp.shift * 0.5 * trap_factor;
        }
        if (gp.informative && !(is_test && gp.trap)) {
          // Samples of an atypical patient (contamination) express a gene —
          // or a whole co-regulated block — like the opposite class.
          // One-sided markers stay clean on class-1 samples (unless the
          // whole row is atypical).
          const bool immune = (gp.immune && !atypical) ||
                              (gp.one_sided && cls == 1 && !atypical);
          const bool flipped =
              gp.trap ? trap_affected
                      : (!immune && (gp.block >= 0
                                         ? block_flip[gp.block] != 0
                                         : rng.NextBool(contamination)));
          const double class_sign = (cls == 1) == !flipped ? 1.0 : -1.0;
          v += class_sign * gp.direction * gp.shift * 0.5;
          if (gp.block >= 0) v += block_factor[gp.block];
          // Batch effect: the test experiment systematically over-expresses
          // along each marker's class-1 direction. Linear models that sum
          // thousands of small per-gene contributions accumulate the bias
          // coherently; wide discretization intervals mostly absorb it.
          if (is_test) v += gp.direction * p.test_batch_shift;
        }
        row[g] = v;
      }
      sink(row, cls);
    }
  }
}

}  // namespace

DatasetProfile DatasetProfile::ALL() {
  DatasetProfile p;
  p.name = "ALL";
  p.num_genes = 7129;
  p.train_class1 = 27;
  p.train_class0 = 11;
  p.test_class1 = 20;
  p.test_class0 = 14;
  p.perfect_genes = 4;
  p.strong_genes = 50;
  p.weak_genes = 700;
  p.correlated_blocks = 20;
  p.block_size = 10;
  p.contamination = 0.06;
  p.test_flip_prob = 0.15;  // the ALL/AML test set came from another lab
  p.seed = 101;
  return p;
}

DatasetProfile DatasetProfile::LC() {
  DatasetProfile p;
  p.name = "LC";
  p.num_genes = 12533;
  p.train_class1 = 16;
  p.train_class0 = 16;
  p.test_class1 = 15;
  p.test_class0 = 134;
  p.perfect_genes = 6;
  p.strong_genes = 60;
  p.weak_genes = 1600;
  p.correlated_blocks = 30;
  p.block_size = 10;
  p.contamination = 0.05;
  p.test_flip_prob = 0.04;
  p.seed = 102;
  return p;
}

DatasetProfile DatasetProfile::OC() {
  DatasetProfile p;
  p.name = "OC";
  p.num_genes = 15154;
  p.train_class1 = 133;
  p.train_class0 = 77;
  p.test_class1 = 29;
  p.test_class0 = 14;
  // The real ovarian proteomics data is nearly perfectly separable (every
  // Table 2 classifier reaches ~98%); a strong low-noise signal reproduces
  // that and the fast convergence of the dynamic minconf threshold.
  p.perfect_genes = 30;
  p.strong_genes = 150;
  p.weak_genes = 3000;
  p.correlated_blocks = 60;
  p.block_size = 10;
  p.contamination = 0.015;
  p.test_flip_prob = 0.04;
  p.seed = 103;
  return p;
}

DatasetProfile DatasetProfile::PC() {
  DatasetProfile p;
  p.name = "PC";
  p.num_genes = 12600;
  p.train_class1 = 52;
  p.train_class0 = 50;
  p.test_class1 = 25;
  p.test_class0 = 9;
  // Batch-specific artifact genes dominate the training signal; greedy
  // top-ranked-gene methods collapse on the independent test batch while
  // rule conjunctions abstain and fall through (the paper's PC column).
  p.trap_genes = 8;
  p.strong_genes = 20;
  p.weak_genes = 1200;
  p.correlated_blocks = 24;
  p.block_size = 10;
  p.contamination = 0.13;
  p.test_flip_prob = 0.05;
  // Directional batch effect on the independent test experiment: linear
  // models accumulate it coherently (SVM drops), trees misroute (C4.5
  // collapses), discretized rule conjunctions mostly absorb it.
  p.test_batch_shift = 0.8;
  p.seed = 104;
  return p;
}

DatasetProfile DatasetProfile::Tiny(uint64_t seed) {
  DatasetProfile p;
  p.name = "TINY";
  p.num_genes = 120;
  p.train_class1 = 12;
  p.train_class0 = 10;
  p.test_class1 = 6;
  p.test_class0 = 6;
  p.strong_genes = 8;
  p.weak_genes = 30;
  p.correlated_blocks = 3;
  p.block_size = 4;
  p.contamination = 0.08;
  p.seed = seed;
  return p;
}

GeneratedData GenerateMicroarray(const DatasetProfile& profile) {
  TOPKRGS_CHECK(profile.num_genes > 0, "profile needs genes");
  Rng rng(profile.seed);
  const std::vector<GenePlan> plan = PlanGenes(profile, rng);

  GeneratedData data{ContinuousDataset(profile.num_genes),
                     ContinuousDataset(profile.num_genes)};
  const std::vector<std::string> class_names = {profile.name + "-class0",
                                                profile.name + "-class1"};
  data.train.set_class_names(class_names);
  data.test.set_class_names(class_names);

  // Class 1 rows come first within each split, matching the paper's class
  // dominant presentation of Table 1 ("38 (27 : 11)"). EmitRows iterates
  // label 0 first, so pass counts accordingly and rely on row order only
  // through class labels, never positions.
  EmitRows(profile, plan, {profile.train_class0, profile.train_class1},
           /*is_test=*/false, rng,
           [&](const std::vector<double>& row, ClassLabel cls) {
             data.train.AddRow(row, cls);
           });
  EmitRows(profile, plan, {profile.test_class0, profile.test_class1},
           /*is_test=*/true, rng,
           [&](const std::vector<double>& row, ClassLabel cls) {
             data.test.AddRow(row, cls);
           });
  return data;
}

Status StreamMicroarrayTsv(const DatasetProfile& profile,
                           const std::string& train_path,
                           const std::string& test_path, size_t chunk_bytes) {
  TOPKRGS_CHECK(profile.num_genes > 0, "profile needs genes");
  Rng rng(profile.seed);
  const std::vector<GenePlan> plan = PlanGenes(profile, rng);

  // The rng is shared across both splits (test draws continue where the
  // training draws stopped), so the splits must stream in order.
  auto stream_split = [&](const std::string& path,
                          const std::vector<uint32_t>& rows_per_class,
                          bool is_test) -> Status {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IOError("cannot open for write: " + path);
    }
    bool failed = false;
    std::string buffer;
    buffer.reserve(chunk_bytes + (size_t{32} * profile.num_genes));
    auto flush = [&]() {
      if (!failed && !buffer.empty() &&
          std::fwrite(buffer.data(), 1, buffer.size(), file) !=
              buffer.size()) {
        failed = true;
      }
      buffer.clear();
    };
    // Header and row formatting mirror ContinuousDataset::WriteTsv
    // byte for byte (default gene names, "%.17g" cells).
    buffer.append("label");
    for (GeneId g = 0; g < profile.num_genes; ++g) {
      buffer.push_back('\t');
      buffer.append("G");
      buffer.append(std::to_string(g));
    }
    buffer.push_back('\n');
    EmitRows(profile, plan, rows_per_class, is_test, rng,
             [&](const std::vector<double>& row, ClassLabel cls) {
               buffer.append(std::to_string(int{cls}));
               char cell[40];
               for (const double v : row) {
                 std::snprintf(cell, sizeof(cell), "\t%.17g", v);
                 buffer.append(cell);
               }
               buffer.push_back('\n');
               if (buffer.size() >= chunk_bytes) flush();
             });
    flush();
    if (std::fclose(file) != 0) failed = true;
    if (failed) return Status::IOError("write failed: " + path);
    return Status::OK();
  };

  Status train = stream_split(
      train_path, {profile.train_class0, profile.train_class1},
      /*is_test=*/false);
  if (!train.ok()) return train;
  return stream_split(test_path, {profile.test_class0, profile.test_class1},
                      /*is_test=*/true);
}

std::vector<DatasetProfile> PaperProfiles() {
  return {DatasetProfile::ALL(), DatasetProfile::LC(), DatasetProfile::OC(),
          DatasetProfile::PC()};
}

}  // namespace topkrgs
