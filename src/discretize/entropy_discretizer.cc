#include "discretize/entropy_discretizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/stats.h"
#include "util/status.h"

namespace topkrgs {

Discretization Discretization::FromCuts(std::vector<GeneId> genes,
                                        std::vector<std::vector<double>> cuts) {
  TOPKRGS_CHECK(genes.size() == cuts.size(), "genes/cuts size mismatch");
  Discretization out;
  for (uint32_t s = 0; s < genes.size(); ++s) {
    TOPKRGS_CHECK(!cuts[s].empty(), "a selected gene needs >= 1 cut");
    TOPKRGS_CHECK(s == 0 || genes[s] > genes[s - 1],
                  "gene ids must be strictly ascending");
    TOPKRGS_CHECK(std::is_sorted(cuts[s].begin(), cuts[s].end()),
                  "cut points must be sorted");
    out.selected_genes_.push_back(genes[s]);
    out.gene_first_item_.push_back(static_cast<ItemId>(out.items_.size()));
    for (uint32_t interval = 0; interval <= cuts[s].size(); ++interval) {
      ItemInfo info;
      info.gene = genes[s];
      info.interval = interval;
      if (interval > 0) info.lo = cuts[s][interval - 1];
      if (interval < cuts[s].size()) info.hi = cuts[s][interval];
      out.items_.push_back(info);
    }
    out.cuts_.push_back(std::move(cuts[s]));
  }
  return out;
}

std::vector<ItemId> Discretization::DiscretizeRow(
    const std::vector<double>& gene_values) const {
  std::vector<ItemId> items;
  // NOLINT(hotpath: one output itemset per row, sized by selected genes)
  items.reserve(selected_genes_.size());
  for (uint32_t s = 0; s < selected_genes_.size(); ++s) {
    const double v = gene_values[selected_genes_[s]];
    const auto& cut = cuts_[s];
    // Interval index = number of cuts <= v (value v falls in [cut[i-1], cut[i])).
    const uint32_t idx = static_cast<uint32_t>(
        std::upper_bound(cut.begin(), cut.end(), v) - cut.begin());
    // NOLINT(hotpath: within the per-row reservation above)
    items.push_back(gene_first_item_[s] + idx);
  }
  return items;
}

Status Discretization::CheckCompatible(const ContinuousDataset& data) const {
  // selected_genes_ is strictly ascending, so the last id is the largest.
  // FailedPrecondition, not InvalidArgument: each input is well-formed on
  // its own; the pair is what's inconsistent.
  if (!selected_genes_.empty() && selected_genes_.back() >= data.num_genes()) {
    return Status::FailedPrecondition(
        "discretization references gene " +
        std::to_string(selected_genes_.back()) + " but the dataset has only " +
        std::to_string(data.num_genes()) + " genes");
  }
  return Status::OK();
}

DiscreteDataset Discretization::Apply(const ContinuousDataset& data) const {
  TOPKRGS_CHECK(CheckCompatible(data).ok(),
                "Apply on an incompatible dataset; validate with "
                "CheckCompatible at the ingestion boundary first");
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  rows.reserve(data.num_rows());
  labels.reserve(data.num_rows());
  std::vector<double> values(data.num_genes());
  for (RowId r = 0; r < data.num_rows(); ++r) {
    for (GeneId g = 0; g < data.num_genes(); ++g) values[g] = data.value(r, g);
    rows.push_back(DiscretizeRow(values));
    labels.push_back(data.label(r));
  }
  return DiscreteDataset(num_items(), std::move(rows), std::move(labels));
}

std::string Discretization::ItemName(const ContinuousDataset& data,
                                     ItemId id) const {
  const ItemInfo& info = items_[id];
  char buf[96];
  auto fmt = [](double v, char* out, size_t len) {
    if (std::isinf(v)) {
      std::snprintf(out, len, v < 0 ? "-inf" : "+inf");
    } else {
      std::snprintf(out, len, "%.4g", v);
    }
  };
  char lo[32], hi[32];
  fmt(info.lo, lo, sizeof(lo));
  fmt(info.hi, hi, sizeof(hi));
  std::snprintf(buf, sizeof(buf), "[%s,%s)", lo, hi);
  return data.gene_name(info.gene) + buf;
}

namespace {

/// Recursive Fayyad–Irani partitioning of rows [begin, end) of the sorted
/// (value, label) sequence. Appends accepted cut values to `cuts`.
class GeneSplitter {
 public:
  GeneSplitter(const std::vector<double>& sorted_values,
               const std::vector<uint8_t>& sorted_labels, uint32_t num_classes,
               const EntropyDiscretizer::Options& options)
      : values_(sorted_values),
        labels_(sorted_labels),
        num_classes_(num_classes),
        options_(options) {}

  void Run(std::vector<double>* cuts) {
    Split(0, values_.size(), 0, cuts);
    std::sort(cuts->begin(), cuts->end());
  }

 private:
  /// Class histogram of rows [begin, end).
  std::vector<uint32_t> Histogram(size_t begin, size_t end) const {
    std::vector<uint32_t> h(num_classes_, 0);
    for (size_t i = begin; i < end; ++i) ++h[labels_[i]];
    return h;
  }

  /// Number of classes present in a histogram.
  static uint32_t ClassesPresent(const std::vector<uint32_t>& h) {
    uint32_t k = 0;
    for (uint32_t c : h) k += (c != 0);
    return k;
  }

  void Split(size_t begin, size_t end, uint32_t depth,
             std::vector<double>* cuts) {
    const size_t n = end - begin;
    if (n < 2) return;
    if (options_.max_depth != 0 && depth >= options_.max_depth) return;

    const std::vector<uint32_t> total = Histogram(begin, end);
    if (ClassesPresent(total) < 2) return;  // pure partition

    // Scan boundary points: candidate cut between i and i+1 where the value
    // changes. Track the split minimizing conditional entropy.
    std::vector<uint32_t> left(num_classes_, 0);
    std::vector<uint32_t> right = total;
    double best_cond = -1.0;
    size_t best_i = 0;
    std::vector<uint32_t> best_left, best_right;
    for (size_t i = begin; i + 1 < end; ++i) {
      ++left[labels_[i]];
      --right[labels_[i]];
      if (values_[i] == values_[i + 1]) continue;
      const double cond = PartitionEntropy({left, right});
      if (best_cond < 0 || cond < best_cond) {
        best_cond = cond;
        best_i = i;
        best_left = left;
        best_right = right;
      }
    }
    if (best_cond < 0) return;  // constant values: no boundary

    const double ent_s = Entropy(total);
    const double gain = ent_s - best_cond;
    if (options_.use_mdl) {
      // MDL acceptance (Fayyad & Irani 1993):
      //   gain > log2(n-1)/n + delta/n
      //   delta = log2(3^k - 2) - (k*Ent(S) - k1*Ent(S1) - k2*Ent(S2))
      const double k = ClassesPresent(total);
      const double k1 = ClassesPresent(best_left);
      const double k2 = ClassesPresent(best_right);
      const double ent1 = Entropy(best_left);
      const double ent2 = Entropy(best_right);
      const double delta = std::log2(std::pow(3.0, k) - 2.0) -
                           (k * ent_s - k1 * ent1 - k2 * ent2);
      const double threshold =
          (std::log2(static_cast<double>(n) - 1.0) + delta) /
          static_cast<double>(n);
      if (gain <= threshold) return;
    } else if (gain <= 0) {
      return;
    }

    // Cut at the midpoint between the boundary values.
    cuts->push_back(0.5 * (values_[best_i] + values_[best_i + 1]));
    Split(begin, best_i + 1, depth + 1, cuts);
    Split(best_i + 1, end, depth + 1, cuts);
  }

  const std::vector<double>& values_;
  const std::vector<uint8_t>& labels_;
  const uint32_t num_classes_;
  const EntropyDiscretizer::Options& options_;
};

}  // namespace

Discretization EntropyDiscretizer::Fit(const ContinuousDataset& train) const {
  TOPKRGS_CHECK(train.num_rows() > 0, "cannot fit on empty dataset");
  Discretization result;

  const uint32_t n = train.num_rows();
  std::vector<uint32_t> order(n);
  std::vector<double> sorted_values(n);
  std::vector<uint8_t> sorted_labels(n);

  for (GeneId g = 0; g < train.num_genes(); ++g) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return train.value(a, g) < train.value(b, g);
    });
    for (uint32_t i = 0; i < n; ++i) {
      sorted_values[i] = train.value(order[i], g);
      sorted_labels[i] = train.label(order[i]);
    }
    std::vector<double> cuts;
    GeneSplitter splitter(sorted_values, sorted_labels, train.num_classes(),
                          options_);
    splitter.Run(&cuts);
    if (cuts.empty()) continue;  // gene dropped: no MDL-accepted cut

    const uint32_t selected_index =
        static_cast<uint32_t>(result.selected_genes_.size());
    result.selected_genes_.push_back(g);
    result.gene_first_item_.push_back(
        static_cast<ItemId>(result.items_.size()));
    for (uint32_t interval = 0; interval <= cuts.size(); ++interval) {
      ItemInfo info;
      info.gene = g;
      info.interval = interval;
      if (interval > 0) info.lo = cuts[interval - 1];
      if (interval < cuts.size()) info.hi = cuts[interval];
      result.items_.push_back(info);
    }
    result.cuts_.push_back(std::move(cuts));
    (void)selected_index;
  }
  return result;
}

}  // namespace topkrgs
