#include "discretize/binning.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/stats.h"
#include "util/status.h"

namespace topkrgs {

Discretization FitEqualWidth(const ContinuousDataset& train,
                             uint32_t num_bins) {
  TOPKRGS_CHECK(num_bins >= 2, "need at least 2 bins");
  std::vector<GeneId> genes;
  std::vector<std::vector<double>> cuts;
  for (GeneId g = 0; g < train.num_genes(); ++g) {
    double lo = train.value(0, g);
    double hi = lo;
    for (RowId r = 1; r < train.num_rows(); ++r) {
      lo = std::min(lo, train.value(r, g));
      hi = std::max(hi, train.value(r, g));
    }
    if (!(hi > lo)) continue;  // constant gene
    std::vector<double> gene_cuts;
    const double width = (hi - lo) / num_bins;
    for (uint32_t b = 1; b < num_bins; ++b) {
      gene_cuts.push_back(lo + b * width);
    }
    genes.push_back(g);
    cuts.push_back(std::move(gene_cuts));
  }
  return Discretization::FromCuts(std::move(genes), std::move(cuts));
}

Discretization FitEqualFrequency(const ContinuousDataset& train,
                                 uint32_t num_bins) {
  TOPKRGS_CHECK(num_bins >= 2, "need at least 2 bins");
  const uint32_t n = train.num_rows();
  std::vector<GeneId> genes;
  std::vector<std::vector<double>> cuts;
  std::vector<double> values(n);
  for (GeneId g = 0; g < train.num_genes(); ++g) {
    for (RowId r = 0; r < n; ++r) values[r] = train.value(r, g);
    std::sort(values.begin(), values.end());
    std::vector<double> gene_cuts;
    for (uint32_t b = 1; b < num_bins; ++b) {
      const size_t index =
          std::min<size_t>(n - 1, static_cast<size_t>(
                                      std::llround(1.0 * b * n / num_bins)));
      if (index == 0) continue;
      // Place the cut between the two values around the quantile so ties
      // cannot straddle a boundary ambiguously.
      const double cut = 0.5 * (values[index - 1] + values[index]);
      if (values[index - 1] == values[index]) continue;  // tied quantile
      if (!gene_cuts.empty() && cut <= gene_cuts.back()) continue;
      gene_cuts.push_back(cut);
    }
    if (gene_cuts.empty()) continue;
    genes.push_back(g);
    cuts.push_back(std::move(gene_cuts));
  }
  return Discretization::FromCuts(std::move(genes), std::move(cuts));
}

Discretization FitChiMerge(const ContinuousDataset& train,
                           double chi_threshold, uint32_t max_intervals) {
  TOPKRGS_CHECK(max_intervals >= 2, "need at least 2 intervals");
  const uint32_t n = train.num_rows();
  const uint32_t num_classes = train.num_classes();
  std::vector<GeneId> genes;
  std::vector<std::vector<double>> cuts;

  struct Interval {
    double min_value;               // smallest value inside the interval
    double max_value;               // largest value inside the interval
    std::vector<uint32_t> classes;  // class histogram
  };

  std::vector<uint32_t> order(n);
  for (GeneId g = 0; g < train.num_genes(); ++g) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return train.value(a, g) < train.value(b, g);
    });

    // One interval per distinct value.
    std::vector<Interval> intervals;
    for (uint32_t i = 0; i < n; ++i) {
      const double v = train.value(order[i], g);
      if (intervals.empty() || v > intervals.back().max_value) {
        intervals.push_back({v, v, std::vector<uint32_t>(num_classes, 0)});
      }
      ++intervals.back().classes[train.label(order[i])];
    }

    // Merge the adjacent pair with the lowest chi-square until all pairs
    // are above the threshold (or the interval cap binds from above).
    while (intervals.size() > 1) {
      double best_chi = 0.0;
      size_t best_i = 0;
      for (size_t i = 0; i + 1 < intervals.size(); ++i) {
        const double chi =
            ChiSquare({intervals[i].classes, intervals[i + 1].classes});
        if (i == 0 || chi < best_chi) {
          best_chi = chi;
          best_i = i;
        }
      }
      if (best_chi > chi_threshold && intervals.size() <= max_intervals) {
        break;
      }
      for (uint32_t c = 0; c < num_classes; ++c) {
        intervals[best_i].classes[c] += intervals[best_i + 1].classes[c];
      }
      intervals[best_i].max_value = intervals[best_i + 1].max_value;
      intervals.erase(intervals.begin() + best_i + 1);
    }

    if (intervals.size() < 2) continue;  // no class signal: gene dropped
    // Cut midway between adjacent intervals so boundary values stay on
    // their own side under the half-open [lo, hi) item semantics.
    std::vector<double> gene_cuts;
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
      gene_cuts.push_back(
          0.5 * (intervals[i].max_value + intervals[i + 1].min_value));
    }
    genes.push_back(g);
    cuts.push_back(std::move(gene_cuts));
  }
  return Discretization::FromCuts(std::move(genes), std::move(cuts));
}

}  // namespace topkrgs
