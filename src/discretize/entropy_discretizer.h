#ifndef TOPKRGS_DISCRETIZE_ENTROPY_DISCRETIZER_H_
#define TOPKRGS_DISCRETIZE_ENTROPY_DISCRETIZER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "util/status.h"

namespace topkrgs {

/// One discretized item: an expression interval [lo, hi) of a gene.
/// The first interval of a gene has lo = -inf, the last hi = +inf.
struct ItemInfo {
  GeneId gene = 0;
  uint32_t interval = 0;  // index of the interval within the gene
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// The fitted result of entropy discretization: cut points per selected
/// gene and the item catalog. Genes for which the MDL criterion accepts no
/// cut are dropped entirely — discretization doubles as feature selection,
/// exactly as in the paper ("# Genes after Discretization" in Table 1).
class Discretization {
 public:
  /// Builds a discretization directly from per-gene cut points (used by
  /// model deserialization and by tests). `genes` must be strictly
  /// ascending original gene ids; `cuts[i]` are the sorted cut points of
  /// genes[i] and must be non-empty.
  static Discretization FromCuts(std::vector<GeneId> genes,
                                 std::vector<std::vector<double>> cuts);

  uint32_t num_items() const { return static_cast<uint32_t>(items_.size()); }
  uint32_t num_selected_genes() const {
    return static_cast<uint32_t>(selected_genes_.size());
  }

  const std::vector<ItemInfo>& items() const { return items_; }
  const ItemInfo& item(ItemId id) const { return items_[id]; }
  /// Original gene ids of the selected genes, ascending.
  const std::vector<GeneId>& selected_genes() const { return selected_genes_; }
  /// Cut points of a selected gene (by position in selected_genes()).
  const std::vector<double>& cuts(uint32_t selected_index) const {
    return cuts_[selected_index];
  }

  /// Items of one sample given its full gene-value vector (one item per
  /// selected gene: the interval its value falls into).
  std::vector<ItemId> DiscretizeRow(const std::vector<double>& gene_values) const;

  /// Whether this discretization can be applied to `data`: every selected
  /// gene must exist in the dataset. A discretization loaded from a file
  /// must pass this gate before Apply — a persisted model referencing gene
  /// 9000 applied to a 100-gene matrix would otherwise read out of bounds.
  [[nodiscard]] Status CheckCompatible(const ContinuousDataset& data) const;

  /// Discretizes a whole continuous dataset with these cuts. The dataset
  /// must satisfy CheckCompatible (callers crossing a trust boundary check
  /// first; violating it is a programming error and aborts).
  DiscreteDataset Apply(const ContinuousDataset& data) const;

  /// Human-readable item description, e.g. "G17[-inf,994.0)".
  std::string ItemName(const ContinuousDataset& data, ItemId id) const;

 private:
  friend class EntropyDiscretizer;

  std::vector<GeneId> selected_genes_;
  std::vector<std::vector<double>> cuts_;       // parallel to selected_genes_
  std::vector<ItemId> gene_first_item_;         // parallel to selected_genes_
  std::vector<ItemInfo> items_;
};

/// Fayyad–Irani entropy minimization discretization with the MDL stopping
/// criterion, applied independently per gene.
class EntropyDiscretizer {
 public:
  struct Options {
    /// Maximum recursion depth per gene; 0 means unlimited. Depth d yields
    /// at most 2^d intervals.
    uint32_t max_depth = 0;
    /// When false, accepts every best-entropy cut down to max_depth without
    /// the MDL test (used only by tests/ablations).
    bool use_mdl = true;
  };

  EntropyDiscretizer() : options_() {}
  explicit EntropyDiscretizer(const Options& options) : options_(options) {}

  /// Fits cuts on a training dataset.
  Discretization Fit(const ContinuousDataset& train) const;

 private:
  Options options_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_DISCRETIZE_ENTROPY_DISCRETIZER_H_
