#ifndef TOPKRGS_DISCRETIZE_BINNING_H_
#define TOPKRGS_DISCRETIZE_BINNING_H_

#include <cstdint>

#include "core/dataset.h"
#include "discretize/entropy_discretizer.h"

namespace topkrgs {

/// Unsupervised binning baselines for the discretization ablation
/// (DESIGN.md A3): the paper's pipeline uses entropy-MDL discretization,
/// which both selects genes and places class-aware cuts; these baselines
/// do neither, so comparing them isolates its contribution.

/// Equal-width binning: each gene's observed [min, max] range is split
/// into `num_bins` equal intervals. Genes with constant values are
/// dropped (no meaningful cut exists).
Discretization FitEqualWidth(const ContinuousDataset& train, uint32_t num_bins);

/// Equal-frequency binning: cut points at the empirical quantiles so each
/// bin holds ~the same number of training values. Duplicate quantiles
/// (heavily tied values) are merged; genes left without any distinct cut
/// are dropped.
Discretization FitEqualFrequency(const ContinuousDataset& train,
                                 uint32_t num_bins);

/// ChiMerge [Kerber, AAAI 1992]: supervised bottom-up discretization —
/// start from one interval per distinct value and repeatedly merge the
/// adjacent pair with the lowest chi-square until every remaining pair
/// exceeds `chi_threshold` (e.g. 2.706 = chi-square at p=0.1, 1 df for two
/// classes) or only `max_intervals` remain. Genes that merge down to a
/// single interval carry no class signal and are dropped, so ChiMerge
/// also performs feature selection, like the entropy-MDL discretizer.
Discretization FitChiMerge(const ContinuousDataset& train,
                           double chi_threshold = 2.706,
                           uint32_t max_intervals = 6);

}  // namespace topkrgs

#endif  // TOPKRGS_DISCRETIZE_BINNING_H_
