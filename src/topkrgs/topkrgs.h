#ifndef TOPKRGS_TOPKRGS_H_
#define TOPKRGS_TOPKRGS_H_

/// Umbrella header for the topkrgs library — a C++ implementation of
/// "Mining Top-k Covering Rule Groups for Gene Expression Data"
/// (Cong, Tan, Tung, Xu — SIGMOD 2005): the MineTopkRGS miner, the RCBT /
/// CBA / IRG classifiers, the FARMER / CHARM / CLOSET+ baselines, and the
/// preprocessing substrates (entropy-MDL discretization, synthetic
/// microarray generation), the out-of-core sharded mining engine
/// (streaming ingest, mmap datasets, deterministic top-k merge —
/// src/scale), plus the embeddable prediction-serving stack
/// (model registry, batched executor, HTTP front end — src/serve).

#include "analyze/rule_report.h"
#include "classify/cba.h"
#include "classify/cross_validation.h"
#include "classify/decision_tree.h"
#include "classify/ensemble.h"
#include "classify/evaluator.h"
#include "classify/find_lb.h"
#include "classify/irg.h"
#include "classify/model_io.h"
#include "classify/rcbt.h"
#include "classify/svm.h"
#include "core/dataset.h"
#include "core/rule.h"
#include "core/stats.h"
#include "core/types.h"
#include "discretize/binning.h"
#include "discretize/entropy_discretizer.h"
#include "mine/carpenter.h"
#include "mine/charm.h"
#include "mine/closet.h"
#include "mine/farmer.h"
#include "mine/hybrid_miner.h"
#include "mine/miner_common.h"
#include "mine/naive_miner.h"
#include "mine/prefix_tree.h"
#include "mine/topk_miner.h"
#include "mine/transposed_table.h"
#include "scale/mmap_dataset.h"
#include "scale/shard_miner.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "scale/topk_merge.h"
#include "serve/executor.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "synth/scale_profile.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

#endif  // TOPKRGS_TOPKRGS_H_
