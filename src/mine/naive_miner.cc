#include "mine/naive_miner.h"

#include <algorithm>
#include <bit>

#include "mine/miner_common.h"
#include "util/status.h"

namespace topkrgs {

std::vector<RuleGroup> NaiveRuleGroups(const DiscreteDataset& data,
                                       ClassLabel consequent,
                                       uint32_t min_support) {
  const uint32_t n = data.num_rows();
  TOPKRGS_CHECK(n <= 24, "NaiveRuleGroups is exponential; use small data");
  min_support = std::max<uint32_t>(1, min_support);

  const Bitset frequent = FrequentItems(data, consequent, min_support);
  const Bitset class_rows = data.ClassRowset(consequent);

  std::vector<RuleGroup> groups;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    Bitset rows(n);
    for (uint32_t r = 0; r < n; ++r) {
      if ((mask >> r) & 1) rows.Set(r);
    }
    // I(X) over frequent items.
    Bitset items = frequent;
    rows.ForEach([&](size_t r) {
      items.IntersectWith(data.row_bitset(static_cast<RowId>(r)));
    });
    if (items.None()) continue;
    // Closed row sets only: X == R(I(X)).
    const Bitset closure_rows = data.ItemSupportSet(items);
    if (!(closure_rows == rows)) continue;
    const uint32_t support =
        static_cast<uint32_t>(rows.IntersectCount(class_rows));
    if (support < min_support) continue;
    RuleGroup g;
    g.antecedent = std::move(items);
    g.row_support = rows;
    g.consequent = consequent;
    g.support = support;
    g.antecedent_support = static_cast<uint32_t>(rows.Count());
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<ClosedPattern> NaiveClosedPatterns(const DiscreteDataset& data,
                                               uint32_t min_support) {
  const uint32_t n = data.num_rows();
  TOPKRGS_CHECK(n <= 24, "NaiveClosedPatterns is exponential; use small data");
  min_support = std::max<uint32_t>(1, min_support);

  Bitset frequent(data.num_items());
  for (ItemId i = 0; i < data.num_items(); ++i) {
    if (data.ItemSupport(i) >= min_support) frequent.Set(i);
  }

  std::vector<ClosedPattern> patterns;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    if (static_cast<uint32_t>(std::popcount(mask)) < min_support) continue;
    Bitset rows(n);
    for (uint32_t r = 0; r < n; ++r) {
      if ((mask >> r) & 1) rows.Set(r);
    }
    Bitset items = frequent;
    rows.ForEach([&](size_t r) {
      items.IntersectWith(data.row_bitset(static_cast<RowId>(r)));
    });
    if (items.None()) continue;
    if (!(data.ItemSupportSet(items) == rows)) continue;
    ClosedPattern p;
    p.items = std::move(items);
    p.support = static_cast<uint32_t>(rows.Count());
    p.rows = std::move(rows);
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<std::vector<RuleGroup>> NaiveTopkRGS(const DiscreteDataset& data,
                                                 ClassLabel consequent,
                                                 uint32_t min_support,
                                                 uint32_t k) {
  std::vector<RuleGroup> groups =
      NaiveRuleGroups(data, consequent, min_support);
  // Most significant first; stable within ties.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const RuleGroup& a, const RuleGroup& b) {
                     return CompareSignificance(a.support, a.antecedent_support,
                                                b.support,
                                                b.antecedent_support) > 0;
                   });
  std::vector<std::vector<RuleGroup>> per_row(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) {
    if (data.label(r) != consequent) continue;
    for (const RuleGroup& g : groups) {
      if (per_row[r].size() >= k) break;
      if (g.row_support.Test(r)) per_row[r].push_back(g);
    }
  }
  return per_row;
}

}  // namespace topkrgs
