#include "mine/closet.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rowset.h"
#include "util/status.h"

namespace topkrgs {

namespace {

/// FP-tree over item ranks (rank 0 = most frequent). Paths store ranks in
/// ascending order from the root, i.e. most frequent items first.
class FpTree {
 public:
  struct Node {
    uint32_t rank = 0;
    uint32_t count = 0;
    uint32_t class_count = 0;
    int32_t parent = -1;
    int32_t first_child = -1;
    int32_t next_sibling = -1;
    int32_t header_next = -1;
  };

  explicit FpTree(uint32_t num_ranks)
      : header_head_(num_ranks, -1),
        header_count_(num_ranks, 0),
        header_class_(num_ranks, 0) {
    nodes_.push_back(Node{});  // synthetic root
  }

  void Insert(const uint32_t* ranks, size_t len, uint32_t count,
              uint32_t class_count) {
    int32_t current = 0;
    for (size_t i = 0; i < len; ++i) {
      const uint32_t rank = ranks[i];
      int32_t child = nodes_[current].first_child;
      while (child != -1 && nodes_[child].rank != rank) {
        child = nodes_[child].next_sibling;
      }
      if (child == -1) {
        child = static_cast<int32_t>(nodes_.size());
        Node node;
        node.rank = rank;
        node.parent = current;
        node.next_sibling = nodes_[current].first_child;
        node.header_next = header_head_[rank];
        nodes_.push_back(node);
        nodes_[current].first_child = child;
        header_head_[rank] = child;
      }
      nodes_[child].count += count;
      nodes_[child].class_count += class_count;
      header_count_[rank] += count;
      header_class_[rank] += class_count;
      current = child;
    }
  }

  uint32_t num_ranks() const {
    return static_cast<uint32_t>(header_head_.size());
  }
  uint32_t count(uint32_t rank) const { return header_count_[rank]; }
  uint32_t class_count(uint32_t rank) const { return header_class_[rank]; }

  /// Invokes fn(path_ranks_ascending, count, class_count) for every prefix
  /// path of `rank`'s node chain.
  template <typename Fn>
  void ForEachPrefixPath(uint32_t rank, Fn&& fn) const {
    std::vector<uint32_t> path;
    for (int32_t node = header_head_[rank]; node != -1;
         node = nodes_[node].header_next) {
      path.clear();
      for (int32_t up = nodes_[node].parent; up != 0; up = nodes_[up].parent) {
        path.push_back(nodes_[up].rank);
      }
      std::reverse(path.begin(), path.end());
      fn(path, nodes_[node].count, nodes_[node].class_count);
    }
  }

 private:
  std::vector<Node> nodes_;
  std::vector<int32_t> header_head_;
  std::vector<uint32_t> header_count_;
  std::vector<uint32_t> header_class_;
};

class ClosetSearch {
 public:
  ClosetSearch(const DiscreteDataset& data, ClassLabel consequent,
               const ClosetOptions& options)
      : data_(data), consequent_(consequent), opt_(options) {}

  MiningResult Run();

 private:
  void Mine(const FpTree& tree, const Bitset& prefix);
  bool SubsumedOrRecord(const Bitset& items, uint32_t support);
  void Emit(const Bitset& items, uint32_t support, uint32_t class_support);

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const ClosetOptions& opt_;
  uint32_t minsup_ = 1;

  std::vector<ItemId> rank_to_item_;
  // support -> indices of closed sets with that support.
  // NOLINT(determinism: membership index only — probed via operator[] for
  // one key at a time, never iterated; the subsumption verdict scans the
  // bucket vector in insertion (= discovery) order, not bucket order)
  std::unordered_map<uint32_t, std::vector<size_t>> closed_index_;
  std::vector<Bitset> closed_sets_;

  bool stopped_ = false;
  MiningResult result_;
};

bool ClosetSearch::SubsumedOrRecord(const Bitset& items, uint32_t support) {
  auto& bucket = closed_index_[support];
  // Density-adaptive probe: deep itemsets are sparse, so each bucket
  // check costs O(|items|) bit tests instead of a word scan.
  const RowSet probe = RowSet::FromBitset(items);
  for (size_t idx : bucket) {
    if (probe.IsSubsetOf(closed_sets_[idx])) return true;
  }
  bucket.push_back(closed_sets_.size());
  closed_sets_.push_back(items);
  return false;
}

void ClosetSearch::Emit(const Bitset& items, uint32_t support,
                        uint32_t class_support) {
  RuleGroup group;
  group.antecedent = items;
  group.consequent = consequent_;
  group.support = class_support;
  group.antecedent_support = support;
  if (opt_.materialize_rowsets) {
    group.row_support = data_.ItemSupportSet(items);
  }
  result_.groups.push_back(std::move(group));
  ++result_.stats.groups_emitted;
  if (opt_.max_groups != 0 && result_.stats.groups_emitted >= opt_.max_groups) {
    stopped_ = true;
    result_.stats.timed_out = true;
  }
}

void ClosetSearch::Mine(const FpTree& tree, const Bitset& prefix) {
  if (stopped_) return;
  // Bottom-up: least frequent suffix item first.
  for (uint32_t rank = tree.num_ranks(); rank-- > 0;) {
    if (stopped_) return;
    ++result_.stats.nodes_visited;
    if (opt_.deadline.Expired()) {
      stopped_ = true;
      result_.stats.timed_out = true;
      return;
    }
    const uint32_t support = tree.count(rank);
    const uint32_t class_support = tree.class_count(rank);
    if (support == 0 || class_support < minsup_) continue;

    // Per-rank totals over the conditional pattern base of `rank`.
    std::vector<uint32_t> base_count(tree.num_ranks(), 0);
    std::vector<uint32_t> base_class(tree.num_ranks(), 0);
    tree.ForEachPrefixPath(rank, [&](const std::vector<uint32_t>& path,
                                     uint32_t count, uint32_t class_count) {
      for (uint32_t r : path) {
        base_count[r] += count;
        base_class[r] += class_count;
      }
    });

    // Item merging: ranks occurring in the entire base belong to the
    // closure of prefix ∪ {rank}.
    Bitset closed_items = prefix;
    closed_items.Set(rank_to_item_[rank]);
    std::vector<bool> merged(tree.num_ranks(), false);
    for (uint32_t r = 0; r < rank; ++r) {
      if (base_count[r] == support) {
        merged[r] = true;
        closed_items.Set(rank_to_item_[r]);
      }
    }

    // Subsumption prune: a same-support closed superset was found already;
    // every closed set of this subtree is reachable elsewhere.
    if (SubsumedOrRecord(closed_items, support)) {
      ++result_.stats.pruned_backward;
      continue;
    }
    Emit(closed_items, support, class_support);

    // Conditional tree over the unmerged, still-promising ranks.
    bool any = false;
    for (uint32_t r = 0; r < rank; ++r) {
      if (!merged[r] && base_class[r] >= minsup_) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    FpTree cond(tree.num_ranks());
    std::vector<uint32_t> filtered;
    tree.ForEachPrefixPath(rank, [&](const std::vector<uint32_t>& path,
                                     uint32_t count, uint32_t class_count) {
      filtered.clear();
      for (uint32_t r : path) {
        if (!merged[r] && base_class[r] >= minsup_) filtered.push_back(r);
      }
      if (!filtered.empty()) {
        cond.Insert(filtered.data(), filtered.size(), count, class_count);
      }
    });
    Mine(cond, closed_items);
  }
}

MiningResult ClosetSearch::Run() {
  Stopwatch timer;
  minsup_ = std::max<uint32_t>(1, opt_.min_support);
  const Bitset class_rows = data_.ClassRowset(consequent_);

  // Global item order: descending class support, ties by ascending id.
  std::vector<std::pair<uint32_t, ItemId>> freq;
  for (ItemId item = 0; item < data_.num_items(); ++item) {
    const uint32_t class_sup = static_cast<uint32_t>(
        data_.item_rows(item).IntersectCount(class_rows));
    if (class_sup >= minsup_) freq.emplace_back(class_sup, item);
  }
  std::stable_sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  rank_to_item_.resize(freq.size());
  std::vector<uint32_t> item_to_rank(data_.num_items(), UINT32_MAX);
  for (uint32_t rank = 0; rank < freq.size(); ++rank) {
    rank_to_item_[rank] = freq[rank].second;
    item_to_rank[freq[rank].second] = rank;
  }

  FpTree root(static_cast<uint32_t>(freq.size()));
  std::vector<uint32_t> ranks;
  for (RowId r = 0; r < data_.num_rows(); ++r) {
    ranks.clear();
    for (ItemId item : data_.row_items(r)) {
      if (item_to_rank[item] != UINT32_MAX) ranks.push_back(item_to_rank[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    const uint32_t is_class = data_.label(r) == consequent_ ? 1 : 0;
    root.Insert(ranks.data(), ranks.size(), 1, is_class);
  }

  Mine(root, Bitset(data_.num_items()));

  result_.stats.seconds = timer.ElapsedSeconds();
  return std::move(result_);
}

}  // namespace

MiningResult MineCloset(const DiscreteDataset& data, ClassLabel consequent,
                        const ClosetOptions& options) {
  ClosetSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
