#ifndef TOPKRGS_MINE_CLOSET_H_
#define TOPKRGS_MINE_CLOSET_H_

#include <cstdint>

#include "core/dataset.h"
#include "mine/miner_common.h"
#include "util/timer.h"

namespace topkrgs {

/// Options of the CLOSET+ baseline [Wang, Han & Pei, KDD 2003]: FP-tree
/// based column (item) enumeration of closed itemsets. We implement its
/// core strategy — bottom-up FP-growth over conditional trees, item
/// merging of full-support items, and result-set subsumption checking —
/// which is the part whose item enumeration space explodes on
/// high-dimensional gene expression data (the behaviour Figure 6 reports).
struct ClosetOptions {
  uint32_t min_support = 1;
  /// Fill RuleGroup::row_support on emission. Benchmarks disable it.
  bool materialize_rowsets = true;
  Deadline deadline;
  uint64_t max_groups = 0;
};

/// Runs CLOSET+ and returns every closed itemset whose support over rows of
/// `consequent` class is >= min_support, as rule groups.
MiningResult MineCloset(const DiscreteDataset& data, ClassLabel consequent,
                        const ClosetOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_CLOSET_H_
