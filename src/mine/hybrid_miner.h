#ifndef TOPKRGS_MINE_HYBRID_MINER_H_
#define TOPKRGS_MINE_HYBRID_MINER_H_

#include "core/dataset.h"
#include "mine/topk_miner.h"

namespace topkrgs {

/// The §8 extension of the paper: "extend TopkRGS to other large datasets
/// ... by utilizing column-wise mining first, then switching to row-wise
/// enumeration in later levels to mine top-k covering rules in the
/// partition formed by column-wise mining, and finally aggregating the
/// top-k covering rules in all partitions."
///
/// This implementation realizes that sketch exactly and *losslessly*:
///
///  1. Column step: enumerate every frequent item i. Its partition is the
///     conditional dataset D_i = rows containing i.
///  2. Row step: run the ordinary row-enumeration MineTopkRGS inside D_i.
///     For any rule group whose antecedent contains i, its antecedent
///     support set, closure, support and confidence are identical in D_i
///     and in the full dataset, and if the group ranks in a row's global
///     top-k it must also rank in that row's top-k within D_i (the
///     partition exposes only a subset of the row's covering groups).
///  3. Aggregation: merge the per-row lists of all partitions, dedup by
///     antecedent support set, and keep each row's k most significant.
///
/// The result therefore equals MineTopkRGS's, while each row-enumeration
/// instance only sees the (much smaller) rows of one partition — the
/// property that makes the approach viable for datasets with many rows or
/// datasets that do not fit in memory (partitions can be mined
/// independently, even on separate machines).
TopkResult MineTopkRGSHybrid(const DiscreteDataset& data, ClassLabel consequent,
                             const TopkMinerOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_HYBRID_MINER_H_
