#ifndef TOPKRGS_MINE_FARMER_H_
#define TOPKRGS_MINE_FARMER_H_

#include <cstdint>

#include "core/dataset.h"
#include "mine/miner_common.h"
#include "util/timer.h"

namespace topkrgs {

/// Options of the FARMER baseline [Cong et al., SIGMOD 2004]: row
/// enumeration discovery of *all* rule groups (upper bounds) with the given
/// consequent that satisfy fixed minimum support and confidence thresholds.
struct FarmerOptions {
  /// Minimum rule support, counted over rows of the consequent class.
  uint32_t min_support = 1;
  /// Fixed minimum confidence in [0, 1]; 0 disables confidence pruning
  /// (the "minconf = 0" configuration of Figure 6).
  double min_confidence = 0.0;
  /// Minimum chi-square of the rule group's antecedent-vs-class 2x2 table
  /// (FARMER's second interestingness measure); applied at emission — the
  /// statistic is not anti-monotone, so it cannot prune the search.
  double min_chi_square = 0.0;

  enum class Backend {
    /// Explicit projected transposed tables — the original FARMER
    /// implementation the paper benchmarks against.
    kVector,
    /// "FARMER+prefix" of Figure 6: the same search over prefix trees.
    kPrefixTree,
    /// Packed-bitset projections (a modern reimplementation; not in the
    /// paper, exposed for the ablation benchmarks).
    kBitset,
  };
  Backend backend = Backend::kVector;
  bool use_backward_pruning = true;
  bool use_bound_pruning = true;
  /// Optional wall-clock budget; on expiry stats.timed_out is set and the
  /// group list is incomplete.
  Deadline deadline;
  /// Safety valve for benchmarks: stop after this many groups (0 = off).
  uint64_t max_groups = 0;
};

/// Runs FARMER and returns every qualifying rule group (upper bound).
MiningResult MineFarmer(const DiscreteDataset& data, ClassLabel consequent,
                        const FarmerOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_FARMER_H_
