#ifndef TOPKRGS_MINE_PREFIX_TREE_H_
#define TOPKRGS_MINE_PREFIX_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "util/arena.h"

namespace topkrgs {

/// Prefix-tree representation of a (projected) transposed table (§4.2).
///
/// Every transposed tuple — the set of row positions containing one item —
/// is inserted as a path with its positions in *descending* enumeration
/// order, so the conditional tree of position p contains exactly the
/// positions ordered after p. Projecting node X's tree on a candidate row
/// yields the {X ∪ {row}}-projected transposed table; header counts give
/// freq(row) for Step 10 of MineTopkRGS without touching per-item bitsets,
/// and the total tuple count equals |I(X)|.
class PrefixTree {
 public:
  class Arena;

  /// An empty placeholder tree (no positions, no tuples). Real trees come
  /// from BuildRoot/Conditional.
  PrefixTree() = default;

  PrefixTree(PrefixTree&& other) noexcept;
  PrefixTree& operator=(PrefixTree&& other) noexcept;
  /// Copies are plain heap-backed (they never borrow the source's arena).
  PrefixTree(const PrefixTree& other);
  PrefixTree& operator=(const PrefixTree& other);
  ~PrefixTree();

  /// Builds the root tree TT|_∅ over the frequent `items`; rows are numbered
  /// by their position in `order`. With an arena, the node/header buffers
  /// are recycled through it.
  static PrefixTree BuildRoot(const DiscreteDataset& data,
                              const std::vector<RowId>& order,
                              const Bitset& items, Arena* arena = nullptr);

  /// The conditional (projected) tree of `pos`: tuples containing pos,
  /// truncated to positions strictly greater than pos. With an arena the
  /// child's buffers are recycled through it — the hot path of the
  /// row-enumeration DFS, which builds and drops one conditional tree per
  /// enumeration edge.
  PrefixTree Conditional(uint32_t pos, Arena* arena = nullptr) const;

  /// Number of row positions in the underlying order.
  uint32_t num_positions() const {
    return static_cast<uint32_t>(headers_.size());
  }

  /// freq(pos): number of tuples (with multiplicity) containing pos.
  uint32_t freq(uint32_t pos) const { return headers_[pos].freq; }

  /// Total number of tuples in this (projected) table; at the tree for
  /// enumeration node X this equals |I(X)|.
  uint64_t tuple_count() const { return tuple_count_; }

  /// Number of allocated tree nodes (excluding the root); exposed for tests
  /// and the micro benchmarks.
  size_t node_count() const { return nodes_.empty() ? 0 : nodes_.size() - 1; }

  /// Invokes fn(pos, freq) for every position with freq > 0, ascending.
  template <typename Fn>
  void ForEachFrequentPosition(Fn&& fn) const {
    for (uint32_t pos = 0; pos < headers_.size(); ++pos) {
      if (headers_[pos].freq > 0) fn(pos, headers_[pos].freq);
    }
  }

  /// Structural invariants of the projected-table representation (§4.2),
  /// which the projection/conditional algebra silently relies on:
  ///   - node 0 is the synthetic root (parent -1); every other node links
  ///     to a valid parent and appears exactly once in its child list;
  ///   - positions strictly decrease along every root-to-leaf path (the
  ///     descending insertion order that makes Conditional(pos) contain
  ///     exactly the positions ordered after pos);
  ///   - a node's count covers the counts of its children (paths may end
  ///     at an inner node, so >=);
  ///   - header chain of pos visits exactly the nodes with that pos, and
  ///     headers_[pos].freq equals the chain's count sum (what freq()
  ///     serves to Step 10 of MineTopkRGS);
  ///   - tuple_count_ covers the first-level count sum (zero-length
  ///     tuples contribute to the total only).
  /// Returns false with the first violation in *error (when non-null).
  bool CheckInvariants(std::string* error = nullptr) const;

  /// TKRGS_DCHECKs CheckInvariants(); no-op in release builds. Called by
  /// BuildRoot on every fresh root tree (conditional trees are covered by
  /// tests — the per-edge DFS hot path stays check-free even in debug).
  void ValidateInvariants() const;

  /// Test-only backdoor for invariants_test to corrupt internal state and
  /// prove the DCHECKs fire; defined in the test, never in the library.
  struct TestPeer;

 private:
  struct Node {
    uint32_t pos = 0;
    uint32_t count = 0;
    int32_t parent = -1;
    int32_t first_child = -1;
    int32_t next_sibling = -1;
    int32_t header_next = -1;  // chain of nodes with the same pos
  };
  struct Header {
    int32_t head = -1;
    uint32_t freq = 0;
  };

 public:
  /// Buffer recycler for tree construction. Not thread-safe: the parallel
  /// miner gives each worker its own arena, so every conditional tree built
  /// and destroyed on a worker reuses that worker's buffers.
  class Arena {
   public:
    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Trees whose buffers were served from recycled capacity.
    size_t reuses() const { return reuses_; }
    /// Trees that found the arena empty and heap-allocated fresh buffers.
    size_t heap_allocations() const { return heap_allocations_; }

   private:
    friend class PrefixTree;
    struct Buffers {
      std::vector<Node> nodes;
      std::vector<Header> headers;
    };
    std::vector<Buffers> free_;
    std::vector<uint32_t> path_scratch_;
    size_t reuses_ = 0;
    size_t heap_allocations_ = 0;
  };

 private:
  PrefixTree(uint32_t num_positions, Arena* arena);

  void ReleaseToArena();

  /// Inserts a path of positions (descending order) with multiplicity
  /// `count`, sharing existing prefixes.
  void InsertPath(const uint32_t* path, size_t len, uint32_t count);

  std::vector<Node> nodes_;  // nodes_[0] is the synthetic root
  std::vector<Header> headers_;
  uint64_t tuple_count_ = 0;
  Arena* arena_ = nullptr;  // owner of the buffers after destruction
};

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_PREFIX_TREE_H_
