#include "mine/hybrid_miner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mine/miner_common.h"
#include "util/check.h"
#include "util/status.h"

namespace topkrgs {

namespace {

/// Per-row merge accumulator: distinct candidate groups by antecedent
/// support set, then the k most significant win.
struct RowMerge {
  std::vector<RuleGroupPtr> groups;

  void Add(const RuleGroupPtr& group) {
    for (const RuleGroupPtr& existing : groups) {
      if (existing->row_support == group->row_support) return;
    }
    groups.push_back(group);
  }

  std::vector<RuleGroupPtr> TopK(uint32_t k) const {
    std::vector<RuleGroupPtr> sorted = groups;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RuleGroupPtr& a, const RuleGroupPtr& b) {
                       return CompareSignificance(a->support,
                                                  a->antecedent_support,
                                                  b->support,
                                                  b->antecedent_support) > 0;
                     });
    if (sorted.size() > k) sorted.resize(k);
    return sorted;
  }
};

/// One partition's mining output, produced by a worker thread.
struct PartitionOutput {
  std::vector<RowId> row_ids;  // partition row -> global row
  TopkResult result;
};

}  // namespace

TopkResult MineTopkRGSHybrid(const DiscreteDataset& data, ClassLabel consequent,
                             const TopkMinerOptions& options) {
  Stopwatch timer;
  const Status options_status = options.Validate();
  TOPKRGS_CHECK(options_status.ok(), options_status.message().c_str());
  const uint32_t minsup = std::max<uint32_t>(1, options.min_support);
  const Bitset frequent = FrequentItems(data, consequent, minsup);
  const std::vector<ItemId> items = [&] {
    std::vector<ItemId> out;
    frequent.ForEach([&](size_t i) { out.push_back(static_cast<ItemId>(i)); });
    return out;
  }();

  // Column step + row step, one partition per frequent item, fanned out
  // over workers. Partitions are fully independent; aggregation below runs
  // serially in item order, so the result is deterministic regardless of
  // the thread count.
  std::vector<PartitionOutput> outputs(items.size());
  std::atomic<size_t> next_item{0};
  std::atomic<bool> timed_out{false};
  auto worker = [&] {
    while (true) {
      const size_t index = next_item.fetch_add(1);
      if (index >= items.size()) return;
      if (options.deadline.Expired()) {
        timed_out.store(true);
        return;
      }
      const ItemId item = items[index];
      PartitionOutput& out = outputs[index];
      const auto rows = data.item_rows(item).ToVector();
      out.row_ids.assign(rows.begin(), rows.end());
      const DiscreteDataset partition = data.SelectRows(out.row_ids);
      TopkMinerOptions part_options = options;
      part_options.min_support = minsup;
      // Partitions are themselves the unit of parallelism here; nesting the
      // row-enumeration pool inside each would oversubscribe the machine.
      part_options.threads = 1;
      part_options.hybrid_threads = TopkMinerOptions::kThreadsUnset;
      out.result = MineTopkRGS(partition, consequent, part_options);
      if (out.result.stats.timed_out) timed_out.store(true);
    }
  };

  uint32_t num_threads = ResolveThreadCount(
      options.RequestedThreads(), std::thread::hardware_concurrency());
  num_threads = std::min<uint32_t>(
      num_threads, std::max<size_t>(1, items.size()));
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (uint32_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Aggregation step: translate row supports back to global ids, keep only
  // groups whose antecedent contains the partition item, merge per row.
  TopkResult merged;
  merged.per_row.assign(data.num_rows(), {});
  merged.effective_min_support = minsup;
  std::vector<RowMerge> accumulators(data.num_rows());
  for (size_t index = 0; index < items.size(); ++index) {
    const ItemId item = items[index];
    const PartitionOutput& out = outputs[index];
    merged.stats.nodes_visited += out.result.stats.nodes_visited;
    merged.stats.pruned_backward += out.result.stats.pruned_backward;
    merged.stats.pruned_bounds += out.result.stats.pruned_bounds;
    // NOLINT(determinism: pointer-keyed memo probed via find() only, never
    // iterated — output order comes from the per_row/row_ids scan; the
    // pointer keys identify one partition's in-memory groups and never
    // order anything)
    std::unordered_map<const RuleGroup*, RuleGroupPtr> translated;
    for (RowId local_row = 0; local_row < out.result.per_row.size();
         ++local_row) {
      if (local_row >= out.row_ids.size()) break;
      const RowId global_row = out.row_ids[local_row];
      for (const RuleGroupPtr& group : out.result.per_row[local_row]) {
        if (!group->antecedent.Test(item)) continue;
        auto it = translated.find(group.get());
        if (it == translated.end()) {
          auto copy = std::make_shared<RuleGroup>(*group);
          Bitset rows(data.num_rows());
          group->row_support.ForEach(
              [&](size_t r) { rows.Set(out.row_ids[r]); });
          copy->row_support = std::move(rows);
          it = translated.emplace(group.get(), std::move(copy)).first;
        }
        accumulators[global_row].Add(it->second);
      }
    }
  }

  for (RowId r = 0; r < data.num_rows(); ++r) {
    if (data.label(r) != consequent) continue;
    merged.per_row[r] = accumulators[r].TopK(options.k);
  }
  merged.stats.timed_out = timed_out.load();
  merged.stats.seconds = timer.ElapsedSeconds();
  return merged;
}

}  // namespace topkrgs
