#ifndef TOPKRGS_MINE_PROJECTION_H_
#define TOPKRGS_MINE_PROJECTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "mine/prefix_tree.h"
#include "util/hot_path.h"

namespace topkrgs {

/// The interchangeable encodings of a projected transposed table used by
/// the row-enumeration miners. All expose the same contract:
///
///  * Positions(out): the candidate row positions present in this projection
///    (ascending). Cheap for all backends.
///  * Freq(pos): freq(pos) = number of transposed tuples of this projection
///    containing pos = |I(X) ∩ items(row)|. This is the "scan TT|_X" cost of
///    Step 10: the bitset backend pays an intersection-popcount per call,
///    the prefix-tree backend reads a header counter (its cost was paid once
///    when the conditional tree was built).
///  * Child(pos): the {X ∪ {pos}}-projected table.
///  * WithArena(arena): a view of the same projection whose descendants
///    allocate through `arena` (a per-worker buffer recycler). Backends
///    without arena-backed construction return themselves; the parallel
///    miner calls this once per worker over the shared root projection.

/// Bitset-backed projection: candidates kept as an explicit position list;
/// frequencies computed against I(X) on demand. This mirrors the original
/// FARMER implementation (no prefix tree).
class BitsetProjection {
 public:
  BitsetProjection(const DiscreteDataset* data, const std::vector<RowId>* order)
      : data_(data), order_(order) {
    positions_.resize(order->size());
    for (uint32_t i = 0; i < positions_.size(); ++i) positions_[i] = i;
  }

  const BitsetProjection& WithArena(PrefixTree::Arena* /*arena*/) const {
    return *this;
  }

  void Positions(std::vector<uint32_t>* out) const { *out = positions_; }

  /// ItemSet is Bitset or util/rowset.h's RowSet: anything exposing
  /// IntersectCount(const Bitset&). A sparse RowSet turns this scan from
  /// O(universe/64) words into O(|I(X)|) probes.
  template <typename ItemSet>
  TKRGS_HOT uint32_t Freq(uint32_t pos, const ItemSet& items) const {
    // Hot path — called once per (node, position) during enumeration.
    // NOLINT(cast: IntersectCount <= num_items <= kMaxItemUniverse = 2^20)
    return static_cast<uint32_t>(
        items.IntersectCount(data_->row_bitset((*order_)[pos])));
  }

  /// Child keeps the candidates strictly after `pos` that had nonzero
  /// frequency at the parent (zero-frequency rows share no item with I(X)
  /// and thus with any descendant antecedent either).
  BitsetProjection Child(uint32_t pos,
                         const std::vector<uint32_t>& live_positions) const {
    BitsetProjection child(data_, order_, Unpopulated{});
    child.positions_.reserve(live_positions.size());
    for (uint32_t p : live_positions) {
      if (p > pos) child.positions_.push_back(p);
    }
    return child;
  }

 private:
  struct Unpopulated {};
  BitsetProjection(const DiscreteDataset* data, const std::vector<RowId>* order,
                   Unpopulated)
      : data_(data), order_(order) {}

  const DiscreteDataset* data_;
  const std::vector<RowId>* order_;
  std::vector<uint32_t> positions_;
};

/// Explicit projected transposed tables: every tuple is a materialized
/// vector of the row positions after X. This mirrors the original FARMER
/// implementation ("in-memory pointers", no prefix tree, no packed bitsets);
/// projection re-scans and copies the surviving tuples, which is exactly
/// the cost the paper's prefix tree amortizes away.
class VectorProjection {
 public:
  VectorProjection(const DiscreteDataset* data, const std::vector<RowId>* order,
                   const Bitset& items)
      // NOLINT(cast: order->size() == num_rows, a uint32 by construction)
      : num_positions_(static_cast<uint32_t>(order->size())) {
    std::vector<uint32_t> position_of(data->num_rows());
    for (uint32_t pos = 0; pos < order->size(); ++pos) {
      position_of[(*order)[pos]] = pos;
    }
    freq_.assign(num_positions_, 0);
    items.ForEach([&](size_t item) {
      std::vector<uint32_t> tuple;
      // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
      data->item_rows(static_cast<ItemId>(item)).ForEach([&](size_t row) {
        tuple.push_back(position_of[row]);
      });
      std::sort(tuple.begin(), tuple.end());
      for (uint32_t p : tuple) ++freq_[p];
      tuples_.push_back(std::move(tuple));
    });
  }

  const VectorProjection& WithArena(PrefixTree::Arena* /*arena*/) const {
    return *this;
  }

  void Positions(std::vector<uint32_t>* out) const {
    out->clear();
    for (uint32_t pos = 0; pos < num_positions_; ++pos) {
      if (freq_[pos] > 0) out->push_back(pos);
    }
  }

  template <typename ItemSet>
  TKRGS_HOT uint32_t Freq(uint32_t pos, const ItemSet& /*items*/) const {
    return freq_[pos];
  }

  VectorProjection Child(uint32_t pos,
                         const std::vector<uint32_t>& /*live_positions*/) const {
    VectorProjection child(num_positions_);
    for (const auto& tuple : tuples_) {
      if (!std::binary_search(tuple.begin(), tuple.end(), pos)) continue;
      std::vector<uint32_t> projected;
      for (uint32_t p : tuple) {
        if (p > pos) {
          projected.push_back(p);
          ++child.freq_[p];
        }
      }
      child.tuples_.push_back(std::move(projected));
    }
    return child;
  }

 private:
  explicit VectorProjection(uint32_t num_positions)
      : num_positions_(num_positions) {
    freq_.assign(num_positions_, 0);
  }

  uint32_t num_positions_ = 0;
  std::vector<std::vector<uint32_t>> tuples_;
  std::vector<uint32_t> freq_;
};

/// Prefix-tree-backed projection (§4.2): conditional trees share tuple
/// prefixes, so frequency counting is amortized across items.
class TreeProjection {
 public:
  /// Takes the tree by rvalue: every construction site hands over a
  /// freshly built tree, and the && makes any future copying caller
  /// spell out the copy instead of hiding it in a by-value sink.
  explicit TreeProjection(PrefixTree&& tree,
                          PrefixTree::Arena* arena = nullptr)
      : tree_(std::move(tree)), arena_(arena) {}

  /// A borrowed view over this projection's tree whose conditional trees
  /// allocate from `arena`. The view must not outlive the viewed
  /// projection; children built from it are owning as usual.
  TreeProjection WithArena(PrefixTree::Arena* arena) const {
    return TreeProjection(&ref(), arena);
  }

  void Positions(std::vector<uint32_t>* out) const {
    out->clear();
    ref().ForEachFrequentPosition(
        [out](uint32_t pos, uint32_t) { out->push_back(pos); });
  }

  template <typename ItemSet>
  TKRGS_HOT uint32_t Freq(uint32_t pos, const ItemSet& /*items*/) const {
    return ref().freq(pos);
  }

  TreeProjection Child(uint32_t pos,
                       const std::vector<uint32_t>& /*live_positions*/) const {
    return TreeProjection(ref().Conditional(pos, arena_), arena_);
  }

  const PrefixTree& tree() const { return ref(); }

 private:
  TreeProjection(const PrefixTree* borrowed, PrefixTree::Arena* arena)
      : borrowed_(borrowed), arena_(arena) {}

  const PrefixTree& ref() const {
    return borrowed_ != nullptr ? *borrowed_ : tree_;
  }

  PrefixTree tree_;
  const PrefixTree* borrowed_ = nullptr;
  PrefixTree::Arena* arena_ = nullptr;
};

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_PROJECTION_H_
