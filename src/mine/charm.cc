#include "mine/charm.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rowset.h"
#include "util/status.h"

namespace topkrgs {

namespace {

/// One IT-pair of the CHARM search. `diffset` is relative to the parent
/// prefix: d(Px) = t(P) \ t(Px); supports and tid sums are maintained
/// arithmetically from it (Zaki's dCHARM scheme), so tidsets are never
/// intersected during the search.
struct CharmNode {
  Bitset items;
  std::vector<uint32_t> diffset;
  uint32_t support = 0;        // |t(Px)|
  uint32_t class_support = 0;  // |t(Px) ∩ consequent rows|
  uint64_t tid_sum = 0;
  bool removed = false;
};

class CharmSearch {
 public:
  CharmSearch(const DiscreteDataset& data, ClassLabel consequent,
              const CharmOptions& options)
      : data_(data), consequent_(consequent), opt_(options) {}

  MiningResult Run();

 private:
  void Extend(const std::vector<uint32_t>& prefix_tidset,
              std::vector<CharmNode>& nodes);
  void Emit(const CharmNode& node, const std::vector<uint32_t>& tidset);
  bool Subsumed(const CharmNode& node) const;

  uint32_t ClassCount(const std::vector<uint32_t>& rows) const {
    uint32_t c = 0;
    for (uint32_t r : rows) c += (data_.label(r) == consequent_);
    return c;
  }

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const CharmOptions& opt_;
  uint32_t minsup_ = 1;

  // Closed-set index for subsumption checking: tid_sum -> result indices.
  // NOLINT(determinism: membership index only — probed via find(), never
  // iterated; emission order is the sequential search order, and the
  // subsumption verdict is independent of within-bucket probe order)
  std::unordered_map<uint64_t, std::vector<size_t>> closed_index_;
  std::vector<std::pair<Bitset, uint32_t>> closed_sets_;  // (items, support)

  bool stopped_ = false;
  MiningResult result_;
};

bool CharmSearch::Subsumed(const CharmNode& node) const {
  const auto it = closed_index_.find(node.tid_sum);
  if (it == closed_index_.end()) return false;
  // Candidate itemsets are usually tiny relative to the item universe:
  // the adaptive probe turns each bucket check into O(|items|) bit tests
  // instead of a full word scan when the set is sparse.
  const RowSet probe = RowSet::FromBitset(node.items);
  for (size_t idx : it->second) {
    // items ⊆ Z.items implies t ⊇ t(Z); with equal supports the tidsets are
    // equal, so Z subsumes node.
    if (closed_sets_[idx].second == node.support &&
        probe.IsSubsetOf(closed_sets_[idx].first)) {
      return true;
    }
  }
  return false;
}

void CharmSearch::Emit(const CharmNode& node,
                       const std::vector<uint32_t>& tidset) {
  if (node.class_support < minsup_) return;
  if (Subsumed(node)) return;
  closed_index_[node.tid_sum].push_back(closed_sets_.size());
  closed_sets_.emplace_back(node.items, node.support);

  RuleGroup group;
  group.antecedent = node.items;
  group.consequent = consequent_;
  group.support = node.class_support;
  group.antecedent_support = node.support;
  if (opt_.materialize_rowsets) {
    Bitset rows(data_.num_rows());
    for (uint32_t r : tidset) rows.Set(r);
    group.row_support = std::move(rows);
  }
  result_.groups.push_back(std::move(group));
  ++result_.stats.groups_emitted;
  if (opt_.max_groups != 0 && result_.stats.groups_emitted >= opt_.max_groups) {
    stopped_ = true;
    result_.stats.timed_out = true;
  }
}

void CharmSearch::Extend(const std::vector<uint32_t>& prefix_tidset,
                         std::vector<CharmNode>& nodes) {
  for (size_t i = 0; i < nodes.size() && !stopped_; ++i) {
    if (nodes[i].removed) continue;
    CharmNode& x = nodes[i];
    ++result_.stats.nodes_visited;
    if (opt_.deadline.Expired()) {
      stopped_ = true;
      result_.stats.timed_out = true;
      return;
    }

    // t(Px) = t(P) \ d(Px).
    std::vector<uint32_t> tidset_x;
    tidset_x.reserve(prefix_tidset.size() - x.diffset.size());
    sorted::Difference(prefix_tidset.data(), prefix_tidset.size(),
                       x.diffset.data(), x.diffset.size(), &tidset_x);

    std::vector<CharmNode> children;
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[j].removed) continue;
      // d(Pxy) = d(Py) \ d(Px).
      std::vector<uint32_t> diff;
      sorted::Difference(nodes[j].diffset.data(), nodes[j].diffset.size(),
                         x.diffset.data(), x.diffset.size(), &diff);
      const uint32_t sup = x.support - static_cast<uint32_t>(diff.size());
      const uint32_t class_sup = x.class_support - ClassCount(diff);
      uint64_t diff_sum = 0;
      for (uint32_t r : diff) diff_sum += r;
      const uint64_t tid_sum = x.tid_sum - diff_sum;

      if (sup == x.support && sup == nodes[j].support) {
        // Property 1: t(x) == t(y) — fold y into x everywhere.
        x.items.UnionWith(nodes[j].items);
        for (auto& child : children) child.items.UnionWith(nodes[j].items);
        nodes[j].removed = true;
      } else if (sup == x.support) {
        // Property 2: t(x) ⊂ t(y) — y belongs to x's closure, keep y.
        x.items.UnionWith(nodes[j].items);
        for (auto& child : children) child.items.UnionWith(nodes[j].items);
      } else if (sup == nodes[j].support) {
        // Property 3: t(y) ⊂ t(x) — every closed set with y also has x;
        // continue y only inside x's subtree.
        nodes[j].removed = true;
        CharmNode child;
        child.items = Union(x.items, nodes[j].items);
        child.diffset = std::move(diff);
        child.support = sup;
        child.class_support = class_sup;
        child.tid_sum = tid_sum;
        children.push_back(std::move(child));
      } else if (class_sup >= minsup_) {
        // Property 4: incomparable tidsets.
        CharmNode child;
        child.items = Union(x.items, nodes[j].items);
        child.diffset = std::move(diff);
        child.support = sup;
        child.class_support = class_sup;
        child.tid_sum = tid_sum;
        children.push_back(std::move(child));
      }
    }

    Emit(x, tidset_x);

    if (!children.empty()) {
      std::stable_sort(children.begin(), children.end(),
                       [](const CharmNode& a, const CharmNode& b) {
                         return a.support < b.support;
                       });
      Extend(tidset_x, children);
    }
  }
}

MiningResult CharmSearch::Run() {
  Stopwatch timer;
  minsup_ = std::max<uint32_t>(1, opt_.min_support);
  const Bitset class_rows = data_.ClassRowset(consequent_);

  std::vector<uint32_t> all_rows(data_.num_rows());
  for (uint32_t r = 0; r < data_.num_rows(); ++r) all_rows[r] = r;

  std::vector<CharmNode> level1;
  for (ItemId item = 0; item < data_.num_items(); ++item) {
    const Bitset& rows = data_.item_rows(item);
    const uint32_t class_sup =
        static_cast<uint32_t>(rows.IntersectCount(class_rows));
    if (class_sup < minsup_) continue;
    CharmNode node;
    node.items = Bitset(data_.num_items());
    node.items.Set(item);
    node.support = static_cast<uint32_t>(rows.Count());
    node.class_support = class_sup;
    // d(x) = t(∅) \ t(x); tid_sum tracked alongside.
    node.diffset.reserve(data_.num_rows() - node.support);
    for (uint32_t r = 0; r < data_.num_rows(); ++r) {
      if (rows.Test(r)) {
        node.tid_sum += r;
      } else {
        node.diffset.push_back(r);
      }
    }
    level1.push_back(std::move(node));
  }
  std::stable_sort(level1.begin(), level1.end(),
                   [](const CharmNode& a, const CharmNode& b) {
                     return a.support < b.support;
                   });
  Extend(all_rows, level1);

  result_.stats.seconds = timer.ElapsedSeconds();
  return std::move(result_);
}

}  // namespace

MiningResult MineCharm(const DiscreteDataset& data, ClassLabel consequent,
                       const CharmOptions& options) {
  CharmSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
