#ifndef TOPKRGS_MINE_TRANSPOSED_TABLE_H_
#define TOPKRGS_MINE_TRANSPOSED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace topkrgs {

/// The transposed table TT of §3: one tuple per item, listing the rows that
/// contain it (as positions in the class dominant order). This is the
/// pedagogical, directly-inspectable representation of the paper's Figure
/// 1(b-d); the production miners use the prefix-tree and bitset encodings of
/// the same structure.
class TransposedTable {
 public:
  struct Tuple {
    ItemId item = 0;
    /// Row positions (indices into the enumeration order), ascending.
    std::vector<uint32_t> positions;
  };

  /// Builds TT over the items set in `items`, with rows numbered by their
  /// position in `order` (position -> original RowId).
  static TransposedTable Build(const DiscreteDataset& data,
                               const std::vector<RowId>& order,
                               const Bitset& items);

  /// The X-projected transposed table TT|_X for X = {pos}: keeps tuples
  /// containing `pos`, truncated to positions strictly greater than `pos`.
  /// Chaining Project calls yields TT|_X for any row set X.
  TransposedTable Project(uint32_t pos) const;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t num_tuples() const { return tuples_.size(); }

  /// freq(pos): the number of tuples containing `pos`.
  uint32_t Frequency(uint32_t pos) const;

  /// Renders like Figure 1(b): one line per tuple, "item: p1 p2 ...".
  std::string ToString() const;

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_TRANSPOSED_TABLE_H_
