#include "mine/prefix_tree.h"

#include <algorithm>
#include <functional>
#include <string>

#include "util/check.h"
#include "util/status.h"

namespace topkrgs {

PrefixTree::PrefixTree(uint32_t num_positions, Arena* arena) : arena_(arena) {
  if (arena != nullptr && !arena->free_.empty()) {
    Arena::Buffers buffers = std::move(arena->free_.back());
    arena->free_.pop_back();
    nodes_ = std::move(buffers.nodes);
    nodes_.clear();
    headers_ = std::move(buffers.headers);
    headers_.clear();
    ++arena->reuses_;
  } else if (arena != nullptr) {
    ++arena->heap_allocations_;
  }
  nodes_.push_back(Node{});  // synthetic root
  headers_.resize(num_positions);
}

void PrefixTree::ReleaseToArena() {
  if (arena_ == nullptr) return;
  if (nodes_.capacity() > 0 || headers_.capacity() > 0) {
    arena_->free_.push_back(
        Arena::Buffers{std::move(nodes_), std::move(headers_)});
  }
  arena_ = nullptr;
}

PrefixTree::~PrefixTree() { ReleaseToArena(); }

PrefixTree::PrefixTree(PrefixTree&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      headers_(std::move(other.headers_)),
      tuple_count_(other.tuple_count_),
      arena_(other.arena_) {
  other.arena_ = nullptr;
  other.tuple_count_ = 0;
}

PrefixTree& PrefixTree::operator=(PrefixTree&& other) noexcept {
  if (this != &other) {
    ReleaseToArena();
    nodes_ = std::move(other.nodes_);
    headers_ = std::move(other.headers_);
    tuple_count_ = other.tuple_count_;
    arena_ = other.arena_;
    other.arena_ = nullptr;
    other.tuple_count_ = 0;
  }
  return *this;
}

PrefixTree::PrefixTree(const PrefixTree& other)
    : nodes_(other.nodes_),
      headers_(other.headers_),
      tuple_count_(other.tuple_count_),
      arena_(nullptr) {}

PrefixTree& PrefixTree::operator=(const PrefixTree& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    headers_ = other.headers_;
    tuple_count_ = other.tuple_count_;
  }
  return *this;
}

void PrefixTree::InsertPath(const uint32_t* path, size_t len, uint32_t count) {
  tuple_count_ += count;
  int32_t current = 0;
  for (size_t i = 0; i < len; ++i) {
    const uint32_t pos = path[i];
    // Find a child of `current` with this position.
    int32_t child = nodes_[current].first_child;
    while (child != -1 && nodes_[child].pos != pos) {
      child = nodes_[child].next_sibling;
    }
    if (child == -1) {
      child = static_cast<int32_t>(nodes_.size());
      Node node;
      node.pos = pos;
      node.parent = current;
      node.next_sibling = nodes_[current].first_child;
      node.header_next = headers_[pos].head;
      nodes_.push_back(node);
      nodes_[current].first_child = child;
      headers_[pos].head = child;
    }
    nodes_[child].count += count;
    headers_[pos].freq += count;
    current = child;
  }
}

PrefixTree PrefixTree::BuildRoot(const DiscreteDataset& data,
                                 const std::vector<RowId>& order,
                                 const Bitset& items, Arena* arena) {
  const uint32_t n = data.num_rows();
  TOPKRGS_CHECK(order.size() == n, "order must cover all rows");
  std::vector<uint32_t> position_of(n);
  for (uint32_t pos = 0; pos < n; ++pos) position_of[order[pos]] = pos;

  PrefixTree tree(n, arena);
  std::vector<uint32_t> path;
  items.ForEach([&](size_t item) {
    path.clear();
    data.item_rows(static_cast<ItemId>(item)).ForEach([&](size_t row) {
      path.push_back(position_of[row]);
    });
    // Descending positions: conditional trees then contain only the rows
    // ordered after the projection row.
    std::sort(path.begin(), path.end(), std::greater<uint32_t>());
    tree.InsertPath(path.data(), path.size(), 1);
  });
  tree.ValidateInvariants();
  return tree;
}

bool PrefixTree::CheckInvariants(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (nodes_.empty()) {
    // Default-constructed placeholder: no root, no tuples, no headers.
    if (tuple_count_ != 0 || !headers_.empty()) {
      return fail("placeholder tree carries tuples or headers");
    }
    return true;
  }
  if (nodes_[0].parent != -1) return fail("root node has a parent");

  const auto node_index_ok = [this](int32_t i) {
    return i >= -1 && i < static_cast<int32_t>(nodes_.size());
  };
  std::vector<uint64_t> child_count_sum(nodes_.size(), 0);
  std::vector<uint32_t> pos_node_count(headers_.size(), 0);
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (!node_index_ok(node.parent) || node.parent == -1) {
      return fail("node " + std::to_string(i) + " has invalid parent");
    }
    if (!node_index_ok(node.first_child) || !node_index_ok(node.next_sibling) ||
        !node_index_ok(node.header_next)) {
      return fail("node " + std::to_string(i) + " has an out-of-range link");
    }
    if (node.pos >= headers_.size()) {
      return fail("node " + std::to_string(i) + " position " +
                  std::to_string(node.pos) + " outside the row order");
    }
    // Descending enumeration order along every path (§4.2): a child holds
    // a strictly smaller position than its non-root parent.
    if (node.parent != 0 &&
        node.pos >= nodes_[node.parent].pos) {
      return fail("path positions not strictly descending at node " +
                  std::to_string(i));
    }
    child_count_sum[node.parent] += node.count;
    ++pos_node_count[node.pos];
  }
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].count < child_count_sum[i]) {
      return fail("node " + std::to_string(i) + " count " +
                  std::to_string(nodes_[i].count) +
                  " smaller than its children's sum " +
                  std::to_string(child_count_sum[i]));
    }
  }
  // Child lists: every node must be reachable from its parent's chain
  // exactly once (a cycle or a stray sibling link would double-count
  // projections).
  std::vector<uint8_t> seen(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    size_t steps = 0;
    for (int32_t child = nodes_[i].first_child; child != -1;
         child = nodes_[child].next_sibling) {
      if (++steps > nodes_.size()) {
        return fail("child list of node " + std::to_string(i) + " cycles");
      }
      if (nodes_[child].parent != static_cast<int32_t>(i)) {
        return fail("node " + std::to_string(child) +
                    " linked under a foreign parent chain");
      }
      if (seen[child]++) {
        return fail("node " + std::to_string(child) +
                    " appears in two child lists");
      }
    }
  }
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (!seen[i]) {
      return fail("node " + std::to_string(i) + " unreachable from any parent");
    }
  }
  // Header chains: chain of pos visits exactly the nodes with that pos,
  // and freq is their count sum — the quantity freq() feeds to Step 10.
  uint64_t first_level_sum = 0;
  for (int32_t child = nodes_[0].first_child; child != -1;
       child = nodes_[child].next_sibling) {
    first_level_sum += nodes_[child].count;
  }
  for (uint32_t pos = 0; pos < headers_.size(); ++pos) {
    uint64_t chain_sum = 0;
    uint32_t chain_nodes = 0;
    size_t steps = 0;
    for (int32_t node = headers_[pos].head; node != -1;
         node = nodes_[node].header_next) {
      if (++steps > nodes_.size()) {
        return fail("header chain of position " + std::to_string(pos) +
                    " cycles");
      }
      if (nodes_[node].pos != pos) {
        return fail("header chain of position " + std::to_string(pos) +
                    " visits a node of position " +
                    std::to_string(nodes_[node].pos));
      }
      chain_sum += nodes_[node].count;
      ++chain_nodes;
    }
    if (chain_nodes != pos_node_count[pos]) {
      return fail("header chain of position " + std::to_string(pos) +
                  " misses nodes of that position");
    }
    if (chain_sum != headers_[pos].freq) {
      return fail("freq(" + std::to_string(pos) + ") = " +
                  std::to_string(headers_[pos].freq) +
                  " but header chain counts sum to " +
                  std::to_string(chain_sum));
    }
  }
  // Zero-length tuples bump tuple_count_ without creating nodes, so the
  // first level bounds the total from below only.
  if (tuple_count_ < first_level_sum) {
    return fail("tuple_count " + std::to_string(tuple_count_) +
                " smaller than first-level count sum " +
                std::to_string(first_level_sum));
  }
  return true;
}

void PrefixTree::ValidateInvariants() const {
#if TOPKRGS_DCHECK_IS_ON()
  std::string error;
  TKRGS_DCHECK(CheckInvariants(&error), error.c_str());
#endif
}

PrefixTree PrefixTree::Conditional(uint32_t pos, Arena* arena) const {
  PrefixTree out(static_cast<uint32_t>(headers_.size()), arena);
  std::vector<uint32_t> local_path;
  std::vector<uint32_t>& path =
      arena != nullptr ? arena->path_scratch_ : local_path;
  for (int32_t node = headers_[pos].head; node != -1;
       node = nodes_[node].header_next) {
    const uint32_t count = nodes_[node].count;
    if (count == 0) continue;
    // Prefix path above this node: ascending positions while climbing, so
    // the reversed buffer is the descending path to insert.
    path.clear();
    for (int32_t up = nodes_[node].parent; up != 0; up = nodes_[up].parent) {
      path.push_back(nodes_[up].pos);
    }
    std::reverse(path.begin(), path.end());
    out.InsertPath(path.data(), path.size(), count);
  }
  return out;
}

}  // namespace topkrgs
