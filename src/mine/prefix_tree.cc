#include "mine/prefix_tree.h"

#include <algorithm>

#include "util/status.h"

namespace topkrgs {

PrefixTree::PrefixTree(uint32_t num_positions, Arena* arena) : arena_(arena) {
  if (arena != nullptr && !arena->free_.empty()) {
    Arena::Buffers buffers = std::move(arena->free_.back());
    arena->free_.pop_back();
    nodes_ = std::move(buffers.nodes);
    nodes_.clear();
    headers_ = std::move(buffers.headers);
    headers_.clear();
    ++arena->reuses_;
  } else if (arena != nullptr) {
    ++arena->heap_allocations_;
  }
  nodes_.push_back(Node{});  // synthetic root
  headers_.resize(num_positions);
}

void PrefixTree::ReleaseToArena() {
  if (arena_ == nullptr) return;
  if (nodes_.capacity() > 0 || headers_.capacity() > 0) {
    arena_->free_.push_back(
        Arena::Buffers{std::move(nodes_), std::move(headers_)});
  }
  arena_ = nullptr;
}

PrefixTree::~PrefixTree() { ReleaseToArena(); }

PrefixTree::PrefixTree(PrefixTree&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      headers_(std::move(other.headers_)),
      tuple_count_(other.tuple_count_),
      arena_(other.arena_) {
  other.arena_ = nullptr;
  other.tuple_count_ = 0;
}

PrefixTree& PrefixTree::operator=(PrefixTree&& other) noexcept {
  if (this != &other) {
    ReleaseToArena();
    nodes_ = std::move(other.nodes_);
    headers_ = std::move(other.headers_);
    tuple_count_ = other.tuple_count_;
    arena_ = other.arena_;
    other.arena_ = nullptr;
    other.tuple_count_ = 0;
  }
  return *this;
}

PrefixTree::PrefixTree(const PrefixTree& other)
    : nodes_(other.nodes_),
      headers_(other.headers_),
      tuple_count_(other.tuple_count_),
      arena_(nullptr) {}

PrefixTree& PrefixTree::operator=(const PrefixTree& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    headers_ = other.headers_;
    tuple_count_ = other.tuple_count_;
  }
  return *this;
}

void PrefixTree::InsertPath(const uint32_t* path, size_t len, uint32_t count) {
  tuple_count_ += count;
  int32_t current = 0;
  for (size_t i = 0; i < len; ++i) {
    const uint32_t pos = path[i];
    // Find a child of `current` with this position.
    int32_t child = nodes_[current].first_child;
    while (child != -1 && nodes_[child].pos != pos) {
      child = nodes_[child].next_sibling;
    }
    if (child == -1) {
      child = static_cast<int32_t>(nodes_.size());
      Node node;
      node.pos = pos;
      node.parent = current;
      node.next_sibling = nodes_[current].first_child;
      node.header_next = headers_[pos].head;
      nodes_.push_back(node);
      nodes_[current].first_child = child;
      headers_[pos].head = child;
    }
    nodes_[child].count += count;
    headers_[pos].freq += count;
    current = child;
  }
}

PrefixTree PrefixTree::BuildRoot(const DiscreteDataset& data,
                                 const std::vector<RowId>& order,
                                 const Bitset& items, Arena* arena) {
  const uint32_t n = data.num_rows();
  TOPKRGS_CHECK(order.size() == n, "order must cover all rows");
  std::vector<uint32_t> position_of(n);
  for (uint32_t pos = 0; pos < n; ++pos) position_of[order[pos]] = pos;

  PrefixTree tree(n, arena);
  std::vector<uint32_t> path;
  items.ForEach([&](size_t item) {
    path.clear();
    data.item_rows(static_cast<ItemId>(item)).ForEach([&](size_t row) {
      path.push_back(position_of[row]);
    });
    // Descending positions: conditional trees then contain only the rows
    // ordered after the projection row.
    std::sort(path.begin(), path.end(), std::greater<uint32_t>());
    tree.InsertPath(path.data(), path.size(), 1);
  });
  return tree;
}

PrefixTree PrefixTree::Conditional(uint32_t pos, Arena* arena) const {
  PrefixTree out(static_cast<uint32_t>(headers_.size()), arena);
  std::vector<uint32_t> local_path;
  std::vector<uint32_t>& path =
      arena != nullptr ? arena->path_scratch_ : local_path;
  for (int32_t node = headers_[pos].head; node != -1;
       node = nodes_[node].header_next) {
    const uint32_t count = nodes_[node].count;
    if (count == 0) continue;
    // Prefix path above this node: ascending positions while climbing, so
    // the reversed buffer is the descending path to insert.
    path.clear();
    for (int32_t up = nodes_[node].parent; up != 0; up = nodes_[up].parent) {
      path.push_back(nodes_[up].pos);
    }
    std::reverse(path.begin(), path.end());
    out.InsertPath(path.data(), path.size(), count);
  }
  return out;
}

}  // namespace topkrgs
