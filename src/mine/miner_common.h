#ifndef TOPKRGS_MINE_MINER_COMMON_H_
#define TOPKRGS_MINE_MINER_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"
#include "core/types.h"

namespace topkrgs {

/// Resolves a fractional minimum support against a class size: the paper's
/// minsup = frac·|C| rounded to the nearest integer, clamped to >= 1.
/// Rounding matters: the canonical frac = 0.7 on a 10-row class must give
/// minsup 7, but 0.7 * 10 is 6.999... in binary floating point, so a
/// truncating cast silently mined at minsup 6. Every frac-to-minsup
/// conversion (RCBT, CBA, the CLI) must go through this helper.
inline uint32_t MinSupportFromFrac(double frac, uint32_t class_rows) {
  const long rounded = std::lround(frac * static_cast<double>(class_rows));
  return static_cast<uint32_t>(std::max<long>(1, rounded));
}

/// Counters shared by all miners; benchmark harnesses report these next to
/// wall-clock time so pruning effectiveness can be compared directly.
struct MinerStats {
  uint64_t nodes_visited = 0;
  uint64_t groups_emitted = 0;
  uint64_t pruned_backward = 0;
  uint64_t pruned_bounds = 0;
  // Work-stealing scheduler counters (zero for serial miners): subtree
  // tasks run, shed mid-task by dynamic splits, and claimed from another
  // worker's deque. tasks_executed can exceed the first-level task count
  // when splitting is active.
  uint64_t tasks_executed = 0;
  uint64_t tasks_spawned = 0;
  uint64_t tasks_stolen = 0;
  double seconds = 0.0;
  bool timed_out = false;
};

/// A generic mining result: the discovered rule groups (upper bounds) plus
/// search statistics.
struct MiningResult {
  std::vector<RuleGroup> groups;
  MinerStats stats;
};

/// Computes the class dominant order ORD of the rows (Definition 3.1):
/// all rows of `consequent` class first, then the rest; within each class,
/// ascending number of frequent items (the ordering refinement of §4.1.2).
/// `frequent_items` may be empty, in which case all items count.
/// Returns a permutation: position -> original RowId.
std::vector<RowId> ClassDominantOrder(const DiscreteDataset& data,
                                      ClassLabel consequent,
                                      const Bitset& frequent_items);

/// Number of rows of `consequent` class (they occupy the first positions of
/// the class dominant order).
uint32_t CountClassRows(const DiscreteDataset& data, ClassLabel consequent);

/// Items whose support within the `consequent` class is >= min_support.
/// This is Step 1 of MineTopkRGS: rule support is counted on consequent
/// rows only, so item frequency is too.
Bitset FrequentItems(const DiscreteDataset& data, ClassLabel consequent,
                     uint32_t min_support);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_MINER_COMMON_H_
