#include "mine/miner_common.h"

#include <algorithm>
#include <numeric>

namespace topkrgs {

std::vector<RowId> ClassDominantOrder(const DiscreteDataset& data,
                                      ClassLabel consequent,
                                      const Bitset& frequent_items) {
  const uint32_t n = data.num_rows();
  std::vector<uint32_t> weight(n);
  for (RowId r = 0; r < n; ++r) {
    weight[r] = frequent_items.empty()
                    ? static_cast<uint32_t>(data.row_items(r).size())
                    : static_cast<uint32_t>(
                          data.row_bitset(r).IntersectCount(frequent_items));
  }
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    const bool a_pos = data.label(a) == consequent;
    const bool b_pos = data.label(b) == consequent;
    if (a_pos != b_pos) return a_pos;  // consequent class first
    return weight[a] < weight[b];      // fewer frequent items first
  });
  return order;
}

uint32_t CountClassRows(const DiscreteDataset& data, ClassLabel consequent) {
  uint32_t count = 0;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    if (data.label(r) == consequent) ++count;
  }
  return count;
}

Bitset FrequentItems(const DiscreteDataset& data, ClassLabel consequent,
                     uint32_t min_support) {
  const Bitset class_rows = data.ClassRowset(consequent);
  Bitset items(data.num_items());
  for (ItemId i = 0; i < data.num_items(); ++i) {
    if (data.item_rows(i).IntersectCount(class_rows) >= min_support) {
      items.Set(i);
    }
  }
  return items;
}

}  // namespace topkrgs
