#include "mine/transposed_table.h"

#include <algorithm>

#include "util/rowset.h"

namespace topkrgs {

TransposedTable TransposedTable::Build(const DiscreteDataset& data,
                                       const std::vector<RowId>& order,
                                       const Bitset& items) {
  // position_of[r] = position of original row r in the enumeration order.
  std::vector<uint32_t> position_of(data.num_rows());
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    position_of[order[pos]] = pos;
  }
  TransposedTable tt;
  items.ForEach([&](size_t item) {
    Tuple tuple;
    // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
    tuple.item = static_cast<ItemId>(item);
    data.item_rows(tuple.item).ForEach([&](size_t row) {
      tuple.positions.push_back(position_of[row]);
    });
    std::sort(tuple.positions.begin(), tuple.positions.end());
    tt.tuples_.push_back(std::move(tuple));
  });
  return tt;
}

TransposedTable TransposedTable::Project(uint32_t pos) const {
  TransposedTable out;
  for (const Tuple& tuple : tuples_) {
    if (!sorted::Contains(tuple.positions.data(), tuple.positions.size(),
                          pos)) {
      continue;
    }
    Tuple projected;
    projected.item = tuple.item;
    // Positions are sorted: the projected suffix starts right after pos.
    const auto first = std::upper_bound(tuple.positions.begin(),
                                        tuple.positions.end(), pos);
    projected.positions.assign(first, tuple.positions.end());
    out.tuples_.push_back(std::move(projected));
  }
  return out;
}

uint32_t TransposedTable::Frequency(uint32_t pos) const {
  uint32_t freq = 0;
  for (const Tuple& tuple : tuples_) {
    if (sorted::Contains(tuple.positions.data(), tuple.positions.size(),
                         pos)) {
      ++freq;
    }
  }
  return freq;
}

std::string TransposedTable::ToString() const {
  std::string out;
  for (const Tuple& tuple : tuples_) {
    out += 'i';
    out += std::to_string(tuple.item);
    out += ':';
    for (uint32_t p : tuple.positions) {
      out += ' ';
      out += std::to_string(p);
    }
    out += '\n';
  }
  return out;
}

}  // namespace topkrgs
