#include "mine/carpenter.h"

#include <algorithm>
#include <numeric>

#include "mine/projection.h"
#include "util/status.h"

namespace topkrgs {

namespace {

class CarpenterSearch {
 public:
  CarpenterSearch(const DiscreteDataset& data, const CarpenterOptions& options)
      : data_(data), opt_(options) {}

  CarpenterResult Run();

 private:
  template <typename Proj>
  void Visit(const Proj& proj, const Bitset& items, uint32_t items_count,
             bool closed_on_left);

  void EmitAt(const Bitset& items);

  const DiscreteDataset& data_;
  const CarpenterOptions& opt_;
  uint32_t minsup_ = 1;

  std::vector<RowId> order_;
  std::vector<uint32_t> x_stack_;
  std::vector<bool> in_x_;

  bool stopped_ = false;
  CarpenterResult result_;
};

void CarpenterSearch::EmitAt(const Bitset& items) {
  if (x_stack_.size() < minsup_) return;
  ClosedPattern pattern;
  pattern.items = items;
  pattern.support = static_cast<uint32_t>(x_stack_.size());
  Bitset rows(data_.num_rows());
  for (uint32_t pos : x_stack_) rows.Set(order_[pos]);
  pattern.rows = std::move(rows);
  result_.patterns.push_back(std::move(pattern));
  ++result_.stats.groups_emitted;
  if (opt_.max_patterns != 0 &&
      result_.stats.groups_emitted >= opt_.max_patterns) {
    stopped_ = true;
    result_.stats.timed_out = true;
  }
}

template <typename Proj>
void CarpenterSearch::Visit(const Proj& proj, const Bitset& items,
                            uint32_t items_count, bool closed_on_left) {
  if (stopped_) return;
  ++result_.stats.nodes_visited;
  if (opt_.deadline.Expired()) {
    stopped_ = true;
    result_.stats.timed_out = true;
    return;
  }
  if (items_count == 0) return;

  std::vector<uint32_t> cand;
  proj.Positions(&cand);
  std::erase_if(cand, [&](uint32_t p) { return in_x_[p]; });

  // Support bound: |X| plus every remaining candidate.
  if (x_stack_.size() + cand.size() < minsup_) {
    ++result_.stats.pruned_bounds;
    return;
  }

  std::vector<uint32_t> live;
  std::vector<uint32_t> live_freq;
  std::vector<uint32_t> absorbed;
  for (uint32_t p : cand) {
    const uint32_t f = proj.Freq(p, items);
    if (f == items_count) {
      absorbed.push_back(p);
    } else if (f > 0) {
      live.push_back(p);
      live_freq.push_back(f);
    }
  }
  for (uint32_t p : absorbed) {
    in_x_[p] = true;
    x_stack_.push_back(p);
  }

  if (closed_on_left) EmitAt(items);

  for (size_t i = 0; i < live.size() && !stopped_; ++i) {
    const uint32_t p = live[i];
    // Support bound per child: X plus the branch row plus later candidates.
    if (x_stack_.size() + 1 + (live.size() - i - 1) < minsup_) {
      ++result_.stats.pruned_bounds;
      break;  // later children have even fewer candidates
    }
    Bitset child_items = Intersect(items, data_.row_bitset(order_[p]));
    bool child_closed = true;
    for (uint32_t q = 0; q < p; ++q) {
      if (!in_x_[q] && child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
        child_closed = false;
        break;
      }
    }
    if (!child_closed) {
      ++result_.stats.pruned_backward;
      continue;
    }
    in_x_[p] = true;
    x_stack_.push_back(p);
    Visit(proj.Child(p, live), child_items, live_freq[i], child_closed);
    x_stack_.pop_back();
    in_x_[p] = false;
  }

  for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
    x_stack_.pop_back();
    in_x_[*it] = false;
  }
}

CarpenterResult CarpenterSearch::Run() {
  Stopwatch timer;
  minsup_ = std::max<uint32_t>(1, opt_.min_support);

  // Frequent items by total support (no class labels).
  Bitset frequent(data_.num_items());
  for (ItemId item = 0; item < data_.num_items(); ++item) {
    if (data_.ItemSupport(item) >= minsup_) frequent.Set(item);
  }
  // Rows ascending by frequent item count, as in CARPENTER.
  order_.resize(data_.num_rows());
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](RowId a, RowId b) {
    return data_.row_bitset(a).IntersectCount(frequent) <
           data_.row_bitset(b).IntersectCount(frequent);
  });
  in_x_.assign(data_.num_rows(), false);

  const uint32_t items_count = static_cast<uint32_t>(frequent.Count());
  if (items_count > 0 && data_.num_rows() > 0) {
    if (opt_.use_prefix_tree) {
      TreeProjection root(PrefixTree::BuildRoot(data_, order_, frequent));
      Visit(root, frequent, items_count, true);
    } else {
      VectorProjection root(&data_, &order_, frequent);
      Visit(root, frequent, items_count, true);
    }
  }
  result_.stats.seconds = timer.ElapsedSeconds();
  return std::move(result_);
}

}  // namespace

CarpenterResult MineCarpenter(const DiscreteDataset& data,
                              const CarpenterOptions& options) {
  CarpenterSearch search(data, options);
  return search.Run();
}

}  // namespace topkrgs
