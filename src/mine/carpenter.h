#ifndef TOPKRGS_MINE_CARPENTER_H_
#define TOPKRGS_MINE_CARPENTER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "mine/miner_common.h"
#include "util/timer.h"

namespace topkrgs {

/// A closed pattern: a closed itemset with its full row support set.
struct ClosedPattern {
  Bitset items;
  Bitset rows;
  uint32_t support = 0;  // |rows|
};

/// Options of CARPENTER [Pan et al., KDD 2003] — the first row enumeration
/// miner and the ancestor of FARMER and MineTopkRGS (§7). Mines all closed
/// patterns with total support >= min_support, with no class labels
/// involved.
struct CarpenterOptions {
  uint32_t min_support = 1;
  /// Prefix-tree projections (like MineTopkRGS) or explicit projected
  /// transposed tables (the original implementation).
  bool use_prefix_tree = false;
  Deadline deadline;
  /// Safety valve: stop after this many patterns (0 = off).
  uint64_t max_patterns = 0;
};

struct CarpenterResult {
  std::vector<ClosedPattern> patterns;
  MinerStats stats;
};

/// Runs CARPENTER over `data`, ignoring class labels.
CarpenterResult MineCarpenter(const DiscreteDataset& data,
                              const CarpenterOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_CARPENTER_H_
