#include "mine/topk_miner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "mine/projection.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/hot_path.h"
#include "util/lock_ranks.h"
#include "util/rowset.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/work_steal_deque.h"

namespace topkrgs {

namespace {

/// A rule group shared between the per-row lists of every row it covers.
/// Seeded single-item groups start `provisional`: their antecedent is the
/// single item, not yet the closure (upper bound); they are upgraded in
/// place when the real upper bound is emitted, or closed explicitly in the
/// finalization pass.
struct GroupHandle {
  RuleGroup group;
  bool provisional = false;
};
using HandlePtr = std::shared_ptr<GroupHandle>;

/// Canonical origin of a shared-list entry: where it falls in the replay
/// (merge) order. Seeds replay first (origin 0), then the root node's
/// emissions (origin 1); the remaining origin space [2, kOriginMax) is
/// striped evenly across the first-level subtree tasks in canonical child
/// order, so task i owns the half-open range [2 + i*stride, 2 + (i+1)*
/// stride). A task emits with its range's base. Within one scheduling
/// unit, wall-clock order IS canonical order (a single worker mines a
/// unit sequentially), so comparing origins alone decides "canonically no
/// later than": ranges are disjoint and ordered, and no two units ever
/// share a base. Dynamic splitting subdivides the executing unit's
/// REMAINING range among the shed children (canonical order again) and
/// bumps the parent's own base past them — the parent's later emissions
/// are canonically after the shed subtrees, and its earlier emissions
/// kept the smaller pre-split base, so origin comparisons stay exact
/// through any nesting of splits. A split is refused when the range has
/// too few slots left (the natural fragmentation throttle). kOriginInf
/// marks an origin too large to encode: entries carrying it can never
/// justify suppressing a tie (conservative).
constexpr uint32_t kOriginMax = 0xfffeu;
constexpr uint32_t kOriginInf = 0xffffu;

/// Significance threshold (sup, antecedent_sup) with the canonical origin
/// attached: `origin` is the latest origin among the top-k entries tied
/// with the k-th (the ones a tying candidate must beat in the replay's
/// earlier-discovery tiebreak). (0, 0) is the dummy with confidence 0.
struct Thresh {
  uint32_t sup = 0;
  uint32_t asup = 0;
  uint32_t origin = kOriginInf;
};

/// Whether a candidate of significance (sup, asup) discovered at
/// `candidate_origin` can never enter a final top-k list guarded by `cut`.
/// Strictly worse always loses; an exact tie loses only to entries that
/// canonically precede it — the replay resolves ties by discovery order,
/// so a tie with a canonically-later entry must still be recorded.
inline bool Dominated(uint32_t sup, uint32_t asup, const Thresh& cut,
                      uint32_t candidate_origin) {
  const int cmp = CompareSignificance(sup, asup, cut.sup, cut.asup);
  if (cmp != 0) return cmp < 0;
  return cut.origin <= candidate_origin;
}

/// Shared pruning state of the parallel search: per-row candidate top-k
/// lists guarded by striped locks, with each row's k-th-entry significance
/// and tie origin mirrored into a packed atomic so the hot pruning reads
/// (ComputeCut runs at every enumeration node) never take a lock. The
/// dynamically raised minimum support lives here too.
///
/// This structure only steers pruning; the final per-row lists are rebuilt
/// afterwards by a deterministic replay of the recorded emissions, so the
/// timing-dependent insertion order here never leaks into results.
class SharedTopk {
 public:
  SharedTopk(uint32_t num_positions, uint32_t k, uint32_t initial_minsup)
      : k_(k),
        // Support counts must fit the 24-bit packed fields; beyond that
        // (unheard of for row enumeration) thresholds stay at the dummy and
        // top-k pruning degrades to none, which is slow but correct.
        packable_(num_positions < (1u << 24)),
        lists_(num_positions),
        packed_(num_positions),
        minsup_dyn_(initial_minsup) {
    for (auto& p : packed_) p.store(0, std::memory_order_relaxed);
  }

  /// The significance + tie origin of the k-th entry of `pos`'s list;
  /// (0, 0) while the list holds fewer than k groups (a real group always
  /// has support >= 1, so the sentinel is unambiguous). Lock-free.
  TKRGS_HOT Thresh KthOf(uint32_t pos) const {
    const uint64_t packed = packed_[pos].load(std::memory_order_acquire);
    return Thresh{static_cast<uint32_t>(packed >> 40),
                  static_cast<uint32_t>((packed >> 16) & 0xffffffu),
                  static_cast<uint32_t>(packed & 0xffffu)};
  }

  uint32_t minsup() const {
    return minsup_dyn_.load(std::memory_order_acquire);
  }

  /// Epoch stamp of the shared pruning state: bumped whenever any k-th
  /// significance is (re)published or minsup is raised — i.e. whenever a
  /// recomputed cut COULD be tighter than one computed earlier. Workers
  /// re-read this at every enumeration node and refresh their cut only on
  /// a change, which makes threshold propagation eager (a bound tightened
  /// by any worker prunes everyone at their next node) at the cost of one
  /// relaxed-ordered atomic load per node instead of an O(rows) rescan.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Monotone maximum update (CAS loop). The paper's dynamic-minsup
  /// optimization (§4.1.1) is only sound because minsup never decreases
  /// during the search; the CAS loop guarantees it structurally and the
  /// DCHECK documents/verifies the contract in debug builds.
  void RaiseMinsup(uint32_t value) {
    uint32_t current = minsup_dyn_.load(std::memory_order_relaxed);
    bool raised = false;
    while (value > current) {
      if (minsup_dyn_.compare_exchange_weak(current, value,
                                            std::memory_order_acq_rel)) {
        raised = true;
        break;
      }
    }
    if (raised) epoch_.fetch_add(1, std::memory_order_release);
    TKRGS_DCHECK_GE(minsup_dyn_.load(std::memory_order_relaxed), value,
                    "dynamic minsup must be monotone non-decreasing");
  }

  /// Offers a candidate group to `pos`'s pruning list. Deduplicates by
  /// (support, antecedent support, row support) — a seed and its closure
  /// must not occupy two slots, which would fake a tighter threshold than
  /// the real list can have. Unlike the replay-side insert, a duplicate is
  /// never "upgraded" here: handles stay immutable while workers run.
  /// Duplicates keep the first arrival's origin, which is the canonically
  /// smallest one: distinct enumeration nodes emit distinct closed rowsets
  /// (and splitting only partitions nodes across tasks, never duplicates
  /// one), so the only duplicates are a single-item seed and its closure —
  /// and seeds insert with origin 0 before any worker starts.
  TKRGS_HOT void Insert(uint32_t pos, const HandlePtr& handle,
                        uint32_t origin) {
    const RuleGroup& g = handle->group;
    // lists_[pos] is guarded by stripes_[pos & (kStripes - 1)]. The
    // index-dependent stripe mapping is beyond what GUARDED_BY can
    // express, so the contract lives here (and every mutation below runs
    // under this MutexLock — the annotated type keeps the acquisition
    // visible to the analysis even without a field annotation).
    MutexLock lock(stripes_[pos & (kStripes - 1)]);
    auto& list = lists_[pos];
    for (const Entry& existing : list) {
      const RuleGroup& e = existing.handle->group;
      if (e.support == g.support &&
          e.antecedent_support == g.antecedent_support &&
          e.row_support == g.row_support) {
        return;
      }
    }
    const uint32_t encoded = origin >= kOriginMax ? kOriginInf : origin;
    if (list.size() >= k_) {
      const RuleGroup& kth = list.back().handle->group;
      const int cmp = CompareSignificance(g.support, g.antecedent_support,
                                          kth.support, kth.antecedent_support);
      if (cmp < 0) return;
      if (cmp == 0) {
        // A tie with the k-th entry can't deepen the list, but a
        // canonically EARLIER tie can sharpen the published tie-origin
        // (workers run out of canonical order, so late arrivals may
        // precede what's stored): replace the latest-origin tied entry.
        size_t worst = list.size();
        for (size_t i = list.size(); i-- > 0;) {
          const RuleGroup& e = list[i].handle->group;
          if (CompareSignificance(e.support, e.antecedent_support, kth.support,
                                  kth.antecedent_support) != 0) {
            break;
          }
          if (worst == list.size() || list[i].origin > list[worst].origin) {
            worst = i;
          }
        }
        if (worst == list.size() || list[worst].origin <= encoded) return;
        list[worst] = Entry{handle, encoded};
        PublishKth(pos);
        return;
      }
    }
    auto it = std::find_if(list.begin(), list.end(), [&](const Entry& e) {
      return CompareSignificance(g.support, g.antecedent_support,
                                 e.handle->group.support,
                                 e.handle->group.antecedent_support) > 0;
    });
    // NOLINT(hotpath: k-bounded list under the stripe lock — the insert
    // shifts at most k entries and the spill below caps growth)
    list.insert(it, Entry{handle, encoded});
    if (list.size() > k_) list.pop_back();
    if (list.size() >= k_) PublishKth(pos);
  }

 private:
  static constexpr size_t kStripes = 64;  // power of two (masked indexing)

  struct Entry {
    HandlePtr handle;
    uint32_t origin;  // encoded: >= kOriginMax is stored as kOriginInf,
                      // because the clamp value is shared by several late
                      // tasks and may never justify suppressing a tie
  };

  /// Publishes the k-th significance plus the latest origin among the
  /// top-k entries tied with it: a tying candidate is beaten only if ALL
  /// of them canonically precede it. Caller holds the stripe lock and has
  /// ensured the list is full.
  void PublishKth(uint32_t pos) {
    if (!packable_) return;
    const auto& list = lists_[pos];
    TKRGS_DCHECK_SORTED(
        list.begin(), list.end(),
        [](const Entry& a, const Entry& b) {
          return CompareSignificance(
                     a.handle->group.support, a.handle->group.antecedent_support,
                     b.handle->group.support,
                     b.handle->group.antecedent_support) > 0;
        },
        "per-row pruning list must stay sorted by significance");
    const RuleGroup& kth = list.back().handle->group;
    uint32_t tie_origin = 0;
    for (size_t i = list.size(); i-- > 0;) {
      const RuleGroup& e = list[i].handle->group;
      if (CompareSignificance(e.support, e.antecedent_support, kth.support,
                              kth.antecedent_support) != 0) {
        break;
      }
      tie_origin = std::max(tie_origin, list[i].origin);
    }
    // Top-k pruning (§4.1.1) is sound only if the published per-row
    // threshold — and with it the dynamically derived minconf — is
    // monotone non-decreasing: a threshold that ever dropped could have
    // pruned a subtree that later became viable again.
    TKRGS_DCHECK(
        [&] {
          const uint64_t prev = packed_[pos].load(std::memory_order_relaxed);
          return CompareSignificance(
                     kth.support, kth.antecedent_support,
                     static_cast<uint32_t>(prev >> 40),
                     static_cast<uint32_t>((prev >> 16) & 0xffffffu)) >= 0;
        }(),
        "published k-th significance (minconf source) must never decrease");
    packed_[pos].store(
        (static_cast<uint64_t>(kth.support) << 40) |
            (static_cast<uint64_t>(kth.antecedent_support) << 16) | tie_origin,
        std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  /// Stripe locks carry the leaf rank from the central table: nothing may
  /// be acquired under one, and (same-rank rule) no two stripes may ever
  /// be held together — both checked at runtime in debug builds.
  template <size_t... I>
  static std::array<Mutex, sizeof...(I)> MakeStripes(
      std::index_sequence<I...>) {
    return {((void)I, Mutex(lock_rank::kMinerTopkStripe,
                            "SharedTopk::stripes_"))...};
  }

  const uint32_t k_;
  const bool packable_;
  /// lists_[pos] is guarded by stripes_[pos & (kStripes - 1)] — an
  /// index-computed stripe GUARDED_BY cannot name (see Insert).
  std::vector<std::vector<Entry>> lists_;
  std::vector<std::atomic<uint64_t>> packed_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> minsup_dyn_;
  mutable std::array<Mutex, kStripes> stripes_ =
      MakeStripes(std::make_index_sequence<kStripes>{});
};

class TopkSearch {
 public:
  TopkSearch(const DiscreteDataset& data, ClassLabel consequent,
             const TopkMinerOptions& options)
      : data_(data),
        consequent_(consequent),
        opt_(options),
        hooks_(options.shard_hooks) {}

  TopkResult Run();

 private:
  /// One recorded rule-group emission: the handle plus the positive row
  /// positions it covers, in discovery (x-stack) order. Emissions are
  /// recorded per subtree task and replayed in canonical order after the
  /// workers join, which is what makes the parallel search bit-for-bit
  /// deterministic.
  struct Emission {
    HandlePtr handle;
    std::vector<uint32_t> covered;
  };

  struct SubtreeTask;

  /// Sentinel for "no epoch observed yet" (forces the first refresh).
  static constexpr uint64_t kEpochNever = ~0ull;

  /// Per-worker DFS state: the enumeration stack, scratch-buffer pool and
  /// prefix-tree arena persist across the tasks a worker drains, so a
  /// steady-state worker stops allocating. chain_pos/chain_live mirror the
  /// Child() calls from the root to the current node — the recipe a
  /// dynamic split snapshots so a thief can rebuild the projection.
  struct WorkerState {
    std::vector<uint32_t> x_stack;
    std::vector<uint8_t> in_x;
    uint32_t xp = 0;
    uint32_t xn = 0;
    uint32_t origin = kOriginMax;        // current origin-range base
    uint32_t origin_limit = kOriginMax;  // exclusive end of the free range
    uint64_t minsup_epoch = kEpochNever;  // epoch of the last minsup scan
    uint32_t worker_index = 0;
    SubtreeTask* task = nullptr;   // the task currently executing
    std::vector<uint32_t> chain_pos;
    std::vector<const std::vector<uint32_t>*> chain_live;
    MinerStats stats;
    std::vector<Emission>* sink = nullptr;
    VectorPool<uint32_t> scratch;
    PrefixTree::Arena tree_arena;
    // One RowSet per enumeration depth, reused across every sibling at
    // that depth: IntersectAdaptiveInto refills the slot's id array or
    // bitmap in place, so the per-node intersection stops allocating once
    // each depth has been visited once. A deque keeps references stable
    // while deeper slots append.
    std::deque<RowSet> rowset_scratch;
  };

  /// A frozen enumeration node whose children are (or became, through a
  /// dynamic split) subtree tasks: everything a worker needs to resume any
  /// child — the DFS stack, I(X), the surviving candidates — plus the
  /// Child()-call chain (branch position + parent candidate list per
  /// level) needed to rebuild the node's projection from the root on a
  /// stealing worker. Immutable once published; tasks share it through a
  /// shared_ptr.
  struct NodeCtx {
    std::vector<uint32_t> x_stack;    // full stack at the node (incl. absorbed)
    uint32_t xp = 0;
    uint32_t xn = 0;
    RowSet items;                     // I(X) at the node (density-adaptive)
    std::vector<uint32_t> live;       // surviving candidate positions
    std::vector<uint32_t> live_freq;  // their item counts (child items_count)
    std::vector<uint32_t> suffix_pos; // positive candidates after live[i]
    std::vector<uint32_t> chain_pos;  // branch positions, root -> this node
    std::vector<std::vector<uint32_t>> chain_live;  // parent live list of each
  };

  /// One subtree of the enumeration tree: the unit of scheduled work —
  /// child `child` of the node `ctx` describes. First-level tasks are
  /// created up front; further tasks appear when a running task sheds the
  /// unvisited children of its current node to starving workers (dynamic
  /// split). The spawn markers record WHERE in the parent's emission
  /// stream each split happened, so the replay can stitch the spawned
  /// subtrees back into canonical DFS order.
  struct SubtreeTask {
    std::shared_ptr<const NodeCtx> ctx;
    uint32_t child = 0;            // index into ctx->live
    uint32_t origin_base = 0;      // this unit's origin range [base, limit):
    uint32_t origin_limit = 0;     // emits with base, splits carve the rest
    std::vector<Emission> emissions;
    // spawned[s] replays after emissions[0 .. spawn_at[s]) — i.e. exactly
    // where its subtree sits in this task's DFS order. spawn_at is
    // non-decreasing; batches from one split share one value.
    std::vector<std::unique_ptr<SubtreeTask>> spawned;
    std::vector<size_t> spawn_at;
  };

  template <typename Proj>
  TKRGS_HOT void Visit(WorkerState& ws, const Proj& proj,
                       const RowSet& items, uint32_t items_count,
                       uint32_t branch_pos, bool closed_on_left);

  /// Processes the root node serially (seeding the shared thresholds with
  /// its high-support group), turns every first-level subtree into a
  /// SubtreeTask, and drains the tasks through the work-stealing scheduler.
  /// One worker degenerates to the serial search: tasks are claimed in
  /// canonical order and nothing ever starves, so nothing splits.
  template <typename Proj>
  void MineRoot(const Proj& root, const RowSet& items, uint32_t items_count);

  /// Runs one task: checks, builds and descends into the subtree rooted at
  /// ctx->live[task.child]. `node_proj` is the (worker-cached) projection
  /// of the task's parent node.
  template <typename Proj>
  TKRGS_HOT void RunTask(WorkerState& ws, const Proj& node_proj,
                         SubtreeTask& task);

  /// Rebinds a worker's DFS state to another task context.
  void SwitchCtx(WorkerState& ws, const NodeCtx& ctx) const;

  /// Whether the current node may shed its `remaining` unvisited children
  /// as tasks: only when another worker is starving, this worker has
  /// nothing queued itself, the spawn chain is still shallow enough that
  /// snapshotting the Child()-call chain stays cheap, and the unit's
  /// origin range has a slot for every child plus the continuing parent
  /// (ranges shrink geometrically with split nesting, throttling
  /// fragmentation before it can erode tie pruning or drown the run in
  /// chain rebuilds).
  bool CanSpawn(const WorkerState& ws, size_t remaining) const;

  /// Sheds children first_child..live.size()-1 of the current node as
  /// tasks onto this worker's deque (a starving worker steals them FIFO =
  /// canonical-first) and records the spawn marker. The caller abandons
  /// its child loop afterwards.
  void SpawnRemaining(WorkerState& ws, const RowSet& items,
                      const std::vector<uint32_t>& live,
                      const std::vector<uint32_t>& live_freq,
                      const std::vector<uint32_t>& suffix_pos,
                      size_t first_child);

  void SeedSingleItems(const Bitset& frequent_items);
  TKRGS_HOT void MaybeRaiseMinsup(WorkerState& ws);
  TKRGS_HOT Thresh ComputeCut(const std::vector<uint32_t>& x_stack,
                              const std::vector<uint32_t>& candidates) const;
  TKRGS_HOT bool Hopeless(uint32_t best_sup, uint32_t min_neg,
                          const Thresh& cut, uint32_t origin) const;
  TKRGS_HOT void EmitAt(WorkerState& ws, const RowSet& items,
                        const Thresh& cut);
  void ReplayInsert(uint32_t pos, const HandlePtr& handle);
  void ReplayEmissions(const std::vector<Emission>& emissions);
  void ReplayTask(const SubtreeTask& task);
  uint32_t FinalEffectiveMinsup() const;
  void Finalize(const Bitset& frequent_items, TopkResult* result);
  void MergeStats(const MinerStats& s);

  bool IsPos(uint32_t pos) const { return pos_positive_[pos] != 0; }

  /// Sharded mining (DESIGN.md §14): does some row BEFORE this shard's
  /// suffix contain `items`? Such a row behaves exactly like an earlier
  /// in-dataset row under the backward check: the node duplicates a branch
  /// an earlier shard enumerates. False in stand-alone mining. The hook
  /// must be (and is — it only reads planner-owned prefix indexes plus
  /// thread-local scratch) safe for concurrent workers.
  bool ContainedOutside(const RowSet& items) const {
    return hooks_ != nullptr && hooks_->contained_outside &&
           hooks_->contained_outside(items);
  }

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const TopkMinerOptions& opt_;
  const ShardHooks* const hooks_;

  std::vector<RowId> order_;           // position -> original row id
  std::vector<uint32_t> position_of_;  // original row id -> position
  std::vector<uint8_t> pos_positive_;  // position -> is consequent-class
  std::vector<uint32_t> positive_positions_;
  uint32_t np_ = 0;  // number of consequent-class rows
  uint32_t initial_minsup_ = 1;
  uint32_t num_workers_ = 1;

  std::unique_ptr<SharedTopk> shared_;

  // Deterministic-merge state; only touched single-threaded (seeding
  // before the workers start, replay after they join).
  std::vector<std::vector<HandlePtr>> lists_;
  std::vector<Emission> root_emissions_;

  // First-level tasks in canonical order; split-off descendants hang off
  // their parents' `spawned` vectors. The task OBJECTS are written by
  // whichever worker claims them; the containers are fixed before workers
  // start and read again only after they join.
  std::vector<std::unique_ptr<SubtreeTask>> tasks_;
  std::shared_ptr<const NodeCtx> root_ctx_;

  // Scheduler state. root_queue_ holds the unclaimed first-level tasks —
  // everyone "steals" from its top, so claims are FIFO = canonical order,
  // which keeps early workers on the subtrees a serial search would mine
  // first (the speculation window stays ~num_workers wide). deques_[w] is
  // worker w's own deque of split-off tasks: owner-LIFO, thief-FIFO.
  std::unique_ptr<WorkStealDeque<SubtreeTask*>> root_queue_;
  std::vector<std::unique_ptr<WorkStealDeque<SubtreeTask*>>> deques_;
  std::atomic<size_t> pending_{0};    // claimed-or-queued, not yet finished
  std::atomic<uint32_t> starving_{0}; // workers spinning for something to do

  std::atomic<bool> stopped_{false};
  std::atomic<bool> timed_out_{false};
  MinerStats stats_;
};

void TopkSearch::MergeStats(const MinerStats& s) {
  stats_.nodes_visited += s.nodes_visited;
  stats_.groups_emitted += s.groups_emitted;
  stats_.pruned_backward += s.pruned_backward;
  stats_.pruned_bounds += s.pruned_bounds;
  stats_.tasks_executed += s.tasks_executed;
  stats_.tasks_spawned += s.tasks_spawned;
  stats_.tasks_stolen += s.tasks_stolen;
}

/// Replay-side insert: exactly the paper's per-row list maintenance, run
/// single-threaded over the canonical emission order. Dedups by antecedent
/// support set, upgrading a provisional seed in place when the matching
/// upper bound arrives (§4.1.1, first optimization); ties on significance
/// keep the earlier-discovered group, matching CBA's "<" order.
void TopkSearch::ReplayInsert(uint32_t pos, const HandlePtr& handle) {
  auto& list = lists_[pos];
  const RuleGroup& g = handle->group;

  for (auto& existing : list) {
    RuleGroup& e = existing->group;
    if (e.support == g.support && e.antecedent_support == g.antecedent_support &&
        e.row_support == g.row_support) {
      if (existing->provisional && !handle->provisional) {
        e.antecedent = g.antecedent;
        existing->provisional = false;
      }
      return;
    }
  }

  if (list.size() >= opt_.k) {
    const RuleGroup& kth = list.back()->group;
    if (CompareSignificance(g.support, g.antecedent_support, kth.support,
                            kth.antecedent_support) <= 0) {
      return;  // not more significant than the current k-th entry
    }
  }
  auto it = std::find_if(list.begin(), list.end(), [&](const HandlePtr& e) {
    return CompareSignificance(g.support, g.antecedent_support,
                               e->group.support,
                               e->group.antecedent_support) > 0;
  });
  list.insert(it, handle);
  if (list.size() > opt_.k) list.pop_back();
}

void TopkSearch::ReplayEmissions(const std::vector<Emission>& emissions) {
  for (const Emission& emission : emissions) {
    for (uint32_t pos : emission.covered) {
      ReplayInsert(pos, emission.handle);
    }
  }
}

/// Replays one task's emissions in canonical DFS order, recursing into
/// split-off subtrees at their spawn markers: a split shed the unvisited
/// children of a node and then the parent moved on, so everything the
/// parent emitted after the marker is canonically AFTER the spawned
/// subtrees — the spawned tasks replay at the marker, not at the end.
void TopkSearch::ReplayTask(const SubtreeTask& task) {
  size_t e = 0;
  for (size_t s = 0; s < task.spawned.size(); ++s) {
    TKRGS_DCHECK_LE(task.spawn_at[s], task.emissions.size(),
                    "spawn marker beyond the recorded emission stream");
    for (; e < task.spawn_at[s]; ++e) {
      for (uint32_t pos : task.emissions[e].covered) {
        ReplayInsert(pos, task.emissions[e].handle);
      }
    }
    ReplayTask(*task.spawned[s]);
  }
  for (; e < task.emissions.size(); ++e) {
    for (uint32_t pos : task.emissions[e].covered) {
      ReplayInsert(pos, task.emissions[e].handle);
    }
  }
}

void TopkSearch::SeedSingleItems(const Bitset& frequent_items) {
  const Bitset class_rows = data_.ClassRowset(consequent_);
  frequent_items.ForEach([&](size_t item_index) {
    const ItemId item = static_cast<ItemId>(item_index);
    if (hooks_ != nullptr && hooks_->contained_outside &&
        ContainedOutside(RowSet::SparseFrom({item}, data_.num_items()))) {
      // Sharded mining: a pre-suffix row holds this item, so an earlier
      // shard plants (and eventually closes) the identical seed; the merge
      // reconstructs seeds from the global table anyway (DESIGN.md §14).
      return;
    }
    const Bitset& rows = data_.item_rows(item);
    auto handle = std::make_shared<GroupHandle>();
    handle->provisional = true;
    handle->group.antecedent = Bitset(data_.num_items());
    handle->group.antecedent.Set(item);
    handle->group.row_support = rows;
    handle->group.consequent = consequent_;
    handle->group.antecedent_support = static_cast<uint32_t>(rows.Count());
    handle->group.support =
        static_cast<uint32_t>(rows.IntersectCount(class_rows));
    rows.ForEach([&](size_t row) {
      if (data_.label(static_cast<RowId>(row)) != consequent_) return;
      const uint32_t pos = position_of_[row];
      ReplayInsert(pos, handle);
      shared_->Insert(pos, handle, /*origin=*/0);  // seeds replay first
    });
  });
}

void TopkSearch::MaybeRaiseMinsup(WorkerState& ws) {
  if (!opt_.dynamic_min_support) return;
  // The O(np) scan below can only conclude anything new after some k-th
  // entry was republished; the epoch stamp says whether one was. This is
  // what makes calling it at EVERY node affordable — at an unchanged
  // epoch it is one atomic load.
  const uint64_t epoch = shared_->Epoch();
  if (epoch == ws.minsup_epoch) return;
  ws.minsup_epoch = epoch;
  uint32_t lowest = UINT32_MAX;
  for (uint32_t pos : positive_positions_) {
    const Thresh t = shared_->KthOf(pos);
    if (t.sup == 0 || t.sup != t.asup) {
      return;  // some list not full yet, or its k-th below 100% confidence
    }
    lowest = std::min(lowest, t.sup);
  }
  // Every row already holds k groups of 100% confidence with support >=
  // lowest: anything with support < lowest is strictly less significant
  // than every k-th entry. (The paper raises to lowest+1; that extra level
  // would also prune exact significance ties, which the deterministic
  // replay merge must still get to see — the reported effective minimum
  // support is recomputed with the paper's rule in FinalEffectiveMinsup.)
  if (lowest != UINT32_MAX && lowest > shared_->minsup()) {
    shared_->RaiseMinsup(lowest);
  }
}

Thresh TopkSearch::ComputeCut(const std::vector<uint32_t>& x_stack,
                              const std::vector<uint32_t>& candidates) const {
  // Equation 1/2: the weakest k-th entry over the rows the subtree can still
  // cover (Lemma 3.2: Xp ∪ Rp). The cut's origin must justify tie
  // suppression against EVERY coverable row, so among the rows tied at the
  // minimum significance it keeps the latest (largest) tie origin.
  bool first = true;
  Thresh cut{0, 0, 0};
  auto consider = [&](uint32_t pos) {
    const Thresh t = shared_->KthOf(pos);
    if (first) {
      cut = t;
      first = false;
      return;
    }
    const int cmp = CompareSignificance(t.sup, t.asup, cut.sup, cut.asup);
    if (cmp < 0) {
      cut = t;
    } else if (cmp == 0 && t.origin > cut.origin) {
      cut.origin = t.origin;
    }
  };
  for (uint32_t pos : x_stack) {
    if (IsPos(pos)) consider(pos);
  }
  for (uint32_t pos : candidates) {
    if (IsPos(pos)) consider(pos);
  }
  if (first) {
    cut = Thresh{UINT32_MAX, UINT32_MAX, 0};  // no coverable row: prune all
  }
  return cut;
}

bool TopkSearch::Hopeless(uint32_t best_sup, uint32_t min_neg,
                          const Thresh& cut, uint32_t origin) const {
  if (best_sup < shared_->minsup()) return true;
  if (!opt_.use_topk_pruning) return false;
  // Best achievable significance in the subtree: support best_sup with
  // confidence best_sup / (best_sup + min_neg). Strictly-worse subtrees
  // are always hopeless; a subtree that merely TIES the cut is hopeless
  // only when every tied threshold entry canonically precedes anything
  // this subtree could emit (cut.origin <= origin) — otherwise its tie
  // might still win the replay merge's discovery-order tiebreak and must
  // be explored. At one thread every prior entry precedes the current
  // node, so this degenerates to the serial search's tie pruning exactly.
  return Dominated(best_sup, best_sup + min_neg, cut, origin);
}

void TopkSearch::EmitAt(WorkerState& ws, const RowSet& items,
                        const Thresh& cut) {
  if (ws.xp < shared_->minsup()) return;
  if (opt_.use_topk_pruning && Dominated(ws.xp, ws.xp + ws.xn, cut, ws.origin)) {
    // Beaten on every coverable row by k recorded entries — strictly more
    // significant ones, or exact ties that canonically precede this node
    // (see Hopeless): it can never enter a final list, so it need not be
    // recorded. (A suppressed emission may duplicate a provisional seed's
    // support set; Finalize closes surviving provisionals itself, so the
    // lost upgrade is harmless.)
    return;
  }
  // NOLINT(hotpath: one handle per emitted group; EmitAt runs only for
  // closed nodes that pass the top-k admission cut, not per node)
  auto handle = std::make_shared<GroupHandle>();
  // NOLINT(hotpath: materializes the emitted group's itemset once)
  handle->group.antecedent = items.ToBitset();
  handle->group.consequent = consequent_;
  handle->group.support = ws.xp;
  handle->group.antecedent_support = ws.xp + ws.xn;
  // NOLINT(hotpath: row-support bitmap built once per emitted group)
  Bitset rows(data_.num_rows());
  for (uint32_t pos : ws.x_stack) rows.Set(order_[pos]);
  handle->group.row_support = std::move(rows);
  ++ws.stats.groups_emitted;
  Emission emission;
  emission.handle = handle;
  for (uint32_t pos : ws.x_stack) {
    if (!IsPos(pos)) continue;
    // NOLINT(hotpath: covered list bounded by |X|, once per emission)
    emission.covered.push_back(pos);
    // The recorded origin is the unit's current range base — exact under
    // splitting because SpawnRemaining bumps it past every shed subtree
    // (Insert itself degrades an unencodable >= kOriginMax base to
    // kOriginInf, which never suppresses a tie).
    shared_->Insert(pos, handle, ws.origin);
  }
  // NOLINT(hotpath: per-emission append; sink capacity is retained)
  ws.sink->push_back(std::move(emission));
}

template <typename Proj>
void TopkSearch::Visit(WorkerState& ws, const Proj& proj, const RowSet& items,
                       uint32_t items_count, uint32_t branch_pos,
                       bool closed_on_left) {
  (void)branch_pos;  // kept for symmetry with the paper's Depthfirst()
  if (stopped_.load(std::memory_order_relaxed)) return;
  ++ws.stats.nodes_visited;
  if (opt_.deadline.Expired()) {
    stopped_.store(true, std::memory_order_relaxed);
    timed_out_.store(true, std::memory_order_relaxed);
    return;
  }
  if (items_count == 0) return;  // I(X) = ∅: no rules below this node

  PooledVector<uint32_t> cand_lease(&ws.scratch);
  std::vector<uint32_t>& cand = *cand_lease;
  // NOLINT(hotpath: fills a pooled lease whose capacity is retained)
  proj.Positions(&cand);
  std::erase_if(cand, [&](uint32_t p) { return ws.in_x[p] != 0; });

  uint32_t rp = 0;  // positive candidate rows (bounds the subtree's support)
  for (uint32_t p : cand) {
    if (IsPos(p)) ++rp;
  }

  // Step 8: threshold updating. The epoch is read BEFORE the cut is
  // computed, so a publish racing the computation at worst forces one
  // redundant refresh below — never a missed one.
  MaybeRaiseMinsup(ws);
  uint64_t cut_epoch = shared_->Epoch();
  Thresh cut = ComputeCut(ws.x_stack, cand);

  // Step 9: loose bounds (no scan needed).
  if (opt_.use_bound_pruning && Hopeless(ws.xp + rp, ws.xn, cut, ws.origin)) {
    ++ws.stats.pruned_bounds;
    return;
  }

  // Step 10: scan TT'|_X — frequencies, then absorb rows occurring in every
  // tuple (they appear in all descendants).
  PooledVector<uint32_t> live_lease(&ws.scratch);
  PooledVector<uint32_t> freq_lease(&ws.scratch);
  PooledVector<uint32_t> absorbed_lease(&ws.scratch);
  std::vector<uint32_t>& live = *live_lease;
  std::vector<uint32_t>& live_freq = *freq_lease;
  std::vector<uint32_t>& absorbed = *absorbed_lease;
  uint32_t mp = 0;
  for (uint32_t p : cand) {
    const uint32_t f = proj.Freq(p, items);
    if (f == items_count) {
      // NOLINT(hotpath: pooled lease retains capacity across nodes)
      absorbed.push_back(p);
    } else if (f > 0) {
      // NOLINT(hotpath: pooled lease retains capacity across nodes)
      live.push_back(p);
      live_freq.push_back(f);  // NOLINT(hotpath: pooled lease, as above)
      if (IsPos(p)) ++mp;
    }
  }
  for (uint32_t p : absorbed) {
    ws.in_x[p] = 1;
    // NOLINT(hotpath: DFS stack retains capacity; amortized O(1))
    ws.x_stack.push_back(p);
    IsPos(p) ? ++ws.xp : ++ws.xn;
  }

  // Step 11: tight bounds (mp = candidate consequent rows that can still
  // appear in a descendant antecedent support set).
  const bool pruned =
      opt_.use_bound_pruning &&
      Hopeless(ws.xp + mp, ws.xn, ComputeCut(ws.x_stack, live), ws.origin);
  if (pruned) {
    ++ws.stats.pruned_bounds;
  } else {
    // Step 13: emit the rule group of this node and update covered rows.
    // Only nodes with X == R(I(X)) carry a rule group; when the backward
    // check failed we are in a redundant subtree that emits nothing.
    if (closed_on_left) EmitAt(ws, items, cut);

    // Positive candidates at positions after live[i] — the only rows that
    // can still raise a child subtree's support beyond X.
    PooledVector<uint32_t> suffix_lease(&ws.scratch);
    std::vector<uint32_t>& suffix_pos = *suffix_lease;
    // NOLINT(hotpath: pooled lease retains capacity across nodes)
    suffix_pos.assign(live.size() + 1, 0);
    for (size_t i = live.size(); i-- > 0;) {
      suffix_pos[i] = suffix_pos[i + 1] + (IsPos(live[i]) ? 1 : 0);
    }

    // Step 14: enumerate children in ORD order. Step 7's backward check
    // runs here, before the child projection is built: a skipped earlier
    // row containing I(X ∪ {p}) means the child duplicates an earlier
    // branch (X' != R(I(X')) there and at every descendant), so nothing in
    // it may be emitted and — when the pruning is enabled — the projection
    // need not even be constructed. Redundancy propagates downward (the
    // earlier row also contains every descendant's smaller I), so in
    // ablation mode each descendant's own check re-detects it.
    for (size_t i = 0;
         i < live.size() && !stopped_.load(std::memory_order_relaxed); ++i) {
      if (live.size() - i >= 2 && CanSpawn(ws, live.size() - i)) {
        // Dynamic split: another worker is starving and nothing else of
        // ours is stealable — shed ALL unvisited children of this node
        // (including live[i]: the spawned batch must be a canonically
        // contiguous block for the replay marker to stitch back in) and
        // abandon the loop. This worker pops part of the batch back off
        // its own deque after unwinding; the starving workers take the
        // rest.
        // NOLINT(hotpath: split path — runs once per shed subtree when a
        // worker starves, bounded by the spawn policy, not per node)
        SpawnRemaining(ws, items, live, live_freq, suffix_pos, i);
        break;
      }
      if (opt_.use_topk_pruning || opt_.use_bound_pruning) {
        // Eager threshold propagation: refresh the cut whenever any worker
        // published a tighter k-th entry since it was computed. Without
        // this, the cut is node-entry-stale for the whole child loop — on
        // big nodes that is exactly the window where parallel workers used
        // to keep exploring subtrees a current bound already kills.
        const uint64_t epoch_now = shared_->Epoch();
        if (epoch_now != cut_epoch) {
          cut_epoch = epoch_now;
          cut = ComputeCut(ws.x_stack, live);
        }
      }
      const uint32_t p = live[i];
      if (opt_.use_bound_pruning) {
        // Per-child loose bounds before any per-child work: support in the
        // child subtree is capped by X, the branch row, and the positive
        // candidates ordered after it; the parent's cut is a lower bound on
        // every child's cut, so pruning against it is sound.
        const uint32_t child_sup_ub =
            ws.xp + (IsPos(p) ? 1 : 0) + suffix_pos[i + 1];
        const uint32_t child_min_neg = ws.xn + (IsPos(p) ? 0 : 1);
        if (Hopeless(child_sup_ub, child_min_neg, cut, ws.origin)) {
          ++ws.stats.pruned_bounds;
          continue;
        }
      }
      // The parent's `items` lives at a shallower slot (or outside the
      // pool entirely), so writing this depth's slot never aliases it.
      const size_t depth = ws.chain_pos.size();
      if (ws.rowset_scratch.size() <= depth) {
        // NOLINT(hotpath: one-time growth per depth first reached; every
        // later node at this depth reuses the slot allocation-free)
        ws.rowset_scratch.resize(depth + 1);
      }
      RowSet& child_items = ws.rowset_scratch[depth];
      items.IntersectAdaptiveInto(data_.row_bitset(order_[p]), &child_items);
      bool child_closed = true;
      for (uint32_t q = 0; q < p; ++q) {
        if (!ws.in_x[q] &&
            child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
          child_closed = false;
          break;
        }
      }
      // Sharded mining: a pre-suffix row containing I(X ∪ {p}) is an
      // "earlier row" of the global order exactly like the q-loop above —
      // the child duplicates a branch an earlier shard enumerates.
      if (child_closed && ContainedOutside(child_items)) child_closed = false;
      if (!child_closed) {
        ++ws.stats.pruned_backward;
        if (opt_.use_backward_pruning) continue;
      }
      ws.in_x[p] = 1;
      ws.x_stack.push_back(p);  // NOLINT(hotpath: stack keeps capacity)
      IsPos(p) ? ++ws.xp : ++ws.xn;
      ws.chain_pos.push_back(p);  // NOLINT(hotpath: stack keeps capacity)
      // NOLINT(hotpath: stack keeps capacity)
      ws.chain_live.push_back(&live);
      // NOLINT(hotpath: the child projection build is the per-child
      // descent cost — arena-backed for the tree strategy, by-design
      // rebuild scans for the bitset/vector strategies)
      Visit(ws, proj.Child(p, live), child_items, live_freq[i], p,
            child_closed);
      ws.chain_live.pop_back();
      ws.chain_pos.pop_back();
      IsPos(p) ? --ws.xp : --ws.xn;
      ws.x_stack.pop_back();
      ws.in_x[p] = 0;
    }
  }

  for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
    const uint32_t p = *it;
    IsPos(p) ? --ws.xp : --ws.xn;
    ws.x_stack.pop_back();
    ws.in_x[p] = 0;
  }
}

void TopkSearch::SwitchCtx(WorkerState& ws, const NodeCtx& ctx) const {
  for (uint32_t p : ws.x_stack) ws.in_x[p] = 0;
  ws.x_stack = ctx.x_stack;
  for (uint32_t p : ws.x_stack) ws.in_x[p] = 1;
  ws.xp = ctx.xp;
  ws.xn = ctx.xn;
}

bool TopkSearch::CanSpawn(const WorkerState& ws, size_t remaining) const {
  // Snapshot cost grows with the chain (every parent live list is copied);
  // past this depth the unvisited children are too small to be worth
  // shipping anyway.
  constexpr size_t kMaxSpawnDepth = 32;
  return num_workers_ > 1 && ws.task != nullptr &&
         starving_.load(std::memory_order_relaxed) > 0 &&
         deques_[ws.worker_index]->Empty() &&
         ws.chain_pos.size() <= kMaxSpawnDepth &&
         // One origin slot per shed child plus one for the continuing
         // parent must fit in the unit's free range (see SpawnRemaining).
         ws.origin_limit - ws.origin >= remaining + 2;
}

void TopkSearch::SpawnRemaining(WorkerState& ws, const RowSet& items,
                                const std::vector<uint32_t>& live,
                                const std::vector<uint32_t>& live_freq,
                                const std::vector<uint32_t>& suffix_pos,
                                size_t first_child) {
  auto ctx = std::make_shared<NodeCtx>();
  ctx->x_stack = ws.x_stack;
  ctx->xp = ws.xp;
  ctx->xn = ws.xn;
  ctx->items = items;
  ctx->live = live;
  ctx->live_freq = live_freq;
  ctx->suffix_pos = suffix_pos;
  ctx->chain_pos = ws.chain_pos;
  ctx->chain_live.reserve(ws.chain_live.size());
  for (const std::vector<uint32_t>* parent_live : ws.chain_live) {
    ctx->chain_live.push_back(*parent_live);
  }

  SubtreeTask& parent = *ws.task;
  const size_t marker = parent.emissions.size();
  const size_t count = live.size() - first_child;
  // Carve the unit's free origin range [origin, origin_limit) among the
  // shed children and the continuing parent, in canonical order: child j
  // gets [base + 1 + j*slice, base + 1 + (j+1)*slice) and the parent's
  // own base moves past all of them. Everything already inserted with the
  // old base stays canonically before every child; each child's entries
  // order exactly against its siblings and against the parent's later
  // emissions — origin comparisons remain exact through the split.
  // CanSpawn guarantees slice >= 1.
  const uint32_t avail = ws.origin_limit - ws.origin - 1;
  const uint32_t slice = avail / (static_cast<uint32_t>(count) + 1);
  std::vector<SubtreeTask*> fresh;
  fresh.reserve(count);
  for (size_t j = first_child; j < live.size(); ++j) {
    auto t = std::make_unique<SubtreeTask>();
    t->ctx = ctx;
    t->child = static_cast<uint32_t>(j);
    t->origin_base =
        ws.origin + 1 + static_cast<uint32_t>(j - first_child) * slice;
    t->origin_limit = t->origin_base + slice;
    fresh.push_back(t.get());
    parent.spawned.push_back(std::move(t));
    parent.spawn_at.push_back(marker);
  }
  // The parent's own emissions are canonically AFTER the spawned subtrees
  // from here on; its remaining range starts past their slices.
  ws.origin += 1 + static_cast<uint32_t>(count) * slice;
  // Publish: count first (a stolen task must never be the one that drops
  // pending_ to zero while its siblings are still being pushed), then the
  // tasks themselves, oldest = canonically first, so a thief's StealTop
  // takes the earliest — and largest — subtree.
  pending_.fetch_add(count, std::memory_order_release);
  WorkStealDeque<SubtreeTask*>& own = *deques_[ws.worker_index];
  for (SubtreeTask* t : fresh) own.PushBottom(t);
  ws.stats.tasks_spawned += count;
}

template <typename Proj>
void TopkSearch::RunTask(WorkerState& ws, const Proj& node_proj,
                         SubtreeTask& task) {
  const NodeCtx& ctx = *task.ctx;
  const uint32_t p = ctx.live[task.child];
  if (opt_.use_bound_pruning) {
    // The serial search checks each child against its parent's cut before
    // building its projection; here the check runs when the task is
    // claimed, against the freshest thresholds (any achieved threshold is
    // a sound pruning bound). For a task that sat queued while the
    // thresholds matured — the common case late in the search — this is
    // where the whole subtree dies for the price of one cut.
    const Thresh cut = ComputeCut(ws.x_stack, ctx.live);
    const uint32_t child_sup_ub =
        ws.xp + (IsPos(p) ? 1 : 0) + ctx.suffix_pos[task.child + 1];
    const uint32_t child_min_neg = ws.xn + (IsPos(p) ? 0 : 1);
    if (Hopeless(child_sup_ub, child_min_neg, cut, ws.origin)) {
      ++ws.stats.pruned_bounds;
      return;
    }
  }
  // Same per-depth scratch discipline as Visit: ctx.items lives in the
  // heap NodeCtx, never in the pool, so the slot write cannot alias it.
  const size_t depth = ws.chain_pos.size();
  if (ws.rowset_scratch.size() <= depth) {
    // NOLINT(hotpath: one-time growth per depth first reached; every
    // later node at this depth reuses the slot allocation-free)
    ws.rowset_scratch.resize(depth + 1);
  }
  RowSet& child_items = ws.rowset_scratch[depth];
  ctx.items.IntersectAdaptiveInto(data_.row_bitset(order_[p]), &child_items);
  bool child_closed = true;
  for (uint32_t q = 0; q < p; ++q) {
    if (!ws.in_x[q] && child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
      child_closed = false;
      break;
    }
  }
  // See Visit: the out-of-shard half of the backward check.
  if (child_closed && ContainedOutside(child_items)) child_closed = false;
  if (!child_closed) {
    ++ws.stats.pruned_backward;
    if (opt_.use_backward_pruning) return;
  }
  ws.in_x[p] = 1;
  ws.x_stack.push_back(p);  // NOLINT(hotpath: stack keeps capacity)
  IsPos(p) ? ++ws.xp : ++ws.xn;
  ws.chain_pos.push_back(p);  // NOLINT(hotpath: stack keeps capacity)
  // NOLINT(hotpath: stack keeps capacity)
  ws.chain_live.push_back(&ctx.live);
  // NOLINT(hotpath: child projection build — see the matching Visit site)
  Visit(ws, node_proj.Child(p, ctx.live), child_items,
        ctx.live_freq[task.child], p, child_closed);
  ws.chain_live.pop_back();
  ws.chain_pos.pop_back();
  IsPos(p) ? --ws.xp : --ws.xn;
  ws.x_stack.pop_back();
  ws.in_x[p] = 0;
}

template <typename Proj>
void TopkSearch::MineRoot(const Proj& root, const RowSet& items,
                          uint32_t items_count) {
  WorkerState root_ws;
  root_ws.in_x.assign(data_.num_rows(), 0);
  root_ws.sink = &root_emissions_;
  root_ws.origin = 1;  // root emissions replay right after the seeds
  root_ws.origin_limit = 2;  // no range: the root unit never splits

  ++root_ws.stats.nodes_visited;
  bool fan_out = false;
  auto root_ctx = std::make_shared<NodeCtx>();
  if (opt_.deadline.Expired()) {
    timed_out_.store(true, std::memory_order_relaxed);
  } else if (items_count > 0) {
    std::vector<uint32_t> cand;
    root.Positions(&cand);

    uint32_t rp = 0;
    for (uint32_t p : cand) {
      if (IsPos(p)) ++rp;
    }

    MaybeRaiseMinsup(root_ws);
    const Thresh cut = ComputeCut(root_ws.x_stack, cand);

    if (opt_.use_bound_pruning && Hopeless(rp, 0, cut, root_ws.origin)) {
      ++root_ws.stats.pruned_bounds;
    } else {
      std::vector<uint32_t> live;
      std::vector<uint32_t> live_freq;
      std::vector<uint32_t> absorbed;
      uint32_t mp = 0;
      for (uint32_t p : cand) {
        const uint32_t f = root.Freq(p, items);
        if (f == items_count) {
          absorbed.push_back(p);
        } else if (f > 0) {
          live.push_back(p);
          live_freq.push_back(f);
          if (IsPos(p)) ++mp;
        }
      }
      for (uint32_t p : absorbed) {
        root_ws.in_x[p] = 1;
        root_ws.x_stack.push_back(p);
        IsPos(p) ? ++root_ws.xp : ++root_ws.xn;
      }

      const bool pruned =
          opt_.use_bound_pruning &&
          Hopeless(root_ws.xp + mp, root_ws.xn,
                   ComputeCut(root_ws.x_stack, live), root_ws.origin);
      if (pruned) {
        ++root_ws.stats.pruned_bounds;
      } else {
        // Sharded mining: the root's group (rows containing every frequent
        // item) belongs to the shard owning the earliest such row; a guard
        // hit means a pre-suffix row contains the full frequent set and an
        // earlier shard (or the merge's own root pass) emits it.
        if (!ContainedOutside(items)) EmitAt(root_ws, items, cut);

        root_ctx->suffix_pos.assign(live.size() + 1, 0);
        for (size_t i = live.size(); i-- > 0;) {
          root_ctx->suffix_pos[i] =
              root_ctx->suffix_pos[i + 1] + (IsPos(live[i]) ? 1 : 0);
        }
        root_ctx->x_stack = root_ws.x_stack;
        root_ctx->xp = root_ws.xp;
        root_ctx->xn = root_ws.xn;
        root_ctx->items = items;
        root_ctx->live = std::move(live);
        root_ctx->live_freq = std::move(live_freq);
        // chain_pos/chain_live stay empty: the root's projection needs no
        // Child() calls to rebuild.
        fan_out = true;
      }
    }
  }

  // Sharded mining: only first-level children at local positions below the
  // planner's limit become subtree tasks. Children at or past the limit
  // root subtrees whose every closed group has its earliest non-absorbed
  // row in a LATER shard's owned range — that shard mines them (its prefix
  // guard cannot fire on them because their defining row precedes nothing
  // it excludes). live is ascending in position, so the eligible children
  // are a prefix.
  uint32_t fan_limit = static_cast<uint32_t>(root_ctx->live.size());
  if (hooks_ != nullptr) {
    while (fan_limit > 0 &&
           root_ctx->live[fan_limit - 1] >= hooks_->first_level_limit) {
      --fan_limit;
    }
  }

  if (!fan_out || root_ctx->live.empty() || fan_limit == 0) {
    MergeStats(root_ws.stats);
    return;
  }
  root_ctx_ = root_ctx;

  // Every first-level subtree is one task owning an equal stripe of the
  // origin space, in canonical child order (0 = seeds, 1 = root; see the
  // kOriginMax comment). One scheduler serves every thread count: at one
  // worker the root queue is claimed strictly in canonical order and
  // nothing ever starves, so no split fires and the search IS the paper's
  // serial DFS. stride == 0 (more first-level children than origin slots)
  // degrades every task to the unencodable base: ties are never
  // suppressed and tasks never split, which is slow but exact.
  const uint32_t fan = fan_limit;
  const uint32_t stride = (kOriginMax - 2) / std::max(fan, 1u);
  tasks_.reserve(fan);
  for (uint32_t i = 0; i < fan; ++i) {
    auto t = std::make_unique<SubtreeTask>();
    t->ctx = root_ctx_;
    t->child = i;
    t->origin_base = stride > 0 ? 2 + i * stride : kOriginMax;
    t->origin_limit = stride > 0 ? 2 + (i + 1) * stride : kOriginMax;
    tasks_.push_back(std::move(t));
  }

  root_queue_ = std::make_unique<WorkStealDeque<SubtreeTask*>>();
  for (auto& t : tasks_) root_queue_->PushBottom(t.get());
  const uint32_t workers = num_workers_;
  deques_.clear();
  deques_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    deques_.push_back(std::make_unique<WorkStealDeque<SubtreeTask*>>());
  }
  pending_.store(tasks_.size(), std::memory_order_release);

  // node_budget != 0 caps how many enumeration nodes this worker may visit
  // before it stops claiming tasks (the serial warm-up below); 0 = run
  // until the search is drained.
  auto worker_loop = [&](WorkerState& ws, uint64_t node_budget) {
    auto&& view = root.WithArena(&ws.tree_arena);
    using ChildProj = std::decay_t<decltype(view.Child(0u, root_ctx_->live))>;
    // Rebuilt Child()-call chain of the cached task context. A std::deque
    // so growing it never relocates earlier projections (each level's
    // projection may reference its parent's).
    std::deque<ChildProj> chain;
    const NodeCtx* cached = nullptr;
    const ChildProj* base = &view;

    auto run_one = [&](SubtreeTask* task) {
      const NodeCtx& ctx = *task->ctx;
      if (cached != &ctx) {
        // Unwind root-ward before rebuilding: a projection may reference
        // its parent, so teardown must be leaf-first.
        while (!chain.empty()) chain.pop_back();
        SwitchCtx(ws, ctx);
        for (size_t d = 0; d < ctx.chain_pos.size(); ++d) {
          const ChildProj& parent = chain.empty() ? *base : chain.back();
          chain.push_back(parent.Child(ctx.chain_pos[d], ctx.chain_live[d]));
        }
        cached = &ctx;
      }
      ws.task = task;
      ws.sink = &task->emissions;
      ws.origin = task->origin_base;
      ws.origin_limit = task->origin_limit;
      ws.chain_pos.assign(ctx.chain_pos.begin(), ctx.chain_pos.end());
      ws.chain_live.clear();
      for (const std::vector<uint32_t>& parent_live : ctx.chain_live) {
        ws.chain_live.push_back(&parent_live);
      }
      RunTask(ws, chain.empty() ? *base : chain.back(), *task);
      ws.task = nullptr;
      ++ws.stats.tasks_executed;
    };

    WorkStealDeque<SubtreeTask*>& own = *deques_[ws.worker_index];
    while (!stopped_.load(std::memory_order_relaxed)) {
      if (node_budget != 0 && ws.stats.nodes_visited >= node_budget) break;
      // Own split-off work first (deepest subtree, context already hot),
      // then an unclaimed first-level task (FIFO = canonical order), then
      // stealing from a sibling (FIFO = its oldest, largest split).
      SubtreeTask* task = own.PopBottom();
      if (task == nullptr) task = root_queue_->StealTop();
      if (task == nullptr) {
        if (pending_.load(std::memory_order_acquire) == 0) break;
        starving_.fetch_add(1, std::memory_order_relaxed);
        uint32_t spins = 0;
        while (task == nullptr && !stopped_.load(std::memory_order_relaxed)) {
          for (uint32_t v = 1; v < workers && task == nullptr; ++v) {
            task = deques_[(ws.worker_index + v) % workers]->StealTop();
          }
          if (task != nullptr) {
            ++ws.stats.tasks_stolen;
            break;
          }
          if (pending_.load(std::memory_order_acquire) == 0) break;
          if (opt_.deadline.Expired()) {
            stopped_.store(true, std::memory_order_relaxed);
            timed_out_.store(true, std::memory_order_relaxed);
            break;
          }
          // Yield while a split looks imminent, then back off to a short
          // sleep: on an oversubscribed machine a pack of yielding
          // starvers would otherwise eat the time slices of the one
          // worker that has actual work to shed.
          if (++spins < 64) {
            std::this_thread::yield();
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
        }
        starving_.fetch_sub(1, std::memory_order_relaxed);
        if (task == nullptr) break;
      }
      if (opt_.deadline.Expired()) {
        stopped_.store(true, std::memory_order_relaxed);
        timed_out_.store(true, std::memory_order_relaxed);
        pending_.fetch_sub(1, std::memory_order_release);
        break;
      }
      run_one(task);
      pending_.fetch_sub(1, std::memory_order_release);
    }
  };

  if (workers <= 1) {
    root_ws.worker_index = 0;
    worker_loop(root_ws, 0);
    MergeStats(root_ws.stats);
    return;
  }

  // Serial warm-up: the calling thread drains first-level tasks in
  // canonical order until the budget is spent, so the pool starts against
  // a top-k heap whose thresholds already prune. No split can fire here
  // (nothing is starving yet), so this prefix IS the paper's serial DFS;
  // small searches finish inside it and never pay for threads at all.
  const uint64_t warmup = opt_.ResolveWarmupNodes();
  if (warmup > 0) {
    root_ws.worker_index = 0;
    worker_loop(root_ws, root_ws.stats.nodes_visited + warmup);
    if (pending_.load(std::memory_order_acquire) == 0 ||
        stopped_.load(std::memory_order_relaxed)) {
      MergeStats(root_ws.stats);
      return;
    }
  }

  std::vector<std::unique_ptr<WorkerState>> pool_states;
  pool_states.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    auto ws = std::make_unique<WorkerState>();
    ws->in_x.assign(data_.num_rows(), 0);
    ws->worker_index = t;
    pool_states.push_back(std::move(ws));
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back(
        [&worker_loop, &pool_states, t] { worker_loop(*pool_states[t], 0); });
  }
  for (std::thread& t : pool) t.join();

  MergeStats(root_ws.stats);
  for (const auto& ws : pool_states) MergeStats(ws->stats);
}

uint32_t TopkSearch::FinalEffectiveMinsup() const {
  // Deterministic recomputation of the paper's dynamic minsup raise
  // (§4.1.1, second optimization) from the final merged lists: the raises
  // applied during the search depend on thread timing and are only ever
  // weaker than this value.
  uint32_t effective = initial_minsup_;
  if (!opt_.dynamic_min_support || positive_positions_.empty()) {
    return effective;
  }
  uint32_t lowest = UINT32_MAX;
  for (uint32_t pos : positive_positions_) {
    const auto& list = lists_[pos];
    if (list.size() < opt_.k) return effective;
    const RuleGroup& kth = list.back()->group;
    if (kth.support == 0 || kth.support != kth.antecedent_support) {
      return effective;
    }
    lowest = std::min(lowest, kth.support);
  }
  if (lowest != UINT32_MAX) effective = std::max(effective, lowest + 1);
  return effective;
}

void TopkSearch::Finalize(const Bitset& frequent_items, TopkResult* result) {
  result->per_row.assign(data_.num_rows(), {});
  for (uint32_t pos = 0; pos < pos_positive_.size(); ++pos) {
    if (!IsPos(pos)) continue;
    auto& out = result->per_row[order_[pos]];
    for (const HandlePtr& handle : lists_[pos]) {
      if (handle->provisional) {
        // Close the seeded single item: its upper bound was never emitted
        // (the emitting node was pruned as strictly-dominated).
        Bitset closure = data_.RowSupportSet(handle->group.row_support);
        closure.IntersectWith(frequent_items);
        handle->group.antecedent = std::move(closure);
        handle->provisional = false;
      }
      out.push_back(RuleGroupPtr(handle, &handle->group));
    }
  }
}

TopkResult TopkSearch::Run() {
  Stopwatch timer;
  const Status options_status = opt_.Validate();
  TOPKRGS_CHECK(options_status.ok(), options_status.message().c_str());
  initial_minsup_ = std::max<uint32_t>(1, opt_.min_support);

  // Sharded mining substitutes the GLOBAL frequent-item set: a suffix's
  // own frequent set diverges from the global one, which would change the
  // enumeration universe and thus the emitted closures (DESIGN.md §14).
  const Bitset frequent =
      (hooks_ != nullptr && hooks_->frequent_items != nullptr)
          ? *hooks_->frequent_items
          : FrequentItems(data_, consequent_, initial_minsup_);
  switch (opt_.row_order) {
    case TopkMinerOptions::RowOrder::kClassDominantWeighted:
      order_ = ClassDominantOrder(data_, consequent_, frequent);
      break;
    case TopkMinerOptions::RowOrder::kClassDominant:
      // Empty weight set keeps rows in original order within each class.
      order_.clear();
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) == consequent_) order_.push_back(r);
      }
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) != consequent_) order_.push_back(r);
      }
      break;
    case TopkMinerOptions::RowOrder::kNatural:
      order_.resize(data_.num_rows());
      for (RowId r = 0; r < data_.num_rows(); ++r) order_[r] = r;
      break;
  }
  position_of_.assign(data_.num_rows(), 0);
  pos_positive_.assign(data_.num_rows(), 0);
  positive_positions_.clear();
  for (uint32_t pos = 0; pos < order_.size(); ++pos) {
    position_of_[order_[pos]] = pos;
    pos_positive_[pos] = data_.label(order_[pos]) == consequent_ ? 1 : 0;
    if (pos_positive_[pos] != 0) positive_positions_.push_back(pos);
  }
  np_ = CountClassRows(data_, consequent_);
  lists_.assign(data_.num_rows(), {});
  shared_ = std::make_unique<SharedTopk>(data_.num_rows(), opt_.k,
                                         initial_minsup_);

  num_workers_ = ResolveThreadCount(opt_.RequestedThreads(),
                                    std::thread::hardware_concurrency());

  if (opt_.seed_single_items) SeedSingleItems(frequent);

  const uint32_t items_count = static_cast<uint32_t>(frequent.Count());
  if (items_count > 0 && np_ > 0) {
    // The root item set is (near-)dense by construction; descendants
    // re-decide their representation per node as I(X) shrinks.
    const RowSet root_items = RowSet::FromBitset(frequent);
    switch (opt_.backend) {
      case TopkMinerOptions::Backend::kPrefixTree: {
        TreeProjection root(PrefixTree::BuildRoot(data_, order_, frequent));
        MineRoot(root, root_items, items_count);
        break;
      }
      case TopkMinerOptions::Backend::kBitset: {
        BitsetProjection root(&data_, &order_);
        MineRoot(root, root_items, items_count);
        break;
      }
      case TopkMinerOptions::Backend::kVector: {
        VectorProjection root(&data_, &order_, frequent);
        MineRoot(root, root_items, items_count);
        break;
      }
    }
  }

  // Deterministic merge: replay every recorded emission in canonical
  // discovery order — seeds (inserted during setup), the root node's
  // groups, then each first-level subtree in enumeration order, recursing
  // into split-off tasks at their spawn markers. This is exactly the
  // serial DFS order, so the merged lists match a serial search bit for
  // bit NO MATTER which worker ran which task or where the splits fell.
  // The final lists depend only on WHAT was recorded, never on when;
  // pruning-timing differences across thread counts only vary the set of
  // recorded never-winner emissions, which the replay rejects anyway.
  ReplayEmissions(root_emissions_);
  for (const auto& task : tasks_) ReplayTask(*task);

  TopkResult result;
  Finalize(frequent, &result);
  result.effective_min_support = FinalEffectiveMinsup();
  stats_.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats_.seconds = timer.ElapsedSeconds();
  result.stats = stats_;
  result.ValidateInvariants(opt_.k);
  return result;
}

}  // namespace

Status TopkMinerOptions::Validate() const {
  if (k < 1) {
    return Status::InvalidArgument("TopkMinerOptions: k must be >= 1");
  }
  if (hybrid_threads != kThreadsUnset && threads != 1 &&
      threads != hybrid_threads) {
    return Status::InvalidArgument(
        "TopkMinerOptions: `threads` (" + std::to_string(threads) +
        ") conflicts with the deprecated `hybrid_threads` alias (" +
        std::to_string(hybrid_threads) +
        "); set only `threads` (the alias used to win silently, hiding the "
        "conflicting request)");
  }
  if (shard_hooks != nullptr && row_order != RowOrder::kNatural) {
    return Status::InvalidArgument(
        "TopkMinerOptions: shard_hooks require row_order == kNatural (the "
        "shard miner presents rows already in global canonical order; any "
        "reordering inside the shard would desynchronize first_level_limit "
        "and the prefix containment guard from the planner's positions)");
  }
  return Status::OK();
}

bool TopkResult::CheckInvariants(uint32_t k, std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  for (size_t row = 0; row < per_row.size(); ++row) {
    const auto& list = per_row[row];
    if (list.size() > k) {
      return fail("row " + std::to_string(row) + " holds " +
                  std::to_string(list.size()) + " groups, more than k = " +
                  std::to_string(k));
    }
    for (size_t i = 0; i < list.size(); ++i) {
      const RuleGroupPtr& group = list[i];
      if (group == nullptr) {
        return fail("row " + std::to_string(row) + " holds a null group");
      }
      std::string group_error;
      if (!group->CheckInvariants(&group_error)) {
        return fail("row " + std::to_string(row) + " rank " +
                    std::to_string(i + 1) + ": " + group_error);
      }
      if (row < group->row_support.size() && !group->row_support.Test(row)) {
        return fail("row " + std::to_string(row) + " rank " +
                    std::to_string(i + 1) + " group does not cover the row");
      }
      if (i > 0 &&
          CompareSignificance(list[i - 1]->support,
                              list[i - 1]->antecedent_support, group->support,
                              group->antecedent_support) < 0) {
        return fail("row " + std::to_string(row) +
                    " list not sorted by significance at rank " +
                    std::to_string(i + 1));
      }
      for (size_t j = 0; j < i; ++j) {
        if (list[j] == group) {
          return fail("row " + std::to_string(row) +
                      " lists the same group twice (ranks " +
                      std::to_string(j + 1) + " and " + std::to_string(i + 1) +
                      ")");
        }
      }
    }
  }
  return true;
}

void TopkResult::ValidateInvariants(uint32_t k) const {
#if TOPKRGS_DCHECK_IS_ON()
  std::string error;
  TKRGS_DCHECK(CheckInvariants(k, &error), error.c_str());
#else
  (void)k;
#endif
}

namespace {

/// Collapses `candidates` (scan order) to the distinct rowsets, keeping
/// the first occurrence of each and preserving scan order.
///
/// The hash only buckets the equality probes — it never decides order:
/// output order is the candidates' own order, the membership index is an
/// ORDERED map (no hash-bucket iteration anywhere), and within a bucket
/// the candidate indices are probed in sorted (ascending, i.e. scan)
/// order. Salting the hash therefore reshuffles buckets without moving a
/// single output element — pinned by the DistinctGroupsHashSaltInvariant
/// regression test, which is what licenses the hash in this
/// deterministic zone at all.
std::vector<RuleGroupPtr> DedupByRowSupport(
    const std::vector<const RuleGroupPtr*>& candidates, uint64_t hash_salt) {
  std::vector<RuleGroupPtr> out;
  std::map<uint64_t, std::vector<size_t>> seen;  // salted hash -> out indices
  for (const RuleGroupPtr* gp : candidates) {
    const RuleGroupPtr& g = *gp;
    // SplitMix64 finalizer over (rowset hash ^ salt): any salt yields a
    // usable bucketing function, so tests can sweep several.
    uint64_t h = g->row_support.Hash() ^ hash_salt;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    std::vector<size_t>& bucket = seen[h];
    TKRGS_DCHECK_SORTED(bucket.begin(), bucket.end(),
                        [](size_t a, size_t b) { return a < b; },
                        "dedup probe order must be scan order, never bucket "
                        "layout");
    bool dup = false;
    for (size_t idx : bucket) {
      if (out[idx]->row_support == g->row_support) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(out.size());  // appended ascending: stays sorted
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace

std::vector<RuleGroupPtr> TopkResult::DistinctGroups(uint64_t hash_salt) const {
  std::vector<const RuleGroupPtr*> candidates;
  for (const auto& list : per_row) {
    for (const RuleGroupPtr& g : list) candidates.push_back(&g);
  }
  return DedupByRowSupport(candidates, hash_salt);
}

std::vector<RuleGroupPtr> TopkResult::GroupsAtRank(uint32_t j,
                                                   uint64_t hash_salt) const {
  TOPKRGS_CHECK(j >= 1, "rank is 1-based");
  std::vector<const RuleGroupPtr*> candidates;
  for (const auto& list : per_row) {
    if (list.size() < j) continue;
    candidates.push_back(&list[j - 1]);
  }
  return DedupByRowSupport(candidates, hash_salt);
}

TopkResult MineTopkRGS(const DiscreteDataset& data, ClassLabel consequent,
                       const TopkMinerOptions& options) {
  TopkSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
