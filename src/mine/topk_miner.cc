#include "mine/topk_miner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "mine/projection.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/lock_ranks.h"
#include "util/rowset.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace topkrgs {

namespace {

/// A rule group shared between the per-row lists of every row it covers.
/// Seeded single-item groups start `provisional`: their antecedent is the
/// single item, not yet the closure (upper bound); they are upgraded in
/// place when the real upper bound is emitted, or closed explicitly in the
/// finalization pass.
struct GroupHandle {
  RuleGroup group;
  bool provisional = false;
};
using HandlePtr = std::shared_ptr<GroupHandle>;

/// Canonical origin of a shared-list entry: where it falls in the replay
/// (merge) order. Seeds replay first, then the root node's emissions, then
/// task i's emissions — so origin 0 / 1 / i+2. Within one task, wall-clock
/// order IS canonical order (a single worker mines a task sequentially), so
/// comparing origins alone decides "canonically no later than".
/// kOriginInf marks an origin too large to encode: entries carrying it can
/// never justify suppressing a tie (conservative).
constexpr uint32_t kOriginMax = 0xfffeu;
constexpr uint32_t kOriginInf = 0xffffu;

/// Significance threshold (sup, antecedent_sup) with the canonical origin
/// attached: `origin` is the latest origin among the top-k entries tied
/// with the k-th (the ones a tying candidate must beat in the replay's
/// earlier-discovery tiebreak). (0, 0) is the dummy with confidence 0.
struct Thresh {
  uint32_t sup = 0;
  uint32_t asup = 0;
  uint32_t origin = kOriginInf;
};

/// Whether a candidate of significance (sup, asup) discovered at
/// `candidate_origin` can never enter a final top-k list guarded by `cut`.
/// Strictly worse always loses; an exact tie loses only to entries that
/// canonically precede it — the replay resolves ties by discovery order,
/// so a tie with a canonically-later entry must still be recorded.
inline bool Dominated(uint32_t sup, uint32_t asup, const Thresh& cut,
                      uint32_t candidate_origin) {
  const int cmp = CompareSignificance(sup, asup, cut.sup, cut.asup);
  if (cmp != 0) return cmp < 0;
  return cut.origin <= candidate_origin;
}

/// Shared pruning state of the parallel search: per-row candidate top-k
/// lists guarded by striped locks, with each row's k-th-entry significance
/// and tie origin mirrored into a packed atomic so the hot pruning reads
/// (ComputeCut runs at every enumeration node) never take a lock. The
/// dynamically raised minimum support lives here too.
///
/// This structure only steers pruning; the final per-row lists are rebuilt
/// afterwards by a deterministic replay of the recorded emissions, so the
/// timing-dependent insertion order here never leaks into results.
class SharedTopk {
 public:
  SharedTopk(uint32_t num_positions, uint32_t k, uint32_t initial_minsup)
      : k_(k),
        // Support counts must fit the 24-bit packed fields; beyond that
        // (unheard of for row enumeration) thresholds stay at the dummy and
        // top-k pruning degrades to none, which is slow but correct.
        packable_(num_positions < (1u << 24)),
        lists_(num_positions),
        packed_(num_positions),
        minsup_dyn_(initial_minsup) {
    for (auto& p : packed_) p.store(0, std::memory_order_relaxed);
  }

  /// The significance + tie origin of the k-th entry of `pos`'s list;
  /// (0, 0) while the list holds fewer than k groups (a real group always
  /// has support >= 1, so the sentinel is unambiguous). Lock-free.
  Thresh KthOf(uint32_t pos) const {
    const uint64_t packed = packed_[pos].load(std::memory_order_acquire);
    return Thresh{static_cast<uint32_t>(packed >> 40),
                  static_cast<uint32_t>((packed >> 16) & 0xffffffu),
                  static_cast<uint32_t>(packed & 0xffffu)};
  }

  uint32_t minsup() const {
    return minsup_dyn_.load(std::memory_order_acquire);
  }

  /// Monotone maximum update (CAS loop). The paper's dynamic-minsup
  /// optimization (§4.1.1) is only sound because minsup never decreases
  /// during the search; the CAS loop guarantees it structurally and the
  /// DCHECK documents/verifies the contract in debug builds.
  void RaiseMinsup(uint32_t value) {
    uint32_t current = minsup_dyn_.load(std::memory_order_relaxed);
    while (value > current &&
           !minsup_dyn_.compare_exchange_weak(current, value,
                                              std::memory_order_acq_rel)) {
    }
    TKRGS_DCHECK_GE(minsup_dyn_.load(std::memory_order_relaxed), value,
                    "dynamic minsup must be monotone non-decreasing");
  }

  /// Offers a candidate group to `pos`'s pruning list. Deduplicates by
  /// (support, antecedent support, row support) — a seed and its closure
  /// must not occupy two slots, which would fake a tighter threshold than
  /// the real list can have. Unlike the replay-side insert, a duplicate is
  /// never "upgraded" here: handles stay immutable while workers run.
  /// Duplicates keep the first arrival's origin, which is the canonically
  /// smallest one (cross-task duplicates are impossible — first-level
  /// subtrees cover disjoint row combinations — so any duplicate arrives
  /// on the same worker, in canonical order).
  void Insert(uint32_t pos, const HandlePtr& handle, uint32_t origin) {
    const RuleGroup& g = handle->group;
    // lists_[pos] is guarded by stripes_[pos & (kStripes - 1)]. The
    // index-dependent stripe mapping is beyond what GUARDED_BY can
    // express, so the contract lives here (and every mutation below runs
    // under this MutexLock — the annotated type keeps the acquisition
    // visible to the analysis even without a field annotation).
    MutexLock lock(stripes_[pos & (kStripes - 1)]);
    auto& list = lists_[pos];
    for (const Entry& existing : list) {
      const RuleGroup& e = existing.handle->group;
      if (e.support == g.support &&
          e.antecedent_support == g.antecedent_support &&
          e.row_support == g.row_support) {
        return;
      }
    }
    const uint32_t encoded = origin >= kOriginMax ? kOriginInf : origin;
    if (list.size() >= k_) {
      const RuleGroup& kth = list.back().handle->group;
      const int cmp = CompareSignificance(g.support, g.antecedent_support,
                                          kth.support, kth.antecedent_support);
      if (cmp < 0) return;
      if (cmp == 0) {
        // A tie with the k-th entry can't deepen the list, but a
        // canonically EARLIER tie can sharpen the published tie-origin
        // (workers run out of canonical order, so late arrivals may
        // precede what's stored): replace the latest-origin tied entry.
        size_t worst = list.size();
        for (size_t i = list.size(); i-- > 0;) {
          const RuleGroup& e = list[i].handle->group;
          if (CompareSignificance(e.support, e.antecedent_support, kth.support,
                                  kth.antecedent_support) != 0) {
            break;
          }
          if (worst == list.size() || list[i].origin > list[worst].origin) {
            worst = i;
          }
        }
        if (worst == list.size() || list[worst].origin <= encoded) return;
        list[worst] = Entry{handle, encoded};
        PublishKth(pos);
        return;
      }
    }
    auto it = std::find_if(list.begin(), list.end(), [&](const Entry& e) {
      return CompareSignificance(g.support, g.antecedent_support,
                                 e.handle->group.support,
                                 e.handle->group.antecedent_support) > 0;
    });
    list.insert(it, Entry{handle, encoded});
    if (list.size() > k_) list.pop_back();
    if (list.size() >= k_) PublishKth(pos);
  }

 private:
  static constexpr size_t kStripes = 64;  // power of two (masked indexing)

  struct Entry {
    HandlePtr handle;
    uint32_t origin;  // encoded: >= kOriginMax is stored as kOriginInf,
                      // because the clamp value is shared by several late
                      // tasks and may never justify suppressing a tie
  };

  /// Publishes the k-th significance plus the latest origin among the
  /// top-k entries tied with it: a tying candidate is beaten only if ALL
  /// of them canonically precede it. Caller holds the stripe lock and has
  /// ensured the list is full.
  void PublishKth(uint32_t pos) {
    if (!packable_) return;
    const auto& list = lists_[pos];
    TKRGS_DCHECK_SORTED(
        list.begin(), list.end(),
        [](const Entry& a, const Entry& b) {
          return CompareSignificance(
                     a.handle->group.support, a.handle->group.antecedent_support,
                     b.handle->group.support,
                     b.handle->group.antecedent_support) > 0;
        },
        "per-row pruning list must stay sorted by significance");
    const RuleGroup& kth = list.back().handle->group;
    uint32_t tie_origin = 0;
    for (size_t i = list.size(); i-- > 0;) {
      const RuleGroup& e = list[i].handle->group;
      if (CompareSignificance(e.support, e.antecedent_support, kth.support,
                              kth.antecedent_support) != 0) {
        break;
      }
      tie_origin = std::max(tie_origin, list[i].origin);
    }
    // Top-k pruning (§4.1.1) is sound only if the published per-row
    // threshold — and with it the dynamically derived minconf — is
    // monotone non-decreasing: a threshold that ever dropped could have
    // pruned a subtree that later became viable again.
    TKRGS_DCHECK(
        [&] {
          const uint64_t prev = packed_[pos].load(std::memory_order_relaxed);
          return CompareSignificance(
                     kth.support, kth.antecedent_support,
                     static_cast<uint32_t>(prev >> 40),
                     static_cast<uint32_t>((prev >> 16) & 0xffffffu)) >= 0;
        }(),
        "published k-th significance (minconf source) must never decrease");
    packed_[pos].store(
        (static_cast<uint64_t>(kth.support) << 40) |
            (static_cast<uint64_t>(kth.antecedent_support) << 16) | tie_origin,
        std::memory_order_release);
  }

  /// Stripe locks carry the leaf rank from the central table: nothing may
  /// be acquired under one, and (same-rank rule) no two stripes may ever
  /// be held together — both checked at runtime in debug builds.
  template <size_t... I>
  static std::array<Mutex, sizeof...(I)> MakeStripes(
      std::index_sequence<I...>) {
    return {((void)I, Mutex(lock_rank::kMinerTopkStripe,
                            "SharedTopk::stripes_"))...};
  }

  const uint32_t k_;
  const bool packable_;
  /// lists_[pos] is guarded by stripes_[pos & (kStripes - 1)] — an
  /// index-computed stripe GUARDED_BY cannot name (see Insert).
  std::vector<std::vector<Entry>> lists_;
  std::vector<std::atomic<uint64_t>> packed_;
  std::atomic<uint32_t> minsup_dyn_;
  mutable std::array<Mutex, kStripes> stripes_ =
      MakeStripes(std::make_index_sequence<kStripes>{});
};

class TopkSearch {
 public:
  TopkSearch(const DiscreteDataset& data, ClassLabel consequent,
             const TopkMinerOptions& options)
      : data_(data), consequent_(consequent), opt_(options) {}

  TopkResult Run();

 private:
  /// One recorded rule-group emission: the handle plus the positive row
  /// positions it covers, in discovery (x-stack) order. Emissions are
  /// recorded per first-level subtree and replayed in canonical order
  /// after the workers join, which is what makes the parallel search
  /// bit-for-bit deterministic.
  struct Emission {
    HandlePtr handle;
    std::vector<uint32_t> covered;
  };

  /// Per-worker DFS state: the enumeration stack, scratch-buffer pool and
  /// prefix-tree arena persist across the tasks a worker drains, so a
  /// steady-state worker stops allocating.
  struct WorkerState {
    std::vector<uint32_t> x_stack;
    std::vector<uint8_t> in_x;
    uint32_t xp = 0;
    uint32_t xn = 0;
    uint32_t origin = kOriginInf;  // canonical origin of emissions made here
    MinerStats stats;
    std::vector<Emission>* sink = nullptr;
    VectorPool<uint32_t> scratch;
    PrefixTree::Arena tree_arena;
  };

  /// A processed first-level enumeration node whose children became the
  /// parallel tasks: the frozen DFS state a worker needs to resume any of
  /// them. Built serially during expansion, read-only while workers run.
  struct Level1Ctx {
    uint32_t p = 0;                   // the node's own branch position
    std::vector<uint32_t> x_stack;    // full stack at the node (incl. absorbed)
    uint32_t xp = 0;
    uint32_t xn = 0;
    RowSet items;                     // I(X) at the node (density-adaptive)
    std::vector<uint32_t> live;       // surviving candidate positions
    std::vector<uint32_t> live_freq;  // their item counts (child items_count)
    std::vector<uint32_t> suffix_pos; // positive candidates after live[i]
    std::vector<Emission> node_emissions;
  };

  /// One second-level subtree: the unit of parallel work.
  struct SubtreeTask {
    uint32_t ctx_index = 0;  // owning Level1Ctx
    uint32_t child = 0;      // index into ctx.live
    uint32_t origin = 0;     // canonical replay rank of its emissions
    std::vector<Emission> emissions;
  };

  /// When `freeze` is non-null, Visit stops before the child loop and
  /// snapshots the node's state into it instead of recursing (the serial
  /// expansion pass uses this to turn the node's children into tasks).
  template <typename Proj>
  void Visit(WorkerState& ws, const Proj& proj, const RowSet& items,
             uint32_t items_count, uint32_t branch_pos, bool closed_on_left,
             Level1Ctx* freeze = nullptr);

  /// Processes the root node and every first-level node serially (the
  /// expansion pass — ~1% of all nodes, but it seeds the shared thresholds
  /// with every shallow high-support group and fixes the canonical origin
  /// numbering), then fans the second-level subtrees out over the worker
  /// pool. Partitioning one level deeper than the tasks' natural grain
  /// breaks up the heavily skewed first subtree, which otherwise IS the
  /// critical path.
  template <typename Proj>
  void MineRoot(const Proj& root, const RowSet& items, uint32_t items_count);

  /// Runs one task: checks, builds and descends into the subtree rooted at
  /// ctx.live[task.child]. `proj1` is the (worker-cached) projection of the
  /// task's first-level node.
  template <typename Proj>
  void RunTask(WorkerState& ws, const Proj& proj1, SubtreeTask& task);

  /// Rebinds a worker's DFS state to another first-level context.
  void SwitchCtx(WorkerState& ws, const Level1Ctx& ctx) const;

  void SeedSingleItems(const Bitset& frequent_items);
  void MaybeRaiseMinsup();
  Thresh ComputeCut(const std::vector<uint32_t>& x_stack,
                    const std::vector<uint32_t>& candidates) const;
  bool Hopeless(uint32_t best_sup, uint32_t min_neg, const Thresh& cut,
                uint32_t origin) const;
  void EmitAt(WorkerState& ws, const RowSet& items, const Thresh& cut);
  void ReplayInsert(uint32_t pos, const HandlePtr& handle);
  void ReplayEmissions(const std::vector<Emission>& emissions);
  uint32_t FinalEffectiveMinsup() const;
  void Finalize(const Bitset& frequent_items, TopkResult* result);
  void MergeStats(const MinerStats& s);

  bool IsPos(uint32_t pos) const { return pos_positive_[pos] != 0; }

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const TopkMinerOptions& opt_;

  std::vector<RowId> order_;           // position -> original row id
  std::vector<uint32_t> position_of_;  // original row id -> position
  std::vector<uint8_t> pos_positive_;  // position -> is consequent-class
  std::vector<uint32_t> positive_positions_;
  uint32_t np_ = 0;  // number of consequent-class rows
  uint32_t initial_minsup_ = 1;
  uint32_t num_workers_ = 1;

  std::unique_ptr<SharedTopk> shared_;

  // Deterministic-merge state; only touched single-threaded (seeding and
  // expansion before the workers start, replay after they join).
  std::vector<std::vector<HandlePtr>> lists_;
  std::vector<Emission> root_emissions_;
  std::vector<Level1Ctx> level1_;
  std::vector<SubtreeTask> tasks_;

  // Root context, read-only while workers run (the root's live list is the
  // parent candidate set for first-level Child() rebuilds).
  std::vector<uint32_t> root_live_;

  std::atomic<bool> stopped_{false};
  std::atomic<bool> timed_out_{false};
  MinerStats stats_;
};

void TopkSearch::MergeStats(const MinerStats& s) {
  stats_.nodes_visited += s.nodes_visited;
  stats_.groups_emitted += s.groups_emitted;
  stats_.pruned_backward += s.pruned_backward;
  stats_.pruned_bounds += s.pruned_bounds;
}

/// Replay-side insert: exactly the paper's per-row list maintenance, run
/// single-threaded over the canonical emission order. Dedups by antecedent
/// support set, upgrading a provisional seed in place when the matching
/// upper bound arrives (§4.1.1, first optimization); ties on significance
/// keep the earlier-discovered group, matching CBA's "<" order.
void TopkSearch::ReplayInsert(uint32_t pos, const HandlePtr& handle) {
  auto& list = lists_[pos];
  const RuleGroup& g = handle->group;

  for (auto& existing : list) {
    RuleGroup& e = existing->group;
    if (e.support == g.support && e.antecedent_support == g.antecedent_support &&
        e.row_support == g.row_support) {
      if (existing->provisional && !handle->provisional) {
        e.antecedent = g.antecedent;
        existing->provisional = false;
      }
      return;
    }
  }

  if (list.size() >= opt_.k) {
    const RuleGroup& kth = list.back()->group;
    if (CompareSignificance(g.support, g.antecedent_support, kth.support,
                            kth.antecedent_support) <= 0) {
      return;  // not more significant than the current k-th entry
    }
  }
  auto it = std::find_if(list.begin(), list.end(), [&](const HandlePtr& e) {
    return CompareSignificance(g.support, g.antecedent_support,
                               e->group.support,
                               e->group.antecedent_support) > 0;
  });
  list.insert(it, handle);
  if (list.size() > opt_.k) list.pop_back();
}

void TopkSearch::ReplayEmissions(const std::vector<Emission>& emissions) {
  for (const Emission& emission : emissions) {
    for (uint32_t pos : emission.covered) {
      ReplayInsert(pos, emission.handle);
    }
  }
}

void TopkSearch::SeedSingleItems(const Bitset& frequent_items) {
  const Bitset class_rows = data_.ClassRowset(consequent_);
  frequent_items.ForEach([&](size_t item_index) {
    const ItemId item = static_cast<ItemId>(item_index);
    const Bitset& rows = data_.item_rows(item);
    auto handle = std::make_shared<GroupHandle>();
    handle->provisional = true;
    handle->group.antecedent = Bitset(data_.num_items());
    handle->group.antecedent.Set(item);
    handle->group.row_support = rows;
    handle->group.consequent = consequent_;
    handle->group.antecedent_support = static_cast<uint32_t>(rows.Count());
    handle->group.support =
        static_cast<uint32_t>(rows.IntersectCount(class_rows));
    rows.ForEach([&](size_t row) {
      if (data_.label(static_cast<RowId>(row)) != consequent_) return;
      const uint32_t pos = position_of_[row];
      ReplayInsert(pos, handle);
      shared_->Insert(pos, handle, /*origin=*/0);  // seeds replay first
    });
  });
}

void TopkSearch::MaybeRaiseMinsup() {
  if (!opt_.dynamic_min_support) return;
  uint32_t lowest = UINT32_MAX;
  for (uint32_t pos : positive_positions_) {
    const Thresh t = shared_->KthOf(pos);
    if (t.sup == 0 || t.sup != t.asup) {
      return;  // some list not full yet, or its k-th below 100% confidence
    }
    lowest = std::min(lowest, t.sup);
  }
  // Every row already holds k groups of 100% confidence with support >=
  // lowest: anything with support < lowest is strictly less significant
  // than every k-th entry. (The paper raises to lowest+1; that extra level
  // would also prune exact significance ties, which the deterministic
  // replay merge must still get to see — the reported effective minimum
  // support is recomputed with the paper's rule in FinalEffectiveMinsup.)
  if (lowest != UINT32_MAX && lowest > shared_->minsup()) {
    shared_->RaiseMinsup(lowest);
  }
}

Thresh TopkSearch::ComputeCut(const std::vector<uint32_t>& x_stack,
                              const std::vector<uint32_t>& candidates) const {
  // Equation 1/2: the weakest k-th entry over the rows the subtree can still
  // cover (Lemma 3.2: Xp ∪ Rp). The cut's origin must justify tie
  // suppression against EVERY coverable row, so among the rows tied at the
  // minimum significance it keeps the latest (largest) tie origin.
  bool first = true;
  Thresh cut{0, 0, 0};
  auto consider = [&](uint32_t pos) {
    const Thresh t = shared_->KthOf(pos);
    if (first) {
      cut = t;
      first = false;
      return;
    }
    const int cmp = CompareSignificance(t.sup, t.asup, cut.sup, cut.asup);
    if (cmp < 0) {
      cut = t;
    } else if (cmp == 0 && t.origin > cut.origin) {
      cut.origin = t.origin;
    }
  };
  for (uint32_t pos : x_stack) {
    if (IsPos(pos)) consider(pos);
  }
  for (uint32_t pos : candidates) {
    if (IsPos(pos)) consider(pos);
  }
  if (first) {
    cut = Thresh{UINT32_MAX, UINT32_MAX, 0};  // no coverable row: prune all
  }
  return cut;
}

bool TopkSearch::Hopeless(uint32_t best_sup, uint32_t min_neg,
                          const Thresh& cut, uint32_t origin) const {
  if (best_sup < shared_->minsup()) return true;
  if (!opt_.use_topk_pruning) return false;
  // Best achievable significance in the subtree: support best_sup with
  // confidence best_sup / (best_sup + min_neg). Strictly-worse subtrees
  // are always hopeless; a subtree that merely TIES the cut is hopeless
  // only when every tied threshold entry canonically precedes anything
  // this subtree could emit (cut.origin <= origin) — otherwise its tie
  // might still win the replay merge's discovery-order tiebreak and must
  // be explored. At one thread every prior entry precedes the current
  // node, so this degenerates to the serial search's tie pruning exactly.
  return Dominated(best_sup, best_sup + min_neg, cut, origin);
}

void TopkSearch::EmitAt(WorkerState& ws, const RowSet& items,
                        const Thresh& cut) {
  if (ws.xp < shared_->minsup()) return;
  if (opt_.use_topk_pruning && Dominated(ws.xp, ws.xp + ws.xn, cut, ws.origin)) {
    // Beaten on every coverable row by k recorded entries — strictly more
    // significant ones, or exact ties that canonically precede this node
    // (see Hopeless): it can never enter a final list, so it need not be
    // recorded. (A suppressed emission may duplicate a provisional seed's
    // support set; Finalize closes surviving provisionals itself, so the
    // lost upgrade is harmless.)
    return;
  }
  auto handle = std::make_shared<GroupHandle>();
  handle->group.antecedent = items.ToBitset();
  handle->group.consequent = consequent_;
  handle->group.support = ws.xp;
  handle->group.antecedent_support = ws.xp + ws.xn;
  Bitset rows(data_.num_rows());
  for (uint32_t pos : ws.x_stack) rows.Set(order_[pos]);
  handle->group.row_support = std::move(rows);
  ++ws.stats.groups_emitted;
  Emission emission;
  emission.handle = handle;
  for (uint32_t pos : ws.x_stack) {
    if (!IsPos(pos)) continue;
    emission.covered.push_back(pos);
    shared_->Insert(pos, handle, ws.origin);
  }
  ws.sink->push_back(std::move(emission));
}

template <typename Proj>
void TopkSearch::Visit(WorkerState& ws, const Proj& proj, const RowSet& items,
                       uint32_t items_count, uint32_t branch_pos,
                       bool closed_on_left, Level1Ctx* freeze) {
  (void)branch_pos;  // kept for symmetry with the paper's Depthfirst()
  if (stopped_.load(std::memory_order_relaxed)) return;
  ++ws.stats.nodes_visited;
  if (opt_.deadline.Expired()) {
    stopped_.store(true, std::memory_order_relaxed);
    timed_out_.store(true, std::memory_order_relaxed);
    return;
  }
  if (items_count == 0) return;  // I(X) = ∅: no rules below this node

  PooledVector<uint32_t> cand_lease(&ws.scratch);
  std::vector<uint32_t>& cand = *cand_lease;
  proj.Positions(&cand);
  std::erase_if(cand, [&](uint32_t p) { return ws.in_x[p] != 0; });

  uint32_t rp = 0;  // positive candidate rows (bounds the subtree's support)
  for (uint32_t p : cand) {
    if (IsPos(p)) ++rp;
  }

  // Step 8: threshold updating.
  MaybeRaiseMinsup();
  const Thresh cut = ComputeCut(ws.x_stack, cand);

  // Step 9: loose bounds (no scan needed).
  if (opt_.use_bound_pruning && Hopeless(ws.xp + rp, ws.xn, cut, ws.origin)) {
    ++ws.stats.pruned_bounds;
    return;
  }

  // Step 10: scan TT'|_X — frequencies, then absorb rows occurring in every
  // tuple (they appear in all descendants).
  PooledVector<uint32_t> live_lease(&ws.scratch);
  PooledVector<uint32_t> freq_lease(&ws.scratch);
  PooledVector<uint32_t> absorbed_lease(&ws.scratch);
  std::vector<uint32_t>& live = *live_lease;
  std::vector<uint32_t>& live_freq = *freq_lease;
  std::vector<uint32_t>& absorbed = *absorbed_lease;
  uint32_t mp = 0;
  for (uint32_t p : cand) {
    const uint32_t f = proj.Freq(p, items);
    if (f == items_count) {
      absorbed.push_back(p);
    } else if (f > 0) {
      live.push_back(p);
      live_freq.push_back(f);
      if (IsPos(p)) ++mp;
    }
  }
  for (uint32_t p : absorbed) {
    ws.in_x[p] = 1;
    ws.x_stack.push_back(p);
    IsPos(p) ? ++ws.xp : ++ws.xn;
  }

  // Step 11: tight bounds (mp = candidate consequent rows that can still
  // appear in a descendant antecedent support set).
  const bool pruned =
      opt_.use_bound_pruning &&
      Hopeless(ws.xp + mp, ws.xn, ComputeCut(ws.x_stack, live), ws.origin);
  if (pruned) {
    ++ws.stats.pruned_bounds;
  } else {
    // Step 13: emit the rule group of this node and update covered rows.
    // Only nodes with X == R(I(X)) carry a rule group; when the backward
    // check failed we are in a redundant subtree that emits nothing.
    if (closed_on_left) EmitAt(ws, items, cut);

    // Positive candidates at positions after live[i] — the only rows that
    // can still raise a child subtree's support beyond X.
    PooledVector<uint32_t> suffix_lease(&ws.scratch);
    std::vector<uint32_t>& suffix_pos = *suffix_lease;
    suffix_pos.assign(live.size() + 1, 0);
    for (size_t i = live.size(); i-- > 0;) {
      suffix_pos[i] = suffix_pos[i + 1] + (IsPos(live[i]) ? 1 : 0);
    }

    if (freeze != nullptr) {
      // Expansion pass: snapshot this node instead of recursing — its
      // children become the worker pool's tasks. The stack still holds the
      // absorbed rows, which is exactly the state a task must resume from.
      freeze->p = branch_pos;
      freeze->x_stack = ws.x_stack;
      freeze->xp = ws.xp;
      freeze->xn = ws.xn;
      freeze->items = items;
      freeze->live = live;
      freeze->live_freq = live_freq;
      freeze->suffix_pos = suffix_pos;
      for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
        const uint32_t p = *it;
        IsPos(p) ? --ws.xp : --ws.xn;
        ws.x_stack.pop_back();
        ws.in_x[p] = 0;
      }
      return;
    }

    // Step 14: enumerate children in ORD order. Step 7's backward check
    // runs here, before the child projection is built: a skipped earlier
    // row containing I(X ∪ {p}) means the child duplicates an earlier
    // branch (X' != R(I(X')) there and at every descendant), so nothing in
    // it may be emitted and — when the pruning is enabled — the projection
    // need not even be constructed. Redundancy propagates downward (the
    // earlier row also contains every descendant's smaller I), so in
    // ablation mode each descendant's own check re-detects it.
    for (size_t i = 0;
         i < live.size() && !stopped_.load(std::memory_order_relaxed); ++i) {
      const uint32_t p = live[i];
      if (opt_.use_bound_pruning) {
        // Per-child loose bounds before any per-child work: support in the
        // child subtree is capped by X, the branch row, and the positive
        // candidates ordered after it; the parent's cut is a lower bound on
        // every child's cut, so pruning against it is sound.
        const uint32_t child_sup_ub =
            ws.xp + (IsPos(p) ? 1 : 0) + suffix_pos[i + 1];
        const uint32_t child_min_neg = ws.xn + (IsPos(p) ? 0 : 1);
        if (Hopeless(child_sup_ub, child_min_neg, cut, ws.origin)) {
          ++ws.stats.pruned_bounds;
          continue;
        }
      }
      RowSet child_items = items.IntersectAdaptive(data_.row_bitset(order_[p]));
      bool child_closed = true;
      for (uint32_t q = 0; q < p; ++q) {
        if (!ws.in_x[q] &&
            child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
          child_closed = false;
          break;
        }
      }
      if (!child_closed) {
        ++ws.stats.pruned_backward;
        if (opt_.use_backward_pruning) continue;
      }
      ws.in_x[p] = 1;
      ws.x_stack.push_back(p);
      IsPos(p) ? ++ws.xp : ++ws.xn;
      Visit(ws, proj.Child(p, live), child_items, live_freq[i], p,
            child_closed);
      IsPos(p) ? --ws.xp : --ws.xn;
      ws.x_stack.pop_back();
      ws.in_x[p] = 0;
    }
  }

  for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
    const uint32_t p = *it;
    IsPos(p) ? --ws.xp : --ws.xn;
    ws.x_stack.pop_back();
    ws.in_x[p] = 0;
  }
}

void TopkSearch::SwitchCtx(WorkerState& ws, const Level1Ctx& ctx) const {
  for (uint32_t p : ws.x_stack) ws.in_x[p] = 0;
  ws.x_stack = ctx.x_stack;
  for (uint32_t p : ws.x_stack) ws.in_x[p] = 1;
  ws.xp = ctx.xp;
  ws.xn = ctx.xn;
}

template <typename Proj>
void TopkSearch::RunTask(WorkerState& ws, const Proj& proj1,
                         SubtreeTask& task) {
  const Level1Ctx& ctx = level1_[task.ctx_index];
  const uint32_t p = ctx.live[task.child];
  ws.origin = task.origin;
  ws.sink = &task.emissions;
  if (opt_.use_bound_pruning) {
    // The serial search checks each child against its parent's cut before
    // building its projection; here the check runs when the task is
    // claimed, against the freshest thresholds (any achieved threshold is
    // a sound pruning bound).
    const Thresh cut = ComputeCut(ws.x_stack, ctx.live);
    const uint32_t child_sup_ub =
        ws.xp + (IsPos(p) ? 1 : 0) + ctx.suffix_pos[task.child + 1];
    const uint32_t child_min_neg = ws.xn + (IsPos(p) ? 0 : 1);
    if (Hopeless(child_sup_ub, child_min_neg, cut, ws.origin)) {
      ++ws.stats.pruned_bounds;
      return;
    }
  }
  RowSet child_items = ctx.items.IntersectAdaptive(data_.row_bitset(order_[p]));
  bool child_closed = true;
  for (uint32_t q = 0; q < p; ++q) {
    if (!ws.in_x[q] && child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
      child_closed = false;
      break;
    }
  }
  if (!child_closed) {
    ++ws.stats.pruned_backward;
    if (opt_.use_backward_pruning) return;
  }
  ws.in_x[p] = 1;
  ws.x_stack.push_back(p);
  IsPos(p) ? ++ws.xp : ++ws.xn;
  Visit(ws, proj1.Child(p, ctx.live), child_items, ctx.live_freq[task.child],
        p, child_closed);
  IsPos(p) ? --ws.xp : --ws.xn;
  ws.x_stack.pop_back();
  ws.in_x[p] = 0;
}

template <typename Proj>
void TopkSearch::MineRoot(const Proj& root, const RowSet& items,
                          uint32_t items_count) {
  WorkerState root_ws;
  root_ws.in_x.assign(data_.num_rows(), 0);
  root_ws.sink = &root_emissions_;
  root_ws.origin = 1;  // root emissions replay right after the seeds

  ++root_ws.stats.nodes_visited;
  bool fan_out = false;
  std::vector<uint32_t> root_freq;
  std::vector<uint32_t> root_suffix;
  if (opt_.deadline.Expired()) {
    timed_out_.store(true, std::memory_order_relaxed);
  } else if (items_count > 0) {
    std::vector<uint32_t> cand;
    root.Positions(&cand);

    uint32_t rp = 0;
    for (uint32_t p : cand) {
      if (IsPos(p)) ++rp;
    }

    MaybeRaiseMinsup();
    const Thresh cut = ComputeCut(root_ws.x_stack, cand);

    if (opt_.use_bound_pruning && Hopeless(rp, 0, cut, root_ws.origin)) {
      ++root_ws.stats.pruned_bounds;
    } else {
      std::vector<uint32_t> live;
      std::vector<uint32_t> live_freq;
      std::vector<uint32_t> absorbed;
      uint32_t mp = 0;
      for (uint32_t p : cand) {
        const uint32_t f = root.Freq(p, items);
        if (f == items_count) {
          absorbed.push_back(p);
        } else if (f > 0) {
          live.push_back(p);
          live_freq.push_back(f);
          if (IsPos(p)) ++mp;
        }
      }
      for (uint32_t p : absorbed) {
        root_ws.in_x[p] = 1;
        root_ws.x_stack.push_back(p);
        IsPos(p) ? ++root_ws.xp : ++root_ws.xn;
      }

      const bool pruned =
          opt_.use_bound_pruning &&
          Hopeless(root_ws.xp + mp, root_ws.xn,
                   ComputeCut(root_ws.x_stack, live), root_ws.origin);
      if (pruned) {
        ++root_ws.stats.pruned_bounds;
      } else {
        EmitAt(root_ws, items, cut);

        root_suffix.assign(live.size() + 1, 0);
        for (size_t i = live.size(); i-- > 0;) {
          root_suffix[i] = root_suffix[i + 1] + (IsPos(live[i]) ? 1 : 0);
        }
        root_live_ = std::move(live);
        root_freq = std::move(live_freq);
        fan_out = true;
      }
    }
  }

  if (!fan_out) {
    MergeStats(root_ws.stats);
    return;
  }

  // Single-threaded: mine each first-level subtree inline, in canonical
  // order, recording each subtree's emissions as one contiguous stream
  // (DFS order == replay order, so each stream is a ready-made replay
  // segment). This is the paper's serial search with zero partitioning
  // overhead; the expansion pass below exists only to feed a real worker
  // pool. The two paths may prune differently — the partition shifts which
  // origins emissions carry — but both only ever suppress groups that can
  // never enter a final list, so the replayed results are identical (the
  // determinism tests compare exactly this).
  if (num_workers_ <= 1) {
    auto&& view = root.WithArena(&root_ws.tree_arena);
    for (size_t i = 0; i < root_live_.size(); ++i) {
      if (stopped_.load(std::memory_order_relaxed)) break;
      if (opt_.deadline.Expired()) {
        stopped_.store(true, std::memory_order_relaxed);
        timed_out_.store(true, std::memory_order_relaxed);
        break;
      }
      const uint32_t p = root_live_[i];
      root_ws.origin =
          std::min(static_cast<uint32_t>(i) + 2, kOriginMax);
      if (opt_.use_bound_pruning) {
        const Thresh cut = ComputeCut(root_ws.x_stack, root_live_);
        const uint32_t child_sup_ub =
            root_ws.xp + (IsPos(p) ? 1 : 0) + root_suffix[i + 1];
        const uint32_t child_min_neg = root_ws.xn + (IsPos(p) ? 0 : 1);
        if (Hopeless(child_sup_ub, child_min_neg, cut, root_ws.origin)) {
          ++root_ws.stats.pruned_bounds;
          continue;
        }
      }
      RowSet child_items = items.IntersectAdaptive(data_.row_bitset(order_[p]));
      bool child_closed = true;
      for (uint32_t q = 0; q < p; ++q) {
        if (!root_ws.in_x[q] &&
            child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
          child_closed = false;
          break;
        }
      }
      if (!child_closed) {
        ++root_ws.stats.pruned_backward;
        if (opt_.use_backward_pruning) continue;
      }
      Level1Ctx ctx;  // only node_emissions used: the whole subtree's stream
      root_ws.sink = &ctx.node_emissions;
      root_ws.in_x[p] = 1;
      root_ws.x_stack.push_back(p);
      IsPos(p) ? ++root_ws.xp : ++root_ws.xn;
      Visit(root_ws, view.Child(p, root_live_), child_items, root_freq[i], p,
            child_closed);
      IsPos(p) ? --root_ws.xp : --root_ws.xn;
      root_ws.x_stack.pop_back();
      root_ws.in_x[p] = 0;
      if (!ctx.node_emissions.empty()) level1_.push_back(std::move(ctx));
    }
    root_ws.sink = &root_emissions_;
    MergeStats(root_ws.stats);
    return;
  }

  // Serial expansion pass: process every live first-level node now (each
  // is a single enumeration node — one projection scan plus EmitAt), and
  // freeze its children as the worker pool's task list. This is ~1% of the
  // search, run serially, but it buys the two properties the parallel run
  // lives on: the second-level partition splits the heavily skewed first
  // subtree (whose first-level task would otherwise BE the critical path),
  // and every shallow high-support group reaches the shared thresholds
  // before any worker starts, which is most of the pruning power a serial
  // search would have accumulated by the time it reaches the deep
  // subtrees. Expansion also fixes the canonical origin numbering: node i,
  // then its children left to right, then node i+1 — exactly the replay
  // (= serial DFS) order.
  level1_.reserve(root_live_.size());
  uint32_t next_origin = 2;  // 0 = seeds, 1 = root
  for (size_t i = 0; i < root_live_.size(); ++i) {
    if (stopped_.load(std::memory_order_relaxed)) break;
    if (opt_.deadline.Expired()) {
      stopped_.store(true, std::memory_order_relaxed);
      timed_out_.store(true, std::memory_order_relaxed);
      break;
    }
    const uint32_t p = root_live_[i];
    root_ws.origin = std::min(next_origin, kOriginMax);
    if (opt_.use_bound_pruning) {
      const Thresh cut = ComputeCut(root_ws.x_stack, root_live_);
      const uint32_t child_sup_ub =
          root_ws.xp + (IsPos(p) ? 1 : 0) + root_suffix[i + 1];
      const uint32_t child_min_neg = root_ws.xn + (IsPos(p) ? 0 : 1);
      if (Hopeless(child_sup_ub, child_min_neg, cut, root_ws.origin)) {
        ++root_ws.stats.pruned_bounds;
        continue;
      }
    }
    RowSet child_items = items.IntersectAdaptive(data_.row_bitset(order_[p]));
    bool child_closed = true;
    for (uint32_t q = 0; q < p; ++q) {
      if (!root_ws.in_x[q] &&
          child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
        child_closed = false;
        break;
      }
    }
    if (!child_closed) {
      ++root_ws.stats.pruned_backward;
      if (opt_.use_backward_pruning) continue;
    }
    Level1Ctx ctx;
    root_ws.sink = &ctx.node_emissions;
    root_ws.in_x[p] = 1;
    root_ws.x_stack.push_back(p);
    IsPos(p) ? ++root_ws.xp : ++root_ws.xn;
    Visit(root_ws, root.Child(p, root_live_), child_items, root_freq[i], p,
          child_closed, &ctx);
    IsPos(p) ? --root_ws.xp : --root_ws.xn;
    root_ws.x_stack.pop_back();
    root_ws.in_x[p] = 0;
    ++next_origin;  // the node's own slot (consumed even if it emitted nothing)
    if (ctx.x_stack.empty()) continue;  // pruned inside Visit: no children
    const uint32_t ctx_index = static_cast<uint32_t>(level1_.size());
    for (uint32_t j = 0; j < ctx.live.size(); ++j) {
      tasks_.push_back(
          SubtreeTask{ctx_index, j, std::min(next_origin, kOriginMax), {}});
      ++next_origin;
    }
    if (!ctx.node_emissions.empty() || !ctx.live.empty()) {
      level1_.push_back(std::move(ctx));
    }
  }
  root_ws.sink = &root_emissions_;

  if (tasks_.empty()) {
    MergeStats(root_ws.stats);
    return;
  }

  // Workers claim tasks through an atomic cursor in canonical order (the
  // earliest subtrees are the largest, so the big tasks start first and
  // the tail of small ones balances the load). Each worker caches the
  // first-level projection of the task's parent node — consecutive tasks
  // usually share it.
  std::atomic<size_t> next{0};

  auto drain = [&](WorkerState& ws) {
    auto&& view = root.WithArena(&ws.tree_arena);
    using ChildProj = std::decay_t<decltype(view.Child(0u, root_live_))>;
    std::optional<ChildProj> proj1;
    uint32_t cached_ctx = UINT32_MAX;
    while (!stopped_.load(std::memory_order_relaxed)) {
      const size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= tasks_.size()) break;
      if (opt_.deadline.Expired()) {
        stopped_.store(true, std::memory_order_relaxed);
        timed_out_.store(true, std::memory_order_relaxed);
        break;
      }
      SubtreeTask& task = tasks_[index];
      if (cached_ctx != task.ctx_index) {
        const Level1Ctx& ctx = level1_[task.ctx_index];
        SwitchCtx(ws, ctx);
        proj1.reset();  // release the old tree to the arena first
        proj1.emplace(view.Child(ctx.p, root_live_));
        cached_ctx = task.ctx_index;
      }
      RunTask(ws, *proj1, task);
    }
  };

  const uint32_t workers = std::min<uint32_t>(
      num_workers_, static_cast<uint32_t>(std::max<size_t>(
                        1, tasks_.size())));
  if (workers <= 1) {
    drain(root_ws);
    MergeStats(root_ws.stats);
    return;
  }

  std::vector<std::unique_ptr<WorkerState>> pool_states;
  pool_states.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    auto ws = std::make_unique<WorkerState>();
    ws->x_stack = root_ws.x_stack;
    ws->in_x = root_ws.in_x;
    ws->xp = root_ws.xp;
    ws->xn = root_ws.xn;
    pool_states.push_back(std::move(ws));
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back([&drain, &pool_states, t] { drain(*pool_states[t]); });
  }
  for (std::thread& t : pool) t.join();

  MergeStats(root_ws.stats);
  for (const auto& ws : pool_states) MergeStats(ws->stats);
}

uint32_t TopkSearch::FinalEffectiveMinsup() const {
  // Deterministic recomputation of the paper's dynamic minsup raise
  // (§4.1.1, second optimization) from the final merged lists: the raises
  // applied during the search depend on thread timing and are only ever
  // weaker than this value.
  uint32_t effective = initial_minsup_;
  if (!opt_.dynamic_min_support || positive_positions_.empty()) {
    return effective;
  }
  uint32_t lowest = UINT32_MAX;
  for (uint32_t pos : positive_positions_) {
    const auto& list = lists_[pos];
    if (list.size() < opt_.k) return effective;
    const RuleGroup& kth = list.back()->group;
    if (kth.support == 0 || kth.support != kth.antecedent_support) {
      return effective;
    }
    lowest = std::min(lowest, kth.support);
  }
  if (lowest != UINT32_MAX) effective = std::max(effective, lowest + 1);
  return effective;
}

void TopkSearch::Finalize(const Bitset& frequent_items, TopkResult* result) {
  result->per_row.assign(data_.num_rows(), {});
  for (uint32_t pos = 0; pos < pos_positive_.size(); ++pos) {
    if (!IsPos(pos)) continue;
    auto& out = result->per_row[order_[pos]];
    for (const HandlePtr& handle : lists_[pos]) {
      if (handle->provisional) {
        // Close the seeded single item: its upper bound was never emitted
        // (the emitting node was pruned as strictly-dominated).
        Bitset closure = data_.RowSupportSet(handle->group.row_support);
        closure.IntersectWith(frequent_items);
        handle->group.antecedent = std::move(closure);
        handle->provisional = false;
      }
      out.push_back(RuleGroupPtr(handle, &handle->group));
    }
  }
}

TopkResult TopkSearch::Run() {
  Stopwatch timer;
  TOPKRGS_CHECK(opt_.k >= 1, "k must be >= 1");
  initial_minsup_ = std::max<uint32_t>(1, opt_.min_support);

  const Bitset frequent = FrequentItems(data_, consequent_, initial_minsup_);
  switch (opt_.row_order) {
    case TopkMinerOptions::RowOrder::kClassDominantWeighted:
      order_ = ClassDominantOrder(data_, consequent_, frequent);
      break;
    case TopkMinerOptions::RowOrder::kClassDominant:
      // Empty weight set keeps rows in original order within each class.
      order_.clear();
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) == consequent_) order_.push_back(r);
      }
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) != consequent_) order_.push_back(r);
      }
      break;
    case TopkMinerOptions::RowOrder::kNatural:
      order_.resize(data_.num_rows());
      for (RowId r = 0; r < data_.num_rows(); ++r) order_[r] = r;
      break;
  }
  position_of_.assign(data_.num_rows(), 0);
  pos_positive_.assign(data_.num_rows(), 0);
  positive_positions_.clear();
  for (uint32_t pos = 0; pos < order_.size(); ++pos) {
    position_of_[order_[pos]] = pos;
    pos_positive_[pos] = data_.label(order_[pos]) == consequent_ ? 1 : 0;
    if (pos_positive_[pos] != 0) positive_positions_.push_back(pos);
  }
  np_ = CountClassRows(data_, consequent_);
  lists_.assign(data_.num_rows(), {});
  shared_ = std::make_unique<SharedTopk>(data_.num_rows(), opt_.k,
                                         initial_minsup_);

  uint32_t threads = opt_.RequestedThreads();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_workers_ = threads;

  if (opt_.seed_single_items) SeedSingleItems(frequent);

  const uint32_t items_count = static_cast<uint32_t>(frequent.Count());
  if (items_count > 0 && np_ > 0) {
    // The root item set is (near-)dense by construction; descendants
    // re-decide their representation per node as I(X) shrinks.
    const RowSet root_items = RowSet::FromBitset(frequent);
    switch (opt_.backend) {
      case TopkMinerOptions::Backend::kPrefixTree: {
        TreeProjection root(PrefixTree::BuildRoot(data_, order_, frequent));
        MineRoot(root, root_items, items_count);
        break;
      }
      case TopkMinerOptions::Backend::kBitset: {
        BitsetProjection root(&data_, &order_);
        MineRoot(root, root_items, items_count);
        break;
      }
      case TopkMinerOptions::Backend::kVector: {
        VectorProjection root(&data_, &order_, frequent);
        MineRoot(root, root_items, items_count);
        break;
      }
    }
  }

  // Deterministic merge: replay every recorded emission in canonical
  // discovery order — seeds (inserted during setup), the root node's
  // groups, then each first-level node's groups followed by its
  // second-level subtrees in enumeration order. This is exactly the serial
  // DFS order, so the merged lists match a serial search bit for bit. The
  // final lists depend only on WHAT was recorded, never on when;
  // pruning-timing differences across thread counts only vary the set of
  // recorded never-winner emissions, which the replay rejects anyway.
  ReplayEmissions(root_emissions_);
  size_t ti = 0;
  for (size_t ci = 0; ci < level1_.size(); ++ci) {
    ReplayEmissions(level1_[ci].node_emissions);
    while (ti < tasks_.size() && tasks_[ti].ctx_index == ci) {
      ReplayEmissions(tasks_[ti].emissions);
      ++ti;
    }
  }

  TopkResult result;
  Finalize(frequent, &result);
  result.effective_min_support = FinalEffectiveMinsup();
  stats_.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats_.seconds = timer.ElapsedSeconds();
  result.stats = stats_;
  result.ValidateInvariants(opt_.k);
  return result;
}

}  // namespace

bool TopkResult::CheckInvariants(uint32_t k, std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  for (size_t row = 0; row < per_row.size(); ++row) {
    const auto& list = per_row[row];
    if (list.size() > k) {
      return fail("row " + std::to_string(row) + " holds " +
                  std::to_string(list.size()) + " groups, more than k = " +
                  std::to_string(k));
    }
    for (size_t i = 0; i < list.size(); ++i) {
      const RuleGroupPtr& group = list[i];
      if (group == nullptr) {
        return fail("row " + std::to_string(row) + " holds a null group");
      }
      std::string group_error;
      if (!group->CheckInvariants(&group_error)) {
        return fail("row " + std::to_string(row) + " rank " +
                    std::to_string(i + 1) + ": " + group_error);
      }
      if (row < group->row_support.size() && !group->row_support.Test(row)) {
        return fail("row " + std::to_string(row) + " rank " +
                    std::to_string(i + 1) + " group does not cover the row");
      }
      if (i > 0 &&
          CompareSignificance(list[i - 1]->support,
                              list[i - 1]->antecedent_support, group->support,
                              group->antecedent_support) < 0) {
        return fail("row " + std::to_string(row) +
                    " list not sorted by significance at rank " +
                    std::to_string(i + 1));
      }
      for (size_t j = 0; j < i; ++j) {
        if (list[j] == group) {
          return fail("row " + std::to_string(row) +
                      " lists the same group twice (ranks " +
                      std::to_string(j + 1) + " and " + std::to_string(i + 1) +
                      ")");
        }
      }
    }
  }
  return true;
}

void TopkResult::ValidateInvariants(uint32_t k) const {
#if TOPKRGS_DCHECK_IS_ON()
  std::string error;
  TKRGS_DCHECK(CheckInvariants(k, &error), error.c_str());
#else
  (void)k;
#endif
}

namespace {

/// Collapses `candidates` (scan order) to the distinct rowsets, keeping
/// the first occurrence of each and preserving scan order.
///
/// The hash only buckets the equality probes — it never decides order:
/// output order is the candidates' own order, the membership index is an
/// ORDERED map (no hash-bucket iteration anywhere), and within a bucket
/// the candidate indices are probed in sorted (ascending, i.e. scan)
/// order. Salting the hash therefore reshuffles buckets without moving a
/// single output element — pinned by the DistinctGroupsHashSaltInvariant
/// regression test, which is what licenses the hash in this
/// deterministic zone at all.
std::vector<RuleGroupPtr> DedupByRowSupport(
    const std::vector<const RuleGroupPtr*>& candidates, uint64_t hash_salt) {
  std::vector<RuleGroupPtr> out;
  std::map<uint64_t, std::vector<size_t>> seen;  // salted hash -> out indices
  for (const RuleGroupPtr* gp : candidates) {
    const RuleGroupPtr& g = *gp;
    // SplitMix64 finalizer over (rowset hash ^ salt): any salt yields a
    // usable bucketing function, so tests can sweep several.
    uint64_t h = g->row_support.Hash() ^ hash_salt;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    std::vector<size_t>& bucket = seen[h];
    TKRGS_DCHECK_SORTED(bucket.begin(), bucket.end(),
                        [](size_t a, size_t b) { return a < b; },
                        "dedup probe order must be scan order, never bucket "
                        "layout");
    bool dup = false;
    for (size_t idx : bucket) {
      if (out[idx]->row_support == g->row_support) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(out.size());  // appended ascending: stays sorted
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace

std::vector<RuleGroupPtr> TopkResult::DistinctGroups(uint64_t hash_salt) const {
  std::vector<const RuleGroupPtr*> candidates;
  for (const auto& list : per_row) {
    for (const RuleGroupPtr& g : list) candidates.push_back(&g);
  }
  return DedupByRowSupport(candidates, hash_salt);
}

std::vector<RuleGroupPtr> TopkResult::GroupsAtRank(uint32_t j,
                                                   uint64_t hash_salt) const {
  TOPKRGS_CHECK(j >= 1, "rank is 1-based");
  std::vector<const RuleGroupPtr*> candidates;
  for (const auto& list : per_row) {
    if (list.size() < j) continue;
    candidates.push_back(&list[j - 1]);
  }
  return DedupByRowSupport(candidates, hash_salt);
}

TopkResult MineTopkRGS(const DiscreteDataset& data, ClassLabel consequent,
                       const TopkMinerOptions& options) {
  TopkSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
