#include "mine/topk_miner.h"

#include <algorithm>
#include <unordered_map>

#include "mine/projection.h"
#include "util/status.h"

namespace topkrgs {

namespace {

/// A rule group shared between the per-row lists of every row it covers.
/// Seeded single-item groups start `provisional`: their antecedent is the
/// single item, not yet the closure (upper bound); they are upgraded in
/// place when the real upper bound is emitted, or closed explicitly in the
/// finalization pass.
struct GroupHandle {
  RuleGroup group;
  bool provisional = false;
};
using HandlePtr = std::shared_ptr<GroupHandle>;

/// Significance threshold (sup, antecedent_sup); (0, 0) is the dummy with
/// confidence 0 and support 0.
struct Thresh {
  uint32_t sup = 0;
  uint32_t asup = 0;
};

class TopkSearch {
 public:
  TopkSearch(const DiscreteDataset& data, ClassLabel consequent,
             const TopkMinerOptions& options)
      : data_(data), consequent_(consequent), opt_(options) {}

  TopkResult Run();

 private:
  template <typename Proj>
  void Visit(const Proj& proj, const Bitset& items, uint32_t items_count,
             uint32_t branch_pos, bool closed_on_left);

  void SeedSingleItems(const Bitset& frequent_items);
  void MaybeRaiseMinsup();
  Thresh ComputeCut(const std::vector<uint32_t>& candidates) const;
  bool Hopeless(uint32_t best_sup, uint32_t min_neg, const Thresh& cut) const;
  void EmitAt(const Bitset& items, const Thresh& cut);
  void TryInsert(uint32_t pos, const HandlePtr& handle);
  void Finalize(const Bitset& frequent_items, TopkResult* result);

  bool IsPos(uint32_t pos) const { return pos_positive_[pos] != 0; }

  Thresh KthOf(uint32_t pos) const {
    const auto& list = lists_[pos];
    if (list.size() < opt_.k) return Thresh{0, 0};
    const RuleGroup& g = list.back()->group;
    return Thresh{g.support, g.antecedent_support};
  }

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const TopkMinerOptions& opt_;

  std::vector<RowId> order_;           // position -> original row id
  std::vector<uint32_t> position_of_;  // original row id -> position
  std::vector<uint8_t> pos_positive_;  // position -> is consequent-class
  uint32_t np_ = 0;                    // number of consequent-class rows

  // Per positive position: top-k list, most significant first.
  std::vector<std::vector<HandlePtr>> lists_;

  // DFS state for the current enumeration node X.
  std::vector<uint32_t> x_stack_;
  std::vector<bool> in_x_;
  uint32_t xp_ = 0;
  uint32_t xn_ = 0;

  uint32_t minsup_dyn_ = 1;
  bool stopped_ = false;
  MinerStats stats_;
};

void TopkSearch::TryInsert(uint32_t pos, const HandlePtr& handle) {
  auto& list = lists_[pos];
  const RuleGroup& g = handle->group;

  // Dedup by antecedent support set; upgrades a provisional entry in place
  // when the matching upper bound arrives (§4.1.1, first optimization).
  for (auto& existing : list) {
    RuleGroup& e = existing->group;
    if (e.support == g.support && e.antecedent_support == g.antecedent_support &&
        e.row_support == g.row_support) {
      if (existing->provisional && !handle->provisional) {
        e.antecedent = g.antecedent;
        existing->provisional = false;
      }
      return;
    }
  }

  if (list.size() >= opt_.k) {
    const RuleGroup& kth = list.back()->group;
    if (CompareSignificance(g.support, g.antecedent_support, kth.support,
                            kth.antecedent_support) <= 0) {
      return;  // not more significant than the current k-th entry
    }
  }
  // Insert before the first strictly-less-significant entry (stable for
  // ties: earlier-discovered groups stay first, matching CBA's "<" order).
  auto it = std::find_if(list.begin(), list.end(), [&](const HandlePtr& e) {
    return CompareSignificance(g.support, g.antecedent_support,
                               e->group.support,
                               e->group.antecedent_support) > 0;
  });
  list.insert(it, handle);
  if (list.size() > opt_.k) list.pop_back();
}

void TopkSearch::SeedSingleItems(const Bitset& frequent_items) {
  const Bitset class_rows = data_.ClassRowset(consequent_);
  frequent_items.ForEach([&](size_t item_index) {
    const ItemId item = static_cast<ItemId>(item_index);
    const Bitset& rows = data_.item_rows(item);
    auto handle = std::make_shared<GroupHandle>();
    handle->provisional = true;
    handle->group.antecedent = Bitset(data_.num_items());
    handle->group.antecedent.Set(item);
    handle->group.row_support = rows;
    handle->group.consequent = consequent_;
    handle->group.antecedent_support = static_cast<uint32_t>(rows.Count());
    handle->group.support =
        static_cast<uint32_t>(rows.IntersectCount(class_rows));
    rows.ForEach([&](size_t row) {
      if (data_.label(static_cast<RowId>(row)) != consequent_) return;
      TryInsert(position_of_[row], handle);
    });
  });
}

void TopkSearch::MaybeRaiseMinsup() {
  if (!opt_.dynamic_min_support) return;
  uint32_t lowest = UINT32_MAX;
  for (uint32_t pos = 0; pos < pos_positive_.size(); ++pos) {
    if (!IsPos(pos)) continue;
    const auto& list = lists_[pos];
    if (list.size() < opt_.k) return;
    const RuleGroup& kth = list.back()->group;
    if (kth.support == 0 || kth.support != kth.antecedent_support) {
      return;  // some k-th entry is below 100% confidence
    }
    lowest = std::min(lowest, kth.support);
  }
  // Every row already holds k groups of 100% confidence with support >=
  // lowest; only a 100%-confidence group with support > lowest can still
  // displace anything.
  if (lowest != UINT32_MAX && lowest + 1 > minsup_dyn_) {
    minsup_dyn_ = lowest + 1;
  }
}

Thresh TopkSearch::ComputeCut(const std::vector<uint32_t>& candidates) const {
  // Equation 1/2: the weakest k-th entry over the rows the subtree can still
  // cover (Lemma 3.2: Xp ∪ Rp).
  bool first = true;
  Thresh cut{0, 0};
  auto consider = [&](uint32_t pos) {
    const Thresh t = KthOf(pos);
    if (first ||
        CompareSignificance(t.sup, t.asup, cut.sup, cut.asup) < 0) {
      cut = t;
      first = false;
    }
  };
  for (uint32_t pos : x_stack_) {
    if (IsPos(pos)) consider(pos);
  }
  for (uint32_t pos : candidates) {
    if (IsPos(pos)) consider(pos);
  }
  if (first) cut = Thresh{UINT32_MAX, UINT32_MAX};  // no coverable row: prune all
  return cut;
}

bool TopkSearch::Hopeless(uint32_t best_sup, uint32_t min_neg,
                          const Thresh& cut) const {
  if (best_sup < minsup_dyn_) return true;
  if (!opt_.use_topk_pruning) return false;
  // Best achievable significance in the subtree: support best_sup with
  // confidence best_sup / (best_sup + min_neg).
  return CompareSignificance(best_sup, best_sup + min_neg, cut.sup,
                             cut.asup) <= 0;
}

void TopkSearch::EmitAt(const Bitset& items, const Thresh& cut) {
  if (xp_ < minsup_dyn_) return;
  if (opt_.use_topk_pruning &&
      CompareSignificance(xp_, xp_ + xn_, cut.sup, cut.asup) <= 0) {
    // Cannot beat any row's k-th entry (cut is the minimum over them); a
    // provisional twin, if any, is closed in the finalization pass.
    return;
  }
  auto handle = std::make_shared<GroupHandle>();
  handle->group.antecedent = items;
  handle->group.consequent = consequent_;
  handle->group.support = xp_;
  handle->group.antecedent_support = xp_ + xn_;
  Bitset rows(data_.num_rows());
  for (uint32_t pos : x_stack_) rows.Set(order_[pos]);
  handle->group.row_support = std::move(rows);
  ++stats_.groups_emitted;
  for (uint32_t pos : x_stack_) {
    if (IsPos(pos)) TryInsert(pos, handle);
  }
}

template <typename Proj>
void TopkSearch::Visit(const Proj& proj, const Bitset& items,
                       uint32_t items_count, uint32_t branch_pos,
                       bool closed_on_left) {
  (void)branch_pos;  // kept for symmetry with the paper's Depthfirst()
  if (stopped_) return;
  ++stats_.nodes_visited;
  if (opt_.deadline.Expired()) {
    stopped_ = true;
    stats_.timed_out = true;
    return;
  }
  if (items_count == 0) return;  // I(X) = ∅: no rules below this node

  std::vector<uint32_t> cand;
  proj.Positions(&cand);
  std::erase_if(cand, [&](uint32_t p) { return in_x_[p]; });

  uint32_t rp = 0;
  uint32_t rn = 0;
  for (uint32_t p : cand) {
    IsPos(p) ? ++rp : ++rn;
  }

  // Step 8: threshold updating.
  MaybeRaiseMinsup();
  const Thresh cut = ComputeCut(cand);

  // Step 9: loose bounds (no scan needed).
  if (opt_.use_bound_pruning && Hopeless(xp_ + rp, xn_, cut)) {
    ++stats_.pruned_bounds;
    return;
  }

  // Step 10: scan TT'|_X — frequencies, then absorb rows occurring in every
  // tuple (they appear in all descendants).
  std::vector<uint32_t> live;
  std::vector<uint32_t> live_freq;
  std::vector<uint32_t> absorbed;
  uint32_t mp = 0;
  for (uint32_t p : cand) {
    const uint32_t f = proj.Freq(p, items);
    if (f == items_count) {
      absorbed.push_back(p);
    } else if (f > 0) {
      live.push_back(p);
      live_freq.push_back(f);
      if (IsPos(p)) ++mp;
    }
  }
  for (uint32_t p : absorbed) {
    in_x_[p] = true;
    x_stack_.push_back(p);
    IsPos(p) ? ++xp_ : ++xn_;
  }

  // Step 11: tight bounds (mp = candidate consequent rows that can still
  // appear in a descendant antecedent support set).
  const bool pruned =
      opt_.use_bound_pruning && Hopeless(xp_ + mp, xn_, ComputeCut(live));
  if (pruned) {
    ++stats_.pruned_bounds;
  } else {
    // Step 13: emit the rule group of this node and update covered rows.
    // Only nodes with X == R(I(X)) carry a rule group; when the backward
    // check failed we are in a redundant subtree that emits nothing.
    if (closed_on_left) EmitAt(items, cut);

    // Positive candidates at positions after live[i] — the only rows that
    // can still raise a child subtree's support beyond X.
    std::vector<uint32_t> suffix_pos(live.size() + 1, 0);
    for (size_t i = live.size(); i-- > 0;) {
      suffix_pos[i] = suffix_pos[i + 1] + (IsPos(live[i]) ? 1 : 0);
    }

    // Step 14: enumerate children in ORD order. Step 7's backward check
    // runs here, before the child projection is built: a skipped earlier
    // row containing I(X ∪ {p}) means the child duplicates an earlier
    // branch (X' != R(I(X')) there and at every descendant), so nothing in
    // it may be emitted and — when the pruning is enabled — the projection
    // need not even be constructed. Redundancy propagates downward (the
    // earlier row also contains every descendant's smaller I), so in
    // ablation mode each descendant's own check re-detects it.
    for (size_t i = 0; i < live.size() && !stopped_; ++i) {
      const uint32_t p = live[i];
      if (opt_.use_bound_pruning) {
        // Per-child loose bounds before any per-child work: support in the
        // child subtree is capped by X, the branch row, and the positive
        // candidates ordered after it; the parent's cut is a lower bound on
        // every child's cut, so pruning against it is sound.
        const uint32_t child_sup_ub =
            xp_ + (IsPos(p) ? 1 : 0) + suffix_pos[i + 1];
        const uint32_t child_min_neg = xn_ + (IsPos(p) ? 0 : 1);
        if (Hopeless(child_sup_ub, child_min_neg, cut)) {
          ++stats_.pruned_bounds;
          continue;
        }
      }
      Bitset child_items = Intersect(items, data_.row_bitset(order_[p]));
      bool child_closed = true;
      for (uint32_t q = 0; q < p; ++q) {
        if (!in_x_[q] && child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
          child_closed = false;
          break;
        }
      }
      if (!child_closed) {
        ++stats_.pruned_backward;
        if (opt_.use_backward_pruning) continue;
      }
      in_x_[p] = true;
      x_stack_.push_back(p);
      IsPos(p) ? ++xp_ : ++xn_;
      Visit(proj.Child(p, live), child_items, live_freq[i], p, child_closed);
      IsPos(p) ? --xp_ : --xn_;
      x_stack_.pop_back();
      in_x_[p] = false;
    }
  }

  for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
    const uint32_t p = *it;
    IsPos(p) ? --xp_ : --xn_;
    x_stack_.pop_back();
    in_x_[p] = false;
  }
}

void TopkSearch::Finalize(const Bitset& frequent_items, TopkResult* result) {
  result->per_row.assign(data_.num_rows(), {});
  for (uint32_t pos = 0; pos < pos_positive_.size(); ++pos) {
    if (!IsPos(pos)) continue;
    auto& out = result->per_row[order_[pos]];
    for (const HandlePtr& handle : lists_[pos]) {
      if (handle->provisional) {
        // Close the seeded single item: its upper bound was never emitted
        // (the emitting node was pruned as exactly-equal in significance).
        Bitset closure = data_.RowSupportSet(handle->group.row_support);
        closure.IntersectWith(frequent_items);
        handle->group.antecedent = std::move(closure);
        handle->provisional = false;
      }
      out.push_back(RuleGroupPtr(handle, &handle->group));
    }
  }
}

TopkResult TopkSearch::Run() {
  Stopwatch timer;
  TOPKRGS_CHECK(opt_.k >= 1, "k must be >= 1");
  minsup_dyn_ = std::max<uint32_t>(1, opt_.min_support);

  const Bitset frequent = FrequentItems(data_, consequent_, minsup_dyn_);
  switch (opt_.row_order) {
    case TopkMinerOptions::RowOrder::kClassDominantWeighted:
      order_ = ClassDominantOrder(data_, consequent_, frequent);
      break;
    case TopkMinerOptions::RowOrder::kClassDominant:
      // Empty weight set keeps rows in original order within each class.
      order_.clear();
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) == consequent_) order_.push_back(r);
      }
      for (RowId r = 0; r < data_.num_rows(); ++r) {
        if (data_.label(r) != consequent_) order_.push_back(r);
      }
      break;
    case TopkMinerOptions::RowOrder::kNatural:
      order_.resize(data_.num_rows());
      for (RowId r = 0; r < data_.num_rows(); ++r) order_[r] = r;
      break;
  }
  position_of_.assign(data_.num_rows(), 0);
  pos_positive_.assign(data_.num_rows(), 0);
  for (uint32_t pos = 0; pos < order_.size(); ++pos) {
    position_of_[order_[pos]] = pos;
    pos_positive_[pos] = data_.label(order_[pos]) == consequent_ ? 1 : 0;
  }
  np_ = CountClassRows(data_, consequent_);
  lists_.assign(data_.num_rows(), {});
  in_x_.assign(data_.num_rows(), false);

  if (opt_.seed_single_items) SeedSingleItems(frequent);

  const uint32_t items_count = static_cast<uint32_t>(frequent.Count());
  if (items_count > 0 && np_ > 0) {
    switch (opt_.backend) {
      case TopkMinerOptions::Backend::kPrefixTree: {
        TreeProjection root(PrefixTree::BuildRoot(data_, order_, frequent));
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
      case TopkMinerOptions::Backend::kBitset: {
        BitsetProjection root(&data_, &order_);
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
      case TopkMinerOptions::Backend::kVector: {
        VectorProjection root(&data_, &order_, frequent);
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
    }
  }

  TopkResult result;
  Finalize(frequent, &result);
  result.effective_min_support = minsup_dyn_;
  stats_.seconds = timer.ElapsedSeconds();
  result.stats = stats_;
  return result;
}

}  // namespace

std::vector<RuleGroupPtr> TopkResult::DistinctGroups() const {
  std::vector<RuleGroupPtr> out;
  std::unordered_map<uint64_t, std::vector<size_t>> seen;  // rowset hash -> indices
  for (const auto& list : per_row) {
    for (const RuleGroupPtr& g : list) {
      const uint64_t h = g->row_support.Hash();
      auto& bucket = seen[h];
      bool dup = false;
      for (size_t idx : bucket) {
        if (out[idx]->row_support == g->row_support) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(out.size());
        out.push_back(g);
      }
    }
  }
  return out;
}

std::vector<RuleGroupPtr> TopkResult::GroupsAtRank(uint32_t j) const {
  TOPKRGS_CHECK(j >= 1, "rank is 1-based");
  std::vector<RuleGroupPtr> out;
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (const auto& list : per_row) {
    if (list.size() < j) continue;
    const RuleGroupPtr& g = list[j - 1];
    const uint64_t h = g->row_support.Hash();
    auto& bucket = seen[h];
    bool dup = false;
    for (size_t idx : bucket) {
      if (out[idx]->row_support == g->row_support) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(out.size());
      out.push_back(g);
    }
  }
  return out;
}

TopkResult MineTopkRGS(const DiscreteDataset& data, ClassLabel consequent,
                       const TopkMinerOptions& options) {
  TopkSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
