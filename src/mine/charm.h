#ifndef TOPKRGS_MINE_CHARM_H_
#define TOPKRGS_MINE_CHARM_H_

#include <cstdint>

#include "core/dataset.h"
#include "mine/miner_common.h"
#include "util/timer.h"

namespace topkrgs {

/// Options of the CHARM baseline [Zaki & Hsiao, SDM 2002], the column
/// enumeration closed itemset miner the paper compares against ("CHARM
/// which uses diff-sets"). Mines all closed itemsets whose support counted
/// over rows of `consequent` class is >= min_support — exactly the upper
/// bounds of the qualifying rule groups.
struct CharmOptions {
  uint32_t min_support = 1;
  /// Fill RuleGroup::row_support on emission (costs one tidset
  /// reconstruction per group). Benchmarks disable it.
  bool materialize_rowsets = true;
  Deadline deadline;
  /// Safety valve: stop after this many groups (0 = off).
  uint64_t max_groups = 0;
};

/// Runs CHARM with diffsets over the item (column) enumeration space.
MiningResult MineCharm(const DiscreteDataset& data, ClassLabel consequent,
                       const CharmOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_CHARM_H_
