#include "mine/farmer.h"

#include <algorithm>
#include <vector>

#include "core/stats.h"
#include "mine/projection.h"
#include "util/status.h"

namespace topkrgs {

namespace {

constexpr double kConfEps = 1e-12;

class FarmerSearch {
 public:
  FarmerSearch(const DiscreteDataset& data, ClassLabel consequent,
               const FarmerOptions& options)
      : data_(data), consequent_(consequent), opt_(options) {}

  MiningResult Run();

 private:
  template <typename Proj>
  void Visit(const Proj& proj, const Bitset& items, uint32_t items_count,
             uint32_t branch_pos, bool closed_on_left);

  /// Confidence envelope test against the fixed threshold: prune when even
  /// best_sup positives over (best_sup + min_neg) rows falls short.
  bool Hopeless(uint32_t best_sup, uint32_t min_neg) const {
    if (best_sup < minsup_) return true;
    if (opt_.min_confidence <= 0.0) return false;
    const double conf_ub =
        static_cast<double>(best_sup) / (best_sup + min_neg);
    return conf_ub < opt_.min_confidence - kConfEps;
  }

  void EmitAt(const Bitset& items);

  const DiscreteDataset& data_;
  const ClassLabel consequent_;
  const FarmerOptions& opt_;

  std::vector<RowId> order_;
  uint32_t np_ = 0;
  uint32_t minsup_ = 1;

  std::vector<uint32_t> x_stack_;
  std::vector<bool> in_x_;
  uint32_t xp_ = 0;
  uint32_t xn_ = 0;

  bool stopped_ = false;
  MiningResult result_;
};

void FarmerSearch::EmitAt(const Bitset& items) {
  if (xp_ < minsup_) return;
  const double conf = static_cast<double>(xp_) / (xp_ + xn_);
  if (conf < opt_.min_confidence - kConfEps) return;
  if (opt_.min_chi_square > 0.0) {
    const uint32_t class_rows = np_;
    const uint32_t other_rows = data_.num_rows() - np_;
    const double chi = ChiSquare({{xp_, xn_},
                                  {class_rows - xp_, other_rows - xn_}});
    if (chi < opt_.min_chi_square) return;
  }
  RuleGroup group;
  group.antecedent = items;
  group.consequent = consequent_;
  group.support = xp_;
  group.antecedent_support = xp_ + xn_;
  Bitset rows(data_.num_rows());
  for (uint32_t pos : x_stack_) rows.Set(order_[pos]);
  group.row_support = std::move(rows);
  result_.groups.push_back(std::move(group));
  ++result_.stats.groups_emitted;
  if (opt_.max_groups != 0 && result_.stats.groups_emitted >= opt_.max_groups) {
    stopped_ = true;
    result_.stats.timed_out = true;
  }
}

template <typename Proj>
void FarmerSearch::Visit(const Proj& proj, const Bitset& items,
                         uint32_t items_count, uint32_t branch_pos,
                         bool closed_on_left) {
  if (stopped_) return;
  ++result_.stats.nodes_visited;
  if (opt_.deadline.Expired()) {
    stopped_ = true;
    result_.stats.timed_out = true;
    return;
  }
  if (items_count == 0) return;
  (void)branch_pos;

  std::vector<uint32_t> cand;
  proj.Positions(&cand);
  std::erase_if(cand, [&](uint32_t p) { return in_x_[p]; });

  uint32_t rp = 0;
  for (uint32_t p : cand) rp += (p < np_);

  // Loose bounds before scanning.
  if (opt_.use_bound_pruning && Hopeless(xp_ + rp, xn_)) {
    ++result_.stats.pruned_bounds;
    return;
  }

  std::vector<uint32_t> live;
  std::vector<uint32_t> live_freq;
  std::vector<uint32_t> absorbed;
  uint32_t mp = 0;
  for (uint32_t p : cand) {
    const uint32_t f = proj.Freq(p, items);
    if (f == items_count) {
      absorbed.push_back(p);
    } else if (f > 0) {
      live.push_back(p);
      live_freq.push_back(f);
      if (p < np_) ++mp;
    }
  }
  for (uint32_t p : absorbed) {
    in_x_[p] = true;
    x_stack_.push_back(p);
    p < np_ ? ++xp_ : ++xn_;
  }

  // Tight bounds after the scan.
  const bool pruned = opt_.use_bound_pruning && Hopeless(xp_ + mp, xn_);
  if (pruned) {
    ++result_.stats.pruned_bounds;
  } else {
    if (closed_on_left) EmitAt(items);
    std::vector<uint32_t> suffix_pos(live.size() + 1, 0);
    for (size_t i = live.size(); i-- > 0;) {
      suffix_pos[i] = suffix_pos[i + 1] + (live[i] < np_ ? 1 : 0);
    }
    // Backward check per child, before the child projection is built: a
    // skipped earlier row containing I(X ∪ {p}) marks the child subtree as
    // a duplicate of an earlier branch (it may emit nothing); with the
    // pruning enabled it is skipped without paying for the projection.
    for (size_t i = 0; i < live.size() && !stopped_; ++i) {
      const uint32_t p = live[i];
      if (opt_.use_bound_pruning) {
        // Per-child loose bounds: skip hopeless children before paying for
        // the intersection, backward scan, and projection.
        const uint32_t child_sup_ub =
            xp_ + (p < np_ ? 1 : 0) + suffix_pos[i + 1];
        const uint32_t child_min_neg = xn_ + (p < np_ ? 0 : 1);
        if (Hopeless(child_sup_ub, child_min_neg)) {
          ++result_.stats.pruned_bounds;
          continue;
        }
      }
      Bitset child_items = Intersect(items, data_.row_bitset(order_[p]));
      bool child_closed = true;
      for (uint32_t q = 0; q < p; ++q) {
        if (!in_x_[q] && child_items.IsSubsetOf(data_.row_bitset(order_[q]))) {
          child_closed = false;
          break;
        }
      }
      if (!child_closed) {
        ++result_.stats.pruned_backward;
        if (opt_.use_backward_pruning) continue;
      }
      in_x_[p] = true;
      x_stack_.push_back(p);
      p < np_ ? ++xp_ : ++xn_;
      Visit(proj.Child(p, live), child_items, live_freq[i], p, child_closed);
      p < np_ ? --xp_ : --xn_;
      x_stack_.pop_back();
      in_x_[p] = false;
    }
  }

  for (auto it = absorbed.rbegin(); it != absorbed.rend(); ++it) {
    const uint32_t p = *it;
    p < np_ ? --xp_ : --xn_;
    x_stack_.pop_back();
    in_x_[p] = false;
  }
}

MiningResult FarmerSearch::Run() {
  Stopwatch timer;
  minsup_ = std::max<uint32_t>(1, opt_.min_support);
  const Bitset frequent = FrequentItems(data_, consequent_, minsup_);
  order_ = ClassDominantOrder(data_, consequent_, frequent);
  np_ = CountClassRows(data_, consequent_);
  in_x_.assign(data_.num_rows(), false);

  const uint32_t items_count = static_cast<uint32_t>(frequent.Count());
  if (items_count > 0 && np_ > 0) {
    switch (opt_.backend) {
      case FarmerOptions::Backend::kPrefixTree: {
        TreeProjection root(PrefixTree::BuildRoot(data_, order_, frequent));
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
      case FarmerOptions::Backend::kBitset: {
        BitsetProjection root(&data_, &order_);
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
      case FarmerOptions::Backend::kVector: {
        VectorProjection root(&data_, &order_, frequent);
        Visit(root, frequent, items_count, 0, /*closed_on_left=*/true);
        break;
      }
    }
  }
  result_.stats.seconds = timer.ElapsedSeconds();
  return std::move(result_);
}

}  // namespace

MiningResult MineFarmer(const DiscreteDataset& data, ClassLabel consequent,
                        const FarmerOptions& options) {
  FarmerSearch search(data, consequent, options);
  return search.Run();
}

}  // namespace topkrgs
