#ifndef TOPKRGS_MINE_NAIVE_MINER_H_
#define TOPKRGS_MINE_NAIVE_MINER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"
#include "mine/carpenter.h"

namespace topkrgs {

/// Exhaustive reference miner used as the test oracle. Enumerates every row
/// subset (2^n, so only for small datasets; aborts above 24 rows), keeps the
/// closed ones (X == R(I(X))), and derives rule groups / top-k covering
/// lists directly from the definitions. Deliberately simple and obviously
/// correct; never used outside tests and sanity checks.

/// All rule groups with the given consequent whose support (over consequent
/// rows) is >= min_support. Equivalently: all closed itemsets with class
/// support >= min_support. Groups are returned in no particular order.
std::vector<RuleGroup> NaiveRuleGroups(const DiscreteDataset& data,
                                       ClassLabel consequent,
                                       uint32_t min_support);

/// All closed patterns (closed itemsets with their row supports) whose
/// total support is >= min_support, ignoring class labels — the oracle for
/// CARPENTER.
std::vector<ClosedPattern> NaiveClosedPatterns(const DiscreteDataset& data,
                                               uint32_t min_support);

/// The top-k covering rule groups of every row (Definition 2.3), computed
/// by ranking the full NaiveRuleGroups output. per_row[r] is empty for rows
/// of other classes; lists are most-significant-first. Ties at the k-th
/// position are broken arbitrarily, exactly like the search algorithm.
std::vector<std::vector<RuleGroup>> NaiveTopkRGS(const DiscreteDataset& data,
                                                 ClassLabel consequent,
                                                 uint32_t min_support,
                                                 uint32_t k);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_NAIVE_MINER_H_
