#ifndef TOPKRGS_MINE_TOPK_MINER_H_
#define TOPKRGS_MINE_TOPK_MINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"
#include "mine/miner_common.h"
#include "util/bitset.h"
#include "util/rowset.h"
#include "util/status.h"
#include "util/timer.h"

namespace topkrgs {

/// Hooks for the out-of-core sharded engine (src/scale/, DESIGN.md §14).
/// A shard mines a SUFFIX of the globally ordered dataset, so three small
/// deviations from stand-alone mining are needed to keep the sharded
/// merge bit-identical to a single-shot run:
///
///  - `frequent_items`: the GLOBAL frequent-item set. Per-suffix frequent
///    sets diverge (an item frequent globally may fall below minsup in a
///    suffix and vice versa), which would change the enumeration universe
///    and thus the emitted closures.
///  - `first_level_limit`: only first-level children whose LOCAL canonical
///    position is < limit become subtree tasks. The shard planner sets
///    this to the shard's owned positive range so each closed group is
///    mined by exactly one shard (the one owning min R(G) \ absorbed).
///  - `contained_outside`: "is this itemset contained in some row BEFORE
///    this shard's suffix?" — the out-of-shard half of the paper's
///    backward check (Step 7). A hit means the node duplicates a branch
///    an earlier shard enumerates, exactly like an in-dataset earlier
///    row, so the subtree is skipped and guarded seeds are not planted.
///    MUST be thread-safe: workers call it concurrently.
///
/// All three default to "no hook" (stand-alone behavior). The struct is
/// borrowed via `TopkMinerOptions::shard_hooks` and must outlive the
/// MineTopkRGS call.
struct ShardHooks {
  const Bitset* frequent_items = nullptr;
  uint32_t first_level_limit = 0xffffffffu;
  std::function<bool(const RowSet&)> contained_outside;
};

/// Options of algorithm MineTopkRGS (Figure 3 of the paper). The pruning
/// toggles exist for the ablation benchmarks; all default to the paper's
/// configuration.
struct TopkMinerOptions {
  /// Number of covering rule groups kept per row.
  uint32_t k = 1;
  /// Minimum rule support, counted over rows of the consequent class.
  uint32_t min_support = 1;

  enum class Backend {
    kPrefixTree,  // projected prefix trees (the paper's implementation)
    kBitset,      // packed-bitset per-candidate intersection counting
    kVector,      // explicit projected transposed tables (FARMER-style)
  };
  Backend backend = Backend::kPrefixTree;

  enum class RowOrder {
    /// Class dominant, ascending frequent-item count within each class
    /// (the paper's ORD, §4.1.2).
    kClassDominantWeighted,
    /// Class dominant, original row order within each class.
    kClassDominant,
    /// Original dataset order — for the ordering ablation only; the paper
    /// calls class dominance essential for confidence pruning.
    kNatural,
  };
  RowOrder row_order = RowOrder::kClassDominantWeighted;

  /// Top-k pruning with the dynamically derived minimum confidence (§4.1.1).
  bool use_topk_pruning = true;
  /// Loose/tight support+confidence upper bound pruning (Steps 9 and 11).
  bool use_bound_pruning = true;
  /// Backward pruning (Step 7, §4.1.2).
  bool use_backward_pruning = true;
  /// Seed per-row lists with single-item rule groups (first optimization of
  /// §4.1.1).
  bool seed_single_items = true;
  /// Raise minsup when all lists hold k rule groups of 100% confidence
  /// (second optimization of §4.1.1).
  bool dynamic_min_support = true;

  /// Optional wall-clock budget; on expiry the miner stops and flags
  /// stats.timed_out (results are then incomplete).
  Deadline deadline;

  /// Worker threads, honored by both MineTopkRGS and MineTopkRGSHybrid.
  /// MineTopkRGS turns the first level of the row-enumeration tree into
  /// subtree tasks drained through work-stealing deques (owner-LIFO /
  /// thief-FIFO, with dynamic splitting once a worker starves), all
  /// sharing the per-row top-k pruning thresholds through epoch-stamped
  /// snapshots; the hybrid miner fans its per-item partitions over the
  /// same number of workers. 0 = one thread per hardware core (clamped to
  /// at least 1 — see ResolveThreadCount). Results are bit-for-bit
  /// deterministic regardless of the thread count (search statistics such
  /// as nodes_visited depend on pruning timing and are not).
  uint32_t threads = 1;

  /// Deprecated alias for `threads` (historically this field only applied
  /// to MineTopkRGSHybrid). Setting it while `threads` keeps its default
  /// is honored for old call sites; setting BOTH to conflicting values is
  /// an InvalidArgument caught by Validate(). New code should set
  /// `threads`.
  static constexpr uint32_t kThreadsUnset = 0xffffffffu;
  uint32_t hybrid_threads = kThreadsUnset;

  /// The thread count requested, resolving the deprecated alias (but not
  /// the 0 = hardware-default convention).
  uint32_t RequestedThreads() const {
    return hybrid_threads != kThreadsUnset ? hybrid_threads : threads;
  }

  /// Serial warm-up budget for the parallel miner: before any worker
  /// thread starts, the calling thread drains first-level subtree tasks in
  /// canonical order until it has visited this many enumeration nodes.
  /// Workers that start against a cold top-k heap explore subtrees that
  /// mature thresholds would prune, so without a warm-up the parallel
  /// search can visit several times the serial node count (the
  /// redundant-work ratio gated in bench/BENCH_topk.json). The heap needs
  /// at least k insertions per row list before its thresholds mean
  /// anything, so the auto budget scales with k; minings smaller than the
  /// budget simply finish serially, which is also the right call for
  /// wall-clock (a millisecond-scale search never amortizes thread
  /// startup). -1 = auto (64 * k nodes), 0 = no warm-up (every task is up
  /// for grabs immediately — tests use this to force heavy stealing),
  /// > 0 = explicit node budget. Has no effect at 1 worker.
  int64_t warmup_nodes = -1;

  /// The warm-up budget after resolving the -1 = auto convention.
  uint64_t ResolveWarmupNodes() const {
    if (warmup_nodes >= 0) return static_cast<uint64_t>(warmup_nodes);
    return 64ull * k;
  }

  /// Sharded-mining hooks (borrowed, may be null = stand-alone mining).
  /// Only meaningful with row_order == kNatural: the shard miner feeds
  /// suffix datasets already in global canonical order, and re-ordering
  /// inside the shard would break the position arithmetic behind
  /// `first_level_limit` and the prefix guard. Validate() enforces this.
  const ShardHooks* shard_hooks = nullptr;

  /// Rejects contradictory option combinations instead of silently picking
  /// a winner: k == 0, or `threads` and the deprecated `hybrid_threads`
  /// alias both set to different values (historically the alias won,
  /// which masked caller bugs). `threads` left at its default of 1 plus an
  /// assigned alias is NOT a conflict — that is exactly the legacy calling
  /// convention the alias exists for.
  Status Validate() const;
};

/// Resolves a requested thread count to the number of workers to launch:
/// 0 means "one per hardware core" using `hardware_hint` (the caller
/// passes std::thread::hardware_concurrency()), clamped to >= 1 because
/// the standard allows hardware_concurrency() to return 0 when the core
/// count is unknowable. Any explicit request is returned untouched.
inline uint32_t ResolveThreadCount(uint32_t requested,
                                   uint32_t hardware_hint) {
  if (requested != 0) return requested;
  return hardware_hint >= 1 ? hardware_hint : 1;
}

/// A discovered rule group shared between the rows it covers.
using RuleGroupPtr = std::shared_ptr<const RuleGroup>;

/// Result of MineTopkRGS.
struct TopkResult {
  /// per_row[r] = the top-k covering rule groups of row r, most significant
  /// first; empty for rows whose class is not the consequent. Lists may hold
  /// fewer than k entries when fewer covering groups meet minsup.
  std::vector<std::vector<RuleGroupPtr>> per_row;
  /// minsup after dynamic raises (== options.min_support unless raised).
  uint32_t effective_min_support = 0;
  MinerStats stats;

  /// All distinct rule groups across rows, in first-occurrence order of
  /// the per_row scan. Deduplication is by rowset equality; `hash_salt`
  /// perturbs the internal bucketing hash and MUST NOT change the result
  /// — the salt exists so tests can pin that hash-independence (the
  /// determinism linter's no-bucket-order-in-results rule, DESIGN.md §12).
  std::vector<RuleGroupPtr> DistinctGroups(uint64_t hash_salt = 0) const;

  /// RG_j (1-based j <= k): the distinct groups appearing as a top-j group
  /// of at least one row — the rule-group sets RCBT builds classifier CL_j
  /// from (§5.2). Same ordering and hash_salt contract as DistinctGroups.
  std::vector<RuleGroupPtr> GroupsAtRank(uint32_t j,
                                         uint64_t hash_salt = 0) const;

  /// Invariants the miner promises about its output, given the k it ran
  /// with: every per-row list holds at most k pointer-distinct groups,
  /// sorted most-significant-first (ties broken arbitrarily but order
  /// non-increasing), every listed group covers its row (its row_support
  /// contains the row) and itself satisfies RuleGroup::CheckInvariants.
  /// Returns false with the first violation in *error (when non-null).
  bool CheckInvariants(uint32_t k, std::string* error = nullptr) const;

  /// TKRGS_DCHECKs CheckInvariants(k); no-op in release. MineTopkRGS
  /// validates its own result through this before returning.
  void ValidateInvariants(uint32_t k) const;
};

/// Mines the top-k covering rule groups for every row of `data` whose class
/// is `consequent` (algorithm MineTopkRGS, Figure 3).
TopkResult MineTopkRGS(const DiscreteDataset& data, ClassLabel consequent,
                       const TopkMinerOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_MINE_TOPK_MINER_H_
