#include "cli/flags.h"

#include <algorithm>
#include <cstdlib>

#include "util/io.h"

namespace topkrgs {

StatusOr<FlagParser> FlagParser::Parse(const std::vector<std::string>& args) {
  FlagParser parser;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("unexpected argument: '" + arg +
                                     "' (flags are --key value)");
    }
    const size_t eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag --" + key + " needs a value");
      }
      value = args[++i];
    }
    if (parser.values_.count(key) > 0) {
      return Status::InvalidArgument("flag --" + key + " given twice");
    }
    parser.values_[key] = value;
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<std::string> FlagParser::GetRequired(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing required flag --" + key);
  }
  return it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& key,
                                     int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() || it->second.empty()) {
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> FlagParser::GetDouble(const std::string& key,
                                       double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  return v.value();
}

Status FlagParser::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::OK();
}

}  // namespace topkrgs
