#ifndef TOPKRGS_CLI_COMMANDS_H_
#define TOPKRGS_CLI_COMMANDS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace topkrgs {

/// The topkrgs command-line tools, exposed as Status-returning functions so
/// tests can drive them directly; each tool binary is a thin main() around
/// one of these. Output goes to stdout; `args` excludes the program name.

/// topkrgs-generate: write a synthetic microarray dataset to TSV.
///   --profile ALL|LC|OC|PC|TINY   dataset shape (default TINY)
///   --seed N                      RNG seed override
///   --train PATH (required)      training-split TSV output
///   --test PATH                  optional test-split TSV output
[[nodiscard]] Status RunGenerateCommand(const std::vector<std::string>& args);

/// topkrgs-mine: mine rule groups from a continuous TSV dataset
/// (label column + gene columns; entropy-MDL discretization is fitted on
/// the input).
///   --data PATH (required)       input TSV
///   --algorithm topk|hybrid|farmer|charm|closet|carpenter (default topk)
///   --consequent N               class label to mine for (default 1)
///   --minsup N | --minsup-frac F absolute or class-relative support
///                                (default --minsup-frac 0.7)
///   --k N                        covering rule groups per row (default 5)
///   --minconf F                  FARMER confidence threshold (default 0.9)
///   --budget SECONDS             wall-clock budget (default 30)
///   --max-print N                rule groups to print (default 10)
///   --threads N                  topk/hybrid worker threads; 0 = all cores
///   --warmup-nodes N             serial nodes mined before workers start;
///                                -1 = auto (scales with k), 0 = off
///                                (default 1; results are thread-count
///                                invariant)
[[nodiscard]] Status RunMineCommand(const std::vector<std::string>& args);

/// topkrgs-classify: train RCBT or CBA on a training TSV, evaluate on a
/// test TSV, optionally persist/reuse the model and discretization.
///   --train PATH                 training TSV (required unless loading)
///   --test PATH (required)       test TSV
///   --model rcbt|cba             classifier (default rcbt)
///   --k N --nl N                 RCBT parameters (defaults 10 / 20)
///   --minsup-frac F              support fraction (default 0.7)
///   --save-model PATH --save-discretization PATH
///   --load-model PATH --load-discretization PATH
[[nodiscard]] Status RunClassifyCommand(const std::vector<std::string>& args);

/// topkrgs-cv: stratified k-fold cross-validation of RCBT or CBA on one
/// continuous TSV dataset (no independent test split needed).
///   --data PATH (required)       input TSV
///   --model rcbt|cba             classifier (default rcbt)
///   --folds N                    number of folds (default 5)
///   --seed N                     fold assignment seed (default 1)
///   --k N --nl N                 RCBT parameters (defaults 10 / 20)
///   --minsup-frac F              support fraction (default 0.7)
[[nodiscard]] Status RunCvCommand(const std::vector<std::string>& args);

/// topkrgs-convert: stream an item-data text file ('label<TAB>item ids'
/// lines) into the mmap-able tkds binary format without materializing the
/// row-major matrix (peak memory = transposed table + one read chunk).
///   --input PATH (required)      item-data text input
///   --output PATH (required)     tkds output
///   --num-items N                declared item universe (default 0 = infer)
///   --chunk-bytes N              read granularity (default 1 MiB)
[[nodiscard]] Status RunConvertCommand(const std::vector<std::string>& args);

/// topkrgs-shard-mine: out-of-core sharded top-k mining over a tkds file
/// (mmap, zero parse) or item-data text (streamed). Output is bit-identical
/// to single-shot MineTopkRGS for any shard count (DESIGN.md §14).
///   --data PATH (required)       .tkds binary or item-data text
///   --consequent N               class label to mine for (default 1)
///   --minsup N | --minsup-frac F absolute or class-relative support
///                                (default --minsup-frac 0.7)
///   --k N                        covering rule groups per row (default 5)
///   --memory-budget BYTES        working-set budget; 0 = unlimited; the
///                                planner errors when infeasible
///   --shards N                   shard count; 0 = auto from the budget
///   --threads N                  workers per shard; 0 = all cores
///   --budget SECONDS             per-shard wall-clock budget (default 30)
///   --max-print N                rule groups to print (default 10)
[[nodiscard]] Status RunShardMineCommand(const std::vector<std::string>& args);

/// Maps a command Status to a process exit code so scripted callers can
/// distinguish failure modes without parsing stderr:
///   0 OK, 2 InvalidArgument (bad flags or malformed/corrupt input file),
///   3 NotFound, 4 IOError (unreadable/unwritable path), 5 OutOfRange,
///   6 FailedPrecondition (inputs valid alone but inconsistent as a pair,
///   e.g. model and discretization over different item universes),
///   7 Timeout, 8 ResourceExhausted, 9 DeadlineExceeded, 1 anything else.
/// Exit code 1 is reserved for unclassified errors so new StatusCodes never
/// silently collide with an existing meaning.
int ExitCodeForStatus(const Status& status);

}  // namespace topkrgs

#endif  // TOPKRGS_CLI_COMMANDS_H_
