#ifndef TOPKRGS_CLI_FLAGS_H_
#define TOPKRGS_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace topkrgs {

/// Minimal command-line flag parser for the topkrgs tools: accepts
/// "--key value" and "--key=value" pairs, rejects unknown or positional
/// arguments, and tracks which flags were consumed so callers can report
/// typos.
class FlagParser {
 public:
  /// Parses argv-style arguments (excluding the program name).
  static StatusOr<FlagParser> Parse(const std::vector<std::string>& args);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// String flag with a default.
  std::string GetString(const std::string& key, const std::string& fallback) const;

  /// Required string flag.
  [[nodiscard]] StatusOr<std::string> GetRequired(const std::string& key) const;

  /// Integer flag with a default; InvalidArgument on malformed values.
  [[nodiscard]] StatusOr<int64_t> GetInt(const std::string& key, int64_t fallback) const;

  /// Double flag with a default; InvalidArgument on malformed values.
  [[nodiscard]] StatusOr<double> GetDouble(const std::string& key, double fallback) const;

  /// Returns an error naming any flag not in `known` (typo detection).
  [[nodiscard]] Status CheckKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_CLI_FLAGS_H_
